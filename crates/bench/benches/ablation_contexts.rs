//! Ablation: context count (the clustering hyperparameter of paper
//! Section 3.3, "joint generation of contexts and models").
//!
//! Sweeps k and reports the composite accuracy/precision and the selected
//! Kodan DVD on the Orin. Too few contexts forfeit specialization; too
//! many starve each specialized model of training data.

use kodan::config::KodanConfig;
use kodan::mission::SpaceEnvironment;
use kodan::pipeline::Transformation;
use kodan_bench::{banner, bench_dataset_config, bench_world, f, n, row, run_kodan_recorded, s};
use kodan_geodata::Dataset;
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Ablation: number of contexts",
        "k-means k vs. composite precision and selected DVD (App 4, Orin 15W)",
    );
    let world = bench_world();
    let dataset = Dataset::sample(&world, &bench_dataset_config());
    let env = SpaceEnvironment::landsat(1);

    row(&[
        s("contexts"),
        s("engine agr"),
        s("ctx prec"),
        s("kodan dvd"),
        s("t:proc"),
        s("t:elide"),
    ]);
    for k in [1usize, 2, 4, 6, 8, 12] {
        let mut config = KodanConfig::evaluation(42);
        config.max_train_pixels = 8_000;
        config.max_eval_tiles = 240;
        config.train.epochs = 40;
        config.context_count = k;
        let artifacts =
            Transformation::new(config)
            .run(&dataset, ModelArch::ResNet50DilatedPpm)
            .expect("transformation succeeds");
        let ga = artifacts.grid_artifacts(6).expect("grid 6 swept");
        let logic = artifacts.select_with_capacity(
            HwTarget::OrinAgx15W,
            env.frame_deadline,
            env.capacity_fraction,
        );
        // The per-arm telemetry snapshot attributes each arm's DVD to the
        // action mix the selection logic actually flew.
        let (_, snapshot) =
            run_kodan_recorded(&artifacts, &env, &world, HwTarget::OrinAgx15W);
        let processed = snapshot.actions.get("process").copied().unwrap_or(0);
        let elided = snapshot.actions.get("discard").copied().unwrap_or(0)
            + snapshot.actions.get("downlink").copied().unwrap_or(0);
        row(&[
            n(k as u64),
            f(artifacts.engine_val_agreement),
            f(ga.composite_eval_all.precision()),
            f(logic.estimate().dvd),
            n(processed),
            n(elided),
        ]);
    }
    println!();
    println!("Expected shape: an interior optimum in k; k=1 degenerates to");
    println!("the single-model case, large k starves specialized models.");
}
