//! Ablation: what distribution should specialized models be trained on?
//!
//! The runtime routes tiles with the deployed context engine, whose
//! assignments differ from the truth partition. This ablation trains
//! each context's specialized model two ways — on the engine-assigned
//! training tiles (deployment-matched, what the pipeline does) and on
//! the truth-assigned tiles — and evaluates both under the routing that
//! actually happens on orbit (engine routing). Deployment-matched
//! training should win: each model sees exactly the mixture the engine
//! will hand it, including the engine's systematic confusions.

use kodan::context::ContextId;
use kodan::specialize::SpecializedModel;
use kodan_bench::{banner, bench_artifacts, bench_kodan_config, f, n, row, s};
use kodan_geodata::tile::TileImage;
use kodan_geodata::Dataset;
use kodan_ml::eval::ConfusionMatrix;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Ablation: engine-matched vs. truth-matched specialization",
        "Composite precision under deployed (engine) routing, grid 6",
    );
    let world = kodan_bench::bench_world();
    let dataset = Dataset::sample(&world, &kodan_bench::bench_dataset_config());
    let (train, val) = dataset.split(0.7, 42);
    let config = bench_kodan_config();

    row(&[
        s("app"),
        s("engine agr"),
        s("prec matched"),
        s("prec truth"),
        s("tiles"),
    ]);
    for arch in [
        ModelArch::MobileNetV2DilatedC1,
        ModelArch::ResNet50DilatedPpm,
        ModelArch::ResNet101DilatedPpm,
    ] {
        let artifacts = bench_artifacts(arch);
        let ga = artifacts.grid_artifacts(6).expect("grid 6 swept");
        let train_tiles = train.tiles(6);
        let val_tiles = val.tiles(6);
        let k = artifacts.contexts.len();

        // Truth-matched variants of every context model.
        let truth_models: Vec<Option<SpecializedModel>> = (0..k)
            .map(|c| {
                let subset: Vec<TileImage> = train_tiles
                    .iter()
                    .filter(|t| artifacts.contexts.classify_truth(t).0 == c)
                    .cloned()
                    .collect();
                if subset.len() >= 5 {
                    Some(SpecializedModel::train_for_context(
                        &subset,
                        arch,
                        ContextId(c),
                        config.max_train_pixels,
                        &config.train,
                    ))
                } else {
                    None
                }
            })
            .collect();

        let mut matched_cm = ConfusionMatrix::new();
        let mut truth_cm = ConfusionMatrix::new();
        for tile in &val_tiles {
            let c = artifacts.engine.classify(tile).0;
            let matched = ga.context_models[c].as_ref().unwrap_or(&ga.global_model);
            let truth = truth_models[c].as_ref().unwrap_or(&ga.global_model);
            matched_cm += matched.evaluate_tile(tile);
            truth_cm += truth.evaluate_tile(tile);
        }
        row(&[
            s(&format!("App {}", arch.app_number())),
            f(artifacts.engine_val_agreement),
            f(matched_cm.precision()),
            f(truth_cm.precision()),
            n(val_tiles.len() as u64),
        ]);
    }
    println!();
    println!("Expected shape: deployment-matched training at least ties and");
    println!("usually beats truth-matched training under engine routing —");
    println!("the design reason the pipeline trains on engine assignments.");
}
