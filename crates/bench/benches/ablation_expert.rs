//! Ablation: expert-generated vs. automatically-generated contexts
//! (the two approaches of paper Section 3.2).
//!
//! Expert contexts follow the dominant surface type and can be resolved
//! from satellite position alone (the map engine); automatic contexts
//! come from k-means over label vectors and need the learned engine.
//! This ablation runs the full pipeline both ways and compares context
//! quality and the resulting Kodan DVD estimate.

use kodan::config::ContextGenerationKind;
use kodan::engine::ExpertMapEngine;
use kodan::mission::SpaceEnvironment;
use kodan::pipeline::Transformation;
use kodan_bench::{banner, bench_dataset_config, bench_kodan_config, bench_world, f, n, row, s};
use kodan_geodata::Dataset;
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Ablation: expert vs. automatic context generation",
        "Full pipeline both ways (App 4, Orin 15W)",
    );
    let world = bench_world();
    let dataset = Dataset::sample(&world, &bench_dataset_config());
    let env = SpaceEnvironment::landsat(1);
    let arch = ModelArch::ResNet50DilatedPpm;

    row(&[
        s("generation"),
        s("contexts"),
        s("engine agr"),
        s("ctx prec"),
        s("kodan dvd"),
    ]);
    for (name, generation) in [
        ("auto", ContextGenerationKind::Auto),
        ("auto-sweep", ContextGenerationKind::AutoSweep { max_contexts: 8 }),
        ("expert", ContextGenerationKind::Expert),
    ] {
        let mut config = bench_kodan_config();
        config.generation = generation;
        let artifacts = Transformation::new(config)
            .run(&dataset, arch)
            .expect("transformation succeeds");
        let ga = artifacts.grid_artifacts(6).expect("grid 6 swept");
        let logic = artifacts.select_with_capacity(
            HwTarget::OrinAgx15W,
            env.frame_deadline,
            env.capacity_fraction,
        );
        row(&[
            s(name),
            n(artifacts.contexts.len() as u64),
            f(artifacts.engine_val_agreement),
            f(ga.composite_eval_all.precision()),
            f(logic.estimate().dvd),
        ]);

        // For expert contexts, also report the position-only map engine.
        if artifacts.contexts.expert_surface_map().is_some() {
            let map_engine = ExpertMapEngine::new(*world.surface(), &artifacts.contexts)
                .expect("expert contexts carry a surface map");
            let (_, val) = dataset.split(0.7, config.seed);
            let val_tiles = val.tiles(6);
            println!(
                "  expert map engine (position-only) agreement: {:.3}",
                map_engine.agreement_on(&val_tiles, &artifacts.contexts)
            );
        }
    }
    println!();
    println!("Expected shape: expert contexts are cheap to classify (the map");
    println!("engine needs no pixels) and human-explainable; automatic");
    println!("contexts match or beat them on DVD by splitting along value,");
    println!("not geography.");
}
