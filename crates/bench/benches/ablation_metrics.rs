//! Ablation: distance metric and label-vector transformation for context
//! clustering (the sweep of paper Section 3.2).
//!
//! For each (metric, transform) pair, clusters the representative
//! dataset's label vectors and reports the clustering silhouette plus the
//! spread of per-context high-value fractions (wider spread = more
//! elision opportunity).

use kodan::context::ContextSet;
use kodan_bench::{banner, bench_dataset_config, bench_world, f, row, s};
use kodan_geodata::Dataset;
use kodan_ml::kmeans::{silhouette, KMeans};
use kodan_ml::metrics::DistanceMetric;
use kodan_ml::transform::TransformKind;

fn main() {
    banner(
        "Ablation: clustering metric and transform sweep",
        "Silhouette and per-context high-value spread (k = 6)",
    );
    let world = bench_world();
    let dataset = Dataset::sample(&world, &bench_dataset_config());
    let tiles = dataset.tiles(6);
    let labels: Vec<Vec<f64>> = tiles.iter().map(|t| t.label_vector().to_vec()).collect();

    row(&[
        s("metric"),
        s("transform"),
        s("silhouette"),
        s("hv spread"),
    ]);
    for metric in DistanceMetric::ALL {
        for transform in TransformKind::sweep_candidates(labels[0].len()) {
            let fitted = transform.fit(&labels);
            let transformed = fitted.apply_all(&labels);
            let km = KMeans::fit(&transformed, 6, metric, 42);
            let sil = silhouette(&transformed, &km);

            let contexts = ContextSet::generate_auto(&tiles, 6, metric, transform, 42);
            let hv: Vec<f64> = contexts
                .contexts()
                .iter()
                .filter(|c| c.tile_count > 0)
                .map(|c| c.high_value_fraction)
                .collect();
            let spread = hv.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - hv.iter().cloned().fold(f64::INFINITY, f64::min);

            let tname = match transform {
                TransformKind::Identity => "identity".to_string(),
                TransformKind::Standardize => "standardize".to_string(),
                TransformKind::Pca(k) => format!("pca({k})"),
            };
            row(&[s(metric.name()), s(&tname), f(sil), f(spread)]);
        }
    }
    println!();
    println!("Expected shape: standardized Euclidean/Manhattan clusterings");
    println!("dominate; Hamming degrades on the mostly-continuous label");
    println!("vectors; wider high-value spread predicts elision headroom.");
}
