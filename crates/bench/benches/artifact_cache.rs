//! Artifact-cache warm start: ground transformation vs loading the
//! sealed artifact set.
//!
//! The paper's deployment model pays the transformation cost once on the
//! ground and uplinks only the deployable artifacts; every subsequent
//! boot of the on-orbit software starts from those bytes. This bench
//! measures both paths — cold (transform + select) and warm (unseal the
//! artifact store) — verifies they produce identical mission inputs, and
//! writes `BENCH_artifact_cache.json` at the repo root with the speedup
//! and the encoded sizes against the modeled uplink budget.

use criterion::Criterion;
use kodan::artifact::{load_artifacts, save_artifacts};
use kodan::mission::SpaceEnvironment;
use kodan::pipeline::Transformation;
use kodan_bench::{banner, bench_dataset_config, bench_kodan_config, bench_world};
use kodan_geodata::Dataset;
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;
use kodan_telemetry::NullRecorder;
use kodan_wire::UPLINK_BUDGET_BYTES;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Mean wall-clock seconds per call over `reps` runs (1 warmup call).
fn time_calls<F: FnMut() -> R, R>(reps: u32, mut body: F) -> f64 {
    black_box(body());
    let start = Instant::now();
    for _ in 0..reps {
        black_box(body());
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

fn main() {
    banner(
        "Artifact cache: cold transformation vs warm artifact load",
        "ground transform+select wall time vs unsealing the kodan-wire store (App 4, Orin 15W)",
    );
    let world = bench_world();
    let dataset = Dataset::sample(&world, &bench_dataset_config());
    let env = SpaceEnvironment::landsat(1);
    let arch = ModelArch::ResNet50DilatedPpm;

    let cold = || {
        let artifacts = Transformation::new(bench_kodan_config())
            .run(&dataset, arch)
            .expect("bench transformation succeeds");
        let logic = artifacts.select_with_capacity(
            HwTarget::OrinAgx15W,
            env.frame_deadline,
            env.capacity_fraction,
        );
        (artifacts, logic)
    };
    let (artifacts, logic) = cold();

    let dir: PathBuf = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("bench_artifact_cache");
    std::fs::remove_dir_all(&dir).ok();
    let report =
        save_artifacts(&artifacts, &logic, &dir, &mut NullRecorder).expect("save succeeds");

    // Warm start must be the same deployment, bit for bit — otherwise the
    // speedup is comparing different missions.
    let loaded = load_artifacts(&dir, &mut NullRecorder).expect("load succeeds");
    assert!(loaded.recovered.is_empty(), "clean store needs no recovery");
    assert_eq!(loaded.artifacts, artifacts, "loaded artifacts diverged");
    assert_eq!(loaded.selection, logic, "loaded selection diverged");

    let mut criterion = Criterion::default();
    criterion.bench_function("warm_artifact_load", |b| {
        b.iter(|| load_artifacts(black_box(&dir), &mut NullRecorder).expect("load succeeds"))
    });

    const COLD_REPS: u32 = 3;
    const WARM_REPS: u32 = 20;
    let cold_s = time_calls(COLD_REPS, &cold);
    let warm_s = time_calls(WARM_REPS, || {
        load_artifacts(&dir, &mut NullRecorder).expect("load succeeds")
    });
    let speedup = if warm_s > 0.0 { cold_s / warm_s } else { 0.0 };

    let total_bytes = report.total_bytes;
    let model_bytes: u64 = report
        .manifest
        .entries
        .iter()
        .filter(|e| e.name.starts_with("grid"))
        .map(|e| e.bytes)
        .sum();
    let budget_fraction = total_bytes as f64 / UPLINK_BUDGET_BYTES as f64;

    let json = format!(
        "{{\n  \"bench\": \"artifact_cache\",\n  \"unit\": \"seconds_per_start\",\n  \"cold_reps\": {COLD_REPS},\n  \"warm_reps\": {WARM_REPS},\n  \"cold_start_s\": {cold_s:.6},\n  \"warm_start_s\": {warm_s:.6},\n  \"warm_speedup\": {speedup:.1},\n  \"artifact_count\": {count},\n  \"total_bytes\": {total_bytes},\n  \"model_bytes\": {model_bytes},\n  \"uplink_budget_bytes\": {UPLINK_BUDGET_BYTES},\n  \"budget_fraction\": {budget_fraction:.6},\n  \"loaded_equals_in_memory\": true,\n  \"note\": \"cold = transformation + selection on the bench dataset; warm = kodan-wire artifact load verified equal to the in-memory set; the warm path is what an on-orbit reboot pays\"\n}}\n",
        count = report.manifest.entries.len(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_artifact_cache.json");
    std::fs::write(out, &json).expect("write BENCH_artifact_cache.json");

    println!();
    println!(
        "cold start {:.2} s  warm start {:.4} s  -> {speedup:.0}x warm speedup",
        cold_s, warm_s
    );
    println!(
        "uplink: {total_bytes} bytes across {} artifacts ({:.2}% of the {UPLINK_BUDGET_BYTES}-byte budget)",
        report.manifest.entries.len(),
        budget_fraction * 100.0,
    );
    println!("baseline written to BENCH_artifact_cache.json");
    assert!(
        speedup > 1.0,
        "warm start {speedup:.2}x must beat the cold transformation"
    );
    assert!(!report.over_budget, "artifact set exceeds the uplink budget");

    std::fs::remove_dir_all(&dir).ok();
}
