//! Fault resilience: data value density under an increasingly hostile
//! fault environment.
//!
//! Sweeps [`FaultConfig::scaled`] intensity from 0 (clean) to 1 (the
//! nominal hostile regime) and flies the same mission day under each
//! plan, with the degradation policies armed: checksum-validated model
//! fallback, bounded classify retries with raw-downlink exhaustion, and
//! value-aware queue shedding when contacts shrink. Writes
//! `BENCH_fault_resilience.json` at the repo root.
//!
//! Two invariants are pinned alongside the DVD curve: an inactive plan is
//! bit-identical to a disarmed runtime, and the fully hostile mission is
//! byte-identical across worker counts (fault decisions key on frame and
//! contact indices, never thread order).

use kodan::mission::{Mission, SpaceEnvironment, SystemKind};
use kodan::runtime::Runtime;
use kodan_bench::{banner, bench_artifacts, bench_mission_params, bench_world, f, row, s};
use kodan_cote::sim::ServedPass;
use kodan_cote::time::{Duration, Epoch};
use kodan_faults::{FaultConfig, FaultPlan};
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;
use kodan_telemetry::{CounterId, SummaryRecorder};

/// Master seed for every fault plan in the sweep.
const FAULT_SEED: u64 = 42;

/// The swept fault intensities (0 = clean, 1 = nominal hostile).
const INTENSITIES: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// On-board storage for the queue replay, in pixels.
const STORAGE_PX: f64 = 4.0e8;

/// Encoded size of a queued pixel.
const BITS_PER_PX: f64 = 100.0;

/// A day of synthetic ground passes for the queue replay: one 8-minute
/// contact roughly every orbit.
fn day_of_passes() -> Vec<ServedPass> {
    (0..15)
        .map(|i| {
            let start = Epoch::mission_start() + Duration::from_minutes(95.0 * i as f64);
            ServedPass {
                satellite: 0,
                station: 0,
                start,
                end: start + Duration::from_minutes(8.0),
                rate_bps: 2.0e8,
            }
        })
        .collect()
}

struct Arm {
    intensity: f64,
    dvd: f64,
    sent_px: f64,
    shed_px: f64,
    contacts_dropped: u64,
    seu_injected: u64,
    model_fallbacks: u64,
    classify_exhausted: u64,
    slowdown_frames: u64,
}

fn main() {
    banner(
        "Fault resilience: DVD vs fault intensity",
        "Kodan mission day under FaultConfig::scaled sweeps (App 4, Orin 15W)",
    );
    let world = bench_world();
    let artifacts = bench_artifacts(ModelArch::ResNet50DilatedPpm);
    let env = SpaceEnvironment::landsat(1);
    let logic = artifacts.select_with_capacity(
        HwTarget::OrinAgx15W,
        env.frame_deadline,
        env.capacity_fraction,
    );
    let fallback = artifacts
        .grid_artifacts(logic.grid())
        .expect("selected grid exists")
        .global_model
        .clone();
    let mission = Mission::new(&env, &world, bench_mission_params());
    let passes = day_of_passes();

    let fly = |intensity: f64, workers: usize| {
        let plan = FaultPlan::new(FaultConfig::scaled(FAULT_SEED, intensity))
            .expect("scaled config is valid");
        let runtime = Runtime::new(logic.clone(), artifacts.engine.clone())
            .with_workers(workers)
            .with_fault_plan(plan.clone(), fallback.clone());
        let mut recorder = SummaryRecorder::new();
        let report = mission.run_with_runtime_recorded(&runtime, SystemKind::Kodan, &mut recorder);
        let detailed = mission.run_detailed_faulted(
            &runtime,
            &passes,
            STORAGE_PX,
            BITS_PER_PX,
            Some(&plan),
            &mut recorder,
        );
        (report, detailed, recorder.snapshot())
    };

    // Invariant 1: an inactive plan is bit-identical to a disarmed runtime.
    let disarmed = Runtime::new(logic.clone(), artifacts.engine.clone());
    let clean_report = mission.run_with_runtime(&disarmed, SystemKind::Kodan);
    let (zero_report, _, _) = fly(0.0, 0);
    assert_eq!(
        clean_report, zero_report,
        "intensity-0 plan must not perturb the clean mission"
    );

    // Invariant 2: the hostile mission is byte-identical at any worker
    // count.
    let (hostile_report, hostile_detailed, hostile_snapshot) = fly(1.0, 1);
    let hostile_json = hostile_snapshot.to_json();
    let mut outputs_identical = true;
    for workers in [2usize, 4] {
        let (report, detailed, snapshot) = fly(1.0, workers);
        outputs_identical &= report == hostile_report
            && detailed == hostile_detailed
            && snapshot.to_json().as_bytes() == hostile_json.as_bytes();
    }
    assert!(outputs_identical, "faulted outputs diverged across workers");

    row(&[
        s("intensity"),
        s("dvd"),
        s("sent_Mpx"),
        s("shed_Mpx"),
        s("dropped"),
        s("seu"),
        s("fallbacks"),
        s("exhausted"),
    ]);
    let arms: Vec<Arm> = INTENSITIES
        .iter()
        .map(|&intensity| {
            let (report, detailed, snapshot) = fly(intensity, 0);
            let arm = Arm {
                intensity,
                dvd: report.dvd,
                sent_px: detailed.sent_px,
                shed_px: detailed.shed_px,
                contacts_dropped: detailed.contacts_dropped,
                seu_injected: snapshot.counter(CounterId::FaultSeuInjected),
                model_fallbacks: snapshot.counter(CounterId::ModelFallbacks),
                classify_exhausted: snapshot.counter(CounterId::FaultClassifyExhausted),
                slowdown_frames: snapshot.counter(CounterId::FaultSlowdownFrames),
            };
            row(&[
                f(arm.intensity),
                f(arm.dvd),
                f(arm.sent_px / 1e6),
                f(arm.shed_px / 1e6),
                arm.contacts_dropped.to_string(),
                arm.seu_injected.to_string(),
                arm.model_fallbacks.to_string(),
                arm.classify_exhausted.to_string(),
            ]);
            arm
        })
        .collect();

    let clean = &arms[0];
    let hostile = arms.last().expect("sweep is non-empty");
    assert!(
        hostile.seu_injected > 0 && hostile.model_fallbacks > 0,
        "the nominal regime must actually inject and recover"
    );
    for arm in &arms {
        assert!(
            (0.0..=1.0).contains(&arm.dvd),
            "dvd {} out of range at intensity {}",
            arm.dvd,
            arm.intensity
        );
    }

    let rows: Vec<String> = arms
        .iter()
        .map(|a| {
            format!(
                "    {{ \"intensity\": {:.2}, \"dvd\": {:.4}, \"sent_px\": {:.1}, \"shed_px\": {:.1}, \"contacts_dropped\": {}, \"seu_injected\": {}, \"model_fallbacks\": {}, \"classify_exhausted\": {}, \"slowdown_frames\": {} }}",
                a.intensity,
                a.dvd,
                a.sent_px,
                a.shed_px,
                a.contacts_dropped,
                a.seu_injected,
                a.model_fallbacks,
                a.classify_exhausted,
                a.slowdown_frames,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fault_resilience\",\n  \"fault_seed\": {FAULT_SEED},\n  \"app\": \"app4_resnet50_dilated_ppm\",\n  \"target\": \"orin_agx_15w\",\n  \"clean_dvd\": {:.4},\n  \"hostile_dvd\": {:.4},\n  \"dvd_retained_fraction\": {:.4},\n  \"outputs_byte_identical_across_workers\": {outputs_identical},\n  \"sweep\": [\n{}\n  ],\n  \"note\": \"DVD of the same mission day as FaultConfig::scaled intensity rises from clean to the nominal hostile regime, with checksum fallback, bounded retries and value-aware shedding armed\"\n}}\n",
        clean.dvd,
        hostile.dvd,
        if clean.dvd > 0.0 { hostile.dvd / clean.dvd } else { 0.0 },
        rows.join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fault_resilience.json");
    std::fs::write(out, &json).expect("write BENCH_fault_resilience.json");
    println!();
    println!(
        "clean dvd {:.3} -> hostile dvd {:.3} ({} upsets, {} fallbacks, {} exhausted tiles, {} slow frames)",
        clean.dvd,
        hostile.dvd,
        hostile.seu_injected,
        hostile.model_fallbacks,
        hostile.classify_exhausted,
        hostile.slowdown_frames,
    );
    println!("baseline written to BENCH_fault_resilience.json");
    assert!(
        hostile.dvd > 0.0,
        "degradation policies must keep the mission producing value under nominal faults"
    );
}
