//! Figure 10: DVD improvement over the bent pipe (normalized to the
//! per-app maximum) versus application execution time per frame.
//!
//! Points: Apps 1, 4 and 7 on the Orin 15W (direct deploy and Kodan),
//! plus App 1 direct-deployed to the i7-7800 and the 1070 Ti. The curve
//! shows the deadline knee: DVD rises as frame time falls until the
//! frame deadline is met, after which precision is the limit.

use kodan::mission::{Mission, SpaceEnvironment, SystemKind};
use kodan::runtime::Runtime;
use kodan::selection::SelectionLogic;
use kodan_bench::{
    banner, bench_artifacts, bench_mission_params, bench_world, f, row, s,
};
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Figure 10: DVD improvement vs. frame execution time",
        "Normalized to each app's maximum; deadline marks the knee",
    );
    let env = SpaceEnvironment::landsat(1);
    let world = bench_world();
    let mission = Mission::new(&env, &world, bench_mission_params());
    let bent = mission.run_bent_pipe();

    println!("frame deadline: {:.1} s", env.frame_deadline.as_seconds());
    row(&[
        s("point"),
        s("frame s"),
        s("dvd"),
        s("improve"),
        s("norm"),
    ]);

    let named_points: Vec<(String, ModelArch, HwTarget, bool)> = vec![
        ("App1 direct Orin".into(), ModelArch::MobileNetV2DilatedC1, HwTarget::OrinAgx15W, false),
        ("App1 kodan Orin".into(), ModelArch::MobileNetV2DilatedC1, HwTarget::OrinAgx15W, true),
        ("App4 direct Orin".into(), ModelArch::ResNet50DilatedPpm, HwTarget::OrinAgx15W, false),
        ("App4 kodan Orin".into(), ModelArch::ResNet50DilatedPpm, HwTarget::OrinAgx15W, true),
        ("App7 direct Orin".into(), ModelArch::ResNet101DilatedPpm, HwTarget::OrinAgx15W, false),
        ("App7 kodan Orin".into(), ModelArch::ResNet101DilatedPpm, HwTarget::OrinAgx15W, true),
        ("App1 direct i7".into(), ModelArch::MobileNetV2DilatedC1, HwTarget::CoreI7_7800X, false),
        ("App1 direct 1070Ti".into(), ModelArch::MobileNetV2DilatedC1, HwTarget::Gtx1070Ti, false),
    ];

    // Group results per app for per-app normalization.
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    let mut per_app_max: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
    for (label, arch, target, is_kodan) in &named_points {
        let artifacts = bench_artifacts(*arch);
        let logic = if *is_kodan {
            artifacts.select_with_capacity(*target, env.frame_deadline, env.capacity_fraction)
        } else {
            SelectionLogic::direct_deploy(
                &artifacts,
                *target,
                env.frame_deadline,
                env.capacity_fraction,
            )
        };
        let runtime = Runtime::new(logic, artifacts.engine.clone());
        let kind = if *is_kodan {
            SystemKind::Kodan
        } else {
            SystemKind::DirectDeploy
        };
        let report = mission.run_with_runtime(&runtime, kind);
        let improvement = report.dvd - bent.dvd;
        let entry = per_app_max.entry(arch.app_number()).or_insert(0.0);
        if improvement > *entry {
            *entry = improvement;
        }
        results.push((
            format!("{label}"),
            report.mean_frame_time.as_seconds(),
            improvement,
        ));
    }

    for ((label, frame_s, improvement), (_, arch, _, _)) in results.iter().zip(&named_points) {
        let max = per_app_max[&arch.app_number()].max(1e-12);
        row(&[
            s(label),
            f(*frame_s),
            f(improvement + bent.dvd),
            f(*improvement),
            f(improvement / max),
        ]);
    }
    println!();
    println!("Expected shape: points past the deadline improve as frame time");
    println!("shrinks; once under the deadline, improvement saturates at the");
    println!("application's precision ceiling (per-app maximum DVD).");
}
