//! Figure 11: reduction factor in satellites required for full ground
//! track coverage — direct deploy vs. max-precision tiling vs. Kodan —
//! for every application on the flight-representative Orin 15W.

use kodan::coverage::coverage_comparison;
use kodan::mission::SpaceEnvironment;
use kodan_bench::{banner, bench_artifacts, f, n, row, s};
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Figure 11: constellation-size reduction for full coverage",
        "Satellites required (Orin 15W) and Kodan's reduction factor",
    );
    let env = SpaceEnvironment::landsat(1);
    let target = HwTarget::OrinAgx15W;

    row(&[
        s("app"),
        s("direct"),
        s("max-prec"),
        s("kodan"),
        s("reduction"),
    ]);
    let mut max_reduction = 0.0f64;
    for arch in ModelArch::ALL {
        let artifacts = bench_artifacts(arch);
        let cmp = coverage_comparison(
            &artifacts,
            target,
            env.frame_deadline,
            env.capacity_fraction,
        );
        max_reduction = max_reduction.max(cmp.reduction_vs_direct());
        row(&[
            s(&format!("App {}", arch.app_number())),
            n(cmp.direct_deploy as u64),
            n(cmp.max_precision_tiling as u64),
            n(cmp.kodan as u64),
            f(cmp.reduction_vs_direct()),
        ]);
    }
    println!();
    println!(
        "Maximum reduction factor: {max_reduction:.1}x (paper: up to 12x for \
         the heaviest application)."
    );
}
