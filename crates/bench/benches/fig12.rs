//! Figure 12: geospatial contexts improve accuracy (left) and precision
//! (right) for every application.
//!
//! Compares the global (direct-deploy) model against the context-routed
//! composite: each validation tile classified by the context engine and
//! scored under its context-specialized model. Statistics are read at
//! the context-generation grid (36 tiles/frame).

use kodan_bench::{banner, bench_artifacts, f, row, s};
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Figure 12: effect of geospatial contexts",
        "Accuracy and precision: direct deploy vs. context-specialized models",
    );
    row(&[
        s("app"),
        s("acc direct"),
        s("acc ctx"),
        s("prec direct"),
        s("prec ctx"),
    ]);
    let mut prec_gains: Vec<f64> = Vec::new();
    for arch in ModelArch::ALL {
        let artifacts = bench_artifacts(arch);
        let ga = artifacts.grid_artifacts(6).expect("grid 6 swept");
        let direct = &ga.global_eval_all;
        let ctx = &ga.composite_eval_all;
        prec_gains.push((ctx.precision() / direct.precision() - 1.0) * 100.0);
        row(&[
            s(&format!("App {}", arch.app_number())),
            f(direct.accuracy()),
            f(ctx.accuracy()),
            f(direct.precision()),
            f(ctx.precision()),
        ]);
    }
    println!();
    let max_gain = prec_gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "Largest precision gain from contexts: {max_gain:.1}% (paper: up to \
         33%, on the application with the weakest baseline)."
    );
    println!("Expected shape: contexts help precision more than accuracy, and");
    println!("help weak baselines the most.");
}
