//! Figure 13: the effect of frame tiling on accuracy (left) and
//! precision (right) for every application, at the paper's tile counts
//! (121 / 36 / 16 / 9 tiles per frame).
//!
//! Each application has its own optimal tiling because its input
//! resolution interacts differently with the decimation/interpolation
//! pipeline.

use kodan::tiling::{accuracy_optimal_grid, precision_optimal_grid, tiling_sweep};
use kodan::mission::SpaceEnvironment;
use kodan_bench::{banner, bench_artifacts, f, row, s};
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Figure 13: effect of tiling on accuracy and precision",
        "Global model evaluated at 121/36/16/9 tiles per frame",
    );
    let env = SpaceEnvironment::landsat(1);

    println!();
    row(&[
        s("app"),
        s("121 acc"),
        s("36 acc"),
        s("16 acc"),
        s("9 acc"),
        s("opt tiles"),
    ]);
    let mut sweeps = Vec::new();
    for arch in ModelArch::ALL {
        let artifacts = bench_artifacts(arch);
        let sweep = tiling_sweep(
            &artifacts,
            HwTarget::Gtx1070Ti,
            env.frame_deadline,
            env.capacity_fraction,
        );
        let by_grid = |g: usize| {
            sweep
                .iter()
                .find(|p| p.grid == g)
                .expect("grid present")
        };
        row(&[
            s(&format!("App {}", arch.app_number())),
            f(by_grid(11).accuracy),
            f(by_grid(6).accuracy),
            f(by_grid(4).accuracy),
            f(by_grid(3).accuracy),
            s(&format!("{}", accuracy_optimal_grid(&sweep).pow(2))),
        ]);
        sweeps.push((arch, sweep));
    }

    println!();
    row(&[
        s("app"),
        s("121 prec"),
        s("36 prec"),
        s("16 prec"),
        s("9 prec"),
        s("opt tiles"),
    ]);
    for (arch, sweep) in &sweeps {
        let by_grid = |g: usize| sweep.iter().find(|p| p.grid == g).expect("grid present");
        row(&[
            s(&format!("App {}", arch.app_number())),
            f(by_grid(11).precision),
            f(by_grid(6).precision),
            f(by_grid(4).precision),
            f(by_grid(3).precision),
            s(&format!("{}", precision_optimal_grid(sweep).pow(2))),
        ]);
    }
    println!();
    println!("Expected shape: per-app interior optima; the accuracy-optimal");
    println!("tile count can differ from the precision-optimal one, and both");
    println!("vary across model architectures.");
}
