//! Figure 14: effect of tiling on data value density for every
//! application on every platform.
//!
//! On constrained platforms (Orin) aggressive tiling (9 tiles/frame)
//! maximizes DVD because it buys back the frame deadline; as the compute
//! bottleneck eases (1070 Ti) the precision-optimal tiling wins.

use kodan::mission::SpaceEnvironment;
use kodan::tiling::{dvd_optimal_grid, tiling_sweep};
use kodan_bench::{banner, bench_artifacts, f, row, s};
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Figure 14: effect of tiling on DVD",
        "Global-model policy at 121/36/16/9 tiles per frame, per platform",
    );
    let env = SpaceEnvironment::landsat(1);

    let all_artifacts: Vec<_> = ModelArch::ALL
        .iter()
        .map(|&arch| bench_artifacts(arch))
        .collect();

    for target in HwTarget::ALL {
        println!();
        println!("--- deployment to {target} ---");
        row(&[
            s("app"),
            s("121 dvd"),
            s("36 dvd"),
            s("16 dvd"),
            s("9 dvd"),
            s("best"),
        ]);
        for (arch, artifacts) in ModelArch::ALL.iter().zip(&all_artifacts) {
            let sweep = tiling_sweep(
                artifacts,
                target,
                env.frame_deadline,
                env.capacity_fraction,
            );
            let by_grid = |g: usize| {
                sweep
                    .iter()
                    .find(|p| p.grid == g)
                    .expect("grid present")
                    .estimate
                    .dvd
            };
            row(&[
                s(&format!("App {}", arch.app_number())),
                f(by_grid(11)),
                f(by_grid(6)),
                f(by_grid(4)),
                f(by_grid(3)),
                s(&format!("{}", dvd_optimal_grid(&sweep).pow(2))),
            ]);
        }
    }
    println!();
    println!("Expected shape: on the Orin the 9-tile configuration dominates;");
    println!("on the 1070 Ti the precision-maximal tiling also maximizes DVD.");
}
