//! Figure 15: context-based elision improves data value density.
//!
//! Compares direct deployment against the elision-only ablation: the
//! direct-deploy tiling and the full global model, but with per-context
//! downlink/discard elision allowed. Improvements are largest under the
//! deepest compute bottleneck.

use kodan::mission::{Mission, SpaceEnvironment, SystemKind};
use kodan::runtime::Runtime;
use kodan::selection::{SelectionLogic, TechniqueSet};
use kodan_bench::{
    banner, bench_artifacts, bench_mission_params, bench_world, f, row, s,
};
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Figure 15: context-based elision and DVD",
        "Direct deploy vs. elision-only at the direct-deploy tiling",
    );
    let env = SpaceEnvironment::landsat(1);
    let world = bench_world();
    let mission = Mission::new(&env, &world, bench_mission_params());

    let all_artifacts: Vec<_> = ModelArch::ALL
        .iter()
        .map(|&arch| bench_artifacts(arch))
        .collect();

    for target in HwTarget::ALL {
        println!();
        println!("--- deployment to {target} ---");
        row(&[s("app"), s("direct dvd"), s("elision dvd"), s("gain %")]);
        for (arch, artifacts) in ModelArch::ALL.iter().zip(&all_artifacts) {
            let direct_logic = SelectionLogic::direct_deploy(
                artifacts,
                target,
                env.frame_deadline,
                env.capacity_fraction,
            );
            let direct_rt = Runtime::new(direct_logic, artifacts.engine.clone());
            let direct = mission.run_with_runtime(&direct_rt, SystemKind::DirectDeploy);

            let elide_logic = SelectionLogic::build_restricted(
                artifacts,
                target,
                env.frame_deadline,
                env.capacity_fraction,
                TechniqueSet::elision_only(),
            );
            let elide_rt = Runtime::new(elide_logic, artifacts.engine.clone());
            let elide = mission.run_with_runtime(&elide_rt, SystemKind::Kodan);

            row(&[
                s(&format!("App {}", arch.app_number())),
                f(direct.dvd),
                f(elide.dvd),
                f((elide.dvd / direct.dvd.max(1e-9) - 1.0) * 100.0),
            ]);
        }
    }
    println!();
    println!("Expected shape: elision gains grow with the compute bottleneck");
    println!("(largest for heavy apps on the Orin) and shrink, but persist,");
    println!("on the 1070 Ti where they come from precision, not time.");
}
