//! Figure 2: frames observed versus frames downlinked per orbit period
//! as same-plane constellation population grows.
//!
//! Reproduces the downlink-bottleneck motivation: downlinked frames grow
//! by claiming idle ground-station time, then saturate, while observed
//! frames grow linearly with satellite count.

use kodan_bench::{banner, n, row, s};
use kodan_cote::constellation::Constellation;
use kodan_cote::ground::GroundSegment;
use kodan_cote::orbit::Orbit;
use kodan_cote::sensor::Imager;
use kodan_cote::sim::simulate_space_segment;

fn main() {
    banner(
        "Figure 2: global frames per orbit period",
        "Total frames seen vs. total frames downlinkable (log-scale in the paper)",
    );
    let base = Orbit::sun_synchronous(705_000.0);
    let imager = Imager::landsat_oli();
    let segment = GroundSegment::landsat();
    let horizon = base.period();

    row(&[
        s("satellites"),
        s("frames seen"),
        s("frames down"),
        s("down frac"),
    ]);
    for &count in &[1usize, 8, 16, 24, 32, 40, 48, 56] {
        let constellation = Constellation::same_plane(base, count);
        let report = simulate_space_segment(&constellation, &imager, &segment, horizon);
        row(&[
            n(count as u64),
            n(report.frames_seen_total),
            n(report.frames_downlinkable()),
            kodan_bench::f(report.downlink_fraction()),
        ]);
    }
    println!();
    println!("Expected shape: seen grows linearly; downlinked saturates as");
    println!("ground stations reach full utilization (the downlink bottleneck).");
}
