//! Figure 3: unique global frames observed per day versus constellation
//! size, against the daily-global-coverage threshold.

use kodan_bench::{banner, f, n, row, s};
use kodan_cote::coverage::coverage_sweep;
use kodan_cote::orbit::Orbit;
use kodan_cote::sensor::Imager;
use kodan_cote::time::Duration;
use kodan_cote::wrs::WorldReferenceSystem;

fn main() {
    banner(
        "Figure 3: unique global frames observed per day",
        "Spread (multi-plane) constellations over the WRS-2-like scene grid",
    );
    let base = Orbit::sun_synchronous(705_000.0);
    let imager = Imager::landsat_oli();
    let wrs = WorldReferenceSystem::wrs2_like();
    let counts = [1usize, 8, 16, 24, 32, 40, 48, 56];
    let reports = coverage_sweep(base, &counts, &imager, &wrs, Duration::from_days(1.0));

    row(&[
        s("satellites"),
        s("uniq scenes"),
        s("total"),
        s("coverage"),
    ]);
    for r in &reports {
        row(&[
            n(r.satellite_count as u64),
            n(r.unique_scenes as u64),
            n(u64::from(r.total_scenes)),
            f(r.coverage_fraction()),
        ]);
    }
    println!();
    println!("Expected shape: coverage rises steeply, with diminishing returns");
    println!("from overlapping ground tracks; daily global coverage needs tens");
    println!("of satellites (the paper reads ~40 off the equivalent curve).");
}
