//! Figure 4: frames per satellite per day — observed on orbit, bent-pipe
//! downlinked, and ideal-OEC downlinked, split into high-value and
//! low-value data.
//!
//! Uses the 67 % global cloud climatology [23]. Ideal OEC filters with
//! perfect accuracy and zero execution time, so it fills the downlink
//! with nothing but high-value data.

use kodan_bench::{banner, climatology_world, f, n, row, s};
use kodan::mission::SpaceEnvironment;

fn main() {
    banner(
        "Figure 4: frames per satellite per day",
        "Observed vs. bent pipe vs. ideal OEC, high-/low-value split (67% cloud)",
    );
    let env = SpaceEnvironment::landsat(1);
    let world = climatology_world();

    // Measure the high-value prevalence the satellite actually observes
    // along its ground track.
    let params = kodan_bench::bench_mission_params();
    let mission = kodan::mission::Mission::new(&env, &world, params);
    let frames = mission.sample_frames();
    let hv: f64 = frames.iter().map(|fr| fr.high_value_fraction()).sum::<f64>()
        / frames.len() as f64;

    let observed = env.frames_per_day as f64;
    let downlinkable = observed * env.capacity_fraction;

    row(&[s("column"), s("high-value"), s("low-value"), s("total")]);
    row(&[
        s("observed"),
        n((observed * hv) as u64),
        n((observed * (1.0 - hv)) as u64),
        n(observed as u64),
    ]);
    row(&[
        s("bent pipe"),
        n((downlinkable * hv) as u64),
        n((downlinkable * (1.0 - hv)) as u64),
        n(downlinkable as u64),
    ]);
    // Ideal OEC: downlink only high-value frames, up to capacity.
    let ideal_hv = downlinkable.min(observed * hv);
    row(&[s("ideal OEC"), n(ideal_hv as u64), n(0), n(ideal_hv as u64)]);

    println!();
    let improvement = ideal_hv / (downlinkable * hv);
    println!(
        "Ideal edge filtering delivers {improvement:.1}x more high-value data \
         than the bent pipe (paper: ~3x at 67% cloud cover)."
    );
    println!(
        "Observed high-value prevalence along track: {} (paper: ~1/3).",
        f(hv)
    );
}
