//! Figure 5: percent of observed (global, unique) high-value data
//! downlinked — bent pipe versus direct deployment of a cloud filter —
//! as constellation size grows.
//!
//! The denominator is the fixed pool of unique global frames (the WRS
//! grid); the numerator is what the whole constellation delivers per
//! day. Bent-pipe delivery rises with satellite count by claiming idle
//! ground-station time, then saturates. The direct-deployed filter is
//! App 1 on the Orin 15W — far over the frame deadline, like the paper's
//! 98 s reference filter — so it beats the bent pipe only modestly
//! instead of realizing the ideal ~3x.

use kodan::mission::{Mission, SpaceEnvironment, SystemKind};
use kodan::runtime::Runtime;
use kodan::selection::SelectionLogic;
use kodan_bench::{banner, bench_artifacts, bench_mission_params, climatology_world, f, n, row, s};
use kodan_cote::wrs::WorldReferenceSystem;
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Figure 5: observed high-value data downlinked (%)",
        "Constellation-total delivery vs. the global unique-frame pool",
    );
    let world = climatology_world();
    let artifacts = bench_artifacts(ModelArch::MobileNetV2DilatedC1);
    let target = HwTarget::OrinAgx15W;
    let unique_frames = f64::from(WorldReferenceSystem::wrs2_like().scene_count());

    row(&[
        s("satellites"),
        s("bent pipe %"),
        s("direct %"),
        s("frame time s"),
    ]);
    for &count in &[1usize, 8, 16, 24, 32, 40, 48, 56] {
        let env = SpaceEnvironment::landsat(count);
        let mission = Mission::new(&env, &world, bench_mission_params());
        let bent = mission.run_bent_pipe();

        let logic = SelectionLogic::direct_deploy(
            &artifacts,
            target,
            env.frame_deadline,
            env.capacity_fraction,
        );
        let runtime = Runtime::new(logic, artifacts.engine.clone());
        let direct = mission.run_with_runtime(&runtime, SystemKind::DirectDeploy);

        // Scale per-satellite delivery to the constellation, against the
        // fixed global pool of unique high-value frame data.
        let px_per_frame = bent.accounting.observed_px / env.frames_per_day as f64;
        let prevalence = bent.accounting.observed_value_px / bent.accounting.observed_px;
        let unique_hv_px = unique_frames * px_per_frame * prevalence;
        let pct = |value_px: f64| (count as f64 * value_px / unique_hv_px * 100.0).min(100.0);

        row(&[
            n(count as u64),
            f(pct(bent.accounting.downlinked_value_px())),
            f(pct(direct.accounting.downlinked_value_px())),
            f(direct.mean_frame_time.as_seconds()),
        ]);
    }
    println!();
    println!("Expected shape: both curves rise with satellite count, then");
    println!("flatten as the ground segment saturates; direct deployment");
    println!("improves on the bent pipe only modestly (paper: ~9%) because");
    println!("the filter cannot keep up with the frame deadline.");
}
