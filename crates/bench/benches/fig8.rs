//! Figure 8: data value density for all seven applications on all three
//! hardware platforms — bent pipe vs. direct deploy vs. Kodan — plus the
//! paper's headline: Kodan improves DVD 89-97 % over the bent pipe.

use kodan::mission::SpaceEnvironment;
use kodan_bench::{banner, bench_artifacts, bench_world, f, row, run_three_systems, s};
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Figure 8: data value density (DVD)",
        "Bent pipe / direct deploy / Kodan per application and platform",
    );
    let env = SpaceEnvironment::landsat(1);
    let world = bench_world();

    let all_artifacts: Vec<_> = ModelArch::ALL
        .iter()
        .map(|&arch| bench_artifacts(arch))
        .collect();

    let mut improvements: Vec<f64> = Vec::new();
    for target in HwTarget::ALL {
        println!();
        println!("--- deployment to {target} ---");
        row(&[
            s("app"),
            s("bent pipe"),
            s("direct"),
            s("kodan"),
            s("improve %"),
        ]);
        for (arch, artifacts) in ModelArch::ALL.iter().zip(&all_artifacts) {
            let [bent, direct, kodan] = run_three_systems(artifacts, &env, &world, target);
            let improvement = (kodan.dvd / bent.dvd - 1.0) * 100.0;
            improvements.push(improvement);
            row(&[
                s(&format!("App {}", arch.app_number())),
                f(bent.dvd),
                f(direct.dvd),
                f(kodan.dvd),
                f(improvement),
            ]);
        }
    }

    let min = improvements.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = improvements
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!(
        "Headline: Kodan improves DVD between {min:.0}% and {max:.0}% over \
         the bent pipe across all applications and platforms (paper: 89-97%)."
    );
}
