//! Figure 9: processing time per frame — direct deploy vs. Kodan — for
//! every application and platform, against the frame deadline.
//!
//! Kodan reduces per-frame time by selecting fewer, larger tiles, eliding
//! processing of extreme-value contexts, and running smaller specialized
//! models.

use kodan::mission::SpaceEnvironment;
use kodan::selection::SelectionLogic;
use kodan_bench::{banner, bench_artifacts, f, n, row, s};
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Figure 9: time per frame (s)",
        "Direct deploy vs. Kodan (selection-logic estimates); log-scale in the paper",
    );
    let env = SpaceEnvironment::landsat(1);
    println!(
        "frame deadline: {:.1} s",
        env.frame_deadline.as_seconds()
    );

    let all_artifacts: Vec<_> = ModelArch::ALL
        .iter()
        .map(|&arch| bench_artifacts(arch))
        .collect();

    for target in HwTarget::ALL {
        println!();
        println!("--- deployment to {target} ---");
        row(&[
            s("app"),
            s("direct s"),
            s("kodan s"),
            s("kodan tiles"),
            s("meets dl"),
        ]);
        for (arch, artifacts) in ModelArch::ALL.iter().zip(&all_artifacts) {
            let direct = SelectionLogic::direct_deploy(
                artifacts,
                target,
                env.frame_deadline,
                env.capacity_fraction,
            );
            let kodan = artifacts.select_with_capacity(
                target,
                env.frame_deadline,
                env.capacity_fraction,
            );
            row(&[
                s(&format!("App {}", arch.app_number())),
                f(direct.estimate().frame_time.as_seconds()),
                f(kodan.estimate().frame_time.as_seconds()),
                n(kodan.tiles_per_frame() as u64),
                s(if kodan.estimate().frame_time <= env.frame_deadline {
                    "yes"
                } else {
                    "no"
                }),
            ]);
        }
    }
    println!();
    println!("Expected shape: direct deploy exceeds the deadline by up to an");
    println!("order of magnitude on constrained platforms; Kodan pulls every");
    println!("application at or near the deadline.");
}
