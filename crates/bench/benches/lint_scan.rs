//! Full-workspace lint analysis wall time.
//!
//! The lint gate runs the whole analyzer — line rules, item parsing,
//! call-graph construction and the interprocedural passes — on every
//! `cargo test`, so its cost is paid on each tier-1 run. This bench
//! measures one full-workspace analysis, checks it against the 2-second
//! budget that keeps the gate tolerable, and writes
//! `BENCH_lint_scan.json` at the repo root.

use kodan_lint::{analyze, default_rules};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Mean wall-clock seconds per call over `reps` runs (1 warmup call).
fn time_calls<F: FnMut() -> R, R>(reps: u32, mut body: F) -> f64 {
    black_box(body());
    let start = Instant::now();
    for _ in 0..reps {
        black_box(body());
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

fn main() {
    kodan_bench::banner(
        "Lint scan: full-workspace interprocedural analysis",
        "line rules + item parse + call graph + reachability passes over every workspace crate",
    );
    let root: PathBuf = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let rules = default_rules();

    let analysis = analyze(&root, &rules).expect("workspace scan succeeds");
    assert!(
        analysis.report.is_clean(),
        "bench expects a lint-clean workspace; run `kodan-lint check` first"
    );

    const REPS: u32 = 5;
    const BUDGET_S: f64 = 2.0;
    let scan_s = time_calls(REPS, || analyze(&root, &rules).expect("scan succeeds"));

    let files = analysis.report.files_scanned;
    let nodes = analysis.graph.nodes.len();
    let edges: usize = analysis.graph.edges.iter().map(Vec::len).sum();
    let entries = analysis.graph.nodes.iter().filter(|n| n.entry).count();

    let json = format!(
        "{{\n  \"bench\": \"lint_scan\",\n  \"unit\": \"seconds_per_scan\",\n  \"reps\": {REPS},\n  \"scan_s\": {scan_s:.6},\n  \"budget_s\": {BUDGET_S:.1},\n  \"files_scanned\": {files},\n  \"graph_nodes\": {nodes},\n  \"graph_edges\": {edges},\n  \"entry_points\": {entries},\n  \"diagnostics\": {diags},\n  \"note\": \"one full-workspace kodan-lint analysis (line rules, item parse, call graph, reachability passes); the lint gate pays this on every tier-1 test run, so it must stay within budget\"\n}}\n",
        diags = analysis.report.diagnostics.len(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lint_scan.json");
    std::fs::write(out, &json).expect("write BENCH_lint_scan.json");

    println!();
    println!(
        "full-workspace scan {scan_s:.3} s over {files} files ({nodes} graph nodes, {edges} edges, {entries} entry points)"
    );
    println!("baseline written to BENCH_lint_scan.json");
    assert!(
        scan_s < BUDGET_S,
        "workspace scan took {scan_s:.3} s, over the {BUDGET_S:.1} s gate budget"
    );
}
