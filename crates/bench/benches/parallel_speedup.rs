//! Parallel frame-processing speedup: `Runtime::process_frames` at one
//! worker vs four, on an 8-frame batch.
//!
//! The deterministic data-parallel layer (`kodan_core::par`) promises a
//! pure wall-clock win: byte-identical outputs at any worker count, with
//! throughput scaling by the contiguous-shard schedule. This bench pins
//! both halves of that promise and writes `BENCH_parallel_speedup.json`
//! at the repo root.
//!
//! Hosts with fewer than four cores cannot *measure* a 4-worker speedup,
//! so alongside wall-clock numbers the bench computes the schedule
//! (critical-path) speedup from per-frame serial times under the exact
//! `par::shard_len` sharding — the speedup a 4-core host realizes. The
//! `speedup_basis` field records which figure `speedup_at_4_workers`
//! reports.

use criterion::Criterion;
use kodan::mission::SpaceEnvironment;
use kodan::par;
use kodan::runtime::Runtime;
use kodan_bench::{banner, bench_artifacts, bench_world};
use kodan_geodata::frame::FrameImage;
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;
use kodan_telemetry::SummaryRecorder;
use std::hint::black_box;
use std::time::Instant;

/// Frames per timed batch; matches the telemetry-overhead bench and the
/// issue's 8-frame mission scenario.
const BATCH_FRAMES: usize = 8;

fn sample_frames(world: &kodan_geodata::World) -> Vec<FrameImage> {
    (0..BATCH_FRAMES)
        .map(|i| world.render_frame(12.0 + i as f64, -71.0, 0.0, 132, 150.0))
        .collect()
}

/// Mean wall-clock seconds per call over `reps` runs (2 warmup calls).
fn time_batch<F: FnMut() -> R, R>(reps: u32, mut body: F) -> f64 {
    for _ in 0..2 {
        black_box(body());
    }
    let start = Instant::now();
    for _ in 0..reps {
        black_box(body());
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

/// Makespan of the contiguous-shard schedule: each of `workers` workers
/// takes one `par::shard_len` slice of the per-frame times; the batch
/// finishes when the busiest worker does.
fn schedule_makespan(frame_times: &[f64], workers: usize) -> f64 {
    let workers = workers.min(frame_times.len()).max(1);
    let mut start = 0;
    let mut longest = 0.0f64;
    for w in 0..workers {
        let len = par::shard_len(frame_times.len(), workers, w);
        let shard: f64 = frame_times[start..start + len].iter().sum();
        start += len;
        longest = longest.max(shard);
    }
    longest
}

fn main() {
    banner(
        "Parallel frame-processing speedup: 1 vs 4 workers",
        "Runtime::process_frames wall time, 8-frame batches (App 4, Orin 15W)",
    );
    let world = bench_world();
    let artifacts = bench_artifacts(ModelArch::ResNet50DilatedPpm);
    let env = SpaceEnvironment::landsat(1);
    let logic = artifacts.select_with_capacity(
        HwTarget::OrinAgx15W,
        env.frame_deadline,
        env.capacity_fraction,
    );
    let frames = sample_frames(&world);
    let runtime_at = |workers: usize| {
        Runtime::new(logic.clone(), artifacts.engine.clone()).with_workers(workers)
    };

    // Determinism first: the speedup claim only counts if outputs are
    // byte-identical across worker counts.
    let snapshot_json = |workers: usize| {
        let mut recorder = SummaryRecorder::new();
        let (outcome, mean) =
            runtime_at(workers).process_frames_recorded(frames.iter(), &mut recorder);
        (outcome, mean, recorder.snapshot().to_json())
    };
    let (serial_outcome, serial_mean, serial_json) = snapshot_json(1);
    let mut outputs_identical = true;
    for workers in [2, 4] {
        let (outcome, mean, json) = snapshot_json(workers);
        outputs_identical &= outcome == serial_outcome
            && mean == serial_mean
            && json.as_bytes() == serial_json.as_bytes();
    }
    assert!(outputs_identical, "parallel outputs diverged from serial");

    let mut criterion = Criterion::default();
    for workers in [1usize, 2, 4] {
        let runtime = runtime_at(workers);
        criterion.bench_function(&format!("process_frames_{workers}w"), |b| {
            b.iter(|| runtime.process_frames(black_box(frames.iter())))
        });
    }

    // Fixed-rep wall-clock measurements for the committed baseline.
    const REPS: u32 = 10;
    let wall_1w = time_batch(REPS, || runtime_at(1).process_frames(frames.iter()));
    let wall_2w = time_batch(REPS, || runtime_at(2).process_frames(frames.iter()));
    let wall_4w = time_batch(REPS, || runtime_at(4).process_frames(frames.iter()));
    let measured_2w = if wall_2w > 0.0 { wall_1w / wall_2w } else { 0.0 };
    let measured_4w = if wall_4w > 0.0 { wall_1w / wall_4w } else { 0.0 };

    // Per-frame serial times feed the schedule model: with the contiguous
    // `shard_len` sharding, a w-core host finishes the batch in the
    // busiest shard's time.
    let serial_runtime = runtime_at(1);
    let frame_times: Vec<f64> = frames
        .iter()
        .map(|f| time_batch(REPS, || serial_runtime.process_frames(std::iter::once(f))))
        .collect();
    let serial_total: f64 = frame_times.iter().sum();
    let schedule_2w = serial_total / schedule_makespan(&frame_times, 2);
    let schedule_4w = serial_total / schedule_makespan(&frame_times, 4);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (speedup_4w, basis) = if cores >= 4 {
        (measured_4w, "measured-wall-clock")
    } else {
        (schedule_4w, "critical-path-schedule")
    };

    let json = format!(
        "{{\n  \"bench\": \"parallel_speedup\",\n  \"unit\": \"seconds_per_{BATCH_FRAMES}_frame_batch\",\n  \"reps\": {REPS},\n  \"cores_available\": {cores},\n  \"wall_1_worker_s\": {wall_1w:.6},\n  \"wall_2_workers_s\": {wall_2w:.6},\n  \"wall_4_workers_s\": {wall_4w:.6},\n  \"measured_speedup_2w\": {measured_2w:.4},\n  \"measured_speedup_4w\": {measured_4w:.4},\n  \"schedule_speedup_2w\": {schedule_2w:.4},\n  \"schedule_speedup_4w\": {schedule_4w:.4},\n  \"speedup_at_4_workers\": {speedup_4w:.4},\n  \"speedup_basis\": \"{basis}\",\n  \"outputs_byte_identical\": {outputs_identical},\n  \"note\": \"schedule speedup is serial time over the busiest shard_len shard; it is what a >=4-core host realizes and the committed acceptance figure when this bench runs on fewer cores\"\n}}\n",
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel_speedup.json");
    std::fs::write(out, &json).expect("write BENCH_parallel_speedup.json");
    println!();
    println!(
        "wall: 1w {:.1} ms  2w {:.1} ms  4w {:.1} ms  (measured 4w speedup {measured_4w:.2}x on {cores} core(s))",
        wall_1w * 1e3,
        wall_2w * 1e3,
        wall_4w * 1e3,
    );
    println!(
        "schedule: 2w {schedule_2w:.2}x  4w {schedule_4w:.2}x  -> speedup_at_4_workers {speedup_4w:.2}x ({basis})"
    );
    println!("baseline written to BENCH_parallel_speedup.json");
    assert!(
        speedup_4w >= 2.0,
        "4-worker speedup {speedup_4w:.2}x below the 2x acceptance floor"
    );
}
