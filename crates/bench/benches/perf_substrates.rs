//! Criterion micro-benchmarks of the hot substrate paths: frame
//! rendering, tiling + resize, feature extraction, model inference,
//! k-means, and orbit propagation. These quantify the simulator's own
//! cost (not the paper's results) and guard against performance
//! regressions in the inner loops.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use kodan::specialize::{tile_features, SpecializedModel};
use kodan_cote::orbit::Orbit;
use kodan_cote::propagate::propagate;
use kodan_cote::time::Duration;
use kodan_geodata::frame::World;
use kodan_geodata::pixel::CHANNELS;
use kodan_geodata::resize::resize_channels;
use kodan_geodata::tile::tile_frame;
use kodan_ml::kmeans::KMeans;
use kodan_ml::metrics::DistanceMetric;
use kodan_ml::train::TrainConfig;
use kodan_ml::zoo::ModelArch;

fn bench_frame_render(c: &mut Criterion) {
    let world = World::new(42);
    c.bench_function("render_frame_66px", |b| {
        b.iter(|| world.render_frame(black_box(12.0), black_box(-71.0), 0.0, 66, 150.0))
    });
}

fn bench_tiling_and_resize(c: &mut Criterion) {
    let world = World::new(42);
    let frame = world.render_frame(12.0, -71.0, 0.0, 132, 150.0);
    c.bench_function("tile_frame_grid6", |b| {
        b.iter(|| tile_frame(black_box(&frame), 6))
    });
    let tiles = tile_frame(&frame, 6);
    c.bench_function("resize_tile_22_to_28", |b| {
        b.iter(|| resize_channels(black_box(tiles[0].channels()), 22, CHANNELS, 28))
    });
}

fn bench_features_and_inference(c: &mut Criterion) {
    let world = World::new(42);
    let frame = world.render_frame(12.0, -71.0, 0.0, 132, 150.0);
    let tiles = tile_frame(&frame, 6);
    c.bench_function("tile_features_r22", |b| {
        b.iter(|| tile_features(black_box(&tiles[0]), 22))
    });

    let model = SpecializedModel::train_global(
        &tiles,
        ModelArch::ResNet50DilatedPpm,
        2_000,
        &TrainConfig::fast(1),
    );
    c.bench_function("model_predict_tile", |b| {
        b.iter(|| model.predict_tile(black_box(&tiles[0])))
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let world = World::new(42);
    let frame = world.render_frame(12.0, -71.0, 0.0, 132, 150.0);
    let tiles = tile_frame(&frame, 11);
    let labels: Vec<Vec<f64>> = tiles.iter().map(|t| t.label_vector().to_vec()).collect();
    c.bench_function("kmeans_k6_121tiles", |b| {
        b.iter(|| KMeans::fit(black_box(&labels), 6, DistanceMetric::Euclidean, 42))
    });
}

fn bench_propagation(c: &mut Criterion) {
    let orbit = Orbit::sun_synchronous(705_000.0);
    c.bench_function("propagate_orbit", |b| {
        let mut t = 0.0f64;
        b.iter(|| {
            t += 1.0;
            propagate(
                black_box(&orbit),
                orbit.epoch() + Duration::from_seconds(t),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_frame_render,
    bench_tiling_and_resize,
    bench_features_and_inference,
    bench_kmeans,
    bench_propagation
);
criterion_main!(benches);
