//! Table 1: per-application neural network architecture and execution
//! times on each hardware deployment target.
//!
//! The full-model per-tile times are the paper's measured values (the
//! calibration anchor of the `kodan-hw` latency model); the harness also
//! prints the derived per-tile costs of Kodan's smaller specialized
//! models on each platform.

use kodan_bench::{banner, f, row, s};
use kodan_hw::latency::LatencyModel;
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;

fn main() {
    banner(
        "Table 1: per-tile processing time (ms)",
        "Full reference models (paper-measured) per hardware target",
    );
    row(&[
        s("app"),
        s("architecture"),
        s("1070 Ti"),
        s("i7-7800"),
        s("Orin 15W"),
    ]);
    for arch in ModelArch::ALL {
        let cells: Vec<String> = HwTarget::ALL
            .iter()
            .map(|&t| {
                let ms = LatencyModel::new(t).full_model_tile_time(arch).as_seconds() * 1000.0;
                f(ms)
            })
            .collect();
        row(&[
            s(&format!("App {}", arch.app_number())),
            s(arch.paper_name()),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }

    banner(
        "Table 1 (derived): specialized-model per-tile time (ms)",
        "Kodan's context-specialized variants at their ops ratio (1/3 width)",
    );
    row(&[s("app"), s("1070 Ti"), s("i7-7800"), s("Orin 15W")]);
    for arch in ModelArch::ALL {
        let ratio = ((arch.hidden_units() / 3).max(3)) as f64 / arch.hidden_units() as f64;
        let cells: Vec<String> = HwTarget::ALL
            .iter()
            .map(|&t| {
                let ms = LatencyModel::new(t)
                    .specialized_tile_time(arch, ratio)
                    .as_seconds()
                    * 1000.0;
                f(ms)
            })
            .collect();
        row(&[
            s(&format!("App {}", arch.app_number())),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
}
