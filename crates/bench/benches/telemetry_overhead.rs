//! Telemetry overhead baseline: `Runtime::process_frames` with the
//! no-op `NullRecorder` vs the accumulating `SummaryRecorder` vs the
//! black-box `FlightRecorder` armed on top of it.
//!
//! The recorder contract promises that instrumentation is effectively
//! free when disabled and cheap when enabled (the runtime's cost is
//! dominated by tile featurization and model inference, not counter
//! bumps). This bench pins that promise to numbers and writes
//! `BENCH_telemetry_overhead.json` at the repo root so future PRs have an
//! overhead budget to compare against.

use criterion::Criterion;
use kodan::mission::SpaceEnvironment;
use kodan::runtime::Runtime;
use kodan_bench::{banner, bench_artifacts, bench_world};
use kodan_geodata::frame::FrameImage;
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;
use kodan_telemetry::{FlightRecorder, NullRecorder, SummaryRecorder};
use std::hint::black_box;
use std::time::Instant;

/// Frames timed per batch; small enough to keep the bench fast, large
/// enough that per-call dispatch noise averages out.
const BATCH_FRAMES: usize = 8;

fn sample_frames(world: &kodan_geodata::World) -> Vec<FrameImage> {
    (0..BATCH_FRAMES)
        .map(|i| world.render_frame(12.0 + i as f64, -71.0, 0.0, 132, 150.0))
        .collect()
}

/// Mean wall-clock seconds per `process_frames` batch over `reps` runs.
fn time_batch<F: FnMut() -> R, R>(reps: u32, mut body: F) -> f64 {
    for _ in 0..2 {
        black_box(body());
    }
    let start = Instant::now();
    for _ in 0..reps {
        black_box(body());
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

fn main() {
    banner(
        "Telemetry overhead: NullRecorder vs SummaryRecorder",
        "Runtime::process_frames wall time, 8-frame batches (App 4, Orin 15W)",
    );
    let world = bench_world();
    let artifacts = bench_artifacts(ModelArch::ResNet50DilatedPpm);
    let env = SpaceEnvironment::landsat(1);
    let logic = artifacts.select_with_capacity(
        HwTarget::OrinAgx15W,
        env.frame_deadline,
        env.capacity_fraction,
    );
    let runtime = Runtime::new(logic, artifacts.engine.clone());
    let frames = sample_frames(&world);

    let mut criterion = Criterion::default();
    criterion.bench_function("process_frames_null_recorder", |b| {
        b.iter(|| runtime.process_frames(black_box(frames.iter())))
    });
    criterion.bench_function("process_frames_summary_recorder", |b| {
        b.iter(|| {
            let mut recorder = SummaryRecorder::new();
            runtime.process_frames_recorded(black_box(frames.iter()), &mut recorder)
        })
    });
    criterion.bench_function("process_frames_flight_recorder", |b| {
        b.iter(|| {
            let mut recorder = FlightRecorder::new(SummaryRecorder::new());
            runtime.process_frames_recorded(black_box(frames.iter()), &mut recorder)
        })
    });

    // An independent fixed-rep measurement for the committed baseline
    // (the criterion shim prints but does not expose its timings).
    const REPS: u32 = 20;
    let null_s =
        time_batch(REPS, || runtime.process_frames_recorded(frames.iter(), &mut NullRecorder));
    let summary_s = time_batch(REPS, || {
        let mut recorder = SummaryRecorder::new();
        runtime.process_frames_recorded(frames.iter(), &mut recorder)
    });
    // The flight recorder keeps the summary underneath and adds the
    // per-frame ring-buffer maintenance on top — the worst-case armed
    // configuration (`kodan mission` flies with exactly this stack).
    let flight_s = time_batch(REPS, || {
        let mut recorder = FlightRecorder::new(SummaryRecorder::new());
        runtime.process_frames_recorded(frames.iter(), &mut recorder)
    });
    let ratio = if null_s > 0.0 { summary_s / null_s } else { 0.0 };
    let flight_ratio = if null_s > 0.0 { flight_s / null_s } else { 0.0 };

    // One recorded batch, so the baseline pins the event volume the
    // overhead pays for.
    let mut recorder = SummaryRecorder::new();
    runtime.process_frames_recorded(frames.iter(), &mut recorder);
    let snapshot = recorder.snapshot();

    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \"unit\": \"seconds_per_{BATCH_FRAMES}_frame_batch\",\n  \"reps\": {REPS},\n  \"null_recorder_s\": {null_s:.6},\n  \"summary_recorder_s\": {summary_s:.6},\n  \"flight_recorder_s\": {flight_s:.6},\n  \"overhead_ratio\": {ratio:.4},\n  \"flight_overhead_ratio\": {flight_ratio:.4},\n  \"events_per_batch\": {},\n  \"frames_per_batch\": {},\n  \"budget_note\": \"future PRs should keep overhead_ratio and flight_overhead_ratio under 1.10\"\n}}\n",
        snapshot.events, snapshot.frames
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry_overhead.json");
    std::fs::write(out, &json).expect("write BENCH_telemetry_overhead.json");
    println!();
    println!(
        "null {:.3} ms  summary {:.3} ms  flight {:.3} ms  ratios {:.3}/{:.3}  ({} events/batch)",
        null_s * 1e3,
        summary_s * 1e3,
        flight_s * 1e3,
        ratio,
        flight_ratio,
        snapshot.events
    );
    println!("baseline written to BENCH_telemetry_overhead.json");
}
