//! Shared scaffolding for the figure/table benchmark harness.
//!
//! Every bench target under `benches/` regenerates one table or figure of
//! the Kodan paper (run them with `cargo bench -p kodan-bench --bench
//! figN`). This library holds the pieces they share: the bench-scale
//! dataset and pipeline configuration, artifact construction, and plain
//! fixed-width table printing.
//!
//! Bench scale is chosen so the full suite finishes in minutes while
//! keeping the statistics stable: a 40-frame representative dataset,
//! ~8k-pixel training budgets, and 48 sampled frames per simulated
//! mission day. Paper-scale runs just swap in
//! [`kodan::config::KodanConfig::evaluation`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use kodan::config::KodanConfig;
use kodan::mission::{Mission, MissionParams, MissionReport, SpaceEnvironment, SystemKind};
use kodan::pipeline::{Transformation, TransformationArtifacts};
use kodan::runtime::Runtime;
use kodan::selection::SelectionLogic;
use kodan_geodata::{Dataset, DatasetConfig, World};
use kodan_ml::zoo::ModelArch;
use kodan_telemetry::{SummaryRecorder, TelemetrySnapshot};

/// The world seed shared by every bench, for cross-figure consistency.
pub const BENCH_SEED: u64 = 42;

/// The representative-dataset world (52 % cloud cover, as in the paper's
/// Sentinel-2 dataset).
pub fn bench_world() -> World {
    World::new(BENCH_SEED)
}

/// The on-orbit climatology world (67 % cloud cover [23]), used by the
/// motivation figures.
pub fn climatology_world() -> World {
    World::with_cloud_coverage(BENCH_SEED, 0.67)
}

/// The bench-scale dataset configuration.
pub fn bench_dataset_config() -> DatasetConfig {
    DatasetConfig {
        seed: BENCH_SEED,
        frame_count: 40,
        frame_px: 132,
        frame_km: 150.0,
        max_latitude_deg: 82.6,
        time_span_days: 8.0,
    }
}

/// The bench-scale Kodan pipeline configuration.
pub fn bench_kodan_config() -> KodanConfig {
    let mut config = KodanConfig::evaluation(BENCH_SEED);
    config.max_train_pixels = 8_000;
    config.max_eval_tiles = 240;
    config.train.epochs = 40;
    config
}

/// Runs the one-time transformation for an application at bench scale.
pub fn bench_artifacts(arch: ModelArch) -> TransformationArtifacts {
    let world = bench_world();
    let dataset = Dataset::sample(&world, &bench_dataset_config());
    Transformation::new(bench_kodan_config())
        .run(&dataset, arch)
        .expect("bench transformation succeeds")
}

/// Mission sampling parameters used by every figure.
pub fn bench_mission_params() -> MissionParams {
    MissionParams {
        sample_frames: 48,
        frame_px: 132,
        frame_km: 150.0,
        sample_window_days: 4.0,
    }
}

/// Runs the three systems (bent pipe / direct deploy / Kodan) for one
/// application on one target, returning their mission reports.
pub fn run_three_systems(
    artifacts: &TransformationArtifacts,
    env: &SpaceEnvironment,
    world: &World,
    target: kodan_hw::HwTarget,
) -> [MissionReport; 3] {
    let mission = Mission::new(env, world, bench_mission_params());
    let bent = mission.run_bent_pipe();

    let direct_logic = SelectionLogic::direct_deploy(
        artifacts,
        target,
        env.frame_deadline,
        env.capacity_fraction,
    );
    let direct_rt = Runtime::new(direct_logic, artifacts.engine.clone());
    let direct = mission.run_with_runtime(&direct_rt, SystemKind::DirectDeploy);

    let kodan_logic =
        artifacts.select_with_capacity(target, env.frame_deadline, env.capacity_fraction);
    let kodan_rt = Runtime::new(kodan_logic, artifacts.engine.clone());
    let kodan = mission.run_with_runtime(&kodan_rt, SystemKind::Kodan);

    [bent, direct, kodan]
}

/// Runs the Kodan system for one mission day with a [`SummaryRecorder`]
/// attached, returning the report plus the rolled-up telemetry snapshot.
/// Ablation benches use this to record a per-arm snapshot, so a shift in
/// any sweep can be attributed to a pipeline stage rather than re-derived
/// from final aggregates.
pub fn run_kodan_recorded(
    artifacts: &TransformationArtifacts,
    env: &SpaceEnvironment,
    world: &World,
    target: kodan_hw::HwTarget,
) -> (MissionReport, TelemetrySnapshot) {
    let logic =
        artifacts.select_with_capacity(target, env.frame_deadline, env.capacity_fraction);
    let runtime = Runtime::new(logic, artifacts.engine.clone());
    let mission = Mission::new(env, world, bench_mission_params());
    let mut recorder = SummaryRecorder::new();
    let report = mission.run_with_runtime_recorded(&runtime, SystemKind::Kodan, &mut recorder);
    (report, recorder.snapshot())
}

/// Prints a figure/table banner.
pub fn banner(title: &str, caption: &str) {
    println!();
    println!("==============================================================");
    println!("{title}");
    println!("{caption}");
    println!("==============================================================");
}

/// Prints a row of fixed-width cells.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float cell.
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats an integer cell.
pub fn n(v: u64) -> String {
    format!("{v}")
}

/// Formats a label cell.
pub fn s(v: &str) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_valid() {
        bench_kodan_config().validate();
        assert_eq!(bench_dataset_config().frame_px % 11, 0);
        assert_eq!(bench_dataset_config().frame_px % 12, 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(0.5), "0.500");
        assert_eq!(n(7), "7");
        assert_eq!(s("x"), "x");
    }
}
