//! Flag parsing for the `kodan` CLI. Hand-rolled on purpose: the
//! sanctioned dependency set has no argument parser, and the surface is
//! a handful of flags.

use kodan_hw::HwTarget;
use kodan_ml::ModelArch;

/// Parsed command-line options with defaults applied.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Application number 1-7 (Table 1).
    pub app: ModelArch,
    /// Deployment target.
    pub target: HwTarget,
    /// Master seed.
    pub seed: u64,
    /// Representative-dataset frame count.
    pub frames: usize,
    /// Context count for automatic generation.
    pub contexts: usize,
    /// Use expert (surface-type) contexts instead of k-means.
    pub expert: bool,
    /// Constellation size for environment derivation.
    pub sats: usize,
    /// Write a telemetry snapshot (byte-deterministic JSON) to this path.
    pub telemetry: Option<String>,
    /// Worker threads for frame processing and training (0 = auto).
    pub workers: usize,
    /// Path to a `key = value` fault-plan file (see `kodan-faults`).
    pub faults: Option<String>,
    /// Seed for the built-in nominal fault plan (ignored when `--faults`
    /// supplies a file).
    pub fault_seed: Option<u64>,
    /// Save the deployable artifact set (config, contexts, engine,
    /// models, selection logic) into this directory after `transform`.
    pub save_artifacts: Option<String>,
    /// Load the deployable artifact set from this directory for
    /// `mission`, skipping the ground-side transformation entirely.
    pub load_artifacts: Option<String>,
    /// Output path for `trace` (Chrome trace-event JSON) and for the
    /// `health` JSON report. Defaults to stdout / text-only.
    pub out: Option<String>,
    /// Path to a health-rule file for `health` (one
    /// `metric <= threshold` / `metric >= threshold` rule per line);
    /// defaults to the built-in rule set.
    pub rules: Option<String>,
    /// Evaluate `health` against a previously written telemetry
    /// snapshot instead of flying a mission.
    pub snapshot: Option<String>,
    /// Write the flight recorder's black-box log (JSON) to this path
    /// after `mission` or `health`.
    pub blackbox: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            app: ModelArch::ResNet50DilatedPpm,
            target: HwTarget::OrinAgx15W,
            seed: 42,
            frames: 32,
            contexts: 6,
            expert: false,
            sats: 1,
            telemetry: None,
            workers: 0,
            faults: None,
            fault_seed: None,
            save_artifacts: None,
            load_artifacts: None,
            out: None,
            rules: None,
            snapshot: None,
            blackbox: None,
        }
    }
}

impl Options {
    /// Parses `--flag value` pairs (and the bare `--expert` switch).
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut options = Options::default();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--expert" => options.expert = true,
                "--app" => {
                    let v: usize = next_value(&mut iter, flag)?;
                    options.app = *ModelArch::ALL
                        .get(v.wrapping_sub(1))
                        .ok_or_else(|| format!("--app must be 1..=7, got {v}"))?;
                }
                "--target" => {
                    let v: String = next_value(&mut iter, flag)?;
                    options.target = match v.to_lowercase().as_str() {
                        "orin" | "orin15w" => HwTarget::OrinAgx15W,
                        "i7" | "i7-7800" | "cpu" => HwTarget::CoreI7_7800X,
                        "1070ti" | "gtx1070ti" | "gpu" => HwTarget::Gtx1070Ti,
                        other => return Err(format!("unknown target `{other}`")),
                    };
                }
                "--seed" => options.seed = next_value(&mut iter, flag)?,
                "--frames" => options.frames = next_value(&mut iter, flag)?,
                "--contexts" => options.contexts = next_value(&mut iter, flag)?,
                "--sats" => options.sats = next_value(&mut iter, flag)?,
                "--telemetry" => options.telemetry = Some(next_value(&mut iter, flag)?),
                "--workers" => options.workers = next_value(&mut iter, flag)?,
                "--faults" => options.faults = Some(next_value(&mut iter, flag)?),
                "--fault-seed" => options.fault_seed = Some(next_value(&mut iter, flag)?),
                "--save-artifacts" => {
                    options.save_artifacts = Some(next_value(&mut iter, flag)?);
                }
                "--load-artifacts" => {
                    options.load_artifacts = Some(next_value(&mut iter, flag)?);
                }
                "--out" => options.out = Some(next_value(&mut iter, flag)?),
                "--rules" => options.rules = Some(next_value(&mut iter, flag)?),
                "--snapshot" => options.snapshot = Some(next_value(&mut iter, flag)?),
                "--blackbox" => options.blackbox = Some(next_value(&mut iter, flag)?),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if options.frames == 0 {
            return Err("--frames must be positive".to_string());
        }
        if options.contexts == 0 {
            return Err("--contexts must be positive".to_string());
        }
        if options.sats == 0 {
            return Err("--sats must be positive".to_string());
        }
        Ok(options)
    }
}

fn next_value<T: std::str::FromStr>(
    iter: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    let raw = iter
        .next()
        .ok_or_else(|| format!("{flag} requires a value"))?;
    raw.parse()
        .map_err(|_| format!("invalid value `{raw}` for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Options::parse(&owned)
    }

    #[test]
    fn defaults_apply() {
        let o = parse(&[]).unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn parses_every_flag() {
        let o = parse(&[
            "--app", "7", "--target", "gpu", "--seed", "9", "--frames", "16",
            "--contexts", "4", "--expert", "--sats", "8", "--telemetry", "out.json",
            "--workers", "4", "--faults", "plan.txt", "--fault-seed", "13",
            "--save-artifacts", "art/", "--load-artifacts", "art2/",
            "--out", "trace.json", "--rules", "rules.txt",
            "--snapshot", "snap.json", "--blackbox", "bb.json",
        ])
        .unwrap();
        assert_eq!(o.app, ModelArch::ResNet101DilatedPpm);
        assert_eq!(o.target, HwTarget::Gtx1070Ti);
        assert_eq!(o.seed, 9);
        assert_eq!(o.frames, 16);
        assert_eq!(o.contexts, 4);
        assert!(o.expert);
        assert_eq!(o.sats, 8);
        assert_eq!(o.telemetry.as_deref(), Some("out.json"));
        assert_eq!(o.workers, 4);
        assert_eq!(o.faults.as_deref(), Some("plan.txt"));
        assert_eq!(o.fault_seed, Some(13));
        assert_eq!(o.save_artifacts.as_deref(), Some("art/"));
        assert_eq!(o.load_artifacts.as_deref(), Some("art2/"));
        assert_eq!(o.out.as_deref(), Some("trace.json"));
        assert_eq!(o.rules.as_deref(), Some("rules.txt"));
        assert_eq!(o.snapshot.as_deref(), Some("snap.json"));
        assert_eq!(o.blackbox.as_deref(), Some("bb.json"));
    }

    #[test]
    fn observability_flags_default_off_and_require_paths() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.out, None);
        assert_eq!(o.rules, None);
        assert_eq!(o.snapshot, None);
        assert_eq!(o.blackbox, None);
        assert!(parse(&["--out"]).is_err());
        assert!(parse(&["--rules"]).is_err());
        assert!(parse(&["--snapshot"]).is_err());
        assert!(parse(&["--blackbox"]).is_err());
    }

    #[test]
    fn artifact_flags_default_off_and_require_paths() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.save_artifacts, None);
        assert_eq!(o.load_artifacts, None);
        assert!(parse(&["--save-artifacts"]).is_err());
        assert!(parse(&["--load-artifacts"]).is_err());
    }

    #[test]
    fn fault_flags_default_off_and_validate() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.faults, None);
        assert_eq!(o.fault_seed, None);
        assert!(parse(&["--faults"]).is_err());
        assert!(parse(&["--fault-seed", "banana"]).is_err());
        assert_eq!(parse(&["--fault-seed", "7"]).unwrap().fault_seed, Some(7));
    }

    #[test]
    fn workers_defaults_to_auto() {
        assert_eq!(parse(&[]).unwrap().workers, 0);
        assert_eq!(parse(&["--workers", "2"]).unwrap().workers, 2);
    }

    #[test]
    fn telemetry_flag_requires_a_path() {
        assert!(parse(&["--telemetry"]).is_err());
        assert_eq!(parse(&[]).unwrap().telemetry, None);
    }

    #[test]
    fn target_aliases() {
        assert_eq!(parse(&["--target", "orin"]).unwrap().target, HwTarget::OrinAgx15W);
        assert_eq!(parse(&["--target", "i7"]).unwrap().target, HwTarget::CoreI7_7800X);
        assert_eq!(parse(&["--target", "1070ti"]).unwrap().target, HwTarget::Gtx1070Ti);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--app", "0"]).is_err());
        assert!(parse(&["--app", "8"]).is_err());
        assert!(parse(&["--target", "tpu"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--frames", "0"]).is_err());
        assert!(parse(&["--workers", "many"]).is_err());
        assert!(parse(&["--bogus", "1"]).is_err());
    }
}
