//! The `kodan` CLI subcommands.

use crate::args::Options;
use kodan::config::ContextGenerationKind;
use kodan::coverage::coverage_comparison;
use kodan::mission::{Mission, MissionParams, SpaceEnvironment, SystemKind};
use kodan::pipeline::{Transformation, TransformationArtifacts};
use kodan::runtime::Runtime;
use kodan::selection::SelectionLogic;
use kodan::KodanConfig;
use kodan_faults::{FaultConfig, FaultPlan};
use kodan_geodata::{Dataset, DatasetConfig, World};
use kodan_telemetry::{
    default_health_rules, diff_snapshots, evaluate_health, parse_health_rules, CounterId,
    FlightRecorder, NullRecorder, Recorder, StageId, SummaryRecorder, TelemetrySnapshot,
    TraceBuilder,
};
use std::process::ExitCode;

/// Usage text shown by `kodan help` and on argument errors.
pub const USAGE: &str = "\
kodan — orbital edge computing under the computational bottleneck

USAGE:
  kodan <command> [flags]

COMMANDS:
  dataset     summarize the procedural representative dataset
  contexts    generate and describe geospatial contexts
  transform   run the one-time transformation for an application
  select      derive the selection logic for a hardware target
  mission     fly a simulated day: bent pipe vs direct deploy vs kodan
  coverage    constellation sizing for full ground-track coverage
  artifacts   inspect PATH [--telemetry OUT] — verify a saved
              artifact directory (optionally writing the inspection
              counters as a telemetry snapshot)
  trace       fly the kodan mission and export the modeled-time span
              forest as Chrome trace-event JSON (open in Perfetto)
  health      evaluate declarative threshold rules over the mission
              telemetry; exits 2 when any rule fails
  diff        BEFORE.json AFTER.json — compare two telemetry
              snapshots field by field; exits 3 when they differ
  help        show this text

FLAGS:
  --app N        application 1..7 (Table 1 architectures)   [4]
  --target T     orin | i7 | 1070ti                         [orin]
  --seed N       master seed                                [42]
  --frames N     representative-dataset frames              [32]
  --contexts K   automatic context count                    [6]
  --expert       expert (surface-type) contexts
  --sats N       constellation size for the environment     [1]
  --telemetry P  write a telemetry snapshot (JSON) to path P
  --workers N    worker threads (0 = auto; outputs are
                 identical for any worker count)          [0]
  --faults P     inject faults from `key = value` plan file P
                 (mission only; see kodan-faults)
  --fault-seed N inject the built-in nominal fault plan with
                 seed N (ignored when --faults is given)
  --save-artifacts D  after transform, seal the deployable set
                 (config, contexts, engine, models, selection)
                 into directory D for the modeled uplink
  --load-artifacts D  fly the mission from the artifact set in
                 directory D instead of retraining; corrupted
                 models degrade to the global-model fallback
  --out P        trace: write the Chrome trace JSON to P instead
                 of stdout; health: also write the JSON report to P
  --rules P      health: read threshold rules from P (one
                 `metric >= t` / `metric <= t` line each) instead
                 of the built-in rule set
  --snapshot P   health: evaluate the snapshot file P instead of
                 flying a mission
  --blackbox P   mission/health: write the flight recorder's
                 black-box log (JSON) to P";

fn build_dataset(options: &Options) -> (World, Dataset) {
    let world = World::new(options.seed);
    let mut cfg = DatasetConfig::evaluation(options.seed);
    cfg.frame_count = options.frames;
    let dataset = Dataset::sample(&world, &cfg);
    (world, dataset)
}

fn build_config(options: &Options) -> KodanConfig {
    let mut config = KodanConfig::evaluation(options.seed);
    config.context_count = options.contexts;
    config.max_train_pixels = 8_000;
    config.max_eval_tiles = 240;
    config.train.epochs = 40;
    if options.expert {
        config.generation = ContextGenerationKind::Expert;
    }
    config.workers = options.workers;
    config
}

fn build_artifacts(options: &Options) -> Result<(World, TransformationArtifacts), String> {
    build_artifacts_recorded(options, &mut NullRecorder)
}

fn build_artifacts_recorded(
    options: &Options,
    recorder: &mut dyn Recorder,
) -> Result<(World, TransformationArtifacts), String> {
    let (world, dataset) = build_dataset(options);
    let artifacts = Transformation::new(build_config(options))
        .run_recorded(&dataset, options.app, recorder)
        .map_err(|e| format!("transformation failed: {e}"))?;
    Ok((world, artifacts))
}

/// Prints the per-stage span breakdown from a telemetry snapshot as an
/// indented table. Stages with zero calls are omitted; child stages are
/// indented under their parents following [`StageId::parent`].
fn print_stage_table(snapshot: &TelemetrySnapshot) {
    println!("  stage                       modeled-s      items    calls");
    for stage in StageId::ALL {
        let Some(span) = snapshot.spans.get(stage.name()) else {
            continue;
        };
        if span.calls == 0 {
            continue;
        }
        let mut depth = 0;
        let mut cursor = stage;
        while let Some(parent) = cursor.parent() {
            depth += 1;
            cursor = parent;
        }
        let label = format!("{}{}", "  ".repeat(depth), stage.name());
        println!(
            "  {label:<25} {:>11.3} {:>10} {:>8}",
            span.modeled_seconds, span.items, span.calls
        );
    }
}

/// Builds the fault plan selected by `--faults` / `--fault-seed`, or
/// `None` when neither flag was given.
fn build_fault_plan(options: &Options) -> Result<Option<FaultPlan>, String> {
    let config = if let Some(path) = &options.faults {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("failed to read fault plan {path}: {e}"))?;
        Some(FaultConfig::parse(&text).map_err(|e| format!("bad fault plan {path}: {e}"))?)
    } else {
        options.fault_seed.map(FaultConfig::nominal)
    };
    config
        .map(FaultPlan::new)
        .transpose()
        .map_err(|e| format!("invalid fault config: {e}"))
}

/// Arms `runtime` with `plan`, using the selected grid's global model —
/// the one model guaranteed to cover every context — as the
/// degradation fallback.
fn arm_fault_plan(
    runtime: Runtime,
    artifacts: &TransformationArtifacts,
    plan: &FaultPlan,
) -> Result<Runtime, String> {
    let grid = runtime.logic().grid();
    let fallback = artifacts
        .grid_artifacts(grid)
        .map_err(|e| e.to_string())?
        .global_model
        .clone();
    Ok(runtime.with_fault_plan(plan.clone(), fallback))
}

/// Runs the full kodan path — ground transformation, selection, and the
/// on-orbit mission (with `--faults` / `--fault-seed` honored) — feeding
/// every stage through `recorder`. Shared by `trace` and `health`,
/// which differ only in the recorder they attach.
fn fly_kodan_recorded(options: &Options, recorder: &mut dyn Recorder) -> Result<(), String> {
    let (world, artifacts) = build_artifacts_recorded(options, recorder)?;
    let env = SpaceEnvironment::landsat(options.sats);
    let logic = artifacts.select_with_capacity(
        options.target,
        env.frame_deadline,
        env.capacity_fraction,
    );
    let mission = Mission::new(&env, &world, MissionParams::default());
    let mut runtime =
        Runtime::new(logic, artifacts.engine.clone()).with_workers(options.workers);
    if let Some(plan) = build_fault_plan(options)? {
        runtime = arm_fault_plan(runtime, &artifacts, &plan)?;
    }
    let _ = mission.run_with_runtime_recorded(&runtime, SystemKind::Kodan, recorder);
    Ok(())
}

/// Writes the flight recorder's black-box log to `--blackbox PATH` when
/// the flag was given.
fn write_blackbox(
    options: &Options,
    recorder: &FlightRecorder<SummaryRecorder>,
) -> Result<(), String> {
    if let Some(path) = &options.blackbox {
        std::fs::write(path, recorder.blackbox_json())
            .map_err(|e| format!("failed to write black-box log to {path}: {e}"))?;
        println!(
            "  black-box log written to {path} ({} report(s))",
            recorder.reports().len()
        );
    }
    Ok(())
}

/// Writes the snapshot to `--telemetry PATH` when the flag was given.
fn write_telemetry(options: &Options, snapshot: &TelemetrySnapshot) -> Result<(), String> {
    if let Some(path) = &options.telemetry {
        std::fs::write(path, snapshot.to_json())
            .map_err(|e| format!("failed to write telemetry to {path}: {e}"))?;
        println!("  telemetry snapshot written to {path}");
    }
    Ok(())
}

/// `kodan dataset`
pub fn dataset(options: &Options) -> Result<(), String> {
    let (_, dataset) = build_dataset(options);
    let stats = kodan_geodata::stats::DatasetStats::compute(&dataset, 6);
    print!("{stats}");
    Ok(())
}

/// `kodan contexts`
pub fn contexts(options: &Options) -> Result<(), String> {
    let (_, dataset) = build_dataset(options);
    let tiles = dataset.tiles(6);
    let set = if options.expert {
        kodan::ContextSet::generate_expert(&tiles)
    } else {
        kodan::ContextSet::generate_auto(
            &tiles,
            options.contexts.min(tiles.len()),
            kodan_ml::DistanceMetric::Euclidean,
            kodan_ml::transform::TransformKind::Standardize,
            options.seed,
        )
    };
    println!(
        "{} contexts over {} tiles ({} generation):",
        set.len(),
        tiles.len(),
        if options.expert { "expert" } else { "k-means" }
    );
    for ctx in set.contexts() {
        println!(
            "  {}  {:>5} tiles ({:>5.1}%)  {:>5.1}% high-value  dominant: {}",
            ctx.id,
            ctx.tile_count,
            ctx.weight * 100.0,
            ctx.high_value_fraction * 100.0,
            ctx.description
        );
    }
    Ok(())
}

/// `kodan transform`
pub fn transform(options: &Options) -> Result<(), String> {
    let (_, artifacts) = build_artifacts(options)?;
    println!(
        "transformed {} with {} contexts (engine agreement {:.2})",
        options.app,
        artifacts.contexts.len(),
        artifacts.engine_val_agreement
    );
    println!("per-grid validation statistics (global model):");
    println!("  tiles/frame   accuracy   precision");
    for ga in &artifacts.grids {
        println!(
            "  {:>11} {:>10.3} {:>11.3}",
            ga.grid * ga.grid,
            ga.global_eval_all.accuracy(),
            ga.global_eval_all.precision()
        );
    }
    println!("context-specialized composite at 36 tiles/frame:");
    let ga = artifacts.grid_artifacts(6).map_err(|e| e.to_string())?;
    println!(
        "  accuracy {:.3} -> {:.3}, precision {:.3} -> {:.3}",
        ga.global_eval_all.accuracy(),
        ga.composite_eval_all.accuracy(),
        ga.global_eval_all.precision(),
        ga.composite_eval_all.precision()
    );
    if let Some(dir) = &options.save_artifacts {
        save_artifact_set(options, &artifacts, dir)?;
    }
    Ok(())
}

/// Seals the deployable set into `dir` and prints the uplink-cost
/// accounting (`transform --save-artifacts`).
fn save_artifact_set(
    options: &Options,
    artifacts: &TransformationArtifacts,
    dir: &str,
) -> Result<(), String> {
    let env = SpaceEnvironment::landsat(options.sats);
    let logic = artifacts.select_with_capacity(
        options.target,
        env.frame_deadline,
        env.capacity_fraction,
    );
    let mut recorder = SummaryRecorder::new();
    let report = kodan::artifact::save_artifacts(
        artifacts,
        &logic,
        std::path::Path::new(dir),
        &mut recorder,
    )
    .map_err(|e| format!("failed to save artifacts to {dir}: {e}"))?;
    let snapshot = recorder.snapshot();
    println!(
        "artifact set sealed to {dir} ({} artifacts):",
        snapshot.counter(CounterId::ArtifactsSaved)
    );
    println!("  artifact                bytes");
    for entry in &report.manifest.entries {
        println!("  {:<22} {:>7}", entry.name, entry.bytes);
    }
    println!(
        "  uplink cost: {} bytes ({:.1}% of the {} MiB budget){}",
        report.total_bytes,
        report.total_bytes as f64 / kodan_wire::UPLINK_BUDGET_BYTES as f64 * 100.0,
        kodan_wire::UPLINK_BUDGET_BYTES / (1024 * 1024),
        if report.over_budget {
            " — OVER BUDGET"
        } else {
            ""
        }
    );
    Ok(())
}

/// `kodan select`
pub fn select(options: &Options) -> Result<(), String> {
    let mut recorder = SummaryRecorder::new();
    let (_, artifacts) = build_artifacts_recorded(options, &mut recorder)?;
    let env = SpaceEnvironment::landsat(options.sats);
    let logic = artifacts.select_with_capacity(
        options.target,
        env.frame_deadline,
        env.capacity_fraction,
    );
    println!(
        "selection logic for {} on {} ({} satellites):",
        options.app, options.target, options.sats
    );
    println!(
        "  tiles/frame: {} | deadline {:.1} s | capacity {:.1}% of observations",
        logic.tiles_per_frame(),
        env.frame_deadline.as_seconds(),
        env.capacity_fraction * 100.0
    );
    for (c, action) in logic.actions().iter().enumerate() {
        let ctx = artifacts.contexts.context(kodan::ContextId(c));
        println!(
            "  C{c} ({:>9}, {:>5.1}% hv): {action}",
            ctx.description,
            ctx.high_value_fraction * 100.0
        );
    }
    let e = logic.estimate();
    println!(
        "  estimate: frame {:.1} s, processed {:.0}%, dvd {:.3}",
        e.frame_time.as_seconds(),
        e.processed_fraction * 100.0,
        e.dvd
    );
    let snapshot = recorder.snapshot();
    println!("transformation stage breakdown:");
    print_stage_table(&snapshot);
    write_telemetry(options, &snapshot)?;
    Ok(())
}

/// `kodan mission`
pub fn mission(options: &Options) -> Result<(), String> {
    // One recorder spans the whole kodan path: ground-side transformation
    // (or the artifact load replacing it) plus the on-orbit mission run,
    // so the snapshot covers both halves. The flight recorder wraps it so
    // every degradation freezes a black-box window of the frames leading
    // up to it.
    let mut recorder = FlightRecorder::new(SummaryRecorder::new());
    let (world, artifacts, kodan_logic, quarantined) =
        if let Some(dir) = &options.load_artifacts {
            let loaded =
                kodan::artifact::load_artifacts(std::path::Path::new(dir), &mut recorder)
                    .map_err(|e| format!("failed to load artifacts from {dir}: {e}"))?;
            println!(
                "loaded artifact set from {dir} (target {}, seed {})",
                loaded.manifest.target, loaded.manifest.seed
            );
            for r in &loaded.recovered {
                println!(
                    "  recovered {}: corrupted on load, serving the grid {} global model",
                    r.name, r.grid
                );
            }
            let world = World::new(loaded.artifacts.config.seed);
            (
                world,
                loaded.artifacts,
                loaded.selection,
                loaded.quarantined_slots,
            )
        } else {
            let (world, artifacts) = build_artifacts_recorded(options, &mut recorder)?;
            let env = SpaceEnvironment::landsat(options.sats);
            let logic = artifacts.select_with_capacity(
                options.target,
                env.frame_deadline,
                env.capacity_fraction,
            );
            (world, artifacts, logic, Vec::new())
        };
    let env = SpaceEnvironment::landsat(options.sats);
    let mission = Mission::new(&env, &world, MissionParams::default());

    let bent = mission.run_bent_pipe();
    let direct_logic = SelectionLogic::direct_deploy(
        &artifacts,
        options.target,
        env.frame_deadline,
        env.capacity_fraction,
    );
    let direct = mission.run_with_runtime(
        &Runtime::new(direct_logic, artifacts.engine.clone()).with_workers(options.workers),
        SystemKind::DirectDeploy,
    );
    let fault_plan = build_fault_plan(options)?;
    let mut kodan_runtime = Runtime::new(kodan_logic, artifacts.engine.clone())
        .with_workers(options.workers)
        .with_quarantined_models(quarantined);
    if let Some(plan) = &fault_plan {
        kodan_runtime = arm_fault_plan(kodan_runtime, &artifacts, plan)?;
    }
    let kodan = mission.run_with_runtime_recorded(&kodan_runtime, SystemKind::Kodan, &mut recorder);

    println!(
        "day-scale mission: {} on {} ({} satellites)",
        options.app, options.target, options.sats
    );
    println!("  system          dvd   frame-s   processed   HV-yield");
    for r in [&bent, &direct, &kodan] {
        println!(
            "  {:<13} {:>5.3} {:>9.1} {:>10.0}% {:>9.1}%",
            r.system.to_string(),
            r.dvd,
            r.mean_frame_time.as_seconds(),
            r.processed_fraction * 100.0,
            r.observed_hv_downlinked * 100.0
        );
    }
    println!(
        "  kodan improves DVD {:+.0}% over the bent pipe",
        (kodan.dvd / bent.dvd - 1.0) * 100.0
    );
    let snapshot = recorder.inner().snapshot();
    println!(
        "kodan telemetry ({} frames, {} events):",
        snapshot.frames, snapshot.events
    );
    print_stage_table(&snapshot);
    if let Some(plan) = &fault_plan {
        println!("fault injection (seed {}):", plan.config().seed);
        for counter in [
            CounterId::FaultSeuInjected,
            CounterId::FaultSlowdownFrames,
            CounterId::FaultClassifyRetries,
            CounterId::FaultClassifyExhausted,
            CounterId::ModelFallbacks,
        ] {
            println!("  {:<26} {}", counter.name(), snapshot.counter(counter));
        }
    }
    if !recorder.reports().is_empty() || recorder.reports_truncated() > 0 {
        println!(
            "flight recorder: {} black-box report(s) captured ({} dropped past the cap)",
            recorder.reports().len(),
            recorder.reports_truncated()
        );
    }
    write_blackbox(options, &recorder)?;
    write_telemetry(options, &snapshot)?;
    Ok(())
}

/// `kodan trace` — flies the kodan mission with a [`TraceBuilder`]
/// attached and emits the modeled-time span forest as Chrome
/// trace-event JSON (load it at `ui.perfetto.dev` or
/// `chrome://tracing`). Byte-identical for any `--workers` value.
pub fn trace(options: &Options) -> Result<(), String> {
    let mut tracer = TraceBuilder::new();
    fly_kodan_recorded(options, &mut tracer)?;
    let json = tracer.to_chrome_json();
    match &options.out {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| format!("failed to write trace to {path}: {e}"))?;
            println!(
                "trace written to {path} ({} events over {} frames)",
                tracer.len(),
                tracer.frames()
            );
        }
        None => print!("{json}"),
    }
    Ok(())
}

/// `kodan health` — evaluates threshold rules (built-in or `--rules`)
/// against mission telemetry: either a `--snapshot` file from an
/// earlier run, or a fresh mission flown under the flight recorder.
/// Exits 0 when healthy, 2 when any rule fails.
pub fn health(options: &Options) -> Result<ExitCode, String> {
    let rules = match &options.rules {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("failed to read rules from {path}: {e}"))?;
            parse_health_rules(&text).map_err(|e| format!("bad rule file {path}: {e}"))?
        }
        None => default_health_rules(),
    };
    let snapshot = match &options.snapshot {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("failed to read snapshot from {path}: {e}"))?;
            TelemetrySnapshot::from_json(&text)
                .map_err(|e| format!("bad snapshot {path}: {e}"))?
        }
        None => {
            let mut recorder = FlightRecorder::new(SummaryRecorder::new());
            fly_kodan_recorded(options, &mut recorder)?;
            write_blackbox(options, &recorder)?;
            recorder.inner().snapshot()
        }
    };
    let report = evaluate_health(&snapshot, &rules);
    print!("{}", report.to_text());
    if let Some(path) = &options.out {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("failed to write health report to {path}: {e}"))?;
        println!("health report written to {path}");
    }
    write_telemetry(options, &snapshot)?;
    Ok(if report.healthy {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// `kodan diff BEFORE.json AFTER.json` — field-by-field comparison of
/// two telemetry snapshots for regression triage. Exits 0 when the
/// snapshots are identical, 3 when they differ.
pub fn diff(rest: &[String]) -> Result<ExitCode, String> {
    let [before_path, after_path] = rest else {
        return Err("usage: kodan diff BEFORE.json AFTER.json".to_string());
    };
    let mut snapshots = Vec::new();
    for path in [before_path, after_path] {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("failed to read snapshot from {path}: {e}"))?;
        snapshots.push(
            TelemetrySnapshot::from_json(&text)
                .map_err(|e| format!("bad snapshot {path}: {e}"))?,
        );
    }
    let d = diff_snapshots(&snapshots[0], &snapshots[1]);
    print!("{}", d.to_text());
    Ok(if d.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    })
}

/// `kodan artifacts inspect PATH [--telemetry OUT]` — positional
/// arguments, not flags, so this command is dispatched before
/// [`Options::parse`]. With `--telemetry OUT`, the inspection counters
/// (objects inspected / corrupt, total bytes) are written to `OUT` as a
/// snapshot, so a store check slots into the same `kodan diff` /
/// `kodan health --snapshot` triage loop as a mission run.
pub fn artifacts(rest: &[String]) -> Result<(), String> {
    let (path, telemetry_out) = match rest {
        [action, path] if action == "inspect" => (path, None),
        [action, path, flag, out] if action == "inspect" && flag == "--telemetry" => {
            (path, Some(out))
        }
        _ => return Err("usage: kodan artifacts inspect PATH [--telemetry OUT]".to_string()),
    };
    let root = std::path::Path::new(path);
    let health = kodan_wire::store::verify(root)
        .map_err(|e| format!("failed to inspect {path}: {e}"))?;
    print!("{}", health.render(root));
    if let Some(out) = telemetry_out {
        let mut recorder = SummaryRecorder::new();
        recorder.count(
            CounterId::ArtifactsInspected,
            health.objects.len() as u64,
        );
        recorder.count(CounterId::ArtifactsCorrupt, health.corrupt_count());
        recorder.count(CounterId::ArtifactBytes, health.total_bytes);
        std::fs::write(out, recorder.snapshot().to_json())
            .map_err(|e| format!("failed to write telemetry to {out}: {e}"))?;
        println!("  inspection telemetry written to {out}");
    }
    Ok(())
}

/// `kodan coverage`
pub fn coverage(options: &Options) -> Result<(), String> {
    let (_, artifacts) = build_artifacts(options)?;
    let env = SpaceEnvironment::landsat(1);
    let cmp = coverage_comparison(
        &artifacts,
        options.target,
        env.frame_deadline,
        env.capacity_fraction,
    );
    println!(
        "satellites for full ground-track coverage ({} on {}):",
        options.app, options.target
    );
    println!("  direct deploy:        {}", cmp.direct_deploy);
    println!("  max-precision tiling: {}", cmp.max_precision_tiling);
    println!("  kodan:                {}", cmp.kodan);
    println!(
        "  reduction vs direct:  {:.1}x",
        cmp.reduction_vs_direct()
    );
    Ok(())
}
