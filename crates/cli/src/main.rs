//! `kodan` — command-line driver for the Kodan reproduction.
//!
//! ```text
//! kodan dataset   [--seed N] [--frames N]
//! kodan contexts  [--seed N] [--frames N] [--contexts K] [--expert]
//! kodan transform [--app 1..7] [--seed N] [--frames N]
//! kodan select    [--app 1..7] [--target orin|i7|1070ti] [--sats N]
//! kodan mission   [--app 1..7] [--target orin|i7|1070ti] [--sats N]
//!                 [--load-artifacts DIR]
//! kodan coverage  [--app 1..7] [--target orin|i7|1070ti]
//! kodan artifacts inspect PATH [--telemetry OUT]
//! kodan trace     [mission flags] [--out PATH]
//! kodan health    [mission flags] [--rules PATH] [--snapshot PATH]
//!                 [--out PATH] [--blackbox PATH]
//! kodan diff      BEFORE.json AFTER.json
//! ```
//!
//! Every subcommand is deterministic for a given `--seed`. Exit codes:
//! 0 success, 1 error, 2 `health` found a failing rule, 3 `diff` found
//! differing snapshots.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    // `artifacts` and `diff` take positional arguments, not the shared
    // flag set, so they are dispatched before Options::parse.
    if command == "artifacts" {
        return match commands::artifacts(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "diff" {
        return match commands::diff(rest) {
            Ok(code) => code,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    let options = match args::Options::parse(rest) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    // `health` owns its exit code (2 = unhealthy), so it bypasses the
    // shared Ok/Err mapping below.
    if command == "health" {
        return match commands::health(&options) {
            Ok(code) => code,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    let result = match command.as_str() {
        "dataset" => commands::dataset(&options),
        "contexts" => commands::contexts(&options),
        "transform" => commands::transform(&options),
        "select" => commands::select(&options),
        "mission" => commands::mission(&options),
        "coverage" => commands::coverage(&options),
        "trace" => commands::trace(&options),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
