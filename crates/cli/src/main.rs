//! `kodan` — command-line driver for the Kodan reproduction.
//!
//! ```text
//! kodan dataset   [--seed N] [--frames N]
//! kodan contexts  [--seed N] [--frames N] [--contexts K] [--expert]
//! kodan transform [--app 1..7] [--seed N] [--frames N]
//! kodan select    [--app 1..7] [--target orin|i7|1070ti] [--sats N]
//! kodan mission   [--app 1..7] [--target orin|i7|1070ti] [--sats N]
//!                 [--load-artifacts DIR]
//! kodan coverage  [--app 1..7] [--target orin|i7|1070ti]
//! kodan artifacts inspect PATH
//! ```
//!
//! Every subcommand is deterministic for a given `--seed`.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    // `artifacts` takes positional arguments (`inspect PATH`), not the
    // shared flag set, so it is dispatched before Options::parse.
    if command == "artifacts" {
        return match commands::artifacts(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    let options = match args::Options::parse(rest) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "dataset" => commands::dataset(&options),
        "contexts" => commands::contexts(&options),
        "transform" => commands::transform(&options),
        "select" => commands::select(&options),
        "mission" => commands::mission(&options),
        "coverage" => commands::coverage(&options),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
