//! End-to-end exit-code contract for the `kodan health` / `kodan diff`
//! observability family, exercised against the real binary. Exit codes
//! are part of the CI interface: 0 healthy/identical, 2 a health rule
//! failed, 3 the snapshots differ, 1 bad input.

use std::path::PathBuf;
use std::process::Command;

use kodan_telemetry::{CounterId, Recorder, SummaryRecorder, TelemetryEvent};

fn kodan() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kodan"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A snapshot whose DVD floor (pixels_value / pixels_sent >= 0.35 in the
/// built-in rules) observes `value_px / 100`.
fn snapshot_with_value(value_px: u64) -> String {
    let mut recorder = SummaryRecorder::new();
    recorder.event(TelemetryEvent::FrameCaptured { pixels: 100 });
    recorder.count(CounterId::PixelsSent, 100);
    recorder.count(CounterId::PixelsValue, value_px);
    recorder.snapshot().to_json()
}

#[test]
fn health_exit_codes_reflect_the_verdict() {
    let dir = scratch("health_exit");
    let healthy = dir.join("healthy.json");
    let unhealthy = dir.join("unhealthy.json");
    std::fs::write(&healthy, snapshot_with_value(50)).expect("write healthy");
    std::fs::write(&unhealthy, snapshot_with_value(10)).expect("write unhealthy");

    let pass = kodan()
        .args(["health", "--snapshot"])
        .arg(&healthy)
        .output()
        .expect("run kodan health");
    assert_eq!(pass.status.code(), Some(0), "healthy snapshot must exit 0");
    let stdout = String::from_utf8_lossy(&pass.stdout);
    assert!(stdout.contains("health: PASS"), "stdout: {stdout}");

    let fail = kodan()
        .args(["health", "--snapshot"])
        .arg(&unhealthy)
        .output()
        .expect("run kodan health");
    assert_eq!(fail.status.code(), Some(2), "failing rule must exit 2");
    let stdout = String::from_utf8_lossy(&fail.stdout);
    assert!(stdout.contains("health: FAIL"), "stdout: {stdout}");
    assert!(stdout.contains("pixels_value / pixels_sent"), "stdout: {stdout}");
}

#[test]
fn health_honors_a_custom_rule_file_and_writes_the_report() {
    let dir = scratch("health_rules");
    let snap = dir.join("snap.json");
    let rules = dir.join("rules.txt");
    let report = dir.join("report.json");
    std::fs::write(&snap, snapshot_with_value(50)).expect("write snapshot");
    std::fs::write(&rules, "# custom gate\npixels_sent >= 200\n").expect("write rules");

    let out = kodan()
        .args(["health", "--snapshot"])
        .arg(&snap)
        .arg("--rules")
        .arg(&rules)
        .arg("--out")
        .arg(&report)
        .output()
        .expect("run kodan health");
    assert_eq!(out.status.code(), Some(2), "custom rule must fail this snapshot");
    let written = std::fs::read_to_string(&report).expect("report written");
    assert!(written.contains("\"verdict\": \"unhealthy\""), "report: {written}");
    assert!(written.contains("pixels_sent >= 200"), "report: {written}");
}

#[test]
fn diff_exit_codes_distinguish_identical_from_differing() {
    let dir = scratch("diff_exit");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    std::fs::write(&a, snapshot_with_value(50)).expect("write a");
    std::fs::write(&b, snapshot_with_value(49)).expect("write b");

    let same = kodan()
        .arg("diff")
        .arg(&a)
        .arg(&a)
        .output()
        .expect("run kodan diff");
    assert_eq!(same.status.code(), Some(0), "identical snapshots must exit 0");
    assert!(String::from_utf8_lossy(&same.stdout).contains("identical"));

    let differ = kodan()
        .arg("diff")
        .arg(&a)
        .arg(&b)
        .output()
        .expect("run kodan diff");
    assert_eq!(differ.status.code(), Some(3), "differing snapshots must exit 3");
    let stdout = String::from_utf8_lossy(&differ.stdout);
    assert!(stdout.contains("pixels_value: 50 -> 49"), "stdout: {stdout}");
}

#[test]
fn bad_inputs_exit_one_with_a_named_error() {
    let dir = scratch("health_bad_input");
    let junk = dir.join("junk.json");
    std::fs::write(&junk, "{not json").expect("write junk");

    let health = kodan()
        .args(["health", "--snapshot"])
        .arg(&junk)
        .output()
        .expect("run kodan health");
    assert_eq!(health.status.code(), Some(1), "bad snapshot must exit 1");
    assert!(String::from_utf8_lossy(&health.stderr).contains("junk.json"));

    let diff = kodan()
        .args(["diff", "only-one.json"])
        .output()
        .expect("run kodan diff");
    assert_eq!(diff.status.code(), Some(1), "missing operand must exit 1");
    assert!(String::from_utf8_lossy(&diff.stderr).contains("usage"));
}
