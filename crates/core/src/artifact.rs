//! The ground→space uplink path: saving transformation artifacts into a
//! content-addressed store and loading them on orbit without retraining.
//!
//! The deployable artifact set is the paper's Figure 7 hand-off: the
//! context map, the context engine, every per-grid model, the per-grid
//! validation statistics the selection logic was derived from, and the
//! selection logic itself. Each artifact is sealed into a versioned,
//! checksummed [`kodan_wire`] section and stored by content digest;
//! total encoded bytes are the modeled uplink cost, tracked against
//! [`kodan_wire::UPLINK_BUDGET_BYTES`].
//!
//! Loading is total and degrades the way the fault-injection layer
//! does: a specialized model that fails its checksum (or decodes to
//! something unsafe to run) is replaced by the grid's global model with
//! the original slot's scope — the same fallback an SEU-corrupted model
//! gets at runtime — and reported as a [`RecoveredModel`]. Corruption of
//! the config, context map, bundle, selection logic, or a global model
//! has no safe substitute and fails the load.
//!
//! This module never touches `std::fs` itself (the `io-discipline` lint
//! rule forbids it in deterministic crates); all I/O goes through the
//! typed [`ArtifactStore`] API.

use crate::config::KodanConfig;
use crate::context::{ContextId, ContextSet};
use crate::engine::ContextEngine;
use crate::pipeline::{GridArtifacts, TransformationArtifacts};
use crate::selection::{ModelTable, SelectionLogic};
use crate::specialize::{ModelScope, SpecializedModel};
use kodan_ml::eval::ConfusionMatrix;
use kodan_ml::zoo::ModelArch;
use kodan_telemetry::{CounterId, Recorder};
use kodan_wire::envelope::{
    self, KIND_BUNDLE, KIND_CONFIG, KIND_CONTEXTS, KIND_MODEL, KIND_SELECTION,
};
use kodan_wire::{
    ArtifactStore, Dec, Decode, Enc, Encode, Manifest, ManifestEntry, WireError,
    UPLINK_BUDGET_BYTES,
};
use std::path::Path;

/// FNV-1a fingerprint of a configuration's canonical encoding; stored in
/// the manifest so a loaded artifact set can be matched to the
/// configuration that produced it.
pub fn config_fingerprint(config: &KodanConfig) -> u64 {
    kodan_wire::digest::fnv1a64(&config.to_wire())
}

/// Whitespace-free manifest slug for a hardware target (manifest entry
/// names and values are whitespace-delimited).
fn target_slug(target: kodan_hw::targets::HwTarget) -> &'static str {
    use kodan_hw::targets::HwTarget;
    match target {
        HwTarget::Gtx1070Ti => "gtx_1070_ti",
        HwTarget::CoreI7_7800X => "core_i7_7800x",
        HwTarget::OrinAgx15W => "orin_agx_15w",
    }
}

/// What [`save_artifacts`] wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveReport {
    /// The manifest as written (entries sorted by name on render).
    pub manifest: Manifest,
    /// Total encoded bytes across all artifacts — the modeled uplink
    /// cost.
    pub total_bytes: u64,
    /// True when the artifact set exceeds the modeled uplink budget.
    pub over_budget: bool,
}

/// Which specialized-model slot of a grid a recovery replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// The single-context model of context `c`.
    Context(usize),
    /// The multi-context (merged) model at position `m`.
    Merged(usize),
}

/// One corrupted-on-load model that was replaced by its grid's global
/// model (scope preserved), mirroring the runtime's SEU fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredModel {
    /// Grid dimension the model belonged to.
    pub grid: usize,
    /// Which slot was replaced.
    pub slot: SlotKind,
    /// The artifact's manifest name (e.g. `grid8.ctx2`).
    pub name: String,
}

/// Everything [`load_artifacts`] reassembled.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedArtifacts {
    /// The transformation artifacts, bit-identical to the saved ones
    /// when nothing was corrupted.
    pub artifacts: TransformationArtifacts,
    /// The stored selection logic, its model table rebuilt from the
    /// loaded grids.
    pub selection: SelectionLogic,
    /// Models replaced by the global-model fallback during this load.
    pub recovered: Vec<RecoveredModel>,
    /// Model-table indices (into `selection.models()`) now served by the
    /// fallback; feed these to
    /// [`crate::runtime::Runtime::with_quarantined_models`] so the
    /// mission's telemetry accounts for them like SEU fallbacks.
    pub quarantined_slots: Vec<usize>,
    /// The store manifest.
    pub manifest: Manifest,
}

/// The bundle artifact: everything target- and model-blob-independent.
/// Models are referenced by manifest name (`grid<g>.global`,
/// `grid<g>.ctx<c>`, `grid<g>.merged<m>`) rather than embedded, so a
/// corrupted model blob is recoverable without re-uplinking the bundle.
struct Bundle {
    arch: ModelArch,
    engine_val_agreement: f64,
    engine: ContextEngine,
    grids: Vec<GridSkeleton>,
}

/// A [`GridArtifacts`] with the models factored out: which context
/// slots are populated, each merged model's scope (kept here so a
/// corrupted merged blob can be replaced scope-intact), and the
/// validation statistics.
struct GridSkeleton {
    grid: usize,
    context_present: Vec<bool>,
    merged_scopes: Vec<Vec<ContextId>>,
    global_eval_per_context: Vec<ConfusionMatrix>,
    context_model_eval: Vec<Option<ConfusionMatrix>>,
    context_weights: Vec<f64>,
    context_hv: Vec<f64>,
    merged_eval: Vec<Vec<Option<ConfusionMatrix>>>,
    global_eval_all: ConfusionMatrix,
    composite_eval_all: ConfusionMatrix,
}

impl GridSkeleton {
    fn of(ga: &GridArtifacts) -> Result<GridSkeleton, WireError> {
        let merged_scopes = ga
            .merged_models
            .iter()
            .map(|m| match m.scope() {
                ModelScope::Multi(cs) => Ok(cs.clone()),
                _ => Err(WireError::InvalidValue(
                    "merged model without a multi-context scope",
                )),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GridSkeleton {
            grid: ga.grid,
            context_present: ga.context_models.iter().map(Option::is_some).collect(),
            merged_scopes,
            global_eval_per_context: ga.global_eval_per_context.clone(),
            context_model_eval: ga.context_model_eval.clone(),
            context_weights: ga.context_weights.clone(),
            context_hv: ga.context_hv.clone(),
            merged_eval: ga.merged_eval.clone(),
            global_eval_all: ga.global_eval_all,
            composite_eval_all: ga.composite_eval_all,
        })
    }

    /// Checks internal shape consistency against a context count.
    fn validate(&self, k: usize) -> Result<(), WireError> {
        let per_context_ok = self.context_present.len() == k
            && self.global_eval_per_context.len() == k
            && self.context_model_eval.len() == k
            && self.context_weights.len() == k
            && self.context_hv.len() == k;
        let merged_ok = self.merged_eval.len() == self.merged_scopes.len()
            && self.merged_eval.iter().all(|e| e.len() == k);
        if self.grid == 0 || !per_context_ok || !merged_ok {
            return Err(WireError::InvalidValue("grid skeleton shape mismatch"));
        }
        Ok(())
    }
}

impl Encode for GridSkeleton {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.grid);
        self.context_present.encode(enc);
        self.merged_scopes.encode(enc);
        self.global_eval_per_context.encode(enc);
        self.context_model_eval.encode(enc);
        self.context_weights.encode(enc);
        self.context_hv.encode(enc);
        self.merged_eval.encode(enc);
        self.global_eval_all.encode(enc);
        self.composite_eval_all.encode(enc);
    }
}

impl Decode for GridSkeleton {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(GridSkeleton {
            grid: dec.usize()?,
            context_present: Vec::<bool>::decode(dec)?,
            merged_scopes: Vec::<Vec<ContextId>>::decode(dec)?,
            global_eval_per_context: Vec::<ConfusionMatrix>::decode(dec)?,
            context_model_eval: Vec::<Option<ConfusionMatrix>>::decode(dec)?,
            context_weights: Vec::<f64>::decode(dec)?,
            context_hv: Vec::<f64>::decode(dec)?,
            merged_eval: Vec::<Vec<Option<ConfusionMatrix>>>::decode(dec)?,
            global_eval_all: ConfusionMatrix::decode(dec)?,
            composite_eval_all: ConfusionMatrix::decode(dec)?,
        })
    }
}

impl Encode for Bundle {
    fn encode(&self, enc: &mut Enc) {
        self.arch.encode(enc);
        enc.f64(self.engine_val_agreement);
        self.engine.encode(enc);
        self.grids.encode(enc);
    }
}

impl Decode for Bundle {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        let bundle = Bundle {
            arch: ModelArch::decode(dec)?,
            engine_val_agreement: dec.f64()?,
            engine: ContextEngine::decode(dec)?,
            grids: Vec::<GridSkeleton>::decode(dec)?,
        };
        if bundle.grids.is_empty() {
            return Err(WireError::InvalidValue("bundle without grids"));
        }
        Ok(bundle)
    }
}

fn model_name(grid: usize, slot: Option<SlotKind>) -> String {
    match slot {
        None => format!("grid{grid}.global"),
        Some(SlotKind::Context(c)) => format!("grid{grid}.ctx{c}"),
        Some(SlotKind::Merged(m)) => format!("grid{grid}.merged{m}"),
    }
}

/// Seals and stores the full deployable artifact set for one deployment
/// (transformation artifacts plus the selection logic derived for the
/// target), writes the manifest, and accounts the modeled uplink cost on
/// `recorder` (`ArtifactsSaved`, `ArtifactBytes`).
///
/// # Errors
///
/// Fails on I/O errors, or if `selection` does not belong to
/// `artifacts` (its grid is absent or its model table was not built by
/// [`SelectionLogic::build`] over these artifacts).
pub fn save_artifacts(
    artifacts: &TransformationArtifacts,
    selection: &SelectionLogic,
    dir: &Path,
    recorder: &mut dyn Recorder,
) -> Result<SaveReport, WireError> {
    let k = artifacts.contexts.len();
    let ga = artifacts
        .grids
        .iter()
        .find(|g| g.grid == selection.grid())
        .ok_or(WireError::InvalidValue(
            "selection grid absent from artifacts",
        ))?;
    let table = ModelTable::for_grid(ga, k);
    if table.models != selection.models() {
        return Err(WireError::InvalidValue(
            "selection model table does not match its grid artifacts",
        ));
    }

    let store = ArtifactStore::create(dir)?;
    let mut entries: Vec<ManifestEntry> = Vec::new();
    let put = |store: &ArtifactStore,
                   entries: &mut Vec<ManifestEntry>,
                   recorder: &mut dyn Recorder,
                   name: String,
                   kind: u16,
                   payload: &[u8]|
     -> Result<(), WireError> {
        let sealed = envelope::seal(kind, payload);
        let entry = store.put(&name, &sealed)?;
        recorder.count(CounterId::ArtifactsSaved, 1);
        recorder.count(CounterId::ArtifactBytes, sealed.len() as u64);
        entries.push(entry);
        Ok(())
    };

    put(
        &store,
        &mut entries,
        recorder,
        "config".to_string(),
        KIND_CONFIG,
        &artifacts.config.to_wire(),
    )?;
    put(
        &store,
        &mut entries,
        recorder,
        "contexts".to_string(),
        KIND_CONTEXTS,
        &artifacts.contexts.to_wire(),
    )?;
    let bundle = Bundle {
        arch: artifacts.arch,
        engine_val_agreement: artifacts.engine_val_agreement,
        engine: artifacts.engine.clone(),
        grids: artifacts
            .grids
            .iter()
            .map(GridSkeleton::of)
            .collect::<Result<Vec<_>, _>>()?,
    };
    put(
        &store,
        &mut entries,
        recorder,
        "bundle".to_string(),
        KIND_BUNDLE,
        &bundle.to_wire(),
    )?;
    for ga in &artifacts.grids {
        put(
            &store,
            &mut entries,
            recorder,
            model_name(ga.grid, None),
            KIND_MODEL,
            &ga.global_model.to_wire(),
        )?;
        for (c, m) in ga.context_models.iter().enumerate() {
            if let Some(m) = m {
                put(
                    &store,
                    &mut entries,
                    recorder,
                    model_name(ga.grid, Some(SlotKind::Context(c))),
                    KIND_MODEL,
                    &m.to_wire(),
                )?;
            }
        }
        for (i, m) in ga.merged_models.iter().enumerate() {
            put(
                &store,
                &mut entries,
                recorder,
                model_name(ga.grid, Some(SlotKind::Merged(i))),
                KIND_MODEL,
                &m.to_wire(),
            )?;
        }
    }
    let mut enc = Enc::new();
    selection.encode_policy(&mut enc);
    put(
        &store,
        &mut entries,
        recorder,
        "selection".to_string(),
        KIND_SELECTION,
        enc.as_bytes(),
    )?;

    let manifest = Manifest {
        target: target_slug(selection.target()).to_string(),
        seed: artifacts.config.seed,
        config_fingerprint: config_fingerprint(&artifacts.config),
        entries,
    };
    store.write_manifest(&manifest)?;
    let total_bytes = manifest.total_bytes();
    Ok(SaveReport {
        manifest,
        total_bytes,
        over_budget: total_bytes > UPLINK_BUDGET_BYTES,
    })
}

/// Reads one named artifact, verifying its content digest, envelope
/// checksum and kind.
fn read_payload(
    store: &ArtifactStore,
    manifest: &Manifest,
    name: &str,
    kind: u16,
) -> Result<Vec<u8>, WireError> {
    let entry = manifest
        .entry(name)
        .ok_or_else(|| WireError::Store(format!("manifest has no `{name}` artifact")))?;
    let bytes = store.read(entry)?;
    Ok(envelope::open(&bytes, kind)?.to_vec())
}

/// Loads a saved artifact set, reassembling the transformation artifacts
/// and the stored selection logic without any retraining.
///
/// Specialized-model blobs that fail verification are replaced by the
/// grid's global model (scope preserved) and counted on `recorder` as
/// `ArtifactsRecovered`; config, contexts, bundle, selection and global
/// models have no safe substitute and fail the load instead.
///
/// # Errors
///
/// Fails on I/O errors, a malformed manifest, or corruption of an
/// unrecoverable artifact.
pub fn load_artifacts(
    dir: &Path,
    recorder: &mut dyn Recorder,
) -> Result<LoadedArtifacts, WireError> {
    let store = ArtifactStore::open(dir)?;
    let manifest = store.manifest()?;

    let config_payload = read_payload(&store, &manifest, "config", KIND_CONFIG)?;
    let config = KodanConfig::from_wire(&config_payload)?;
    if kodan_wire::digest::fnv1a64(&config_payload) != manifest.config_fingerprint {
        return Err(WireError::Store(
            "config does not match the manifest fingerprint".to_string(),
        ));
    }
    let contexts =
        ContextSet::from_wire(&read_payload(&store, &manifest, "contexts", KIND_CONTEXTS)?)?;
    let bundle = Bundle::from_wire(&read_payload(&store, &manifest, "bundle", KIND_BUNDLE)?)?;
    let k = contexts.len();
    for skeleton in &bundle.grids {
        skeleton.validate(k)?;
    }

    let mut recovered = Vec::new();
    let mut grids = Vec::with_capacity(bundle.grids.len());
    for skeleton in &bundle.grids {
        let grid = skeleton.grid;
        let global_name = model_name(grid, None);
        let global_model = SpecializedModel::from_wire(&read_payload(
            &store, &manifest, &global_name, KIND_MODEL,
        )?)?;
        if *global_model.scope() != ModelScope::Global {
            return Err(WireError::InvalidValue("global model blob has a narrow scope"));
        }

        // A specialized model that fails any check falls back to the
        // grid's global model under the original slot's scope — the same
        // degradation an SEU-corrupted model gets at runtime.
        let recover = |slot: SlotKind,
                           name: String,
                           expected_scope: ModelScope,
                           recovered: &mut Vec<RecoveredModel>,
                           recorder: &mut dyn Recorder|
         -> SpecializedModel {
            recorder.count(CounterId::ArtifactsRecovered, 1);
            recovered.push(RecoveredModel { grid, slot, name });
            global_model.rescoped(expected_scope)
        };

        let mut context_models = Vec::with_capacity(k);
        for (c, present) in skeleton.context_present.iter().enumerate() {
            if !*present {
                context_models.push(None);
                continue;
            }
            let name = model_name(grid, Some(SlotKind::Context(c)));
            let expected = ModelScope::Context(ContextId(c));
            let model = match read_payload(&store, &manifest, &name, KIND_MODEL)
                .and_then(|p| SpecializedModel::from_wire(&p))
            {
                Ok(m) if *m.scope() == expected => m,
                _ => recover(
                    SlotKind::Context(c),
                    name,
                    expected,
                    &mut recovered,
                    recorder,
                ),
            };
            context_models.push(Some(model));
        }

        let mut merged_models = Vec::with_capacity(skeleton.merged_scopes.len());
        for (i, scope_contexts) in skeleton.merged_scopes.iter().enumerate() {
            let name = model_name(grid, Some(SlotKind::Merged(i)));
            let expected = ModelScope::Multi(scope_contexts.clone());
            let model = match read_payload(&store, &manifest, &name, KIND_MODEL)
                .and_then(|p| SpecializedModel::from_wire(&p))
            {
                Ok(m) if *m.scope() == expected => m,
                _ => recover(
                    SlotKind::Merged(i),
                    name,
                    expected,
                    &mut recovered,
                    recorder,
                ),
            };
            merged_models.push(model);
        }

        grids.push(GridArtifacts {
            grid,
            global_model,
            context_models,
            global_eval_per_context: skeleton.global_eval_per_context.clone(),
            context_model_eval: skeleton.context_model_eval.clone(),
            context_weights: skeleton.context_weights.clone(),
            context_hv: skeleton.context_hv.clone(),
            merged_models,
            merged_eval: skeleton.merged_eval.clone(),
            global_eval_all: skeleton.global_eval_all,
            composite_eval_all: skeleton.composite_eval_all,
        });
    }

    let artifacts = TransformationArtifacts {
        config,
        arch: bundle.arch,
        contexts,
        engine: bundle.engine,
        engine_val_agreement: bundle.engine_val_agreement,
        grids,
    };

    let policy = read_payload(&store, &manifest, "selection", KIND_SELECTION)?;
    // The policy's grid sits third in its encoding (after two u16 tags);
    // probe it first so the model table can be rebuilt before decoding.
    let grid = {
        let mut probe = Dec::new(&policy);
        probe.u16()?;
        probe.u16()?;
        probe.usize()?
    };
    let ga = artifacts
        .grids
        .iter()
        .find(|g| g.grid == grid)
        .ok_or(WireError::InvalidValue("selection grid absent from bundle"))?;
    let table = ModelTable::for_grid(ga, k);
    let context_slot = table.context_model_index;
    let merged_slot = table.merged_model_index;
    let mut dec = Dec::new(&policy);
    let selection = SelectionLogic::decode_policy(&mut dec, table.models)?;
    dec.finish()?;

    let mut quarantined_slots: Vec<usize> = recovered
        .iter()
        .filter(|r| r.grid == grid)
        .filter_map(|r| match r.slot {
            SlotKind::Context(c) => context_slot.get(c).copied().flatten(),
            SlotKind::Merged(m) => merged_slot.get(m).copied(),
        })
        .collect();
    quarantined_slots.sort_unstable();
    quarantined_slots.dedup();

    Ok(LoadedArtifacts {
        artifacts,
        selection,
        recovered,
        quarantined_slots,
        manifest,
    })
}
