//! Configuration for the Kodan transformation pipeline.

use kodan_ml::metrics::DistanceMetric;
use kodan_ml::train::TrainConfig;
use kodan_ml::transform::TransformKind;
use serde::{Deserialize, Serialize};

/// How contexts are generated during the transformation step (paper
/// Section 3.2 presents both approaches; the cluster-count sweep is the
/// "joint generation" hyperparameter exploration of Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContextGenerationKind {
    /// k-means over label vectors with a fixed cluster count
    /// (`KodanConfig::context_count`).
    Auto,
    /// One context per dominant surface type, as a subject-matter expert
    /// would partition the data.
    Expert,
    /// k-means with the cluster count chosen by silhouette score over
    /// `2..=max_contexts`.
    AutoSweep {
        /// Upper bound of the swept cluster counts.
        max_contexts: usize,
    },
}

/// Configuration of the one-time transformation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KodanConfig {
    /// Master seed for clustering, training and sampling.
    pub seed: u64,
    /// Tile-grid dimensions to sweep (tiles per frame = grid^2). The
    /// paper sweeps 121/36/16/9 tiles, i.e. grids 11/6/4/3.
    pub tile_grids: [usize; 4],
    /// Context generation strategy.
    pub generation: ContextGenerationKind,
    /// Number of automatically-generated contexts (k-means k); used by
    /// [`ContextGenerationKind::Auto`].
    pub context_count: usize,
    /// Distance metric for label-vector clustering.
    pub metric: DistanceMetric,
    /// Label-vector transformation applied before clustering.
    pub transform: TransformKind,
    /// Training hyperparameters for all models.
    pub train: TrainConfig,
    /// Maximum pixels sampled for training one model.
    pub max_train_pixels: usize,
    /// Maximum tiles used when evaluating one (model, grid) pair.
    pub max_eval_tiles: usize,
    /// Fraction of the dataset's frames used for training (the rest
    /// validates).
    pub train_fraction: f64,
    /// Apply training-time data augmentation (dihedral flips and
    /// radiometric jitter), as in the paper's methodology section.
    pub augment: bool,
    /// Worker threads for parallel model training during the
    /// transformation step; `0` means auto-detect (available parallelism,
    /// capped). Any value produces bit-identical artifacts — training RNG
    /// streams are keyed on seed and task identity, never on workers —
    /// so presets keep `0` and configurations stay machine-independent.
    pub workers: usize,
}

impl KodanConfig {
    /// The configuration used for paper-scale evaluation runs.
    pub fn evaluation(seed: u64) -> KodanConfig {
        KodanConfig {
            seed,
            tile_grids: [3, 4, 6, 11],
            generation: ContextGenerationKind::Auto,
            context_count: 6,
            metric: DistanceMetric::Euclidean,
            transform: TransformKind::Standardize,
            train: TrainConfig::evaluation(seed),
            max_train_pixels: 12_000,
            max_eval_tiles: 360,
            train_fraction: 0.7,
            augment: true,
            workers: 0,
        }
    }

    /// A small configuration for unit tests: fewer contexts, fewer
    /// training pixels, fewer epochs. Grids still cover the paper's
    /// range so code paths are exercised.
    pub fn fast(seed: u64) -> KodanConfig {
        KodanConfig {
            seed,
            tile_grids: [3, 4, 6, 11],
            generation: ContextGenerationKind::Auto,
            context_count: 3,
            metric: DistanceMetric::Euclidean,
            transform: TransformKind::Standardize,
            train: TrainConfig::fast(seed),
            max_train_pixels: 1_500,
            max_eval_tiles: 48,
            train_fraction: 0.7,
            augment: false,
            workers: 0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero grids/contexts/budgets or a degenerate split.
    pub fn validate(&self) {
        assert!(
            self.tile_grids.iter().all(|&g| g > 0),
            "tile grids must be positive"
        );
        assert!(self.context_count > 0, "need at least one context");
        if let ContextGenerationKind::AutoSweep { max_contexts } = self.generation {
            assert!(max_contexts >= 2, "context sweep needs at least k = 2");
        }
        assert!(self.max_train_pixels > 0, "need a training budget");
        assert!(self.max_eval_tiles > 0, "need an evaluation budget");
        assert!(
            self.train_fraction > 0.0 && self.train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        self.train.validate();
    }
}

impl Default for KodanConfig {
    fn default() -> Self {
        KodanConfig::evaluation(0)
    }
}

impl kodan_wire::Encode for ContextGenerationKind {
    fn encode(&self, enc: &mut kodan_wire::Enc) {
        match self {
            ContextGenerationKind::Auto => enc.u16(0),
            ContextGenerationKind::Expert => enc.u16(1),
            ContextGenerationKind::AutoSweep { max_contexts } => {
                enc.u16(2);
                enc.usize(*max_contexts);
            }
        }
    }
}

impl kodan_wire::Decode for ContextGenerationKind {
    fn decode(dec: &mut kodan_wire::Dec<'_>) -> Result<Self, kodan_wire::WireError> {
        match dec.u16()? {
            0 => Ok(ContextGenerationKind::Auto),
            1 => Ok(ContextGenerationKind::Expert),
            2 => Ok(ContextGenerationKind::AutoSweep {
                max_contexts: dec.usize()?,
            }),
            tag => Err(kodan_wire::WireError::BadTag {
                what: "ContextGenerationKind",
                tag: u32::from(tag),
            }),
        }
    }
}

impl kodan_wire::Encode for KodanConfig {
    fn encode(&self, enc: &mut kodan_wire::Enc) {
        enc.u64(self.seed);
        self.tile_grids.encode(enc);
        self.generation.encode(enc);
        enc.usize(self.context_count);
        self.metric.encode(enc);
        self.transform.encode(enc);
        self.train.encode(enc);
        enc.usize(self.max_train_pixels);
        enc.usize(self.max_eval_tiles);
        enc.f64(self.train_fraction);
        enc.bool(self.augment);
        enc.usize(self.workers);
    }
}

impl kodan_wire::Decode for KodanConfig {
    fn decode(dec: &mut kodan_wire::Dec<'_>) -> Result<Self, kodan_wire::WireError> {
        Ok(KodanConfig {
            seed: dec.u64()?,
            tile_grids: <[usize; 4]>::decode(dec)?,
            generation: ContextGenerationKind::decode(dec)?,
            context_count: dec.usize()?,
            metric: DistanceMetric::decode(dec)?,
            transform: TransformKind::decode(dec)?,
            train: TrainConfig::decode(dec)?,
            max_train_pixels: dec.usize()?,
            max_eval_tiles: dec.usize()?,
            train_fraction: dec.f64()?,
            augment: dec.bool()?,
            workers: dec.usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        KodanConfig::evaluation(1).validate();
        KodanConfig::fast(1).validate();
        KodanConfig::default().validate();
    }

    #[test]
    fn evaluation_sweeps_paper_tile_counts() {
        let c = KodanConfig::evaluation(0);
        let tiles: Vec<usize> = c.tile_grids.iter().map(|g| g * g).collect();
        assert_eq!(tiles, vec![9, 16, 36, 121]);
    }

    #[test]
    fn presets_default_to_auto_workers() {
        // `workers: 0` (auto) keeps serialized configurations
        // machine-independent; the resolved count never affects outputs.
        assert_eq!(KodanConfig::evaluation(1).workers, 0);
        assert_eq!(KodanConfig::fast(1).workers, 0);
    }

    #[test]
    #[should_panic(expected = "context")]
    fn rejects_zero_contexts() {
        let mut c = KodanConfig::fast(0);
        c.context_count = 0;
        c.validate();
    }
}
