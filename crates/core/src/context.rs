//! Geospatial contexts: partitioning the representative dataset.
//!
//! A *context* is a subset of tiles related by semantic similarity —
//! images of ocean look alike, images of desert look alike (paper
//! Section 3.2). Contexts are generated either automatically, by
//! clustering per-tile classification label vectors with k-means, or by
//! an expert partition keyed to the dominant surface type.

use kodan_geodata::tile::{TileImage, LABEL_DIM};
use kodan_ml::kmeans::KMeans;
use kodan_ml::metrics::DistanceMetric;
use kodan_ml::transform::{FittedTransform, TransformKind};
use kodan_wire::{Dec, Decode, Enc, Encode, WireError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a context within a [`ContextSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ContextId(pub usize);

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Summary statistics of one context, estimated on the training tiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Context {
    /// The context's identifier.
    pub id: ContextId,
    /// Number of training tiles assigned to this context.
    pub tile_count: usize,
    /// Fraction of all training tiles in this context.
    pub weight: f64,
    /// Mean fraction of high-value (clear) pixels across member tiles.
    pub high_value_fraction: f64,
    /// Human-readable sketch: the dominant surface type among members.
    pub description: String,
}

/// How a context set was generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ContextGeneration {
    /// k-means over label vectors (paper: automatically-generated).
    Auto {
        /// Cluster count.
        k: usize,
        /// Distance metric used.
        metric: DistanceMetric,
    },
    /// One context per dominant surface type (paper: expert-generated).
    Expert,
}

/// A fitted partition of tiles into contexts.
///
/// Classification here uses the dataset's *truth label vectors* and is
/// only available before deployment; the on-orbit classifier is the
/// [`crate::engine::ContextEngine`], trained against this partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextSet {
    contexts: Vec<Context>,
    generation: ContextGeneration,
    /// For auto contexts: the transform + k-means model over label
    /// vectors. For expert contexts: none (the dominant surface indexes
    /// directly).
    auto: Option<AutoPartition>,
    /// For expert contexts: mapping from surface index to context id.
    expert_map: Option<[usize; 8]>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct AutoPartition {
    transform: FittedTransform,
    kmeans: KMeans,
}

impl ContextSet {
    /// Generates contexts automatically by clustering label vectors.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is empty or `k` is zero or exceeds the tile
    /// count.
    pub fn generate_auto(
        tiles: &[TileImage],
        k: usize,
        metric: DistanceMetric,
        transform: TransformKind,
        seed: u64,
    ) -> ContextSet {
        assert!(!tiles.is_empty(), "contexts need tiles");
        let labels: Vec<Vec<f64>> = tiles.iter().map(|t| t.label_vector().to_vec()).collect();
        let fitted = transform.fit(&labels);
        let transformed = fitted.apply_all(&labels);
        let kmeans = KMeans::fit(&transformed, k, metric, seed);
        let assignments: Vec<usize> = kmeans.assignments().to_vec();
        let contexts = summarize(tiles, &assignments, k);
        ContextSet {
            contexts,
            generation: ContextGeneration::Auto { k, metric },
            auto: Some(AutoPartition {
                transform: fitted,
                kmeans,
            }),
            expert_map: None,
        }
    }

    /// Generates expert contexts: one per dominant surface type that
    /// occurs in the dataset.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is empty.
    pub fn generate_expert(tiles: &[TileImage]) -> ContextSet {
        assert!(!tiles.is_empty(), "contexts need tiles");
        // Map each occurring surface index to a dense context id.
        let mut present = [false; 8];
        for t in tiles {
            present[t.dominant_surface().index()] = true;
        }
        let mut map = [usize::MAX; 8];
        let mut next = 0;
        for (i, p) in present.iter().enumerate() {
            if *p {
                map[i] = next;
                next += 1;
            }
        }
        let assignments: Vec<usize> = tiles
            .iter()
            .map(|t| map[t.dominant_surface().index()])
            .collect();
        let contexts = summarize(tiles, &assignments, next);
        ContextSet {
            contexts,
            generation: ContextGeneration::Expert,
            auto: None,
            expert_map: Some(map),
        }
    }

    /// The contexts, ordered by id.
    pub fn contexts(&self) -> &[Context] {
        &self.contexts
    }

    /// Number of contexts.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// Always false: generation requires tiles.
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty()
    }

    /// How this set was generated.
    pub fn generation(&self) -> ContextGeneration {
        self.generation
    }

    /// Classifies a tile from its *truth* label vector (pre-deployment
    /// only).
    pub fn classify_truth(&self, tile: &TileImage) -> ContextId {
        match (&self.auto, &self.expert_map) {
            (Some(auto), _) => {
                let label = tile.label_vector();
                debug_assert_eq!(label.len(), LABEL_DIM);
                let transformed = auto.transform.apply(&label);
                ContextId(auto.kmeans.assign(&transformed))
            }
            (None, Some(map)) => {
                let idx = map[tile.dominant_surface().index()];
                // Surfaces unseen at generation time fall into context 0.
                ContextId(if idx == usize::MAX { 0 } else { idx })
            }
            _ => unreachable!("ContextSet is always auto or expert"),
        }
    }

    /// Looks up a context's statistics.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn context(&self, id: ContextId) -> &Context {
        &self.contexts[id.0]
    }

    /// For expert-generated sets: the mapping from
    /// [`kodan_geodata::SurfaceType::index`] to context id (`usize::MAX`
    /// for surfaces absent at generation time). `None` for auto sets.
    pub fn expert_surface_map(&self) -> Option<&[usize; 8]> {
        self.expert_map.as_ref()
    }
}

fn summarize(tiles: &[TileImage], assignments: &[usize], k: usize) -> Vec<Context> {
    let mut counts = vec![0usize; k];
    let mut hv_sums = vec![0.0f64; k];
    let mut surface_counts = vec![[0usize; 8]; k];
    for (tile, &a) in tiles.iter().zip(assignments) {
        counts[a] += 1;
        hv_sums[a] += tile.high_value_fraction();
        surface_counts[a][tile.dominant_surface().index()] += 1;
    }
    (0..k)
        .map(|i| {
            let count = counts[i];
            let dominant = surface_counts[i]
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(s, _)| kodan_geodata::SurfaceType::ALL[s].name())
                .unwrap_or("empty");
            Context {
                id: ContextId(i),
                tile_count: count,
                weight: count as f64 / tiles.len() as f64,
                high_value_fraction: if count > 0 {
                    hv_sums[i] / count as f64
                } else {
                    0.0
                },
                description: dominant.to_string(),
            }
        })
        .collect()
}

impl Encode for ContextId {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.0);
    }
}

impl Decode for ContextId {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(ContextId(dec.usize()?))
    }
}

impl Encode for Context {
    fn encode(&self, enc: &mut Enc) {
        self.id.encode(enc);
        enc.usize(self.tile_count);
        enc.f64(self.weight);
        enc.f64(self.high_value_fraction);
        enc.str(&self.description);
    }
}

impl Decode for Context {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(Context {
            id: ContextId::decode(dec)?,
            tile_count: dec.usize()?,
            weight: dec.f64()?,
            high_value_fraction: dec.f64()?,
            description: dec.string()?,
        })
    }
}

impl Encode for ContextGeneration {
    fn encode(&self, enc: &mut Enc) {
        match self {
            ContextGeneration::Auto { k, metric } => {
                enc.u16(0);
                enc.usize(*k);
                metric.encode(enc);
            }
            ContextGeneration::Expert => enc.u16(1),
        }
    }
}

impl Decode for ContextGeneration {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        match dec.u16()? {
            0 => Ok(ContextGeneration::Auto {
                k: dec.usize()?,
                metric: DistanceMetric::decode(dec)?,
            }),
            1 => Ok(ContextGeneration::Expert),
            tag => Err(WireError::BadTag {
                what: "ContextGeneration",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Encode for AutoPartition {
    fn encode(&self, enc: &mut Enc) {
        self.transform.encode(enc);
        self.kmeans.encode(enc);
    }
}

impl Decode for AutoPartition {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(AutoPartition {
            transform: FittedTransform::decode(dec)?,
            kmeans: KMeans::decode(dec)?,
        })
    }
}

impl Encode for ContextSet {
    fn encode(&self, enc: &mut Enc) {
        self.contexts.encode(enc);
        self.generation.encode(enc);
        self.auto.encode(enc);
        self.expert_map.encode(enc);
    }
}

impl Decode for ContextSet {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        let contexts = Vec::<Context>::decode(dec)?;
        let generation = ContextGeneration::decode(dec)?;
        let auto = Option::<AutoPartition>::decode(dec)?;
        let expert_map = Option::<[usize; 8]>::decode(dec)?;
        // `classify_truth` relies on exactly the representation its
        // generation implies being present.
        let consistent = match generation {
            ContextGeneration::Auto { k, .. } => {
                auto.is_some() && expert_map.is_none() && contexts.len() == k
            }
            ContextGeneration::Expert => auto.is_none() && expert_map.is_some(),
        };
        if !consistent || contexts.is_empty() {
            return Err(WireError::InvalidValue(
                "context set representation does not match its generation",
            ));
        }
        Ok(ContextSet {
            contexts,
            generation,
            auto,
            expert_map,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kodan_geodata::{Dataset, DatasetConfig, World};

    fn tiles() -> Vec<TileImage> {
        let world = World::new(42);
        Dataset::sample(&world, &DatasetConfig::small(1)).tiles(3)
    }

    #[test]
    fn auto_contexts_partition_all_tiles() {
        let tiles = tiles();
        let set = ContextSet::generate_auto(
            &tiles,
            4,
            DistanceMetric::Euclidean,
            TransformKind::Standardize,
            1,
        );
        assert_eq!(set.len(), 4);
        let total: usize = set.contexts().iter().map(|c| c.tile_count).sum();
        assert_eq!(total, tiles.len());
        let weight: f64 = set.contexts().iter().map(|c| c.weight).sum();
        assert!((weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn classify_truth_matches_training_assignment() {
        let tiles = tiles();
        let set = ContextSet::generate_auto(
            &tiles,
            3,
            DistanceMetric::Euclidean,
            TransformKind::Standardize,
            1,
        );
        // Re-classifying training tiles reproduces their cluster sizes.
        let mut counts = vec![0usize; 3];
        for t in &tiles {
            counts[set.classify_truth(t).0] += 1;
        }
        for (ctx, &n) in set.contexts().iter().zip(&counts) {
            assert_eq!(ctx.tile_count, n);
        }
    }

    #[test]
    fn expert_contexts_follow_dominant_surface() {
        let tiles = tiles();
        let set = ContextSet::generate_expert(&tiles);
        assert!(matches!(set.generation(), ContextGeneration::Expert));
        assert!(set.len() >= 2, "dataset should span multiple surfaces");
        // Tiles with the same dominant surface share a context.
        for pair in tiles.windows(2) {
            if pair[0].dominant_surface() == pair[1].dominant_surface() {
                assert_eq!(set.classify_truth(&pair[0]), set.classify_truth(&pair[1]));
            }
        }
    }

    #[test]
    fn context_stats_are_physical() {
        let tiles = tiles();
        let set = ContextSet::generate_auto(
            &tiles,
            3,
            DistanceMetric::Euclidean,
            TransformKind::Standardize,
            9,
        );
        for c in set.contexts() {
            assert!((0.0..=1.0).contains(&c.high_value_fraction));
            assert!(!c.description.is_empty());
        }
    }

    #[test]
    fn contexts_have_distinct_value_profiles() {
        // The premise of elision: clustering separates tiles into contexts
        // with different high-value fractions.
        let tiles = tiles();
        let set = ContextSet::generate_auto(
            &tiles,
            4,
            DistanceMetric::Euclidean,
            TransformKind::Standardize,
            1,
        );
        let hv: Vec<f64> = set
            .contexts()
            .iter()
            .filter(|c| c.tile_count > 0)
            .map(|c| c.high_value_fraction)
            .collect();
        let max = hv.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = hv.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max - min > 0.2,
            "contexts too uniform: spread = {}",
            max - min
        );
    }

    #[test]
    fn deterministic_generation() {
        let tiles = tiles();
        let a = ContextSet::generate_auto(
            &tiles,
            3,
            DistanceMetric::Euclidean,
            TransformKind::Standardize,
            5,
        );
        let b = ContextSet::generate_auto(
            &tiles,
            3,
            DistanceMetric::Euclidean,
            TransformKind::Standardize,
            5,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn display_of_context_id() {
        assert_eq!(ContextId(3).to_string(), "C3");
    }
}
