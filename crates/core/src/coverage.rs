//! Constellation sizing for full ground-track coverage (Figure 11).
//!
//! For continuous ground-track processing coverage every frame must be
//! processed within the frame deadline. When an application's per-frame
//! time exceeds the deadline, prior OEC work distributes tiles across a
//! pipeline of satellites — requiring `ceil(frame_time / deadline)`
//! devices. Kodan shrinks per-frame time below the deadline instead,
//! reducing the required constellation size by up to ~12x.

use crate::pipeline::TransformationArtifacts;
use crate::selection::SelectionLogic;
use kodan_cote::time::Duration;
use kodan_hw::targets::HwTarget;
use serde::{Deserialize, Serialize};

/// Number of pipeline satellites needed to cover the full ground track
/// when one frame takes `frame_time` against `deadline`.
///
/// # Panics
///
/// Panics if the deadline is not positive.
pub fn satellites_required(frame_time: Duration, deadline: Duration) -> usize {
    assert!(deadline.as_seconds() > 0.0, "deadline must be positive");
    (frame_time.as_seconds() / deadline.as_seconds()).ceil().max(1.0) as usize
}

/// Satellite counts required under each deployment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageComparison {
    /// Direct deployment: densest tiling, full model.
    pub direct_deploy: usize,
    /// The best-precision tiling with the full model (prior-work OEC
    /// tuning without Kodan's context techniques).
    pub max_precision_tiling: usize,
    /// The full Kodan selection logic.
    pub kodan: usize,
}

impl CoverageComparison {
    /// Constellation-size reduction factor of Kodan over direct
    /// deployment.
    pub fn reduction_vs_direct(&self) -> f64 {
        self.direct_deploy as f64 / self.kodan as f64
    }

    /// Reduction factor of Kodan over the max-precision tiling.
    pub fn reduction_vs_max_precision(&self) -> f64 {
        self.max_precision_tiling as f64 / self.kodan as f64
    }
}

/// Compares constellation sizing for one application on one target.
pub fn coverage_comparison(
    artifacts: &TransformationArtifacts,
    target: HwTarget,
    deadline: Duration,
    capacity_fraction: f64,
) -> CoverageComparison {
    let direct = SelectionLogic::direct_deploy(artifacts, target, deadline, capacity_fraction);
    let max_prec =
        SelectionLogic::max_precision_tiling(artifacts, target, deadline, capacity_fraction);
    let kodan = SelectionLogic::build(artifacts, target, deadline, capacity_fraction);
    CoverageComparison {
        direct_deploy: satellites_required(direct.estimate().frame_time, deadline),
        max_precision_tiling: satellites_required(max_prec.estimate().frame_time, deadline),
        kodan: satellites_required(kodan.estimate().frame_time, deadline),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KodanConfig;
    use crate::pipeline::Transformation;
    use kodan_geodata::{Dataset, DatasetConfig, World};
    use kodan_ml::zoo::ModelArch;

    #[test]
    fn satellites_required_is_ceiling() {
        let d = Duration::from_seconds(22.0);
        assert_eq!(satellites_required(Duration::from_seconds(10.0), d), 1);
        assert_eq!(satellites_required(Duration::from_seconds(22.0), d), 1);
        assert_eq!(satellites_required(Duration::from_seconds(23.0), d), 2);
        assert_eq!(satellites_required(Duration::from_seconds(247.0), d), 12);
    }

    #[test]
    fn kodan_needs_fewer_satellites_than_direct_deploy() {
        let world = World::new(42);
        let mut ds_cfg = DatasetConfig::small(1);
        ds_cfg.frame_count = 12;
        ds_cfg.frame_px = 132;
        let dataset = Dataset::sample(&world, &ds_cfg);
        let artifacts = Transformation::new(KodanConfig::fast(3))
            .run(&dataset, ModelArch::ResNet101DilatedPpm)
            .expect("transformation succeeds");
        let cmp = coverage_comparison(
            &artifacts,
            HwTarget::OrinAgx15W,
            Duration::from_seconds(22.0),
            0.21,
        );
        // Direct deploy of App 7 on the Orin: 121 x ~2 s >> 22 s.
        assert!(cmp.direct_deploy >= 10, "direct {}", cmp.direct_deploy);
        assert_eq!(cmp.kodan, 1, "kodan should meet the deadline");
        assert!(cmp.reduction_vs_direct() >= 10.0);
        assert!(cmp.reduction_vs_max_precision() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn rejects_zero_deadline() {
        let _ = satellites_required(Duration::from_seconds(1.0), Duration::ZERO);
    }
}
