//! Data value density accounting for a saturated downlink.
//!
//! **Data value density (DVD)** is "the fraction of a saturated downlink
//! composed of high-value bits" (paper Sections 1-3). The denominator is
//! the downlink *capacity*: sending low-value data pollutes it, and
//! producing less data than the link can carry wastes it. Both failure
//! modes lower DVD, which is what makes it the right objective for both
//! the bottlenecked and the idle-compute regimes.

use serde::{Deserialize, Serialize};

/// Downlink accounting over some horizon, in pixel units (a pixel is the
/// atomic unit of data value; multiply by bits/pixel to get link units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DownlinkAccounting {
    /// Downlink capacity over the horizon.
    pub capacity_px: f64,
    /// Pixels produced for downlink (before capacity thinning).
    pub produced_px: f64,
    /// Of the produced pixels, how many are genuinely high-value.
    pub produced_value_px: f64,
    /// Pixels observed by the sensor over the horizon.
    pub observed_px: f64,
    /// Of the observed pixels, how many are genuinely high-value.
    pub observed_value_px: f64,
}

impl DownlinkAccounting {
    /// Pixels actually downlinked: production clipped by capacity.
    pub fn downlinked_px(&self) -> f64 {
        self.produced_px.min(self.capacity_px)
    }

    /// High-value pixels actually downlinked. When production exceeds
    /// capacity the queue is thinned uniformly (produced data from one
    /// policy is statistically homogeneous).
    pub fn downlinked_value_px(&self) -> f64 {
        if self.produced_px <= 0.0 {
            return 0.0;
        }
        self.produced_value_px * (self.downlinked_px() / self.produced_px)
    }

    /// Data value density: high-value pixels downlinked per unit of
    /// downlink capacity. Idle capacity counts as zero-value.
    ///
    /// # Panics
    ///
    /// Panics if capacity is not positive.
    pub fn dvd(&self) -> f64 {
        assert!(self.capacity_px > 0.0, "capacity must be positive");
        self.downlinked_value_px() / self.capacity_px
    }

    /// Fraction of *observed high-value data* that reaches the ground —
    /// the metric of the paper's Figure 5.
    pub fn observed_hv_downlinked(&self) -> f64 {
        if self.observed_value_px <= 0.0 {
            return 0.0;
        }
        self.downlinked_value_px() / self.observed_value_px
    }

    /// Fraction of the downlink capacity actually used. A degenerate
    /// zero-capacity link reports 0.0 rather than NaN so the ratio stays
    /// safe to aggregate and serialize.
    pub fn capacity_utilization(&self) -> f64 {
        if self.capacity_px <= 0.0 {
            return 0.0;
        }
        self.downlinked_px() / self.capacity_px
    }

    /// Precision of the produced stream before capacity thinning:
    /// high-value fraction of what the policy chose to send. A policy
    /// that produced nothing reports 0.0 rather than NaN, matching the
    /// other ratio accessors.
    pub fn produced_precision(&self) -> f64 {
        if self.produced_px <= 0.0 {
            return 0.0;
        }
        self.produced_value_px / self.produced_px
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DownlinkAccounting {
        DownlinkAccounting {
            capacity_px: 100.0,
            produced_px: 0.0,
            produced_value_px: 0.0,
            observed_px: 1000.0,
            observed_value_px: 480.0,
        }
    }

    #[test]
    fn bent_pipe_dvd_equals_prevalence() {
        // Producing all observed data at 48% value, way over capacity:
        // DVD = prevalence.
        let mut a = base();
        a.produced_px = 1000.0;
        a.produced_value_px = 480.0;
        assert!((a.dvd() - 0.48).abs() < 1e-12);
        assert_eq!(a.downlinked_px(), 100.0);
        assert_eq!(a.capacity_utilization(), 1.0);
        // 48 of 480 observed high-value pixels land.
        assert!((a.observed_hv_downlinked() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn precise_filter_saturating_link_has_high_dvd() {
        let mut a = base();
        a.produced_px = 200.0; // still above capacity
        a.produced_value_px = 186.0; // 93% precision
        assert!((a.dvd() - 0.93).abs() < 1e-12);
    }

    #[test]
    fn underproduction_wastes_capacity() {
        // Produce only 50 px at perfect precision: DVD capped at 0.5.
        let mut a = base();
        a.produced_px = 50.0;
        a.produced_value_px = 50.0;
        assert!((a.dvd() - 0.5).abs() < 1e-12);
        assert!((a.capacity_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_production_is_zero_dvd() {
        let a = base();
        assert_eq!(a.dvd(), 0.0);
        assert_eq!(a.observed_hv_downlinked(), 0.0);
    }

    #[test]
    fn thinning_preserves_value_ratio() {
        let mut a = base();
        a.produced_px = 400.0;
        a.produced_value_px = 300.0;
        let kept = a.downlinked_value_px() / a.downlinked_px();
        assert!((kept - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ratio_accessors_guard_zero_denominators() {
        // Every ratio accessor must return a finite 0.0 — never NaN —
        // when its denominator degenerates, so downstream aggregation
        // and JSON serialization stay well-defined.
        let mut a = base();
        a.capacity_px = 0.0;
        a.produced_px = 0.0;
        a.observed_value_px = 0.0;
        assert_eq!(a.capacity_utilization(), 0.0);
        assert_eq!(a.downlinked_value_px(), 0.0);
        assert_eq!(a.observed_hv_downlinked(), 0.0);
        assert_eq!(a.produced_precision(), 0.0);
        assert!(a.capacity_utilization().is_finite());
        assert!(a.produced_precision().is_finite());
    }

    #[test]
    fn produced_precision_reflects_the_policy() {
        let mut a = base();
        a.produced_px = 200.0;
        a.produced_value_px = 186.0;
        assert!((a.produced_precision() - 0.93).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let mut a = base();
        a.capacity_px = 0.0;
        let _ = a.dvd();
    }
}
