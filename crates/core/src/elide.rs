//! Per-context actions: process, downlink without processing, or discard.
//!
//! Context-based elision (paper Section 3) skips costly inference for
//! tiles whose context is overwhelmingly high-value (downlink them raw)
//! or overwhelmingly low-value (discard them). The selection logic
//! chooses among these actions and the available models per context; this
//! module defines the action vocabulary and the per-action outcome
//! estimates the optimizer consumes.

use kodan_cote::time::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the runtime does with a tile of a given context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Elide processing and drop the tile entirely.
    Discard,
    /// Elide processing and enqueue the whole tile for downlink.
    Downlink,
    /// Run the model at `model_index` within the selection logic's model
    /// table and downlink the pixels it labels high-value.
    Process {
        /// Index into [`crate::selection::SelectionLogic::models`].
        model_index: usize,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Discard => f.write_str("discard"),
            Action::Downlink => f.write_str("downlink"),
            Action::Process { model_index } => write!(f, "model#{model_index}"),
        }
    }
}

/// Expected per-tile outcome of taking an action in a context, estimated
/// from validation statistics during the transformation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActionOutcome {
    /// The action.
    pub action: Action,
    /// Inference time added on top of the per-tile base cost (context
    /// engine + resize). Zero for elision actions.
    pub extra_time: Duration,
    /// Expected fraction of the tile's pixels that get downlinked.
    pub sent_fraction: f64,
    /// Expected fraction of the tile's pixels that get downlinked *and*
    /// are genuinely high-value.
    pub value_fraction: f64,
}

impl ActionOutcome {
    /// Outcome of discarding tiles of a context.
    pub fn discard() -> ActionOutcome {
        ActionOutcome {
            action: Action::Discard,
            extra_time: Duration::ZERO,
            sent_fraction: 0.0,
            value_fraction: 0.0,
        }
    }

    /// Outcome of downlinking tiles of a context raw, where
    /// `high_value_fraction` is the context's expected clear-pixel share.
    ///
    /// # Panics
    ///
    /// Panics if `high_value_fraction` is outside `[0, 1]`.
    pub fn downlink(high_value_fraction: f64) -> ActionOutcome {
        assert!(
            (0.0..=1.0).contains(&high_value_fraction),
            "high-value fraction must be in [0, 1]"
        );
        ActionOutcome {
            action: Action::Downlink,
            extra_time: Duration::ZERO,
            sent_fraction: 1.0,
            value_fraction: high_value_fraction,
        }
    }

    /// Outcome of processing with a model whose validation confusion
    /// matrix on this context is `cm` and whose per-tile inference time is
    /// `time` (positive class = high-value pixel).
    pub fn process(
        model_index: usize,
        cm: &kodan_ml::eval::ConfusionMatrix,
        time: Duration,
    ) -> ActionOutcome {
        let total = cm.total().max(1) as f64;
        ActionOutcome {
            action: Action::Process { model_index },
            extra_time: time,
            sent_fraction: (cm.tp + cm.fp) as f64 / total,
            value_fraction: cm.tp as f64 / total,
        }
    }

    /// Expected precision of what this action downlinks (value per sent
    /// bit); 0 if nothing is sent.
    pub fn precision(&self) -> f64 {
        if self.sent_fraction <= 0.0 {
            0.0
        } else {
            self.value_fraction / self.sent_fraction
        }
    }
}

impl kodan_wire::Encode for Action {
    fn encode(&self, enc: &mut kodan_wire::Enc) {
        match self {
            Action::Discard => enc.u16(0),
            Action::Downlink => enc.u16(1),
            Action::Process { model_index } => {
                enc.u16(2);
                enc.usize(*model_index);
            }
        }
    }
}

impl kodan_wire::Decode for Action {
    fn decode(dec: &mut kodan_wire::Dec<'_>) -> Result<Self, kodan_wire::WireError> {
        match dec.u16()? {
            0 => Ok(Action::Discard),
            1 => Ok(Action::Downlink),
            2 => Ok(Action::Process {
                model_index: dec.usize()?,
            }),
            tag => Err(kodan_wire::WireError::BadTag {
                what: "Action",
                tag: u32::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kodan_ml::eval::ConfusionMatrix;

    #[test]
    fn discard_sends_nothing() {
        let o = ActionOutcome::discard();
        assert_eq!(o.sent_fraction, 0.0);
        assert_eq!(o.value_fraction, 0.0);
        assert_eq!(o.extra_time, Duration::ZERO);
        assert_eq!(o.precision(), 0.0);
    }

    #[test]
    fn downlink_sends_everything_at_context_prevalence() {
        let o = ActionOutcome::downlink(0.9);
        assert_eq!(o.sent_fraction, 1.0);
        assert_eq!(o.value_fraction, 0.9);
        assert_eq!(o.precision(), 0.9);
    }

    #[test]
    fn process_outcome_reflects_confusion_matrix() {
        let cm = ConfusionMatrix {
            tp: 60,
            fp: 10,
            tn: 25,
            fn_: 5,
        };
        let o = ActionOutcome::process(2, &cm, Duration::from_seconds(0.5));
        assert_eq!(o.action, Action::Process { model_index: 2 });
        assert!((o.sent_fraction - 0.7).abs() < 1e-12);
        assert!((o.value_fraction - 0.6).abs() < 1e-12);
        assert!((o.precision() - 6.0 / 7.0).abs() < 1e-12);
        assert_eq!(o.extra_time.as_seconds(), 0.5);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Action::Discard.to_string(), "discard");
        assert_eq!(Action::Downlink.to_string(), "downlink");
        assert_eq!(Action::Process { model_index: 3 }.to_string(), "model#3");
    }

    #[test]
    #[should_panic(expected = "high-value fraction")]
    fn rejects_bad_prevalence() {
        let _ = ActionOutcome::downlink(1.5);
    }
}
