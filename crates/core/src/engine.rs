//! The context engine: on-orbit tile-to-context classification.
//!
//! Before deployment, contexts are defined over *truth* label vectors
//! (surface fractions, cloud cover) that a satellite does not have for a
//! fresh observation. The context engine closes that gap: a lightweight
//! classifier over *observable* tile statistics (channel means, texture,
//! latitude) trained to reproduce the context partition. Its output "is
//! considered ground truth" by the rest of the runtime (paper
//! Section 3.2) — misclassifications simply route a tile to a model
//! trained for a sibling context, a cost the evaluation captures.

use crate::context::{ContextId, ContextSet};
use crate::KodanError;
use kodan_geodata::tile::TileImage;
use kodan_ml::metrics::DistanceMetric;
use kodan_ml::transform::{FittedTransform, TransformKind};
use kodan_telemetry::{CounterId, Recorder, TelemetryEvent};
use serde::{Deserialize, Serialize};

/// Dimension of the observable runtime feature vector: 5 channel means +
/// luminance std + cirrus-excess + |latitude|/90.
pub const RUNTIME_FEATURE_DIM: usize = 8;

/// Computes the observable features of a tile available on orbit.
pub fn runtime_features(tile: &TileImage) -> [f64; RUNTIME_FEATURE_DIM] {
    let means = tile.channel_means();
    let (lum_mean, lum_std) = tile.luminance_stats();
    [
        means[0],
        means[1],
        means[2],
        means[3],
        means[4],
        lum_std,
        means[4] - 0.05 * lum_mean,
        tile.center_lat_deg().abs() / 90.0,
    ]
}

/// The deployed context engine: nearest-centroid over standardized
/// runtime features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextEngine {
    scaler: FittedTransform,
    centroids: Vec<Vec<f64>>,
    /// Training agreement with the truth partition, in `[0, 1]`.
    train_agreement: f64,
}

impl ContextEngine {
    /// Trains a context engine to reproduce `contexts` on the training
    /// tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is empty.
    pub fn train(tiles: &[TileImage], contexts: &ContextSet) -> ContextEngine {
        assert!(!tiles.is_empty(), "engine needs training tiles");
        let features: Vec<Vec<f64>> = tiles
            .iter()
            .map(|t| runtime_features(t).to_vec())
            .collect();
        let scaler = TransformKind::Standardize.fit(&features);
        let scaled = scaler.apply_all(&features);

        let k = contexts.len();
        let mut sums = vec![vec![0.0; RUNTIME_FEATURE_DIM]; k];
        let mut counts = vec![0usize; k];
        for (tile, f) in tiles.iter().zip(&scaled) {
            let c = contexts.classify_truth(tile).0;
            if let (Some(count), Some(sum)) = (counts.get_mut(c), sums.get_mut(c)) {
                *count += 1;
                for (s, v) in sum.iter_mut().zip(f) {
                    *s += v;
                }
            }
        }
        let centroids: Vec<Vec<f64>> = sums
            .into_iter()
            .zip(&counts)
            .map(|(s, &n)| {
                if n == 0 {
                    // Empty context: park its centroid far away so it never
                    // wins a nearest-centroid vote.
                    vec![1e6; RUNTIME_FEATURE_DIM]
                } else {
                    s.into_iter().map(|v| v / n as f64).collect()
                }
            })
            .collect();

        let mut engine = ContextEngine {
            scaler,
            centroids,
            train_agreement: 0.0,
        };
        let agree = tiles
            .iter()
            .filter(|t| engine.classify(t) == contexts.classify_truth(t))
            .count();
        engine.train_agreement = agree as f64 / tiles.len() as f64;
        engine
    }

    /// Classifies an observed tile into a context.
    pub fn classify(&self, tile: &TileImage) -> ContextId {
        let features = self.scaler.apply(&runtime_features(tile));
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.centroids.iter().enumerate() {
            let d = DistanceMetric::Euclidean.distance(&features, c);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        ContextId(best)
    }

    /// Agreement with the truth partition measured on the training tiles.
    pub fn train_agreement(&self) -> f64 {
        self.train_agreement
    }

    /// Agreement with the truth partition on held-out tiles.
    pub fn agreement_on(&self, tiles: &[TileImage], contexts: &ContextSet) -> f64 {
        if tiles.is_empty() {
            return 0.0;
        }
        let agree = tiles
            .iter()
            .filter(|t| self.classify(t) == contexts.classify_truth(t))
            .count();
        agree as f64 / tiles.len() as f64
    }

    /// Number of contexts this engine distinguishes.
    pub fn context_count(&self) -> usize {
        self.centroids.len()
    }
}

/// The expert (map-based) context engine: classifies a tile from the
/// satellite's knowledge of *where it is looking* rather than from pixel
/// content.
///
/// The paper notes that expert contexts "can be determined from satellite
/// position and orientation, a geographic map, and a projection of the
/// expected satellite view onto this map" — cheaply, or even precomputed
/// from the orbit. Here the geographic map is the world's surface map and
/// the projection is the tile's ground footprint center.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpertMapEngine {
    map: kodan_geodata::surface::SurfaceMap,
    surface_to_context: [usize; 8],
}

impl ExpertMapEngine {
    /// Builds a map engine for an expert-generated context set.
    ///
    /// # Errors
    ///
    /// Returns [`KodanError::NotExpertGenerated`] if `contexts` was not
    /// expert-generated (auto-clustered contexts carry no surface map).
    pub fn new(
        map: kodan_geodata::surface::SurfaceMap,
        contexts: &ContextSet,
    ) -> Result<ExpertMapEngine, KodanError> {
        let surface_to_context = *contexts
            .expert_surface_map()
            .ok_or(KodanError::NotExpertGenerated)?;
        Ok(ExpertMapEngine {
            map,
            surface_to_context,
        })
    }

    /// Classifies a tile by looking up the surface under its center.
    pub fn classify(&self, tile: &TileImage) -> ContextId {
        let surface = self.map.classify(tile.center_lat_deg(), tile.center_lon_deg());
        let idx = self
            .surface_to_context
            .get(surface.index())
            .copied()
            .unwrap_or(usize::MAX);
        ContextId(if idx == usize::MAX { 0 } else { idx })
    }

    /// Agreement with the truth partition on a tile set.
    pub fn agreement_on(&self, tiles: &[TileImage], contexts: &ContextSet) -> f64 {
        if tiles.is_empty() {
            return 0.0;
        }
        let agree = tiles
            .iter()
            .filter(|t| self.classify(t) == contexts.classify_truth(t))
            .count();
        agree as f64 / tiles.len() as f64
    }
}

/// Any deployed context engine: the learned nearest-centroid engine or
/// the expert map engine. The runtime is agnostic to which one routes its
/// tiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineKind {
    /// Nearest-centroid over observable tile statistics.
    Learned(ContextEngine),
    /// Geographic-map lookup from satellite position.
    ExpertMap(ExpertMapEngine),
}

impl EngineKind {
    /// Classifies a tile into a context.
    pub fn classify(&self, tile: &TileImage) -> ContextId {
        match self {
            EngineKind::Learned(engine) => engine.classify(tile),
            EngineKind::ExpertMap(engine) => engine.classify(tile),
        }
    }

    /// Classifies a tile and reports the assignment to `recorder`: a
    /// [`TelemetryEvent::TileClassified`] journal entry plus a counter
    /// attributing the classification to the learned or expert engine.
    /// `tile_index` is the tile's raster position within its frame.
    pub fn classify_recorded(
        &self,
        tile: &TileImage,
        tile_index: u32,
        recorder: &mut dyn Recorder,
    ) -> ContextId {
        let context = match self {
            EngineKind::Learned(engine) => {
                recorder.count(CounterId::LearnedClassifications, 1);
                engine.classify(tile)
            }
            EngineKind::ExpertMap(engine) => {
                recorder.count(CounterId::ExpertClassifications, 1);
                engine.classify(tile)
            }
        };
        recorder.event(TelemetryEvent::TileClassified {
            tile: tile_index,
            context: context.0 as u32,
        });
        context
    }
}

impl kodan_wire::Encode for ContextEngine {
    fn encode(&self, enc: &mut kodan_wire::Enc) {
        self.scaler.encode(enc);
        self.centroids.encode(enc);
        enc.f64(self.train_agreement);
    }
}

impl kodan_wire::Decode for ContextEngine {
    fn decode(dec: &mut kodan_wire::Dec<'_>) -> Result<Self, kodan_wire::WireError> {
        let scaler = FittedTransform::decode(dec)?;
        let centroids = Vec::<Vec<f64>>::decode(dec)?;
        let train_agreement = dec.f64()?;
        if centroids.is_empty()
            || centroids.iter().any(|c| c.len() != RUNTIME_FEATURE_DIM)
        {
            return Err(kodan_wire::WireError::InvalidValue(
                "context engine centroid shape",
            ));
        }
        Ok(ContextEngine {
            scaler,
            centroids,
            train_agreement,
        })
    }
}

impl From<ContextEngine> for EngineKind {
    fn from(engine: ContextEngine) -> EngineKind {
        EngineKind::Learned(engine)
    }
}

impl From<ExpertMapEngine> for EngineKind {
    fn from(engine: ExpertMapEngine) -> EngineKind {
        EngineKind::ExpertMap(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kodan_ml::transform::TransformKind;
    use kodan_geodata::{Dataset, DatasetConfig, World};

    fn setup() -> (Vec<TileImage>, Vec<TileImage>, ContextSet) {
        let world = World::new(42);
        let mut cfg = DatasetConfig::small(1);
        cfg.frame_count = 16;
        let dataset = Dataset::sample(&world, &cfg);
        let (train, val) = dataset.split(0.7, 3);
        let train_tiles = train.tiles(3);
        let val_tiles = val.tiles(3);
        let contexts = ContextSet::generate_auto(
            &train_tiles,
            3,
            DistanceMetric::Euclidean,
            TransformKind::Standardize,
            1,
        );
        (train_tiles, val_tiles, contexts)
    }

    #[test]
    fn engine_agrees_with_truth_on_training_data() {
        let (train_tiles, _, contexts) = setup();
        let engine = ContextEngine::train(&train_tiles, &contexts);
        assert!(
            engine.train_agreement() > 0.6,
            "train agreement = {}",
            engine.train_agreement()
        );
        assert_eq!(engine.context_count(), 3);
    }

    #[test]
    fn engine_generalizes_to_validation_tiles() {
        let (train_tiles, val_tiles, contexts) = setup();
        let engine = ContextEngine::train(&train_tiles, &contexts);
        let val_agreement = engine.agreement_on(&val_tiles, &contexts);
        // Far better than the 1/3 chance baseline.
        assert!(val_agreement > 0.5, "val agreement = {val_agreement}");
    }

    #[test]
    fn engine_outputs_valid_ids() {
        let (train_tiles, val_tiles, contexts) = setup();
        let engine = ContextEngine::train(&train_tiles, &contexts);
        for t in &val_tiles {
            assert!(engine.classify(t).0 < contexts.len());
        }
    }

    #[test]
    fn runtime_features_are_observable_and_bounded() {
        let (train_tiles, _, _) = setup();
        for t in train_tiles.iter().take(20) {
            let f = runtime_features(t);
            for v in f {
                assert!(v.is_finite());
            }
            assert!((0.0..=1.0).contains(&f[7]), "latitude feature {}", f[7]);
        }
    }

    #[test]
    fn deterministic_training() {
        let (train_tiles, _, contexts) = setup();
        let a = ContextEngine::train(&train_tiles, &contexts);
        let b = ContextEngine::train(&train_tiles, &contexts);
        assert_eq!(a, b);
    }

    #[test]
    fn expert_map_engine_matches_truth_well() {
        // With expert contexts the truth partition IS the surface map, so
        // the map engine should agree almost perfectly (residual
        // disagreement: tile centers vs. dominant-pixel votes).
        let world = World::new(42);
        let mut cfg = DatasetConfig::small(1);
        cfg.frame_count = 10;
        let dataset = Dataset::sample(&world, &cfg);
        let tiles = dataset.tiles(3);
        let contexts = ContextSet::generate_expert(&tiles);
        let engine =
            ExpertMapEngine::new(*world.surface(), &contexts).expect("contexts are expert");
        let agreement = engine.agreement_on(&tiles, &contexts);
        assert!(agreement > 0.75, "map-engine agreement {agreement}");
    }

    #[test]
    fn engine_kind_dispatches_to_both_engines() {
        let (train_tiles, _, contexts) = setup();
        let learned = ContextEngine::train(&train_tiles, &contexts);
        let kind: EngineKind = learned.clone().into();
        for t in train_tiles.iter().take(10) {
            assert_eq!(kind.classify(t), learned.classify(t));
        }
    }

    #[test]
    fn recorded_classification_matches_and_attributes() {
        let (train_tiles, _, contexts) = setup();
        let learned = ContextEngine::train(&train_tiles, &contexts);
        let kind: EngineKind = learned.into();
        let mut recorder = kodan_telemetry::SummaryRecorder::new();
        for (i, t) in train_tiles.iter().take(12).enumerate() {
            let plain = kind.classify(t);
            let recorded = kind.classify_recorded(t, i as u32, &mut recorder);
            assert_eq!(plain, recorded);
        }
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(CounterId::LearnedClassifications), 12);
        assert_eq!(snap.counter(CounterId::ExpertClassifications), 0);
        assert_eq!(snap.context_tiles.values().sum::<u64>(), 12);
    }

    #[test]
    fn expert_map_engine_rejects_auto_contexts() {
        let (_, _, contexts) = setup();
        let world = World::new(42);
        assert_eq!(
            ExpertMapEngine::new(*world.surface(), &contexts).unwrap_err(),
            KodanError::NotExpertGenerated
        );
    }
}
