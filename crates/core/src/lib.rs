//! # kodan
//!
//! A reproduction of **Kodan** (Denby et al., ASPLOS '23): an orbital edge
//! computing system that maximizes the *data value density* (DVD) of a
//! saturated satellite downlink while mitigating the computational
//! bottleneck of space-grade hardware.
//!
//! Kodan adjusts a geospatial analysis application to each deployment
//! target with three techniques:
//!
//! 1. **Context-specialized models** ([`context`], [`specialize`]) —
//!    cluster the representative dataset into geospatial contexts and
//!    train smaller, more precise models per context.
//! 2. **Frame tiling** ([`tiling`]) — sweep tiles-per-frame to trade
//!    decimation error against per-frame execution time.
//! 3. **Context-based elision** ([`elide`]) — downlink tiles from
//!    overwhelmingly high-value contexts and discard tiles from
//!    overwhelmingly low-value ones without running inference.
//!
//! A one-time transformation step ([`pipeline`]) combines these into a
//! **selection logic** ([`selection`]) for a specific hardware target;
//! the on-orbit runtime ([`runtime`]) executes it per tile, and
//! [`mission`] simulates full day-scale deployments against the `cote`
//! space-segment model to measure DVD ([`dvd`]) and constellation sizing
//! ([`coverage`]). The [`artifact`] module seals the deployable set —
//! context map, engine, models, selection logic — into `kodan-wire`
//! sections for the modeled ground→space uplink and loads them back
//! without retraining.
//!
//! ## Quickstart
//!
//! ```no_run
//! use kodan::config::KodanConfig;
//! use kodan::pipeline::Transformation;
//! use kodan_geodata::{Dataset, DatasetConfig, World};
//! use kodan_hw::HwTarget;
//! use kodan_ml::ModelArch;
//!
//! let world = World::new(42);
//! let dataset = Dataset::sample(&world, &DatasetConfig::small(1));
//! let config = KodanConfig::fast(7);
//! let artifacts = Transformation::new(config)
//!     .run(&dataset, ModelArch::MobileNetV2DilatedC1)
//!     .expect("transformation succeeds");
//! let logic = artifacts.select_for_target(
//!     HwTarget::OrinAgx15W,
//!     kodan_cote::time::Duration::from_seconds(22.0),
//! );
//! println!("selected {} tiles/frame", logic.tiles_per_frame());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

pub mod artifact;
pub mod config;
pub mod context;
pub mod coverage;
pub mod dvd;
pub mod elide;
pub mod engine;
pub mod mission;
pub mod par;
pub mod pipeline;
pub mod queue;
pub mod runtime;
pub mod selection;
pub mod specialize;
pub mod tiling;

pub use config::KodanConfig;
pub use context::{Context, ContextId, ContextSet};
pub use engine::ContextEngine;
pub use pipeline::{Transformation, TransformationArtifacts};
pub use selection::SelectionLogic;

/// Errors surfaced by the transformation and runtime paths.
///
/// On-orbit code must not panic — there is no operator to restart a
/// crashed pipeline — so conditions that used to `panic!`/`expect` are
/// reported through this enum instead and handled by the caller (retry,
/// fall back to direct deployment, or abort the transformation on the
/// ground where it is cheap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KodanError {
    /// A grid dimension was requested that the transformation never
    /// swept; carries the offending grid.
    UnknownGrid(usize),
    /// The configuration lists no tile grids, so no models can be
    /// trained and no selection logic derived.
    NoGrids,
    /// An expert map engine was requested for a context set that was
    /// not expert-generated (auto-clustered contexts carry no surface
    /// map to look tiles up in).
    NotExpertGenerated,
    /// A downlink-queue entry had a negative, non-finite or inconsistent
    /// size (value exceeding size). Such entries come from corrupted
    /// accounting — the mission drops the entry and continues rather
    /// than aborting on orbit.
    InvalidQueueEntry,
}

impl fmt::Display for KodanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KodanError::UnknownGrid(grid) => {
                write!(f, "grid {grid} was not swept by the transformation")
            }
            KodanError::NoGrids => write!(f, "configuration lists no tile grids"),
            KodanError::NotExpertGenerated => {
                write!(f, "expert map engine requires expert-generated contexts")
            }
            KodanError::InvalidQueueEntry => {
                write!(f, "queue entry has a negative, non-finite or inconsistent size")
            }
        }
    }
}

impl std::error::Error for KodanError {}
