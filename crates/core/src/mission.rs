//! End-to-end mission simulation: Kodan against the space segment.
//!
//! A mission couples four substrates: `cote` supplies the orbit, frame
//! deadline and (contention-resolved) downlink capacity; `geodata`
//! renders what the satellite actually sees along its ground track;
//! the runtime processes frames under the `hw` latency model; and the
//! DVD accounting scores what reaches the ground.
//!
//! Day-scale missions observe thousands of frames; rendering all of them
//! is unnecessary — value statistics converge with a few dozen sampled
//! frames spread along the ground track, and the compute/downlink
//! bookkeeping is exact arithmetic on top. `sample_frames` controls the
//! trade.

use crate::dvd::DownlinkAccounting;
use crate::queue::{DownlinkQueue, QueueEntry};
use crate::runtime::{bent_pipe_frame, FrameOutcome, Runtime};
use kodan_cote::constellation::Constellation;
use kodan_cote::ground::GroundSegment;
use kodan_cote::orbit::Orbit;
use kodan_cote::sensor::{capture_schedule, Imager};
use kodan_cote::sim::{simulate_space_segment, ServedPass};
use kodan_cote::time::Duration;
use kodan_faults::{ContactFault, ContactOutcome, FaultPlan};
use kodan_geodata::frame::{FrameImage, World};
use kodan_telemetry::{
    CounterId, FaultKind, NullRecorder, Recorder, RecoveryKind, StageId, TelemetryEvent,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which data-handling system a mission runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Downlink raw observations indiscriminately.
    BentPipe,
    /// The reference application deployed unchanged (densest tiling,
    /// full model, no contexts).
    DirectDeploy,
    /// The full Kodan pipeline.
    Kodan,
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemKind::BentPipe => f.write_str("bent pipe"),
            SystemKind::DirectDeploy => f.write_str("direct deploy"),
            SystemKind::Kodan => f.write_str("kodan"),
        }
    }
}

/// The space-segment context of a mission: orbit, sensor, deadline and
/// downlink capacity, derived from a `cote` simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceEnvironment {
    /// The satellite's orbit.
    pub orbit: Orbit,
    /// The imaging payload.
    pub imager: Imager,
    /// Frame deadline for this orbit/sensor pair.
    pub frame_deadline: Duration,
    /// Frames observed per satellite per day.
    pub frames_per_day: u64,
    /// Downlink capacity per satellite per day divided by the raw data
    /// volume observed per satellite per day.
    pub capacity_fraction: f64,
}

impl SpaceEnvironment {
    /// Builds the Landsat-like environment used throughout the paper's
    /// evaluation: a sun-synchronous 705 km orbit, an OLI-class imager,
    /// and the Landsat ground segment shared among `satellite_count`
    /// same-plane satellites.
    pub fn landsat(satellite_count: usize) -> SpaceEnvironment {
        let orbit = Orbit::sun_synchronous(705_000.0);
        let imager = Imager::landsat_oli();
        let constellation = Constellation::same_plane(orbit, satellite_count);
        let report = simulate_space_segment(
            &constellation,
            &imager,
            &GroundSegment::landsat(),
            Duration::from_days(1.0),
        );
        let frames_per_day = report.frames_seen_per_satellite;
        let observed_bits = frames_per_day as f64 * imager.frame_bits();
        let capacity_per_sat = report.capacity_bits / satellite_count as f64;
        SpaceEnvironment {
            orbit,
            imager,
            frame_deadline: report.frame_deadline,
            frames_per_day,
            capacity_fraction: (capacity_per_sat / observed_bits).min(1.0),
        }
    }

    /// A fixed environment for tests: the Landsat geometry with a pinned
    /// capacity fraction, skipping the contact-window simulation.
    pub fn fixed(capacity_fraction: f64) -> SpaceEnvironment {
        let orbit = Orbit::sun_synchronous(705_000.0);
        let imager = Imager::landsat_oli();
        let frame_deadline = imager.frame_deadline(&orbit);
        let frames_per_day = imager.frames_in(&orbit, Duration::from_days(1.0));
        SpaceEnvironment {
            orbit,
            imager,
            frame_deadline,
            frames_per_day,
            capacity_fraction,
        }
    }
}

/// Sampling parameters for a mission run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissionParams {
    /// Number of frames rendered and actually pushed through the data
    /// path; statistics scale to the full day.
    pub sample_frames: usize,
    /// Native resolution of rendered frames (must be divisible by the
    /// runtime's tile grid).
    pub frame_px: usize,
    /// Rendered frame ground extent, km.
    pub frame_km: f64,
    /// Days of ground track the sampled frames are spread over. The
    /// capacity model is always per-day; a multi-day sampling window just
    /// averages out day-scale cloud-system variance in the statistics.
    pub sample_window_days: f64,
}

impl MissionParams {
    /// Default sampling: 48 frames at the 132 px working resolution,
    /// spread over four days of ground track.
    pub fn default_sampling() -> MissionParams {
        MissionParams {
            sample_frames: 48,
            frame_px: 132,
            frame_km: 150.0,
            sample_window_days: 4.0,
        }
    }
}

impl Default for MissionParams {
    fn default() -> Self {
        MissionParams::default_sampling()
    }
}

/// The result of a day-scale mission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionReport {
    /// Which system ran.
    pub system: SystemKind,
    /// Frames observed over the day.
    pub frames_observed: u64,
    /// Mean modeled compute time per frame.
    pub mean_frame_time: Duration,
    /// Fraction of frames processed within the deadline.
    pub processed_fraction: f64,
    /// The downlink ledger (pixel units, scaled to the full day).
    pub accounting: DownlinkAccounting,
    /// Data value density of the saturated downlink.
    pub dvd: f64,
    /// Fraction of observed high-value data downlinked (Figure 5's
    /// metric).
    pub observed_hv_downlinked: f64,
}

/// A mission runner bound to an environment and a world.
#[derive(Debug, Clone, Copy)]
pub struct Mission<'a> {
    env: &'a SpaceEnvironment,
    world: &'a World,
    params: MissionParams,
}

impl<'a> Mission<'a> {
    /// Creates a mission runner.
    ///
    /// # Panics
    ///
    /// Panics if `sample_frames` is zero.
    pub fn new(env: &'a SpaceEnvironment, world: &'a World, params: MissionParams) -> Mission<'a> {
        assert!(params.sample_frames > 0, "mission needs sample frames");
        Mission { env, world, params }
    }

    /// Renders the sampled frames along the day's ground track.
    pub fn sample_frames(&self) -> Vec<FrameImage> {
        let schedule = capture_schedule(
            &self.env.orbit,
            &self.env.imager,
            0,
            Duration::from_days(self.params.sample_window_days.max(0.05)),
        );
        let n = self.params.sample_frames.min(schedule.len());
        let stride = (schedule.len() / n).max(1);
        schedule
            .iter()
            .step_by(stride)
            .take(n)
            .map(|cap| {
                let t_days = (cap.epoch - self.env.orbit.epoch()).as_days();
                self.world.render_frame(
                    cap.center.latitude_deg(),
                    cap.center.longitude_deg(),
                    t_days,
                    self.params.frame_px,
                    self.params.frame_km,
                )
            })
            .collect()
    }

    /// Runs the bent-pipe baseline.
    pub fn run_bent_pipe(&self) -> MissionReport {
        let frames = self.sample_frames();
        let mut total = FrameOutcome::default();
        for frame in &frames {
            total.absorb(&bent_pipe_frame(frame));
        }
        self.summarize(SystemKind::BentPipe, &total, Duration::ZERO)
    }

    /// Runs a mission with a prepared runtime (direct deploy or Kodan,
    /// depending on how the runtime's selection logic was built).
    pub fn run_with_runtime(&self, runtime: &Runtime, system: SystemKind) -> MissionReport {
        self.run_with_runtime_recorded(runtime, system, &mut NullRecorder)
    }

    /// [`Mission::run_with_runtime`] with telemetry: frame sampling and
    /// every per-frame runtime decision are reported to `recorder` (see
    /// [`Runtime::process_frame_recorded`]). Any `Recorder` works —
    /// summary, tape, trace builder, flight recorder — and each sees the
    /// same byte-identical stream at any worker count, which is what the
    /// `kodan trace` / `kodan health` surfaces are built on.
    pub fn run_with_runtime_recorded(
        &self,
        runtime: &Runtime,
        system: SystemKind,
        recorder: &mut dyn Recorder,
    ) -> MissionReport {
        let frames = self.sample_frames();
        recorder.span(StageId::FrameSampling, 0.0, frames.len() as u64);
        // Fans out across the runtime's worker threads; the aggregate and
        // the recorder's call sequence are bit-identical to serial.
        let (total, mean_time) = runtime.process_frames_recorded(frames.iter(), recorder);
        recorder.span(StageId::Mission, total.compute.as_seconds(), frames.len() as u64);
        self.summarize(system, &total, mean_time)
    }

    fn summarize(
        &self,
        system: SystemKind,
        total: &FrameOutcome,
        mean_frame_time: Duration,
    ) -> MissionReport {
        let sent_fraction = total.sent_px as f64 / total.observed_px.max(1) as f64;
        let value_fraction = total.value_px as f64 / total.observed_px.max(1) as f64;
        let hv_prevalence =
            total.observed_value_px as f64 / total.observed_px.max(1) as f64;

        let processed_fraction = if system == SystemKind::BentPipe
            || mean_frame_time <= self.env.frame_deadline
        {
            1.0
        } else {
            self.env.frame_deadline / mean_frame_time
        };

        // Scale to the full day in pixel units.
        let px_per_frame = (self.params.frame_px * self.params.frame_px) as f64;
        let day_observed = self.env.frames_per_day as f64 * px_per_frame;
        let accounting = DownlinkAccounting {
            capacity_px: self.env.capacity_fraction * day_observed,
            produced_px: processed_fraction * sent_fraction * day_observed,
            produced_value_px: processed_fraction * value_fraction * day_observed,
            observed_px: day_observed,
            observed_value_px: hv_prevalence * day_observed,
        };

        MissionReport {
            system,
            frames_observed: self.env.frames_per_day,
            mean_frame_time,
            processed_fraction,
            dvd: accounting.dvd(),
            observed_hv_downlinked: accounting.observed_hv_downlinked(),
            accounting,
        }
    }
}

/// Result of a pass-by-pass (queue-replay) mission: what the aggregate
/// capacity model abstracts away — on-board storage pressure and the
/// burstiness of ground contacts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetailedMissionReport {
    /// Pixels transmitted over the day's passes.
    pub sent_px: f64,
    /// High-value pixels transmitted.
    pub sent_value_px: f64,
    /// Pixels evicted on board because storage filled between contacts.
    pub storage_dropped_px: f64,
    /// Pixels still queued at the end of the day.
    pub residual_px: f64,
    /// Data value density of what was transmitted.
    pub transmitted_density: f64,
    /// Pixels shed from the queue to absorb contact capacity lost to
    /// injected faults (zero without a fault plan).
    pub shed_px: f64,
    /// Ground contacts dropped entirely by injected faults.
    pub contacts_dropped: u64,
    /// Ground contacts shortened by injected faults.
    pub contacts_shortened: u64,
}

impl<'a> Mission<'a> {
    /// Replays a full day pass-by-pass through a bounded, value-aware
    /// downlink queue (see [`crate::queue`]).
    ///
    /// Frame captures arrive every frame deadline; each enqueues the
    /// (cyclically reused) outcome of one sampled frame, scaled to pixel
    /// units. Ground passes drain the queue highest-value-density first.
    /// `storage_px` bounds on-board storage.
    ///
    /// # Panics
    ///
    /// Panics if `storage_px` is not positive or `passes` reference
    /// other satellites (satellite index != 0 entries are ignored).
    pub fn run_detailed(
        &self,
        runtime: &Runtime,
        passes: &[ServedPass],
        storage_px: f64,
        bits_per_px: f64,
    ) -> DetailedMissionReport {
        self.run_detailed_faulted(runtime, passes, storage_px, bits_per_px, None, &mut NullRecorder)
    }

    /// [`Mission::run_detailed`] under a contact-level fault plan, with
    /// telemetry.
    ///
    /// Contacts are identified by their index in the time-sorted
    /// own-satellite pass list, so the fault hitting a given pass is a
    /// pure function of `(plan seed, contact index)`. A dropped contact
    /// drains nothing; a shortened or rain-faded contact drains with its
    /// reduced capacity. Either way the queue *sheds* its lowest-density
    /// entries by the lost capacity — giving up data the shrunken
    /// downlink could never carry preserves storage headroom for
    /// higher-value captures still to come.
    ///
    /// Frame-level faults (upsets, throttling, classify failures) are not
    /// decided here: arm them on the runtime itself with
    /// [`Runtime::with_fault_plan`], keyed by sampled-frame index.
    ///
    /// # Panics
    ///
    /// Panics if `storage_px` or `bits_per_px` is not positive.
    pub fn run_detailed_faulted(
        &self,
        runtime: &Runtime,
        passes: &[ServedPass],
        storage_px: f64,
        bits_per_px: f64,
        faults: Option<&FaultPlan>,
        recorder: &mut dyn Recorder,
    ) -> DetailedMissionReport {
        assert!(storage_px > 0.0, "storage must be positive");
        assert!(bits_per_px > 0.0, "pixels must have bits");
        let frames = self.sample_frames();
        let outcomes: Vec<FrameOutcome> = runtime.frame_outcomes(&frames);
        let mean_time = outcomes
            .iter()
            .fold(Duration::ZERO, |acc, o| acc + o.compute)
            / outcomes.len() as f64;
        let processed_fraction = if mean_time <= self.env.frame_deadline {
            1.0
        } else {
            self.env.frame_deadline / mean_time
        };

        // Build the day's event timeline: captures at every deadline,
        // drains at each pass start (own satellite only).
        let deadline_s = self.env.frame_deadline.as_seconds();
        let mut queue = DownlinkQueue::new(storage_px);
        let mut own_passes: Vec<ServedPass> =
            passes.iter().filter(|p| p.satellite == 0).cloned().collect();
        own_passes.sort_by(|a, b| {
            a.start
                .seconds_since_start()
                .total_cmp(&b.start.seconds_since_start())
        });
        let contacts: Vec<ContactOutcome> = match faults {
            Some(plan) => plan.degrade_passes(&own_passes),
            None => own_passes
                .iter()
                .map(|p| ContactOutcome {
                    pass: Some(p.clone()),
                    fault: ContactFault::none(),
                    lost_bits: 0.0,
                })
                .collect(),
        };

        let mut sent_px = 0.0;
        let mut sent_value_px = 0.0;
        let mut shed_px = 0.0;
        let mut contacts_dropped = 0u64;
        let mut contacts_shortened = 0u64;
        let mut serve = |contact: &ContactOutcome,
                         queue: &mut DownlinkQueue,
                         sent_px: &mut f64,
                         sent_value_px: &mut f64,
                         shed_px: &mut f64,
                         recorder: &mut dyn Recorder| {
            if let Some(p) = &contact.pass {
                let budget_px = p.bits() / bits_per_px;
                let r = queue.drain(budget_px);
                *sent_px += r.sent_bits;
                *sent_value_px += r.sent_value_bits;
            }
            let fault = contact.fault;
            if fault.dropped {
                contacts_dropped += 1;
                recorder.count(CounterId::FaultContactsDropped, 1);
                recorder.event(TelemetryEvent::FaultInjected {
                    kind: FaultKind::ContactDrop,
                });
            } else {
                if fault.keep_fraction < 1.0 {
                    contacts_shortened += 1;
                    recorder.count(CounterId::FaultContactsShortened, 1);
                    recorder.event(TelemetryEvent::FaultInjected {
                        kind: FaultKind::ContactShorten,
                    });
                }
                if fault.fade_db > 0.0 {
                    recorder.event(TelemetryEvent::FaultInjected {
                        kind: FaultKind::RainFade,
                    });
                }
            }
            if contact.lost_bits > 0.0 {
                let shed = queue.shed_lowest(contact.lost_bits / bits_per_px);
                if shed.entries_shed > 0 {
                    *shed_px += shed.shed_bits;
                    recorder.count(CounterId::QueueEntriesShed, shed.entries_shed as u64);
                    recorder.event(TelemetryEvent::FaultRecovered {
                        kind: RecoveryKind::QueueShed,
                    });
                }
            }
        };

        let mut next_contact = 0usize;
        let frame_count = self.env.frames_per_day;
        for i in 0..frame_count {
            let t = i as f64 * deadline_s;
            // Serve any contacts that started before this capture.
            while let Some(contact) = contacts.get(next_contact) {
                let starts = own_passes
                    .get(next_contact)
                    .map_or(f64::INFINITY, |p| p.start.seconds_since_start());
                if starts <= t {
                    serve(
                        contact,
                        &mut queue,
                        &mut sent_px,
                        &mut sent_value_px,
                        &mut shed_px,
                        recorder,
                    );
                    next_contact += 1;
                } else {
                    break;
                }
            }
            // Frames beyond the compute budget are skipped (dropped
            // before reaching the queue): process frame i iff the
            // cumulative processed count advances at rate phi.
            let processed_before = ((i as f64) * processed_fraction).floor();
            let processed_after = ((i as f64 + 1.0) * processed_fraction).floor();
            if processed_after > processed_before {
                let slot = (i as usize).checked_rem(outcomes.len()).unwrap_or(0);
                let o = match outcomes.get(slot) {
                    Some(o) => o,
                    None => continue,
                };
                if o.sent_px > 0 {
                    // A corrupt outcome (injected or numeric) must not
                    // take the mission down: drop the entry, count it,
                    // and keep flying.
                    match QueueEntry::new(o.sent_px as f64, o.value_px as f64) {
                        Ok(entry) => queue.push(entry),
                        Err(_) => recorder.count(CounterId::QueueEntriesRejected, 1),
                    }
                }
            }
        }
        // Remaining contacts after the last capture.
        for contact in contacts.iter().skip(next_contact) {
            serve(
                contact,
                &mut queue,
                &mut sent_px,
                &mut sent_value_px,
                &mut shed_px,
                recorder,
            );
        }
        drop(serve);

        DetailedMissionReport {
            sent_px,
            sent_value_px,
            storage_dropped_px: queue.dropped_bits(),
            residual_px: queue.occupied_bits(),
            transmitted_density: if sent_px > 0.0 {
                sent_value_px / sent_px
            } else {
                0.0
            },
            shed_px,
            contacts_dropped,
            contacts_shortened,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KodanConfig;
    use crate::pipeline::{Transformation, TransformationArtifacts};
    use crate::selection::SelectionLogic;
    use kodan_geodata::{Dataset, DatasetConfig};
    use kodan_hw::targets::HwTarget;
    use kodan_ml::zoo::ModelArch;

    fn artifacts(world: &World) -> TransformationArtifacts {
        let mut ds_cfg = DatasetConfig::small(1);
        ds_cfg.frame_count = 12;
        ds_cfg.frame_px = 132;
        let dataset = Dataset::sample(world, &ds_cfg);
        Transformation::new(KodanConfig::fast(3))
            .run(&dataset, ModelArch::ResNet50DilatedPpm)
            .expect("transformation succeeds")
    }

    fn params() -> MissionParams {
        MissionParams {
            sample_frames: 6,
            frame_px: 132,
            frame_km: 150.0,
            sample_window_days: 2.0,
        }
    }

    #[test]
    fn bent_pipe_dvd_tracks_prevalence() {
        let env = SpaceEnvironment::fixed(0.21);
        let world = World::new(42);
        let mission = Mission::new(&env, &world, params());
        let report = mission.run_bent_pipe();
        let prevalence =
            report.accounting.observed_value_px / report.accounting.observed_px;
        assert!((report.dvd - prevalence).abs() < 1e-9);
        assert_eq!(report.processed_fraction, 1.0);
        assert_eq!(report.system, SystemKind::BentPipe);
    }

    #[test]
    fn kodan_beats_bent_pipe_on_the_orin() {
        let env = SpaceEnvironment::fixed(0.21);
        let world = World::new(42);
        let a = artifacts(&world);
        let logic = a.select_with_capacity(
            HwTarget::OrinAgx15W,
            env.frame_deadline,
            env.capacity_fraction,
        );
        let runtime = Runtime::new(logic, a.engine.clone());
        let mission = Mission::new(&env, &world, params());
        let bent = mission.run_bent_pipe();
        let kodan = mission.run_with_runtime(&runtime, SystemKind::Kodan);
        assert!(
            kodan.dvd > bent.dvd,
            "kodan {} vs bent pipe {}",
            kodan.dvd,
            bent.dvd
        );
    }

    #[test]
    fn direct_deploy_misses_the_deadline_on_the_orin() {
        let env = SpaceEnvironment::fixed(0.21);
        let world = World::new(42);
        let a = artifacts(&world);
        let logic = SelectionLogic::direct_deploy(
            &a,
            HwTarget::OrinAgx15W,
            env.frame_deadline,
            env.capacity_fraction,
        );
        let runtime = Runtime::new(logic, a.engine.clone());
        let mission = Mission::new(&env, &world, params());
        let report = mission.run_with_runtime(&runtime, SystemKind::DirectDeploy);
        assert!(report.processed_fraction < 0.2, "{}", report.processed_fraction);
        assert!(report.mean_frame_time > env.frame_deadline);
    }

    #[test]
    fn kodan_meets_the_deadline_on_the_orin() {
        let env = SpaceEnvironment::fixed(0.21);
        let world = World::new(42);
        let a = artifacts(&world);
        let logic = a.select_with_capacity(
            HwTarget::OrinAgx15W,
            env.frame_deadline,
            env.capacity_fraction,
        );
        let runtime = Runtime::new(logic, a.engine.clone());
        let mission = Mission::new(&env, &world, params());
        let report = mission.run_with_runtime(&runtime, SystemKind::Kodan);
        assert!(
            report.processed_fraction > 0.9,
            "processed fraction {}",
            report.processed_fraction
        );
    }

    #[test]
    fn recorded_mission_matches_plain_mission() {
        let env = SpaceEnvironment::fixed(0.21);
        let world = World::new(42);
        let a = artifacts(&world);
        let logic = a.select_with_capacity(
            HwTarget::OrinAgx15W,
            env.frame_deadline,
            env.capacity_fraction,
        );
        let runtime = Runtime::new(logic, a.engine.clone());
        let mission = Mission::new(&env, &world, params());
        let plain = mission.run_with_runtime(&runtime, SystemKind::Kodan);
        let mut recorder = kodan_telemetry::SummaryRecorder::new();
        let recorded =
            mission.run_with_runtime_recorded(&runtime, SystemKind::Kodan, &mut recorder);
        assert_eq!(plain, recorded);
        let snap = recorder.snapshot();
        assert_eq!(snap.frames, 6);
        assert_eq!(snap.span(kodan_telemetry::StageId::FrameSampling).items, 6);
        // Mission span totals are inclusive of their frame children.
        let mission_s = snap.span(kodan_telemetry::StageId::Mission).modeled_seconds;
        let frame_s = snap.span(kodan_telemetry::StageId::Frame).modeled_seconds;
        assert!((mission_s - frame_s).abs() < 1e-9);
    }

    #[test]
    fn sampled_frames_follow_the_ground_track() {
        let env = SpaceEnvironment::fixed(0.21);
        let world = World::new(42);
        let mission = Mission::new(&env, &world, params());
        let frames = mission.sample_frames();
        assert_eq!(frames.len(), 6);
        // Polar orbit: sampled frames span a wide latitude range.
        let lats: Vec<f64> = frames.iter().map(|f| f.center_lat_deg()).collect();
        let span = lats.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - lats.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(span > 30.0, "latitude span {span}");
    }

    #[test]
    fn detailed_mission_agrees_with_aggregate_model() {
        // The queue-replay and the aggregate capacity model should tell
        // the same story when storage is plentiful: similar transmitted
        // value density, transmitted volume within the passes' capacity.
        let world = World::new(42);
        let a = artifacts(&world);
        let orbit = kodan_cote::orbit::Orbit::sun_synchronous(705_000.0);
        let report = kodan_cote::sim::simulate_space_segment(
            &kodan_cote::constellation::Constellation::single(orbit),
            &kodan_cote::sensor::Imager::landsat_oli(),
            &kodan_cote::ground::GroundSegment::landsat(),
            Duration::from_days(1.0),
        );
        let env = SpaceEnvironment::landsat(1);
        let logic = a.select_with_capacity(
            HwTarget::OrinAgx15W,
            env.frame_deadline,
            env.capacity_fraction,
        );
        let runtime = Runtime::new(logic, a.engine.clone());
        let mission = Mission::new(&env, &world, params());
        let aggregate = mission.run_with_runtime(&runtime, SystemKind::Kodan);

        let bits_per_px = env.imager.frame_bits() / (132.0 * 132.0);
        let detailed = mission.run_detailed(&runtime, &report.passes, 1e9, bits_per_px);
        assert!(detailed.sent_px > 0.0);
        assert!(
            (detailed.transmitted_density - aggregate.dvd).abs() < 0.2,
            "detailed density {} vs aggregate dvd {}",
            detailed.transmitted_density,
            aggregate.dvd
        );
        // Conservation: transmitted + dropped + residual is what was
        // produced.
        assert!(detailed.storage_dropped_px >= 0.0);
        assert!(detailed.residual_px >= 0.0);
    }

    #[test]
    fn tight_storage_drops_data_but_keeps_value() {
        let world = World::new(42);
        let a = artifacts(&world);
        let orbit = kodan_cote::orbit::Orbit::sun_synchronous(705_000.0);
        let report = kodan_cote::sim::simulate_space_segment(
            &kodan_cote::constellation::Constellation::single(orbit),
            &kodan_cote::sensor::Imager::landsat_oli(),
            &kodan_cote::ground::GroundSegment::landsat(),
            Duration::from_days(1.0),
        );
        let env = SpaceEnvironment::landsat(1);
        let logic = a.select_with_capacity(
            HwTarget::OrinAgx15W,
            env.frame_deadline,
            env.capacity_fraction,
        );
        let runtime = Runtime::new(logic, a.engine.clone());
        let mission = Mission::new(&env, &world, params());
        let bits_per_px = env.imager.frame_bits() / (132.0 * 132.0);
        let roomy = mission.run_detailed(&runtime, &report.passes, 1e9, bits_per_px);
        let tight = mission.run_detailed(&runtime, &report.passes, 4.0e4, bits_per_px);
        assert!(tight.storage_dropped_px > roomy.storage_dropped_px);
        // The value-aware queue preferentially keeps high-value data, so
        // transmitted density does not collapse under storage pressure.
        assert!(
            tight.transmitted_density >= roomy.transmitted_density - 0.1,
            "tight {} vs roomy {}",
            tight.transmitted_density,
            roomy.transmitted_density
        );
    }

    #[test]
    fn landsat_environment_is_sane() {
        let env = SpaceEnvironment::landsat(1);
        assert!((20.0..26.0).contains(&env.frame_deadline.as_seconds()));
        assert!(env.frames_per_day > 3000);
        assert!(
            (0.005..0.6).contains(&env.capacity_fraction),
            "capacity fraction {}",
            env.capacity_fraction
        );
    }
}
