//! Deterministic data-parallel execution.
//!
//! Every thread in the workspace is spawned from this module (the
//! `thread-discipline` lint rule enforces it), and every primitive here
//! preserves a single invariant: **outputs are a pure function of inputs
//! and seed, never of worker count or interleaving.** The techniques:
//!
//! - **Index-keyed results.** [`par_map_indexed`] writes each item's
//!   result into a slot addressed by the item's index, so the returned
//!   `Vec` is in input order no matter which worker finished first.
//!   Callers fold reductions over that `Vec` serially, which keeps
//!   non-associative `f64` accumulation in the exact serial order.
//! - **Contiguous sharding.** Items are split into `workers` contiguous
//!   shards ([`shard_len`]); the split is a function of `(n, workers)`
//!   only, so a given `--workers N` always produces the same schedule.
//! - **Tape-and-replay telemetry.** [`par_map_recorded`] gives each item
//!   a private [`TapeRecorder`]; after the join, tapes are replayed into
//!   the real recorder in item-index order, so the recorder observes the
//!   exact call sequence of a serial run and snapshots stay
//!   byte-identical (see `kodan_telemetry::tape`).
//! - **Seed streams.** Parallel training derives one RNG stream per task
//!   via [`stream_seed`]; streams are keyed on stable task identity
//!   (context id, grid index), never on worker or completion order.
//!
//! Worker counts come from configuration ([`resolve_workers`]); `0`
//! means "auto" — available parallelism capped at [`MAX_WORKERS`]. The
//! machine's core count may vary, but because of the invariants above it
//! can only change *how fast* an answer arrives, never the answer.

use kodan_telemetry::{NullRecorder, Recorder, TapeRecorder};

/// Cap applied to auto-detected worker counts. Space-grade compute
/// targets modeled by `kodan-hw` top out well below this, and a bound
/// keeps per-worker shards large enough to amortize spawn cost.
pub const MAX_WORKERS: usize = 8;

/// Hard ceiling on explicitly configured worker counts.
const MAX_CONFIGURED_WORKERS: usize = 64;

/// Worker count auto-detected from the host, clamped to
/// `1..=`[`MAX_WORKERS`]. Used only when configuration says `0` (auto);
/// the result never influences computed outputs, only wall-clock time.
pub fn auto_workers() -> usize {
    // A capability probe, not a thread spawn; par.rs is the sanctioned
    // home for std::thread anyway (thread-discipline carve-out).
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_WORKERS)
}

/// Resolves a configured worker count: `0` means auto-detect, anything
/// else is clamped to `1..=64`.
pub fn resolve_workers(configured: usize) -> usize {
    if configured == 0 {
        auto_workers()
    } else {
        configured.min(MAX_CONFIGURED_WORKERS)
    }
}

/// Length of shard `index` when `n` items are split into `workers`
/// contiguous shards: the first `n % workers` shards get one extra item.
/// This is the exact schedule [`par_map_indexed`] executes, exposed so
/// benchmarks can compute the critical path of the deterministic
/// schedule.
pub fn shard_len(n: usize, workers: usize, index: usize) -> usize {
    debug_assert!(workers > 0 && index < workers);
    // Total even on a (never produced) zero worker count: behave as one
    // serial shard rather than dividing by zero.
    let workers = workers.max(1);
    let base = n / workers;
    let extra = n.checked_rem(workers).unwrap_or(0);
    if index < extra {
        base + 1
    } else {
        base
    }
}

/// Derives a deterministic RNG seed for a numbered stream of a master
/// seed. Streams are keyed on stable task identity (context id, grid
/// index), so parallel training draws the same randomness as serial.
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    master.wrapping_add(stream)
}

/// Maps `f` over `items` on `workers` threads, returning results in
/// input order. `f` receives the item's index and the item; results are
/// written into index-keyed slots, so the output is identical to
/// `items.iter().enumerate().map(...)` regardless of scheduling. Panics
/// in `f` are propagated to the caller after all workers join.
pub fn par_map_indexed<I, T, F>(workers: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let workers = workers.min(n);
    // Each shard fills its own output Vec; concatenating in shard order
    // reproduces input order without index-keyed Option slots (and
    // without the unfillable-slot panic path they would imply).
    let mut shard_outputs: Vec<Vec<T>> = Vec::with_capacity(workers);
    shard_outputs.resize_with(workers, Vec::new);

    let result = crossbeam::scope(|scope| {
        let f = &f;
        let mut rest = items;
        let mut start = 0usize;
        for (w, out) in shard_outputs.iter_mut().enumerate() {
            let len = shard_len(n, workers, w).min(rest.len());
            let (shard_items, tail) = rest.split_at(len);
            rest = tail;
            let shard_start = start;
            start += len;
            scope.spawn(move |_| {
                *out = shard_items
                    .iter()
                    .enumerate()
                    .map(|(offset, item)| f(shard_start + offset, item))
                    .collect();
            });
        }
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }

    shard_outputs.into_iter().flatten().collect()
}

/// Like [`par_map_indexed`], but each call of `f` also gets a recorder.
///
/// - Serial (`workers <= 1`): `f` records straight into `recorder`.
/// - Parallel with a disabled recorder: workers record into throwaway
///   [`NullRecorder`]s — the zero-cost path stays zero-cost.
/// - Parallel with an enabled recorder: each item records onto its own
///   [`TapeRecorder`]; tapes are replayed into `recorder` in item-index
///   order after the join, reproducing the serial call sequence exactly.
pub fn par_map_recorded<I, T, F>(
    workers: usize,
    items: &[I],
    recorder: &mut dyn Recorder,
    f: F,
) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I, &mut dyn Recorder) -> T + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item, recorder))
            .collect();
    }
    if !recorder.enabled() {
        return par_map_indexed(workers, items, |i, item| {
            let mut null = NullRecorder;
            f(i, item, &mut null)
        });
    }
    let mut taped = par_map_indexed(workers, items, |i, item| {
        let mut tape = TapeRecorder::new();
        let value = f(i, item, &mut tape);
        (value, tape)
    });
    let mut out = Vec::with_capacity(n);
    for (value, tape) in taped.drain(..) {
        tape.replay_into(recorder);
        out.push(value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kodan_telemetry::{StageId, SummaryRecorder, TelemetryEvent};

    #[test]
    fn shards_cover_all_items_exactly_once() {
        for n in 0..40 {
            for workers in 1..=9 {
                let total: usize = (0..workers).map(|w| shard_len(n, workers, w)).sum();
                assert_eq!(total, n, "n={n} workers={workers}");
                // First shards are the long ones; lengths differ by at most 1.
                let lens: Vec<usize> = (0..workers).map(|w| shard_len(n, workers, w)).collect();
                for pair in lens.windows(2) {
                    assert!(pair[0] >= pair[1]);
                    assert!(pair[0] - pair[1] <= 1);
                }
            }
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..23).collect();
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as u64).collect();
        for workers in [1, 2, 3, 4, 8, 40] {
            let parallel = par_map_indexed(workers, &items, |i, x| x * 3 + i as u64);
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed(4, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map_indexed(4, &[9u32], |_, x| x + 1), vec![10]);
    }

    #[test]
    fn recorded_map_is_byte_identical_across_worker_counts() {
        let items: Vec<u64> = (0..9).collect();
        let run = |workers: usize| {
            let mut recorder = SummaryRecorder::new();
            let values = par_map_recorded(workers, &items, &mut recorder, |i, x, rec| {
                rec.event(TelemetryEvent::FrameCaptured {
                    pixels: (x + 1) as u64,
                });
                rec.span(StageId::Frame, 0.01 * (i as f64 + 1.0), 1);
                x * 2
            });
            (values, recorder.snapshot().to_json())
        };
        let (serial_values, serial_json) = run(1);
        for workers in [2, 3, 4] {
            let (values, json) = run(workers);
            assert_eq!(serial_values, values, "workers={workers}");
            assert_eq!(serial_json, json, "workers={workers}");
        }
    }

    #[test]
    fn disabled_recorder_takes_the_null_path() {
        let mut null = NullRecorder;
        let values = par_map_recorded(4, &[1u32, 2, 3, 4, 5], &mut null, |_, x, rec| {
            rec.count(kodan_telemetry::CounterId::FramesProcessed, 1);
            x * x
        });
        assert_eq!(values, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn resolve_workers_clamps() {
        assert!(resolve_workers(0) >= 1);
        assert!(resolve_workers(0) <= MAX_WORKERS);
        assert_eq!(resolve_workers(3), 3);
        assert_eq!(resolve_workers(1000), MAX_CONFIGURED_WORKERS);
    }

    #[test]
    fn stream_seeds_are_stable() {
        assert_eq!(stream_seed(40, 2), 42);
        assert_eq!(stream_seed(u64::MAX, 1), 0);
    }
}
