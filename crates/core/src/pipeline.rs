//! The one-time transformation step (paper Figure 7, left).
//!
//! Before deployment, Kodan takes a reference application (here: a cloud
//! filter at one of the Table 1 architectures) and a representative
//! dataset, and produces everything the satellite will carry:
//!
//! 1. a partition of the dataset into geospatial **contexts**,
//! 2. a **context engine** that classifies observed tiles into contexts,
//! 3. **specialized models** (plus the global reference model) trained
//!    and validated per tile grid,
//! 4. per-grid, per-context **validation statistics** from which the
//!    [`crate::selection::SelectionLogic`] for any hardware target can
//!    be derived.
//!
//! The artifacts are target-independent; deriving a selection logic for a
//! target is cheap and can be repeated for every platform (the paper
//! deploys the same seven applications to three targets).

use crate::config::{ContextGenerationKind, KodanConfig};
use crate::context::ContextSet;
use crate::engine::ContextEngine;
use crate::selection::{SelectionLogic, DEFAULT_CAPACITY_FRACTION};
use crate::specialize::SpecializedModel;
use crate::KodanError;
use kodan_cote::time::Duration;
use kodan_geodata::dataset::Dataset;
use kodan_geodata::tile::TileImage;
use kodan_hw::targets::HwTarget;
use kodan_ml::eval::ConfusionMatrix;
use kodan_ml::zoo::ModelArch;
use kodan_telemetry::{CounterId, NullRecorder, Recorder, StageId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Minimum training tiles required to specialize a model to a context;
/// below this the context falls back to the global model.
const MIN_CONTEXT_TILES: usize = 5;

/// Per-tile-grid artifacts: models and validation statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridArtifacts {
    /// Grid dimension (tiles per frame = `grid * grid`).
    pub grid: usize,
    /// The full-capacity reference model trained at this grid.
    pub global_model: SpecializedModel,
    /// Per-context specialized models (None when the context had too few
    /// training tiles).
    pub context_models: Vec<Option<SpecializedModel>>,
    /// Validation confusion of the global model restricted to each
    /// engine-assigned context.
    pub global_eval_per_context: Vec<ConfusionMatrix>,
    /// Validation confusion of each context model on its own
    /// engine-assigned tiles.
    pub context_model_eval: Vec<Option<ConfusionMatrix>>,
    /// Fraction of validation tiles the engine assigns to each context.
    pub context_weights: Vec<f64>,
    /// Mean high-value pixel fraction of each context's validation tiles.
    pub context_hv: Vec<f64>,
    /// Multi-context ("merged") specialized models, paired by value
    /// profile (paper Section 3.3 considers single- and multi-context
    /// specializations in the selection logic).
    pub merged_models: Vec<SpecializedModel>,
    /// `merged_eval[m][c]`: validation confusion of merged model `m` on
    /// context `c`'s engine-assigned tiles (None where not covered or no
    /// tiles).
    pub merged_eval: Vec<Vec<Option<ConfusionMatrix>>>,
    /// Validation confusion of the global model over all tiles (the
    /// direct-deploy statistic, and Figure 13's tiling data).
    pub global_eval_all: ConfusionMatrix,
    /// Validation confusion of the context-specialized composite: each
    /// tile routed by the engine to its context model (global fallback).
    /// This is Figure 12's "geospatial contexts" statistic.
    pub composite_eval_all: ConfusionMatrix,
}

/// Everything the transformation step produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformationArtifacts {
    /// The configuration that produced these artifacts.
    pub config: KodanConfig,
    /// The reference application's architecture.
    pub arch: ModelArch,
    /// The context partition.
    pub contexts: ContextSet,
    /// The deployed context engine.
    pub engine: ContextEngine,
    /// Engine agreement with the truth partition on validation tiles.
    pub engine_val_agreement: f64,
    /// Per-grid artifacts, in the order of `config.tile_grids`.
    pub grids: Vec<GridArtifacts>,
}

impl TransformationArtifacts {
    /// Derives the selection logic for a hardware target using the
    /// default Landsat-like downlink capacity fraction.
    pub fn select_for_target(&self, target: HwTarget, deadline: Duration) -> SelectionLogic {
        SelectionLogic::build(self, target, deadline, DEFAULT_CAPACITY_FRACTION)
    }

    /// Derives the selection logic with an explicit capacity fraction
    /// (downlink capacity / observed data volume).
    pub fn select_with_capacity(
        &self,
        target: HwTarget,
        deadline: Duration,
        capacity_fraction: f64,
    ) -> SelectionLogic {
        SelectionLogic::build(self, target, deadline, capacity_fraction)
    }

    /// The artifacts for a specific grid dimension.
    ///
    /// # Errors
    ///
    /// Returns [`KodanError::UnknownGrid`] if the grid was not part of
    /// the sweep.
    pub fn grid_artifacts(&self, grid: usize) -> Result<&GridArtifacts, KodanError> {
        self.grids
            .iter()
            .find(|g| g.grid == grid)
            .ok_or(KodanError::UnknownGrid(grid))
    }
}

/// The transformation step runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transformation {
    config: KodanConfig,
}

impl Transformation {
    /// Creates a transformation with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: KodanConfig) -> Transformation {
        config.validate();
        Transformation { config }
    }

    /// The configuration.
    pub fn config(&self) -> &KodanConfig {
        &self.config
    }

    /// Runs the one-time transformation for a reference application.
    ///
    /// # Errors
    ///
    /// Returns [`KodanError::NoGrids`] if the configuration lists no
    /// tile grids to sweep.
    pub fn run(
        &self,
        dataset: &Dataset,
        arch: ModelArch,
    ) -> Result<TransformationArtifacts, KodanError> {
        self.run_recorded(dataset, arch, &mut NullRecorder)
    }

    /// [`Transformation::run`] with telemetry: context generation, engine
    /// training, per-grid specialization and validation report spans and
    /// counters to `recorder`. Transformation runs on the ground where
    /// the latency model does not apply, so these spans carry zero
    /// modeled seconds and use their item counts (tiles, models) as the
    /// magnitude.
    ///
    /// # Errors
    ///
    /// Returns [`KodanError::NoGrids`] if the configuration lists no
    /// tile grids to sweep.
    pub fn run_recorded(
        &self,
        dataset: &Dataset,
        arch: ModelArch,
        recorder: &mut dyn Recorder,
    ) -> Result<TransformationArtifacts, KodanError> {
        let config = &self.config;
        let (train, val) = dataset.split(config.train_fraction, config.seed);

        // Contexts and engine are generated at the grid closest to the
        // paper's 36-tiles-per-frame working point.
        let context_grid = *config
            .tile_grids
            .iter()
            .min_by_key(|&&g| (g as i64 - 6).unsigned_abs())
            .ok_or(KodanError::NoGrids)?;
        let context_train_tiles = train.tiles(context_grid);
        let contexts = match config.generation {
            ContextGenerationKind::Auto => ContextSet::generate_auto(
                &context_train_tiles,
                config.context_count.min(context_train_tiles.len()),
                config.metric,
                config.transform,
                config.seed,
            ),
            ContextGenerationKind::Expert => {
                ContextSet::generate_expert(&context_train_tiles)
            }
            ContextGenerationKind::AutoSweep { max_contexts } => {
                let k = sweep_cluster_count(
                    &context_train_tiles,
                    max_contexts,
                    config.metric,
                    config.transform,
                    config.seed,
                );
                ContextSet::generate_auto(
                    &context_train_tiles,
                    k,
                    config.metric,
                    config.transform,
                    config.seed,
                )
            }
        };
        recorder.span(StageId::ContextGeneration, 0.0, context_train_tiles.len() as u64);
        recorder.count(CounterId::ContextsGenerated, contexts.len() as u64);
        let engine = ContextEngine::train(&context_train_tiles, &contexts);
        recorder.span(StageId::EngineTraining, 0.0, context_train_tiles.len() as u64);
        let context_val_tiles = val.tiles(context_grid);
        let engine_val_agreement = engine.agreement_on(&context_val_tiles, &contexts);

        let mut grids = Vec::with_capacity(config.tile_grids.len());
        for (i, &grid) in config.tile_grids.iter().enumerate() {
            grids.push(self.build_grid_artifacts(
                &train,
                &val,
                grid,
                arch,
                &contexts,
                &engine,
                crate::par::stream_seed(config.seed, i as u64 * 101),
                recorder,
            ));
        }
        recorder.span(StageId::Transformation, 0.0, grids.len() as u64);

        Ok(TransformationArtifacts {
            config: *config,
            arch,
            contexts,
            engine,
            engine_val_agreement,
            grids,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn build_grid_artifacts(
        &self,
        train: &Dataset,
        val: &Dataset,
        grid: usize,
        arch: ModelArch,
        contexts: &ContextSet,
        engine: &ContextEngine,
        seed: u64,
        recorder: &mut dyn Recorder,
    ) -> GridArtifacts {
        let config = &self.config;
        let k = contexts.len();
        let mut train_tiles = train.tiles(grid);
        if config.augment {
            // Paper Section 4: augmentation improves accuracy and avoids
            // over-fitting. Variants join the pool before model training.
            let extra = kodan_geodata::augment::augment_tiles(&train_tiles, seed);
            train_tiles.extend(extra);
        }
        let val_tiles = sample_tiles(val.tiles(grid), config.max_eval_tiles, seed);

        let mut train_cfg = config.train;
        train_cfg.seed = seed;

        // Specialized models are trained on *engine-assigned* tile
        // subsets: the runtime routes tiles by the deployed engine, so
        // each specialized model should be trained on exactly the
        // distribution the engine will hand it (including the engine's
        // systematic confusions).
        let mut engine_subsets: Vec<Vec<TileImage>> = vec![Vec::new(); k];
        for t in &train_tiles {
            // Engine assignments are data-driven (expert maps decode from
            // artifacts), so bounds-check rather than trust the context id.
            if let Some(subset) = engine_subsets.get_mut(engine.classify(t).0) {
                subset.push(t.clone());
            }
        }

        // Training is embarrassingly parallel across models: every task's
        // RNG stream is derived from the grid seed and the task's stable
        // identity (context id, merged pair), never from worker or
        // completion order, so the trained weights are bit-identical to a
        // serial run. The task list is built in the serial order (global,
        // contexts ascending, merged pairs in value-profile order) and
        // results come back index-keyed in that same order.
        enum TrainTask<'t> {
            Global,
            Context(usize, &'t [TileImage]),
            Merged(usize, usize, Vec<TileImage>),
        }
        let mut tasks: Vec<TrainTask<'_>> = vec![TrainTask::Global];
        for (c, subset) in engine_subsets.iter().enumerate() {
            if subset.len() >= MIN_CONTEXT_TILES {
                tasks.push(TrainTask::Context(c, subset));
            }
        }
        // Multi-context models: pair contexts with adjacent value
        // profiles and specialize across each pair.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| {
            let ha = contexts.context(crate::context::ContextId(a)).high_value_fraction;
            let hb = contexts.context(crate::context::ContextId(b)).high_value_fraction;
            ha.total_cmp(&hb)
        });
        for pair in order.chunks_exact(2) {
            let (a, b) = match *pair {
                [a, b] => (a, b),
                _ => continue,
            };
            let mut union: Vec<TileImage> =
                engine_subsets.get(a).cloned().unwrap_or_default();
            union.extend(engine_subsets.get(b).into_iter().flatten().cloned());
            if union.len() >= MIN_CONTEXT_TILES {
                tasks.push(TrainTask::Merged(a, b, union));
            }
        }

        let train_global =
            || SpecializedModel::train_global(&train_tiles, arch, config.max_train_pixels, &train_cfg);
        let workers = crate::par::resolve_workers(config.workers);
        let trained_models = crate::par::par_map_indexed(workers, &tasks, |_, task| match task {
            TrainTask::Global => train_global(),
            TrainTask::Context(c, subset) => {
                let mut cfg = train_cfg;
                cfg.seed = crate::par::stream_seed(seed, *c as u64 + 1);
                SpecializedModel::train_for_context(
                    subset,
                    arch,
                    crate::context::ContextId(*c),
                    config.max_train_pixels,
                    &cfg,
                )
            }
            TrainTask::Merged(a, b, union) => {
                let mut cfg = train_cfg;
                cfg.seed = crate::par::stream_seed(seed, 1000 + *a as u64 * 31 + *b as u64);
                SpecializedModel::train_for_contexts(
                    union,
                    arch,
                    vec![crate::context::ContextId(*a), crate::context::ContextId(*b)],
                    config.max_train_pixels,
                    &cfg,
                )
            }
        });

        // Unpack results back into their serial-layout slots. Task 0 is
        // always Global, so the fallback closure never actually runs; it
        // exists to keep this path panic-free.
        let mut trained_iter = trained_models.into_iter();
        let global_model = trained_iter.next().unwrap_or_else(train_global);
        let mut context_models: Vec<Option<SpecializedModel>> = (0..k).map(|_| None).collect();
        let mut merged_models: Vec<SpecializedModel> = Vec::new();
        for (task, model) in tasks.iter().skip(1).zip(trained_iter) {
            match task {
                TrainTask::Global => {}
                TrainTask::Context(c, _) => {
                    if let Some(slot) = context_models.get_mut(*c) {
                        *slot = Some(model);
                    }
                }
                TrainTask::Merged(..) => merged_models.push(model),
            }
        }

        let trained = 1
            + context_models.iter().filter(|m| m.is_some()).count()
            + merged_models.len();
        recorder.count(CounterId::ModelsTrained, trained as u64);
        recorder.count(CounterId::MergedModelsTrained, merged_models.len() as u64);
        recorder.span(StageId::Specialization, 0.0, trained as u64);
        recorder.span(StageId::Validation, 0.0, val_tiles.len() as u64);

        // Validation statistics are gathered under *engine* assignment,
        // matching what the runtime will experience.
        let mut groups: Vec<Vec<&TileImage>> = vec![Vec::new(); k];
        for t in &val_tiles {
            if let Some(group) = groups.get_mut(engine.classify(t).0) {
                group.push(t);
            }
        }
        let total_val = val_tiles.len().max(1) as f64;

        let mut global_eval_per_context = Vec::with_capacity(k);
        let mut context_model_eval = Vec::with_capacity(k);
        let mut context_weights = Vec::with_capacity(k);
        let mut context_hv = Vec::with_capacity(k);
        let mut global_eval_all = ConfusionMatrix::new();
        let mut composite_eval_all = ConfusionMatrix::new();

        for (c, group) in groups.iter().enumerate() {
            context_weights.push(group.len() as f64 / total_val);
            let hv = if group.is_empty() {
                contexts.context(crate::context::ContextId(c)).high_value_fraction
            } else {
                // Serial left-to-right accumulation in group order pins the
                // (non-associative) f64 reduction order.
                let mut hv_sum = 0.0;
                for t in group.iter() {
                    hv_sum += t.high_value_fraction();
                }
                hv_sum / group.len() as f64
            };
            context_hv.push(hv);

            let global_cm = global_model.evaluate(group.iter().copied());
            global_eval_all += global_cm;
            global_eval_per_context.push(global_cm);

            match context_models.get(c).and_then(|slot| slot.as_ref()) {
                Some(model) if !group.is_empty() => {
                    let cm = model.evaluate(group.iter().copied());
                    composite_eval_all += cm;
                    context_model_eval.push(Some(cm));
                }
                Some(_) => context_model_eval.push(None),
                None => {
                    composite_eval_all += global_cm;
                    context_model_eval.push(None);
                }
            }
        }

        // Evaluate merged models on the contexts they cover.
        let merged_eval: Vec<Vec<Option<ConfusionMatrix>>> = merged_models
            .iter()
            .map(|m| {
                (0..k)
                    .map(|c| {
                        let covered = m.scope().covers(crate::context::ContextId(c));
                        match groups.get(c) {
                            Some(group) if covered && !group.is_empty() => {
                                Some(m.evaluate(group.iter().copied()))
                            }
                            _ => None,
                        }
                    })
                    .collect()
            })
            .collect();

        GridArtifacts {
            grid,
            global_model,
            context_models,
            merged_models,
            merged_eval,
            global_eval_per_context,
            context_model_eval,
            context_weights,
            context_hv,
            global_eval_all,
            composite_eval_all,
        }
    }
}

/// Chooses a cluster count in `2..=max_contexts` by silhouette score
/// over (a sample of) the training tiles' transformed label vectors —
/// the cluster-count sweep of paper Section 3.2.
fn sweep_cluster_count(
    tiles: &[TileImage],
    max_contexts: usize,
    metric: kodan_ml::metrics::DistanceMetric,
    transform: kodan_ml::transform::TransformKind,
    seed: u64,
) -> usize {
    let labels: Vec<Vec<f64>> = tiles
        .iter()
        .take(400) // silhouette is O(n^2); a sample is plenty
        .map(|t| t.label_vector().to_vec())
        .collect();
    let fitted = transform.fit(&labels);
    let transformed = fitted.apply_all(&labels);
    let mut best_k = 2;
    let mut best_score = f64::NEG_INFINITY;
    for k in 2..=max_contexts.min(transformed.len()) {
        let km = kodan_ml::kmeans::KMeans::fit(&transformed, k, metric, seed);
        let score = kodan_ml::kmeans::silhouette(&transformed, &km);
        if score > best_score {
            best_score = score;
            best_k = k;
        }
    }
    best_k
}

/// Deterministically samples up to `cap` tiles.
fn sample_tiles(mut tiles: Vec<TileImage>, cap: usize, seed: u64) -> Vec<TileImage> {
    if tiles.len() <= cap {
        return tiles;
    }
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0xEA71);
    for i in (1..tiles.len()).rev() {
        let j = rng.random_range(0..=i);
        tiles.swap(i, j);
    }
    tiles.truncate(cap);
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use kodan_geodata::{DatasetConfig, World};

    fn artifacts() -> TransformationArtifacts {
        let world = World::new(42);
        let mut ds_cfg = DatasetConfig::small(1);
        ds_cfg.frame_count = 14;
        ds_cfg.frame_px = 132;
        let dataset = Dataset::sample(&world, &ds_cfg);
        Transformation::new(KodanConfig::fast(7))
            .run(&dataset, ModelArch::ResNet50DilatedPpm)
            .expect("transformation succeeds")
    }

    #[test]
    fn transformation_produces_all_grids() {
        let a = artifacts();
        assert_eq!(a.grids.len(), 4);
        let grids: Vec<usize> = a.grids.iter().map(|g| g.grid).collect();
        assert_eq!(grids, vec![3, 4, 6, 11]);
        assert_eq!(a.contexts.len(), 3);
    }

    #[test]
    fn per_grid_statistics_are_consistent() {
        let a = artifacts();
        for ga in &a.grids {
            let weight_sum: f64 = ga.context_weights.iter().sum();
            assert!((weight_sum - 1.0).abs() < 1e-9, "weights sum {weight_sum}");
            assert_eq!(ga.context_models.len(), a.contexts.len());
            assert_eq!(ga.global_eval_per_context.len(), a.contexts.len());
            for hv in &ga.context_hv {
                assert!((0.0..=1.0).contains(hv));
            }
            // Per-context evals sum to the overall eval.
            let mut summed = ConfusionMatrix::new();
            for cm in &ga.global_eval_per_context {
                summed += *cm;
            }
            assert_eq!(summed, ga.global_eval_all);
        }
    }

    #[test]
    fn models_learn_something() {
        let a = artifacts();
        for ga in &a.grids {
            assert!(
                ga.global_eval_all.accuracy() > 0.6,
                "grid {}: accuracy {}",
                ga.grid,
                ga.global_eval_all.accuracy()
            );
        }
    }

    #[test]
    fn selection_logic_derivable_for_every_target() {
        let a = artifacts();
        for target in HwTarget::ALL {
            let logic = a.select_for_target(target, Duration::from_seconds(22.0));
            assert!(logic.tiles_per_frame() >= 9);
            assert_eq!(logic.actions().len(), a.contexts.len());
            assert!(logic.estimate().dvd > 0.0);
        }
    }

    #[test]
    fn constrained_target_picks_cheaper_configuration() {
        let a = artifacts();
        let deadline = Duration::from_seconds(22.0);
        let orin = a.select_for_target(HwTarget::OrinAgx15W, deadline);
        let gpu = a.select_for_target(HwTarget::Gtx1070Ti, deadline);
        // The Orin must be at or below the GPU's frame time in relative
        // terms: its selected configuration cannot be *more* aggressive
        // than the GPU's in tile count when compute is the bottleneck.
        assert!(
            orin.tiles_per_frame() <= gpu.tiles_per_frame(),
            "orin {} tiles vs gpu {} tiles",
            orin.tiles_per_frame(),
            gpu.tiles_per_frame()
        );
    }

    #[test]
    fn recorded_transformation_matches_and_reports_stages() {
        let world = World::new(42);
        let mut ds_cfg = DatasetConfig::small(1);
        ds_cfg.frame_count = 10;
        ds_cfg.frame_px = 132;
        let dataset = Dataset::sample(&world, &ds_cfg);
        let t = Transformation::new(KodanConfig::fast(7));
        let plain = t
            .run(&dataset, ModelArch::MobileNetV2DilatedC1)
            .expect("transformation succeeds");
        let mut recorder = kodan_telemetry::SummaryRecorder::new();
        let recorded = t
            .run_recorded(&dataset, ModelArch::MobileNetV2DilatedC1, &mut recorder)
            .expect("transformation succeeds");
        assert_eq!(plain, recorded);
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counter(CounterId::ContextsGenerated) as usize,
            recorded.contexts.len()
        );
        assert_eq!(
            snap.span(StageId::Transformation).items as usize,
            recorded.grids.len()
        );
        // One specialization span per swept grid, each training at least
        // the global model.
        assert_eq!(
            snap.span(StageId::Specialization).calls as usize,
            recorded.grids.len()
        );
        assert!(snap.counter(CounterId::ModelsTrained) >= recorded.grids.len() as u64);
        assert!(snap.span(StageId::ContextGeneration).items > 0);
        assert!(snap.span(StageId::Validation).items > 0);
    }

    #[test]
    fn grid_artifacts_lookup_errors_for_unknown_grid() {
        let a = artifacts();
        assert_eq!(a.grid_artifacts(11).expect("grid 11 swept").grid, 11);
        assert_eq!(a.grid_artifacts(5), Err(KodanError::UnknownGrid(5)));
    }

    #[test]
    fn engine_agreement_is_reported() {
        let a = artifacts();
        assert!(a.engine_val_agreement > 0.4, "{}", a.engine_val_agreement);
    }

    #[test]
    fn expert_generation_runs_end_to_end() {
        let world = World::new(42);
        let mut ds_cfg = DatasetConfig::small(1);
        ds_cfg.frame_count = 10;
        ds_cfg.frame_px = 132;
        let dataset = Dataset::sample(&world, &ds_cfg);
        let mut config = KodanConfig::fast(7);
        config.generation = crate::config::ContextGenerationKind::Expert;
        let a = Transformation::new(config)
            .run(&dataset, ModelArch::MobileNetV2DilatedC1)
            .expect("transformation succeeds");
        assert!(a.contexts.expert_surface_map().is_some());
        assert!(a.contexts.len() >= 2);
        let logic = a.select_for_target(HwTarget::OrinAgx15W, Duration::from_seconds(22.0));
        assert_eq!(logic.actions().len(), a.contexts.len());
    }

    #[test]
    fn auto_sweep_selects_a_cluster_count_in_range() {
        let world = World::new(42);
        let mut ds_cfg = DatasetConfig::small(1);
        ds_cfg.frame_count = 10;
        ds_cfg.frame_px = 132;
        let dataset = Dataset::sample(&world, &ds_cfg);
        let mut config = KodanConfig::fast(7);
        config.generation = crate::config::ContextGenerationKind::AutoSweep { max_contexts: 5 };
        let a = Transformation::new(config)
            .run(&dataset, ModelArch::MobileNetV2DilatedC1)
            .expect("transformation succeeds");
        assert!((2..=5).contains(&a.contexts.len()), "k = {}", a.contexts.len());
    }
}
