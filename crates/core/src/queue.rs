//! The on-board downlink queue (paper Figure 7: "Downlink Queue").
//!
//! Filtered tiles wait in bounded on-board storage until the next ground
//! contact. The queue is value-aware: entries drain highest
//! value-density first, and when storage fills, the lowest-density
//! entries are evicted — so a saturated downlink and finite storage both
//! preferentially preserve high-value data.
//!
//! [`drain_over_passes`] replays a queue against the contention-resolved
//! passes from `kodan-cote`, giving a pass-by-pass account of what
//! reaches the ground (the fine-grained counterpart of the aggregate
//! capacity model in [`crate::mission`]).

use crate::KodanError;
use kodan_cote::sim::ServedPass;
use serde::{Deserialize, Serialize};

/// One queued downlink entry (typically: the kept pixels of one tile).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueEntry {
    /// Size of the entry, bits.
    pub bits: f64,
    /// High-value content of the entry, bits.
    pub value_bits: f64,
}

impl QueueEntry {
    /// Creates an entry.
    ///
    /// Sizes must be finite and non-negative with `value_bits <= bits`.
    /// Anything else — including NaN, which fails every comparison —
    /// returns [`KodanError::InvalidQueueEntry`] so a corrupted tile size
    /// degrades to a skipped entry instead of aborting the mission.
    pub fn new(bits: f64, value_bits: f64) -> Result<QueueEntry, KodanError> {
        let sizes_ok = bits >= 0.0 && bits.is_finite() && value_bits >= 0.0;
        if !sizes_ok || !(value_bits <= bits + 1e-9) {
            return Err(KodanError::InvalidQueueEntry);
        }
        Ok(QueueEntry { bits, value_bits })
    }

    /// Value density of the entry in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.bits <= 0.0 {
            0.0
        } else {
            self.value_bits / self.bits
        }
    }
}

/// Result of draining a queue through one or more passes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DrainReport {
    /// Bits transmitted.
    pub sent_bits: f64,
    /// High-value bits transmitted.
    pub sent_value_bits: f64,
    /// Entries fully transmitted.
    pub entries_sent: usize,
}

/// A bounded, value-aware downlink queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DownlinkQueue {
    storage_bits: f64,
    entries: Vec<QueueEntry>,
    occupied_bits: f64,
    /// Bits dropped because storage was full.
    dropped_bits: f64,
    /// High-value bits dropped because storage was full.
    dropped_value_bits: f64,
}

impl DownlinkQueue {
    /// Creates a queue with the given storage bound (bits).
    ///
    /// # Panics
    ///
    /// Panics if the bound is not positive.
    pub fn new(storage_bits: f64) -> DownlinkQueue {
        assert!(storage_bits > 0.0, "storage must be positive");
        DownlinkQueue {
            storage_bits,
            entries: Vec::new(),
            occupied_bits: 0.0,
            dropped_bits: 0.0,
            dropped_value_bits: 0.0,
        }
    }

    /// Current occupancy, bits.
    pub fn occupied_bits(&self) -> f64 {
        self.occupied_bits
    }

    /// Storage bound, bits.
    pub fn storage_bits(&self) -> f64 {
        self.storage_bits
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bits evicted so far due to storage pressure.
    pub fn dropped_bits(&self) -> f64 {
        self.dropped_bits
    }

    /// High-value bits evicted so far due to storage pressure.
    pub fn dropped_value_bits(&self) -> f64 {
        self.dropped_value_bits
    }

    /// Enqueues an entry, evicting the lowest-density entries if storage
    /// overflows. The new entry itself is evicted if it is the least
    /// dense.
    pub fn push(&mut self, entry: QueueEntry) {
        if entry.bits <= 0.0 {
            return;
        }
        self.entries.push(entry);
        self.occupied_bits += entry.bits;
        if self.occupied_bits > self.storage_bits {
            // Evict lowest-density first.
            self.entries
                .sort_by(|a, b| a.density().total_cmp(&b.density()));
            while self.occupied_bits > self.storage_bits && !self.entries.is_empty() {
                let victim = self.entries.remove(0);
                self.occupied_bits -= victim.bits;
                self.dropped_bits += victim.bits;
                self.dropped_value_bits += victim.value_bits;
            }
        }
    }

    /// Drains up to `budget_bits` in highest-value-density order.
    /// Entries are transmitted whole except possibly the last, which is
    /// split (a tile can straddle two passes).
    pub fn drain(&mut self, budget_bits: f64) -> DrainReport {
        let mut report = DrainReport::default();
        if budget_bits <= 0.0 {
            return report;
        }
        // Highest density last for cheap pop.
        self.entries
            .sort_by(|a, b| a.density().total_cmp(&b.density()));
        let mut remaining = budget_bits;
        while remaining > 0.0 {
            let Some(entry) = self.entries.pop() else {
                break;
            };
            if entry.bits <= remaining {
                remaining -= entry.bits;
                self.occupied_bits -= entry.bits;
                report.sent_bits += entry.bits;
                report.sent_value_bits += entry.value_bits;
                report.entries_sent += 1;
            } else {
                // Partial transmit: split the entry. Both halves inherit
                // the invariants of the validated parent by construction
                // (fraction is in (0, 1), so sizes stay non-negative and
                // value never exceeds size).
                let fraction = remaining / entry.bits;
                let sent = QueueEntry {
                    bits: remaining,
                    value_bits: entry.value_bits * fraction,
                };
                let leftover = QueueEntry {
                    bits: entry.bits - sent.bits,
                    value_bits: entry.value_bits - sent.value_bits,
                };
                self.entries.push(leftover);
                self.occupied_bits -= sent.bits;
                report.sent_bits += sent.bits;
                report.sent_value_bits += sent.value_bits;
                remaining = 0.0;
            }
        }
        report
    }

    /// Sheds whole entries in *lowest*-value-density order until at least
    /// `bits` have been removed (or the queue empties).
    ///
    /// This is the degradation policy for a shrunk downlink: when a
    /// ground contact drops, the capacity that contact would have carried
    /// is given up from the least valuable data first, preserving the
    /// queue's value density for the passes that remain.
    pub fn shed_lowest(&mut self, bits: f64) -> ShedReport {
        let mut report = ShedReport::default();
        if bits <= 0.0 {
            return report;
        }
        // Lowest density first (same order the overflow eviction uses).
        self.entries
            .sort_by(|a, b| a.density().total_cmp(&b.density()));
        while report.shed_bits < bits && !self.entries.is_empty() {
            let victim = self.entries.remove(0);
            self.occupied_bits -= victim.bits;
            report.shed_bits += victim.bits;
            report.shed_value_bits += victim.value_bits;
            report.entries_shed += 1;
        }
        report
    }
}

/// Result of shedding queue entries after a lost or shrunk contact.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ShedReport {
    /// Bits removed from the queue.
    pub shed_bits: f64,
    /// High-value bits removed from the queue.
    pub shed_value_bits: f64,
    /// Entries removed.
    pub entries_shed: usize,
}

/// Replays a queue's contents through a sequence of contention-resolved
/// ground passes, returning the aggregate drain report.
pub fn drain_over_passes(queue: &mut DownlinkQueue, passes: &[ServedPass]) -> DrainReport {
    let mut total = DrainReport::default();
    for pass in passes {
        let r = queue.drain(pass.bits());
        total.sent_bits += r.sent_bits;
        total.sent_value_bits += r.sent_value_bits;
        total.entries_sent += r.entries_sent;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bits: f64, density: f64) -> QueueEntry {
        QueueEntry::new(bits, bits * density).expect("test entry is valid")
    }

    #[test]
    fn drains_highest_density_first() {
        let mut q = DownlinkQueue::new(1000.0);
        q.push(entry(100.0, 0.2));
        q.push(entry(100.0, 0.9));
        q.push(entry(100.0, 0.5));
        let r = q.drain(100.0);
        assert_eq!(r.entries_sent, 1);
        assert!((r.sent_value_bits - 90.0).abs() < 1e-9);
        // Next drain gets the 0.5-density entry.
        let r2 = q.drain(100.0);
        assert!((r2.sent_value_bits - 50.0).abs() < 1e-9);
    }

    #[test]
    fn partial_transmit_splits_entries() {
        let mut q = DownlinkQueue::new(1000.0);
        q.push(entry(100.0, 0.8));
        let r = q.drain(40.0);
        assert_eq!(r.entries_sent, 0);
        assert!((r.sent_bits - 40.0).abs() < 1e-9);
        assert!((r.sent_value_bits - 32.0).abs() < 1e-9);
        assert!((q.occupied_bits() - 60.0).abs() < 1e-9);
        // The remainder keeps its density.
        let r2 = q.drain(100.0);
        assert!((r2.sent_value_bits - 48.0).abs() < 1e-9);
        assert!(q.is_empty());
    }

    #[test]
    fn storage_pressure_evicts_low_density() {
        let mut q = DownlinkQueue::new(250.0);
        q.push(entry(100.0, 0.9));
        q.push(entry(100.0, 0.1));
        q.push(entry(100.0, 0.8)); // overflows by 50
        assert!(q.occupied_bits() <= 250.0);
        assert!(q.dropped_bits() >= 50.0);
        // The dropped data is the low-density entry.
        assert!(q.dropped_value_bits() / q.dropped_bits() < 0.2);
        // High-density entries survive.
        let r = q.drain(1e9);
        assert!(r.sent_value_bits / r.sent_bits > 0.5);
    }

    #[test]
    fn conservation_of_bits() {
        let mut q = DownlinkQueue::new(500.0);
        let mut pushed = 0.0;
        for i in 0..10 {
            let e = entry(80.0, 0.1 * i as f64 / 10.0 + 0.3);
            pushed += e.bits;
            q.push(e);
        }
        let r = q.drain(1e9);
        let accounted = r.sent_bits + q.dropped_bits() + q.occupied_bits();
        assert!((accounted - pushed).abs() < 1e-6);
        assert!(q.is_empty());
    }

    #[test]
    fn zero_budget_and_empty_queue_are_safe() {
        let mut q = DownlinkQueue::new(100.0);
        assert_eq!(q.drain(0.0), DrainReport::default());
        assert_eq!(q.drain(50.0), DrainReport::default());
        q.push(QueueEntry::new(0.0, 0.0).expect("zero entry is valid")); // no-op
        assert!(q.is_empty());
        assert_eq!(q.shed_lowest(10.0), ShedReport::default());
    }

    #[test]
    fn shed_lowest_removes_least_dense_first() {
        let mut q = DownlinkQueue::new(1000.0);
        q.push(entry(100.0, 0.9));
        q.push(entry(100.0, 0.1));
        q.push(entry(100.0, 0.5));
        let r = q.shed_lowest(150.0);
        // Whole entries: the 0.1 and 0.5 density ones go.
        assert_eq!(r.entries_shed, 2);
        assert!((r.shed_bits - 200.0).abs() < 1e-9);
        assert!((r.shed_value_bits - 60.0).abs() < 1e-9);
        assert!((q.occupied_bits() - 100.0).abs() < 1e-9);
        // The high-density entry survives.
        let drained = q.drain(1e9);
        assert!((drained.sent_value_bits - 90.0).abs() < 1e-9);
    }

    #[test]
    fn drain_over_real_passes() {
        use kodan_cote::constellation::Constellation;
        use kodan_cote::ground::GroundSegment;
        use kodan_cote::orbit::Orbit;
        use kodan_cote::sensor::Imager;
        use kodan_cote::sim::simulate_space_segment;
        use kodan_cote::time::Duration;

        let report = simulate_space_segment(
            &Constellation::single(Orbit::sun_synchronous(705_000.0)),
            &Imager::landsat_oli(),
            &GroundSegment::landsat(),
            Duration::from_hours(6.0),
        );
        let mut q = DownlinkQueue::new(1e12);
        for i in 0..1000 {
            q.push(entry(1e8, 0.3 + 0.6 * (i % 7) as f64 / 7.0));
        }
        let drained = drain_over_passes(&mut q, &report.passes);
        assert!(drained.sent_bits > 0.0);
        assert!(drained.sent_bits <= report.capacity_bits + 1e-3);
        // Value density of what went down exceeds the queue average
        // (priority ordering).
        if !q.is_empty() {
            let avg_density = drained.sent_value_bits / drained.sent_bits;
            assert!(avg_density > 0.5, "drained density {avg_density}");
        }
    }

    #[test]
    fn rejects_corrupt_entries_without_panicking() {
        // Regression: these used to `assert!` and abort the mission; a
        // corrupted tile size must surface as an error the caller can
        // drop.
        for (bits, value) in [
            (10.0, 20.0),              // value exceeds size
            (-1.0, 0.0),               // negative size
            (10.0, -1.0),              // negative value
            (f64::NAN, 1.0),           // NaN size
            (10.0, f64::NAN),          // NaN value
            (f64::INFINITY, 1.0),      // non-finite size
        ] {
            assert_eq!(
                QueueEntry::new(bits, value),
                Err(KodanError::InvalidQueueEntry),
                "({bits}, {value}) should be rejected"
            );
        }
        assert!(QueueEntry::new(10.0, 10.0).is_ok());
    }
}
