//! The on-orbit runtime (paper Figure 7, right).
//!
//! For each captured frame the runtime tiles the image at the selected
//! grid, classifies every tile into a context with the context engine,
//! and executes the selection logic's action: discard, downlink raw, or
//! run a specialized model and keep the pixels it labels high-value.
//!
//! Execution *time* is modeled (via `kodan-hw`'s Table 1 calibration —
//! this machine is not a Jetson), but the data path is real: tiles are
//! actually resized, featurized and classified, and the value accounting
//! compares predictions against ground truth pixel by pixel.

use crate::elide::Action;
use crate::engine::EngineKind;
use crate::selection::SelectionLogic;
use kodan_cote::time::Duration;
use kodan_geodata::frame::FrameImage;
use kodan_geodata::tile::tile_frame;
use kodan_hw::latency::LatencyModel;
use kodan_telemetry::{
    ActionKind, CounterId, HistogramId, NullRecorder, Recorder, StageId, TelemetryEvent,
};
use serde::{Deserialize, Serialize};

/// The telemetry vocabulary's mirror of [`Action`].
fn action_kind(action: Action) -> ActionKind {
    match action {
        Action::Discard => ActionKind::Discard,
        Action::Downlink => ActionKind::Downlink,
        Action::Process { model_index } => ActionKind::Process {
            model_index: model_index as u32,
        },
    }
}

/// Result of processing one frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameOutcome {
    /// Modeled compute time spent on the frame.
    pub compute: Duration,
    /// Pixels enqueued for downlink.
    pub sent_px: u64,
    /// Of those, pixels that are genuinely high-value.
    pub value_px: u64,
    /// Total pixels observed in the frame.
    pub observed_px: u64,
    /// Of those, pixels that are genuinely high-value.
    pub observed_value_px: u64,
    /// Tiles elided (downlinked raw or discarded without inference).
    pub tiles_elided: usize,
    /// Tiles processed by a model.
    pub tiles_processed: usize,
}

impl FrameOutcome {
    /// Precision of what this frame contributed to the downlink queue.
    pub fn precision(&self) -> f64 {
        if self.sent_px == 0 {
            0.0
        } else {
            self.value_px as f64 / self.sent_px as f64
        }
    }
}

/// The deployed Kodan runtime for one (application, target) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Runtime {
    logic: SelectionLogic,
    engine: EngineKind,
    latency: LatencyModel,
}

impl Runtime {
    /// Assembles a runtime from a selection logic and the context engine
    /// it was built against (learned or expert map-based).
    pub fn new(logic: SelectionLogic, engine: impl Into<EngineKind>) -> Runtime {
        let latency = LatencyModel::new(logic.target());
        Runtime {
            logic,
            engine: engine.into(),
            latency,
        }
    }

    /// The selection logic in force.
    pub fn logic(&self) -> &SelectionLogic {
        &self.logic
    }

    /// Processes one frame: tile, classify context, act.
    ///
    /// # Panics
    ///
    /// Panics if the frame dimension is not divisible by the selected
    /// grid.
    pub fn process_frame(&self, frame: &FrameImage) -> FrameOutcome {
        self.process_frame_recorded(frame, &mut NullRecorder)
    }

    /// [`Runtime::process_frame`] with telemetry: every decision point —
    /// tiling, per-tile classification, the elision/process action, model
    /// invocation, and the frame's pixel accounting — is reported to
    /// `recorder`. With a [`NullRecorder`] this is the plain hot path.
    ///
    /// # Panics
    ///
    /// Panics if the frame dimension is not divisible by the selected
    /// grid.
    pub fn process_frame_recorded(
        &self,
        frame: &FrameImage,
        recorder: &mut dyn Recorder,
    ) -> FrameOutcome {
        let tiles = tile_frame(frame, self.logic.grid());
        let engine_time = self.latency.context_engine_tile_time();
        let resize_time = self.latency.resize_tile_time();
        let base_per_tile = engine_time + resize_time;

        recorder.event(TelemetryEvent::FrameCaptured {
            pixels: frame.pixel_count() as u64,
        });
        recorder.count(CounterId::FramesProcessed, 1);
        recorder.count(CounterId::TilesObserved, tiles.len() as u64);

        let mut outcome = FrameOutcome::default();
        for (i, tile) in tiles.iter().enumerate() {
            let tile_index = i as u32;
            let px = (tile.size() * tile.size()) as u64;
            let clear_px = ((1.0 - tile.cloud_fraction()) * px as f64).round() as u64;
            outcome.observed_px += px;
            outcome.observed_value_px += clear_px;
            outcome.compute += base_per_tile;
            recorder.span(StageId::Preprocess, resize_time.as_seconds(), 1);
            recorder.span(StageId::Classification, engine_time.as_seconds(), 1);

            let context = self.engine.classify_recorded(tile, tile_index, recorder);
            let action = self.logic.action_for(context);
            recorder.event(TelemetryEvent::ActionTaken {
                tile: tile_index,
                action: action_kind(action),
            });
            match action {
                Action::Discard => {
                    outcome.tiles_elided += 1;
                    recorder.count(CounterId::TilesDiscarded, 1);
                    recorder.span(StageId::Elision, 0.0, 1);
                }
                Action::Downlink => {
                    outcome.tiles_elided += 1;
                    outcome.sent_px += px;
                    outcome.value_px += clear_px;
                    recorder.count(CounterId::TilesDownlinked, 1);
                    recorder.span(StageId::Elision, 0.0, 1);
                }
                Action::Process { model_index } => {
                    outcome.tiles_processed += 1;
                    let model = &self.logic.models()[model_index];
                    let inference = self
                        .latency
                        .specialized_tile_time(self.logic.arch(), model.ops_ratio());
                    outcome.compute += inference;
                    recorder.count(CounterId::TilesProcessed, 1);
                    recorder.count(CounterId::ModelInvocations, 1);
                    recorder.span(StageId::ModelExecution, inference.as_seconds(), 1);
                    recorder.observe(
                        HistogramId::ModelLatencySeconds,
                        inference.as_seconds(),
                    );
                    recorder.event(TelemetryEvent::ModelInvoked {
                        tile: tile_index,
                        model_index: model_index as u32,
                        modeled_seconds: inference.as_seconds(),
                    });
                    let pred = model.predict_tile(tile);
                    for (p, &cloudy) in pred.iter().zip(tile.truth_cloudy()) {
                        if *p {
                            outcome.sent_px += 1;
                            if !cloudy {
                                outcome.value_px += 1;
                            }
                        }
                    }
                }
            }
        }

        recorder.event(TelemetryEvent::PixelsAccounted {
            sent_px: outcome.sent_px,
            value_px: outcome.value_px,
            observed_px: outcome.observed_px,
        });
        recorder.count(CounterId::PixelsSent, outcome.sent_px);
        recorder.count(CounterId::PixelsValue, outcome.value_px);
        recorder.span(StageId::Accounting, 0.0, outcome.observed_px);
        recorder.span(StageId::Frame, outcome.compute.as_seconds(), 1);
        recorder.observe(HistogramId::FrameComputeSeconds, outcome.compute.as_seconds());
        recorder.observe(HistogramId::FramePrecision, outcome.precision());
        let total_tiles = outcome.tiles_elided + outcome.tiles_processed;
        if total_tiles > 0 {
            recorder.observe(
                HistogramId::FrameElisionFraction,
                outcome.tiles_elided as f64 / total_tiles as f64,
            );
        }
        outcome
    }

    /// Processes a set of frames and returns the aggregate outcome plus
    /// the mean per-frame compute time.
    pub fn process_frames<'a, I>(&self, frames: I) -> (FrameOutcome, Duration)
    where
        I: IntoIterator<Item = &'a FrameImage>,
    {
        self.process_frames_recorded(frames, &mut NullRecorder)
    }

    /// [`Runtime::process_frames`] with telemetry (see
    /// [`Runtime::process_frame_recorded`]).
    pub fn process_frames_recorded<'a, I>(
        &self,
        frames: I,
        recorder: &mut dyn Recorder,
    ) -> (FrameOutcome, Duration)
    where
        I: IntoIterator<Item = &'a FrameImage>,
    {
        let mut total = FrameOutcome::default();
        let mut count = 0usize;
        for frame in frames {
            let o = self.process_frame_recorded(frame, recorder);
            total.compute += o.compute;
            total.sent_px += o.sent_px;
            total.value_px += o.value_px;
            total.observed_px += o.observed_px;
            total.observed_value_px += o.observed_value_px;
            total.tiles_elided += o.tiles_elided;
            total.tiles_processed += o.tiles_processed;
            count += 1;
        }
        let mean = if count > 0 {
            total.compute / count as f64
        } else {
            Duration::ZERO
        };
        (total, mean)
    }
}

/// The bent-pipe "runtime": downlink everything, compute nothing.
pub fn bent_pipe_frame(frame: &FrameImage) -> FrameOutcome {
    let px = frame.pixel_count() as u64;
    let value = ((1.0 - frame.cloud_fraction()) * px as f64).round() as u64;
    FrameOutcome {
        compute: Duration::ZERO,
        sent_px: px,
        value_px: value,
        observed_px: px,
        observed_value_px: value,
        tiles_elided: 0,
        tiles_processed: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KodanConfig;
    use crate::pipeline::Transformation;
    use kodan_geodata::{Dataset, DatasetConfig, World};
    use kodan_hw::targets::HwTarget;
    use kodan_ml::zoo::ModelArch;

    #[test]
    fn precision_guards_zero_denominator() {
        // A frame that sent nothing must report 0.0 precision, not NaN:
        // mission aggregation and telemetry histograms consume this value.
        let outcome = FrameOutcome::default();
        assert_eq!(outcome.sent_px, 0);
        assert_eq!(outcome.precision(), 0.0);
        assert!(outcome.precision().is_finite());
        let sent = FrameOutcome {
            sent_px: 100,
            value_px: 25,
            ..FrameOutcome::default()
        };
        assert!((sent.precision() - 0.25).abs() < 1e-12);
    }

    fn runtime_and_frames() -> (Runtime, Vec<FrameImage>) {
        let world = World::new(42);
        let mut ds_cfg = DatasetConfig::small(1);
        ds_cfg.frame_count = 12;
        ds_cfg.frame_px = 132;
        let dataset = Dataset::sample(&world, &ds_cfg);
        let artifacts = Transformation::new(KodanConfig::fast(3))
            .run(&dataset, ModelArch::MobileNetV2DilatedC1)
            .expect("transformation succeeds");
        let logic = artifacts.select_for_target(
            HwTarget::OrinAgx15W,
            Duration::from_seconds(22.0),
        );
        let runtime = Runtime::new(logic, artifacts.engine.clone());
        let frames: Vec<FrameImage> = (0..4)
            .map(|i| world.render_frame(-30.0 + 20.0 * i as f64, 15.0 * i as f64, 0.5, 132, 150.0))
            .collect();
        (runtime, frames)
    }

    #[test]
    fn frame_outcome_accounting_is_conservative() {
        let (runtime, frames) = runtime_and_frames();
        for frame in &frames {
            let o = runtime.process_frame(frame);
            assert!(o.sent_px <= o.observed_px);
            assert!(o.value_px <= o.sent_px);
            assert!(o.observed_value_px <= o.observed_px);
            assert_eq!(o.observed_px as usize, frame.pixel_count());
            assert_eq!(
                o.tiles_elided + o.tiles_processed,
                runtime.logic().tiles_per_frame()
            );
            assert!(o.compute.as_seconds() > 0.0);
        }
    }

    #[test]
    fn runtime_filters_better_than_bent_pipe() {
        let (runtime, frames) = runtime_and_frames();
        let (total, _) = runtime.process_frames(frames.iter());
        let bent: u64 = frames.iter().map(|f| bent_pipe_frame(f).value_px).sum();
        let bent_sent: u64 = frames.iter().map(|f| bent_pipe_frame(f).sent_px).sum();
        let bent_precision = bent as f64 / bent_sent as f64;
        assert!(
            total.precision() > bent_precision,
            "kodan precision {} vs bent pipe {}",
            total.precision(),
            bent_precision
        );
    }

    #[test]
    fn mean_compute_is_average_of_frames() {
        let (runtime, frames) = runtime_and_frames();
        let (total, mean) = runtime.process_frames(frames.iter());
        assert!(
            (mean.as_seconds() * frames.len() as f64 - total.compute.as_seconds()).abs() < 1e-9
        );
    }

    #[test]
    fn bent_pipe_sends_everything() {
        let world = World::new(7);
        let frame = world.render_frame(10.0, 10.0, 0.0, 66, 150.0);
        let o = bent_pipe_frame(&frame);
        assert_eq!(o.sent_px, frame.pixel_count() as u64);
        assert_eq!(o.compute, Duration::ZERO);
        let hv = 1.0 - frame.cloud_fraction();
        assert!((o.precision() - hv).abs() < 0.01);
    }

    #[test]
    fn recorded_path_matches_plain_path() {
        let (runtime, frames) = runtime_and_frames();
        let mut recorder = kodan_telemetry::SummaryRecorder::new();
        for frame in &frames {
            let plain = runtime.process_frame(frame);
            let recorded = runtime.process_frame_recorded(frame, &mut recorder);
            assert_eq!(plain, recorded);
        }
        let snap = recorder.snapshot();
        assert_eq!(snap.frames, frames.len() as u64);
        assert_eq!(snap.counter(CounterId::FramesProcessed), frames.len() as u64);
    }

    #[test]
    fn telemetry_agrees_with_outcome_accounting() {
        let (runtime, frames) = runtime_and_frames();
        let mut recorder = kodan_telemetry::SummaryRecorder::new();
        let (total, _) = runtime.process_frames_recorded(frames.iter(), &mut recorder);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(CounterId::PixelsSent), total.sent_px);
        assert_eq!(snap.counter(CounterId::PixelsValue), total.value_px);
        assert_eq!(
            snap.counter(CounterId::TilesProcessed) as usize,
            total.tiles_processed
        );
        assert_eq!(
            (snap.counter(CounterId::TilesDiscarded) + snap.counter(CounterId::TilesDownlinked))
                as usize,
            total.tiles_elided
        );
        assert_eq!(
            snap.counter(CounterId::ModelInvocations),
            snap.counter(CounterId::TilesProcessed)
        );
        // The per-context classification table covers every tile.
        let classified: u64 = snap.context_tiles.values().sum();
        assert_eq!(classified, snap.counter(CounterId::TilesObserved));
        // Span hierarchy: the frame total is the sum of its modeled
        // children (preprocess + classification + model execution).
        let children = snap.span(StageId::Preprocess).modeled_seconds
            + snap.span(StageId::Classification).modeled_seconds
            + snap.span(StageId::ModelExecution).modeled_seconds;
        let frame_total = snap.span(StageId::Frame).modeled_seconds;
        assert!(
            (children - frame_total).abs() < 1e-9,
            "children {children} vs frame {frame_total}"
        );
        assert!((frame_total - total.compute.as_seconds()).abs() < 1e-9);
    }

    #[test]
    fn processing_empty_iterator_is_safe() {
        let (runtime, _) = runtime_and_frames();
        let (total, mean) = runtime.process_frames(std::iter::empty());
        assert_eq!(total.sent_px, 0);
        assert_eq!(mean, Duration::ZERO);
    }
}
