//! The on-orbit runtime (paper Figure 7, right).
//!
//! For each captured frame the runtime tiles the image at the selected
//! grid, classifies every tile into a context with the context engine,
//! and executes the selection logic's action: discard, downlink raw, or
//! run a specialized model and keep the pixels it labels high-value.
//!
//! Execution *time* is modeled (via `kodan-hw`'s Table 1 calibration —
//! this machine is not a Jetson), but the data path is real: tiles are
//! actually resized, featurized and classified, and the value accounting
//! compares predictions against ground truth pixel by pixel.
//!
//! Every decision narrates itself through the [`Recorder`] passed to
//! `process_frames_recorded`. The event/span stream this module emits is
//! an observability *contract*: the flight recorder's black-box windows,
//! the Chrome trace export and the health monitor's counters (all in
//! `kodan-telemetry`) are built from exactly these calls, and the
//! determinism suite pins their byte-identity across worker counts — so
//! reordering, dropping or duplicating an emission here is a visible
//! regression, not a cosmetic change. Per-frame streams are captured on
//! tapes by [`par::par_map_recorded`] and replayed in frame order, which
//! is what makes any recorder (summary, tape, trace, flight) see the
//! serial event order regardless of `workers`.

use crate::elide::Action;
use crate::engine::EngineKind;
use crate::par;
use crate::selection::SelectionLogic;
use crate::specialize::SpecializedModel;
use kodan_cote::time::Duration;
use kodan_faults::{FaultPlan, FrameFaults};
use kodan_geodata::frame::FrameImage;
use kodan_geodata::tile::tile_frame;
use kodan_hw::latency::LatencyModel;
use kodan_telemetry::{
    ActionKind, CounterId, FaultKind, HistogramId, NullRecorder, Recorder, RecoveryKind, StageId,
    TelemetryEvent,
};
use serde::{Deserialize, Serialize};

/// The telemetry vocabulary's mirror of [`Action`].
fn action_kind(action: Action) -> ActionKind {
    match action {
        Action::Discard => ActionKind::Discard,
        Action::Downlink => ActionKind::Downlink,
        Action::Process { model_index } => ActionKind::Process {
            model_index: model_index as u32,
        },
    }
}

/// Result of processing one frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameOutcome {
    /// Modeled compute time spent on the frame.
    pub compute: Duration,
    /// Pixels enqueued for downlink.
    pub sent_px: u64,
    /// Of those, pixels that are genuinely high-value.
    pub value_px: u64,
    /// Total pixels observed in the frame.
    pub observed_px: u64,
    /// Of those, pixels that are genuinely high-value.
    pub observed_value_px: u64,
    /// Tiles elided (downlinked raw or discarded without inference).
    pub tiles_elided: usize,
    /// Tiles processed by a model.
    pub tiles_processed: usize,
}

impl FrameOutcome {
    /// Precision of what this frame contributed to the downlink queue.
    pub fn precision(&self) -> f64 {
        if self.sent_px == 0 {
            0.0
        } else {
            self.value_px as f64 / self.sent_px as f64
        }
    }

    /// Fraction of the genuinely high-value pixels that were actually
    /// sent; `0.0` when the frame observed no high-value pixels.
    pub fn recall(&self) -> f64 {
        if self.observed_value_px == 0 {
            0.0
        } else {
            self.value_px as f64 / self.observed_value_px as f64
        }
    }

    /// Fraction of tiles resolved without model inference; `0.0` when no
    /// tiles were seen (empty or untiled frame).
    pub fn elision_fraction(&self) -> f64 {
        let total_tiles = self.tiles_elided + self.tiles_processed;
        if total_tiles == 0 {
            0.0
        } else {
            self.tiles_elided as f64 / total_tiles as f64
        }
    }

    /// Folds `other` into this aggregate. Callers must absorb outcomes
    /// in frame-index order: the pixel/tile fields are order-independent
    /// `u64`/`usize` sums, but `compute` accumulates `f64` seconds, and
    /// a fixed fold order is what keeps parallel runs bit-identical to
    /// serial.
    pub fn absorb(&mut self, other: &FrameOutcome) {
        self.compute += other.compute;
        self.sent_px += other.sent_px;
        self.value_px += other.value_px;
        self.observed_px += other.observed_px;
        self.observed_value_px += other.observed_value_px;
        self.tiles_elided += other.tiles_elided;
        self.tiles_processed += other.tiles_processed;
    }
}

/// A fault plan armed against a runtime, plus everything the degradation
/// policies need to survive it: the global fallback model and the known
/// good checksum of every specialized model, captured at arm time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjection {
    plan: FaultPlan,
    fallback: SpecializedModel,
    reference: Vec<u64>,
}

/// The deployed Kodan runtime for one (application, target) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Runtime {
    logic: SelectionLogic,
    engine: EngineKind,
    latency: LatencyModel,
    workers: usize,
    faults: Option<FaultInjection>,
    /// Model-table slots whose artifact was corrupted on load and
    /// replaced by the global fallback (see [`crate::artifact`]). The
    /// substitution already happened in the table; this list only drives
    /// the per-frame fallback telemetry.
    quarantined: Vec<usize>,
}

impl Runtime {
    /// Assembles a runtime from a selection logic and the context engine
    /// it was built against (learned or expert map-based). Frame batches
    /// are processed with the auto-detected worker count; use
    /// [`Runtime::with_workers`] to pin it.
    pub fn new(logic: SelectionLogic, engine: impl Into<EngineKind>) -> Runtime {
        let latency = LatencyModel::new(logic.target());
        Runtime {
            logic,
            engine: engine.into(),
            latency,
            workers: par::resolve_workers(0),
            faults: None,
            quarantined: Vec::new(),
        }
    }

    /// Marks model-table slots that the artifact loader already replaced
    /// with the global fallback after load-time corruption (see
    /// [`crate::artifact::LoadedArtifacts::quarantined_slots`]). Each
    /// frame reports one `ModelFallbacks` count and one
    /// `FaultRecovered(ModelFallback)` event per quarantined slot —
    /// exactly what a runtime-detected SEU corruption of that slot would
    /// report. An empty list (the clean-load path) changes nothing.
    pub fn with_quarantined_models(mut self, mut slots: Vec<usize>) -> Runtime {
        slots.sort_unstable();
        slots.dedup();
        slots.retain(|&s| s < self.logic.models().len());
        self.quarantined = slots;
        self
    }

    /// Arms a fault plan against this runtime and installs the global
    /// `fallback` model the degradation policy swaps in when an injected
    /// upset corrupts a specialized model. Known-good weight checksums of
    /// every specialized model are captured now, so corruption is detected
    /// by comparison rather than trust.
    pub fn with_fault_plan(mut self, plan: FaultPlan, fallback: SpecializedModel) -> Runtime {
        let reference = self
            .logic
            .models()
            .iter()
            .map(|m| m.weight_checksum())
            .collect();
        self.faults = Some(FaultInjection {
            plan,
            fallback,
            reference,
        });
        self
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Pins the worker count used by [`Runtime::process_frames`]; `0`
    /// means auto-detect. Worker count only changes wall-clock time —
    /// outcomes and telemetry are bit-identical for any value.
    pub fn with_workers(mut self, workers: usize) -> Runtime {
        self.workers = par::resolve_workers(workers);
        self
    }

    /// The resolved worker count for frame-batch processing.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The selection logic in force.
    pub fn logic(&self) -> &SelectionLogic {
        &self.logic
    }

    /// Processes one frame: tile, classify context, act.
    ///
    /// # Panics
    ///
    /// Panics if the frame dimension is not divisible by the selected
    /// grid.
    pub fn process_frame(&self, frame: &FrameImage) -> FrameOutcome {
        self.process_frame_recorded(frame, &mut NullRecorder)
    }

    /// [`Runtime::process_frame`] with telemetry: every decision point —
    /// tiling, per-tile classification, the elision/process action, model
    /// invocation, and the frame's pixel accounting — is reported to
    /// `recorder`. With a [`NullRecorder`] this is the plain hot path.
    ///
    /// # Panics
    ///
    /// Panics if the frame dimension is not divisible by the selected
    /// grid.
    pub fn process_frame_recorded(
        &self,
        frame: &FrameImage,
        recorder: &mut dyn Recorder,
    ) -> FrameOutcome {
        self.process_frame_indexed(frame, 0, recorder)
    }

    /// [`Runtime::process_frame_recorded`] for the frame at `frame_index`
    /// in the mission's capture order. The index is the fault-site
    /// identity an armed [`FaultPlan`] keys its per-frame decisions on,
    /// so the same `(plan seed, frame index)` pair yields the same faults
    /// at any worker count. Without an armed plan the index is inert.
    ///
    /// The degradation policy handles each injected fault without
    /// panicking:
    ///
    /// - a throttling episode multiplies every modeled stage cost of the
    ///   frame (the data path is unaffected — throttled silicon is slow,
    ///   not wrong);
    /// - an upset is applied to a cloned victim model and detected by
    ///   comparing weight checksums against the values captured at arm
    ///   time; a corrupted model is replaced by the global fallback for
    ///   the rest of the frame;
    /// - transient classify failures are absorbed by bounded
    ///   retry-with-backoff in modeled time; a tile that exhausts its
    ///   retry budget degrades to a raw downlink (the bent-pipe action)
    ///   instead of being lost.
    ///
    /// # Panics
    ///
    /// Panics if the frame dimension is not divisible by the selected
    /// grid.
    pub fn process_frame_indexed(
        &self,
        frame: &FrameImage,
        frame_index: u64,
        recorder: &mut dyn Recorder,
    ) -> FrameOutcome {
        let tiles = tile_frame(frame, self.logic.grid());
        let injection = self.faults.as_ref().filter(|f| f.plan.is_active());
        let frame_faults = match injection {
            Some(f) => f.plan.frame_faults(frame_index),
            None => FrameFaults::none(),
        };
        // Multiplying by the 1.0 no-fault factor is bit-exact, so the
        // disarmed path stays byte-identical to the pre-fault runtime.
        let slow = frame_faults.slowdown;
        let engine_time = self.latency.context_engine_tile_time() * slow;
        let resize_time = self.latency.resize_tile_time() * slow;
        let base_per_tile = engine_time + resize_time;

        recorder.event(TelemetryEvent::FrameCaptured {
            pixels: frame.pixel_count() as u64,
        });
        recorder.count(CounterId::FramesProcessed, 1);
        recorder.count(CounterId::TilesObserved, tiles.len() as u64);

        if slow > 1.0 {
            recorder.count(CounterId::FaultSlowdownFrames, 1);
            recorder.event(TelemetryEvent::FaultInjected {
                kind: FaultKind::Slowdown,
            });
        }

        // Apply any upset to a cloned victim and checksum-validate it
        // once up front; a detected mismatch retires that model slot to
        // the global fallback for the whole frame.
        let mut fallback_slot: Option<usize> = None;
        if let Some(f) = injection {
            if let Some(upset) = frame_faults.seu {
                let models = self.logic.models();
                let slot = upset
                    .weight_index
                    .checked_rem(models.len() as u64)
                    .unwrap_or(0) as usize;
                // An empty model table yields no slot and no injection.
                if let Some(original) = models.get(slot) {
                    recorder.count(CounterId::FaultSeuInjected, 1);
                    recorder.event(TelemetryEvent::FaultInjected {
                        kind: FaultKind::Seu,
                    });
                    let mut victim = original.clone();
                    victim.corrupt_weight_bit(upset.weight_index, upset.bit);
                    if f.reference.get(slot) != Some(&victim.weight_checksum()) {
                        fallback_slot = Some(slot);
                        recorder.count(CounterId::ModelFallbacks, 1);
                        recorder.event(TelemetryEvent::FaultRecovered {
                            kind: RecoveryKind::ModelFallback,
                        });
                    }
                }
            }
        }
        // Load-time quarantined slots are already served by substituted
        // fallback models; account for them here the way the SEU path
        // above accounts for a runtime-detected corruption.
        for _ in &self.quarantined {
            recorder.count(CounterId::ModelFallbacks, 1);
            recorder.event(TelemetryEvent::FaultRecovered {
                kind: RecoveryKind::ModelFallback,
            });
        }

        let retry_budget = injection.map_or(0, |f| f.plan.config().classify_retries);
        let backoff_base_s = injection.map_or(0.0, |f| f.plan.config().retry_backoff_s);

        let mut outcome = FrameOutcome::default();
        for (i, tile) in tiles.iter().enumerate() {
            let tile_index = i as u32;
            let px = (tile.size() * tile.size()) as u64;
            let clear_px = ((1.0 - tile.cloud_fraction()) * px as f64).round() as u64;
            outcome.observed_px += px;
            outcome.observed_value_px += clear_px;
            outcome.compute += base_per_tile;
            recorder.span(StageId::Preprocess, resize_time.as_seconds(), 1);

            // Bounded retry-with-backoff for injected transient classify
            // failures: each retry costs exponentially growing modeled
            // time, charged to the Classification stage.
            let failures = match injection {
                Some(f) => f.plan.classify_failures(frame_index, i as u64),
                None => 0,
            };
            let retries = failures.min(retry_budget);
            let mut classify_seconds = engine_time.as_seconds();
            if failures > 0 {
                recorder.count(CounterId::FaultClassifyRetries, u64::from(retries));
                recorder.event(TelemetryEvent::FaultInjected {
                    kind: FaultKind::ClassifyTransient,
                });
                let backoff = backoff_base_s * (2f64.powi(retries as i32) - 1.0) * slow;
                outcome.compute += Duration::from_seconds(backoff);
                classify_seconds += backoff;
            }
            recorder.span(StageId::Classification, classify_seconds, 1);

            if failures > retry_budget {
                // Retry budget exhausted: rather than lose the tile, fall
                // back to the bent-pipe action and downlink it raw.
                recorder.count(CounterId::FaultClassifyExhausted, 1);
                recorder.event(TelemetryEvent::FaultRecovered {
                    kind: RecoveryKind::ClassifyGaveUp,
                });
                outcome.tiles_elided += 1;
                outcome.sent_px += px;
                outcome.value_px += clear_px;
                recorder.event(TelemetryEvent::ActionTaken {
                    tile: tile_index,
                    action: ActionKind::Downlink,
                });
                recorder.count(CounterId::TilesDownlinked, 1);
                recorder.span(StageId::Elision, 0.0, 1);
                continue;
            }
            if retries > 0 {
                recorder.event(TelemetryEvent::FaultRecovered {
                    kind: RecoveryKind::ClassifyRetry,
                });
            }

            let context = self.engine.classify_recorded(tile, tile_index, recorder);
            let action = self.logic.action_for(context);
            recorder.event(TelemetryEvent::ActionTaken {
                tile: tile_index,
                action: action_kind(action),
            });
            match action {
                Action::Discard => {
                    outcome.tiles_elided += 1;
                    recorder.count(CounterId::TilesDiscarded, 1);
                    recorder.span(StageId::Elision, 0.0, 1);
                }
                Action::Downlink => {
                    outcome.tiles_elided += 1;
                    outcome.sent_px += px;
                    outcome.value_px += clear_px;
                    recorder.count(CounterId::TilesDownlinked, 1);
                    recorder.span(StageId::Elision, 0.0, 1);
                }
                Action::Process { model_index } => {
                    let model = match (fallback_slot, injection) {
                        (Some(slot), Some(f)) if slot == model_index => &f.fallback,
                        _ => match self.logic.models().get(model_index) {
                            Some(m) => m,
                            None => {
                                // A policy referencing a missing model
                                // slot must not abort the frame: fall
                                // back to the bent-pipe action, like the
                                // classify-exhausted path above.
                                outcome.tiles_elided += 1;
                                outcome.sent_px += px;
                                outcome.value_px += clear_px;
                                recorder.count(CounterId::TilesDownlinked, 1);
                                recorder.span(StageId::Elision, 0.0, 1);
                                continue;
                            }
                        },
                    };
                    outcome.tiles_processed += 1;
                    let inference = self
                        .latency
                        .specialized_tile_time(self.logic.arch(), model.ops_ratio())
                        * slow;
                    outcome.compute += inference;
                    recorder.count(CounterId::TilesProcessed, 1);
                    recorder.count(CounterId::ModelInvocations, 1);
                    recorder.span(StageId::ModelExecution, inference.as_seconds(), 1);
                    recorder.observe(
                        HistogramId::ModelLatencySeconds,
                        inference.as_seconds(),
                    );
                    recorder.event(TelemetryEvent::ModelInvoked {
                        tile: tile_index,
                        model_index: model_index as u32,
                        modeled_seconds: inference.as_seconds(),
                    });
                    let pred = model.predict_tile(tile);
                    for (p, &cloudy) in pred.iter().zip(tile.truth_cloudy()) {
                        if *p {
                            outcome.sent_px += 1;
                            if !cloudy {
                                outcome.value_px += 1;
                            }
                        }
                    }
                }
            }
        }

        recorder.event(TelemetryEvent::PixelsAccounted {
            sent_px: outcome.sent_px,
            value_px: outcome.value_px,
            observed_px: outcome.observed_px,
        });
        recorder.count(CounterId::PixelsSent, outcome.sent_px);
        recorder.count(CounterId::PixelsValue, outcome.value_px);
        recorder.span(StageId::Accounting, 0.0, outcome.observed_px);
        recorder.span(StageId::Frame, outcome.compute.as_seconds(), 1);
        recorder.observe(HistogramId::FrameComputeSeconds, outcome.compute.as_seconds());
        recorder.observe(HistogramId::FramePrecision, outcome.precision());
        if outcome.tiles_elided + outcome.tiles_processed > 0 {
            recorder.observe(HistogramId::FrameElisionFraction, outcome.elision_fraction());
        }
        outcome
    }

    /// Processes a set of frames and returns the aggregate outcome plus
    /// the mean per-frame compute time.
    pub fn process_frames<'a, I>(&self, frames: I) -> (FrameOutcome, Duration)
    where
        I: IntoIterator<Item = &'a FrameImage>,
    {
        self.process_frames_recorded(frames, &mut NullRecorder)
    }

    /// [`Runtime::process_frames`] with telemetry (see
    /// [`Runtime::process_frame_recorded`]).
    ///
    /// Frames are fanned out across [`Runtime::workers`] threads; the
    /// per-frame outcomes come back in frame-index order and are folded
    /// serially, and per-worker telemetry tapes are replayed in the same
    /// order, so the aggregate and the recorder's snapshot are
    /// bit-identical to a serial run.
    pub fn process_frames_recorded<'a, I>(
        &self,
        frames: I,
        recorder: &mut dyn Recorder,
    ) -> (FrameOutcome, Duration)
    where
        I: IntoIterator<Item = &'a FrameImage>,
    {
        let frames: Vec<&FrameImage> = frames.into_iter().collect();
        let outcomes = par::par_map_recorded(self.workers, &frames, recorder, |i, frame, rec| {
            self.process_frame_indexed(frame, i as u64, rec)
        });
        let mut total = FrameOutcome::default();
        for o in &outcomes {
            total.absorb(o);
        }
        let mean = if outcomes.is_empty() {
            Duration::ZERO
        } else {
            total.compute / outcomes.len() as f64
        };
        (total, mean)
    }

    /// Processes frames in parallel and returns each frame's individual
    /// outcome, in frame order (used by detailed mission replay, which
    /// needs per-frame results rather than the aggregate).
    pub fn frame_outcomes(&self, frames: &[FrameImage]) -> Vec<FrameOutcome> {
        par::par_map_indexed(self.workers, frames, |i, frame| {
            self.process_frame_indexed(frame, i as u64, &mut NullRecorder)
        })
    }
}

/// The bent-pipe "runtime": downlink everything, compute nothing.
pub fn bent_pipe_frame(frame: &FrameImage) -> FrameOutcome {
    let px = frame.pixel_count() as u64;
    let value = ((1.0 - frame.cloud_fraction()) * px as f64).round() as u64;
    FrameOutcome {
        compute: Duration::ZERO,
        sent_px: px,
        value_px: value,
        observed_px: px,
        observed_value_px: value,
        tiles_elided: 0,
        tiles_processed: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KodanConfig;
    use crate::pipeline::Transformation;
    use kodan_geodata::{Dataset, DatasetConfig, World};
    use kodan_hw::targets::HwTarget;
    use kodan_ml::zoo::ModelArch;

    #[test]
    fn precision_guards_zero_denominator() {
        // A frame that sent nothing must report 0.0 precision, not NaN:
        // mission aggregation and telemetry histograms consume this value.
        let outcome = FrameOutcome::default();
        assert_eq!(outcome.sent_px, 0);
        assert_eq!(outcome.precision(), 0.0);
        assert!(outcome.precision().is_finite());
        let sent = FrameOutcome {
            sent_px: 100,
            value_px: 25,
            ..FrameOutcome::default()
        };
        assert!((sent.precision() - 0.25).abs() < 1e-12);
    }

    fn runtime_and_frames() -> (Runtime, Vec<FrameImage>) {
        let world = World::new(42);
        let mut ds_cfg = DatasetConfig::small(1);
        ds_cfg.frame_count = 12;
        ds_cfg.frame_px = 132;
        let dataset = Dataset::sample(&world, &ds_cfg);
        let artifacts = Transformation::new(KodanConfig::fast(3))
            .run(&dataset, ModelArch::MobileNetV2DilatedC1)
            .expect("transformation succeeds");
        let logic = artifacts.select_for_target(
            HwTarget::OrinAgx15W,
            Duration::from_seconds(22.0),
        );
        let runtime = Runtime::new(logic, artifacts.engine.clone());
        let frames: Vec<FrameImage> = (0..4)
            .map(|i| world.render_frame(-30.0 + 20.0 * i as f64, 15.0 * i as f64, 0.5, 132, 150.0))
            .collect();
        (runtime, frames)
    }

    #[test]
    fn frame_outcome_accounting_is_conservative() {
        let (runtime, frames) = runtime_and_frames();
        for frame in &frames {
            let o = runtime.process_frame(frame);
            assert!(o.sent_px <= o.observed_px);
            assert!(o.value_px <= o.sent_px);
            assert!(o.observed_value_px <= o.observed_px);
            assert_eq!(o.observed_px as usize, frame.pixel_count());
            assert_eq!(
                o.tiles_elided + o.tiles_processed,
                runtime.logic().tiles_per_frame()
            );
            assert!(o.compute.as_seconds() > 0.0);
        }
    }

    #[test]
    fn runtime_filters_better_than_bent_pipe() {
        let (runtime, frames) = runtime_and_frames();
        let (total, _) = runtime.process_frames(frames.iter());
        let bent: u64 = frames.iter().map(|f| bent_pipe_frame(f).value_px).sum();
        let bent_sent: u64 = frames.iter().map(|f| bent_pipe_frame(f).sent_px).sum();
        let bent_precision = bent as f64 / bent_sent as f64;
        assert!(
            total.precision() > bent_precision,
            "kodan precision {} vs bent pipe {}",
            total.precision(),
            bent_precision
        );
    }

    #[test]
    fn mean_compute_is_average_of_frames() {
        let (runtime, frames) = runtime_and_frames();
        let (total, mean) = runtime.process_frames(frames.iter());
        assert!(
            (mean.as_seconds() * frames.len() as f64 - total.compute.as_seconds()).abs() < 1e-9
        );
    }

    #[test]
    fn bent_pipe_sends_everything() {
        let world = World::new(7);
        let frame = world.render_frame(10.0, 10.0, 0.0, 66, 150.0);
        let o = bent_pipe_frame(&frame);
        assert_eq!(o.sent_px, frame.pixel_count() as u64);
        assert_eq!(o.compute, Duration::ZERO);
        let hv = 1.0 - frame.cloud_fraction();
        assert!((o.precision() - hv).abs() < 0.01);
    }

    #[test]
    fn recorded_path_matches_plain_path() {
        let (runtime, frames) = runtime_and_frames();
        let mut recorder = kodan_telemetry::SummaryRecorder::new();
        for frame in &frames {
            let plain = runtime.process_frame(frame);
            let recorded = runtime.process_frame_recorded(frame, &mut recorder);
            assert_eq!(plain, recorded);
        }
        let snap = recorder.snapshot();
        assert_eq!(snap.frames, frames.len() as u64);
        assert_eq!(snap.counter(CounterId::FramesProcessed), frames.len() as u64);
    }

    #[test]
    fn telemetry_agrees_with_outcome_accounting() {
        let (runtime, frames) = runtime_and_frames();
        let mut recorder = kodan_telemetry::SummaryRecorder::new();
        let (total, _) = runtime.process_frames_recorded(frames.iter(), &mut recorder);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(CounterId::PixelsSent), total.sent_px);
        assert_eq!(snap.counter(CounterId::PixelsValue), total.value_px);
        assert_eq!(
            snap.counter(CounterId::TilesProcessed) as usize,
            total.tiles_processed
        );
        assert_eq!(
            (snap.counter(CounterId::TilesDiscarded) + snap.counter(CounterId::TilesDownlinked))
                as usize,
            total.tiles_elided
        );
        assert_eq!(
            snap.counter(CounterId::ModelInvocations),
            snap.counter(CounterId::TilesProcessed)
        );
        // The per-context classification table covers every tile.
        let classified: u64 = snap.context_tiles.values().sum();
        assert_eq!(classified, snap.counter(CounterId::TilesObserved));
        // Span hierarchy: the frame total is the sum of its modeled
        // children (preprocess + classification + model execution).
        let children = snap.span(StageId::Preprocess).modeled_seconds
            + snap.span(StageId::Classification).modeled_seconds
            + snap.span(StageId::ModelExecution).modeled_seconds;
        let frame_total = snap.span(StageId::Frame).modeled_seconds;
        assert!(
            (children - frame_total).abs() < 1e-9,
            "children {children} vs frame {frame_total}"
        );
        assert!((frame_total - total.compute.as_seconds()).abs() < 1e-9);
    }

    #[test]
    fn processing_empty_iterator_is_safe() {
        let (runtime, _) = runtime_and_frames();
        let (total, mean) = runtime.process_frames(std::iter::empty());
        assert_eq!(total.sent_px, 0);
        assert_eq!(mean, Duration::ZERO);
    }

    #[test]
    fn ratio_helpers_guard_zero_denominators() {
        let empty = FrameOutcome::default();
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.elision_fraction(), 0.0);
        assert!(empty.recall().is_finite());
        assert!(empty.elision_fraction().is_finite());
        let busy = FrameOutcome {
            sent_px: 40,
            value_px: 30,
            observed_value_px: 60,
            tiles_elided: 3,
            tiles_processed: 1,
            ..FrameOutcome::default()
        };
        assert!((busy.recall() - 0.5).abs() < 1e-12);
        assert!((busy.elision_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn absorb_matches_field_by_field_addition() {
        let a = FrameOutcome {
            compute: Duration::from_seconds(0.125),
            sent_px: 10,
            value_px: 9,
            observed_px: 100,
            observed_value_px: 50,
            tiles_elided: 2,
            tiles_processed: 3,
        };
        let b = FrameOutcome {
            compute: Duration::from_seconds(0.25),
            sent_px: 1,
            value_px: 1,
            observed_px: 30,
            observed_value_px: 7,
            tiles_elided: 1,
            tiles_processed: 0,
        };
        let mut total = a;
        total.absorb(&b);
        assert_eq!(total.sent_px, 11);
        assert_eq!(total.value_px, 10);
        assert_eq!(total.observed_px, 130);
        assert_eq!(total.observed_value_px, 57);
        assert_eq!(total.tiles_elided, 3);
        assert_eq!(total.tiles_processed, 3);
        assert!((total.compute.as_seconds() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn parallel_frame_processing_matches_serial_exactly() {
        let (runtime, frames) = runtime_and_frames();
        let serial = runtime.clone().with_workers(1);
        let (base_total, base_mean) = serial.process_frames(frames.iter());
        let base_outcomes = serial.frame_outcomes(&frames);
        for workers in [2, 3, 4] {
            let parallel = runtime.clone().with_workers(workers);
            assert_eq!(parallel.workers(), workers);
            let (total, mean) = parallel.process_frames(frames.iter());
            // Bitwise equality, not epsilon: the index-ordered fold must
            // reproduce the serial f64 accumulation exactly.
            assert_eq!(base_total, total, "workers={workers}");
            assert_eq!(base_mean, mean, "workers={workers}");
            assert_eq!(base_outcomes, parallel.frame_outcomes(&frames));
        }
    }

    #[test]
    fn parallel_telemetry_is_byte_identical_to_serial() {
        let (runtime, frames) = runtime_and_frames();
        let snapshot_json = |workers: usize| {
            let rt = runtime.clone().with_workers(workers);
            let mut recorder = kodan_telemetry::SummaryRecorder::new();
            let _ = rt.process_frames_recorded(frames.iter(), &mut recorder);
            recorder.snapshot().to_json()
        };
        let serial = snapshot_json(1);
        for workers in [2, 4] {
            assert_eq!(serial, snapshot_json(workers), "workers={workers}");
        }
    }
}
