//! The on-orbit runtime (paper Figure 7, right).
//!
//! For each captured frame the runtime tiles the image at the selected
//! grid, classifies every tile into a context with the context engine,
//! and executes the selection logic's action: discard, downlink raw, or
//! run a specialized model and keep the pixels it labels high-value.
//!
//! Execution *time* is modeled (via `kodan-hw`'s Table 1 calibration —
//! this machine is not a Jetson), but the data path is real: tiles are
//! actually resized, featurized and classified, and the value accounting
//! compares predictions against ground truth pixel by pixel.

use crate::elide::Action;
use crate::engine::EngineKind;
use crate::selection::SelectionLogic;
use kodan_cote::time::Duration;
use kodan_geodata::frame::FrameImage;
use kodan_geodata::tile::tile_frame;
use kodan_hw::latency::LatencyModel;
use serde::{Deserialize, Serialize};

/// Result of processing one frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameOutcome {
    /// Modeled compute time spent on the frame.
    pub compute: Duration,
    /// Pixels enqueued for downlink.
    pub sent_px: u64,
    /// Of those, pixels that are genuinely high-value.
    pub value_px: u64,
    /// Total pixels observed in the frame.
    pub observed_px: u64,
    /// Of those, pixels that are genuinely high-value.
    pub observed_value_px: u64,
    /// Tiles elided (downlinked raw or discarded without inference).
    pub tiles_elided: usize,
    /// Tiles processed by a model.
    pub tiles_processed: usize,
}

impl FrameOutcome {
    /// Precision of what this frame contributed to the downlink queue.
    pub fn precision(&self) -> f64 {
        if self.sent_px == 0 {
            0.0
        } else {
            self.value_px as f64 / self.sent_px as f64
        }
    }
}

/// The deployed Kodan runtime for one (application, target) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Runtime {
    logic: SelectionLogic,
    engine: EngineKind,
    latency: LatencyModel,
}

impl Runtime {
    /// Assembles a runtime from a selection logic and the context engine
    /// it was built against (learned or expert map-based).
    pub fn new(logic: SelectionLogic, engine: impl Into<EngineKind>) -> Runtime {
        let latency = LatencyModel::new(logic.target());
        Runtime {
            logic,
            engine: engine.into(),
            latency,
        }
    }

    /// The selection logic in force.
    pub fn logic(&self) -> &SelectionLogic {
        &self.logic
    }

    /// Processes one frame: tile, classify context, act.
    ///
    /// # Panics
    ///
    /// Panics if the frame dimension is not divisible by the selected
    /// grid.
    pub fn process_frame(&self, frame: &FrameImage) -> FrameOutcome {
        let tiles = tile_frame(frame, self.logic.grid());
        let base_per_tile =
            self.latency.context_engine_tile_time() + self.latency.resize_tile_time();

        let mut outcome = FrameOutcome::default();
        for tile in &tiles {
            let px = (tile.size() * tile.size()) as u64;
            let clear_px = ((1.0 - tile.cloud_fraction()) * px as f64).round() as u64;
            outcome.observed_px += px;
            outcome.observed_value_px += clear_px;
            outcome.compute += base_per_tile;

            let context = self.engine.classify(tile);
            match self.logic.action_for(context) {
                Action::Discard => {
                    outcome.tiles_elided += 1;
                }
                Action::Downlink => {
                    outcome.tiles_elided += 1;
                    outcome.sent_px += px;
                    outcome.value_px += clear_px;
                }
                Action::Process { model_index } => {
                    outcome.tiles_processed += 1;
                    let model = &self.logic.models()[model_index];
                    outcome.compute += self
                        .latency
                        .specialized_tile_time(self.logic.arch(), model.ops_ratio());
                    let pred = model.predict_tile(tile);
                    for (p, &cloudy) in pred.iter().zip(tile.truth_cloudy()) {
                        if *p {
                            outcome.sent_px += 1;
                            if !cloudy {
                                outcome.value_px += 1;
                            }
                        }
                    }
                }
            }
        }
        outcome
    }

    /// Processes a set of frames and returns the aggregate outcome plus
    /// the mean per-frame compute time.
    pub fn process_frames<'a, I>(&self, frames: I) -> (FrameOutcome, Duration)
    where
        I: IntoIterator<Item = &'a FrameImage>,
    {
        let mut total = FrameOutcome::default();
        let mut count = 0usize;
        for frame in frames {
            let o = self.process_frame(frame);
            total.compute += o.compute;
            total.sent_px += o.sent_px;
            total.value_px += o.value_px;
            total.observed_px += o.observed_px;
            total.observed_value_px += o.observed_value_px;
            total.tiles_elided += o.tiles_elided;
            total.tiles_processed += o.tiles_processed;
            count += 1;
        }
        let mean = if count > 0 {
            total.compute / count as f64
        } else {
            Duration::ZERO
        };
        (total, mean)
    }
}

/// The bent-pipe "runtime": downlink everything, compute nothing.
pub fn bent_pipe_frame(frame: &FrameImage) -> FrameOutcome {
    let px = frame.pixel_count() as u64;
    let value = ((1.0 - frame.cloud_fraction()) * px as f64).round() as u64;
    FrameOutcome {
        compute: Duration::ZERO,
        sent_px: px,
        value_px: value,
        observed_px: px,
        observed_value_px: value,
        tiles_elided: 0,
        tiles_processed: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KodanConfig;
    use crate::pipeline::Transformation;
    use kodan_geodata::{Dataset, DatasetConfig, World};
    use kodan_hw::targets::HwTarget;
    use kodan_ml::zoo::ModelArch;

    fn runtime_and_frames() -> (Runtime, Vec<FrameImage>) {
        let world = World::new(42);
        let mut ds_cfg = DatasetConfig::small(1);
        ds_cfg.frame_count = 12;
        ds_cfg.frame_px = 132;
        let dataset = Dataset::sample(&world, &ds_cfg);
        let artifacts = Transformation::new(KodanConfig::fast(3))
            .run(&dataset, ModelArch::MobileNetV2DilatedC1)
            .expect("transformation succeeds");
        let logic = artifacts.select_for_target(
            HwTarget::OrinAgx15W,
            Duration::from_seconds(22.0),
        );
        let runtime = Runtime::new(logic, artifacts.engine.clone());
        let frames: Vec<FrameImage> = (0..4)
            .map(|i| world.render_frame(-30.0 + 20.0 * i as f64, 15.0 * i as f64, 0.5, 132, 150.0))
            .collect();
        (runtime, frames)
    }

    #[test]
    fn frame_outcome_accounting_is_conservative() {
        let (runtime, frames) = runtime_and_frames();
        for frame in &frames {
            let o = runtime.process_frame(frame);
            assert!(o.sent_px <= o.observed_px);
            assert!(o.value_px <= o.sent_px);
            assert!(o.observed_value_px <= o.observed_px);
            assert_eq!(o.observed_px as usize, frame.pixel_count());
            assert_eq!(
                o.tiles_elided + o.tiles_processed,
                runtime.logic().tiles_per_frame()
            );
            assert!(o.compute.as_seconds() > 0.0);
        }
    }

    #[test]
    fn runtime_filters_better_than_bent_pipe() {
        let (runtime, frames) = runtime_and_frames();
        let (total, _) = runtime.process_frames(frames.iter());
        let bent: u64 = frames.iter().map(|f| bent_pipe_frame(f).value_px).sum();
        let bent_sent: u64 = frames.iter().map(|f| bent_pipe_frame(f).sent_px).sum();
        let bent_precision = bent as f64 / bent_sent as f64;
        assert!(
            total.precision() > bent_precision,
            "kodan precision {} vs bent pipe {}",
            total.precision(),
            bent_precision
        );
    }

    #[test]
    fn mean_compute_is_average_of_frames() {
        let (runtime, frames) = runtime_and_frames();
        let (total, mean) = runtime.process_frames(frames.iter());
        assert!(
            (mean.as_seconds() * frames.len() as f64 - total.compute.as_seconds()).abs() < 1e-9
        );
    }

    #[test]
    fn bent_pipe_sends_everything() {
        let world = World::new(7);
        let frame = world.render_frame(10.0, 10.0, 0.0, 66, 150.0);
        let o = bent_pipe_frame(&frame);
        assert_eq!(o.sent_px, frame.pixel_count() as u64);
        assert_eq!(o.compute, Duration::ZERO);
        let hv = 1.0 - frame.cloud_fraction();
        assert!((o.precision() - hv).abs() < 0.01);
    }

    #[test]
    fn processing_empty_iterator_is_safe() {
        let (runtime, _) = runtime_and_frames();
        let (total, mean) = runtime.process_frames(std::iter::empty());
        assert_eq!(total.sent_px, 0);
        assert_eq!(mean, Duration::ZERO);
    }
}
