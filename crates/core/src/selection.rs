//! The selection logic: Kodan's one-time, per-target optimization.
//!
//! Given the transformation artifacts (contexts, models, per-grid
//! validation statistics) and a deployment target, the selection step
//! sweeps frame tile count and per-context action — discard, downlink, or
//! one of the candidate models — to maximize the estimated data value
//! density of the saturated downlink (paper Section 3.4).
//!
//! The estimator mirrors the mission accounting: when the chosen
//! configuration misses the frame deadline only a fraction of frames get
//! processed, and when it produces less data than the downlink can carry
//! the idle capacity counts for nothing. Those two pressures reproduce
//! the paper's regimes — trade precision for time under a computational
//! bottleneck, spend idle time on precision otherwise.

use crate::elide::{Action, ActionOutcome};
use crate::pipeline::{GridArtifacts, TransformationArtifacts};
use crate::specialize::SpecializedModel;
use kodan_cote::time::Duration;
use kodan_hw::latency::LatencyModel;
use kodan_hw::targets::HwTarget;
use kodan_ml::zoo::ModelArch;
use kodan_wire::{Dec, Decode, Enc, Encode, WireError};
use serde::{Deserialize, Serialize};

/// Downlink capacity as a fraction of observed data, used when the
/// caller does not supply a mission-specific value. Matches the paper's
/// Landsat analysis (a bent pipe downlinks ~21 % of observations).
pub const DEFAULT_CAPACITY_FRACTION: f64 = 0.21;

/// Minimum high-value fraction for a context to be eligible for
/// downlink elision. The paper elides only for contexts "almost
/// entirely" high-value; gating also keeps the optimizer from
/// cherry-picking one clean context and starving the downlink when the
/// on-orbit context mix shifts from the validation mix.
pub const ELIDE_DOWNLINK_THRESHOLD: f64 = 0.85;

/// Maximum high-value fraction for a context to be eligible for discard
/// elision.
pub const ELIDE_DISCARD_THRESHOLD: f64 = 0.15;

/// Which of Kodan's three techniques the optimizer may use. Restricting
/// the set yields the paper's per-technique ablations: tiling-only
/// (Figure 14) and elision-only (Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TechniqueSet {
    /// Sweep tile count per frame.
    pub tiling: bool,
    /// Allow context-specialized models.
    pub specialization: bool,
    /// Allow per-context downlink/discard elision.
    pub elision: bool,
}

impl TechniqueSet {
    /// All three techniques (full Kodan).
    pub fn all() -> TechniqueSet {
        TechniqueSet {
            tiling: true,
            specialization: true,
            elision: true,
        }
    }

    /// Only frame tiling (Figure 14's ablation).
    pub fn tiling_only() -> TechniqueSet {
        TechniqueSet {
            tiling: true,
            specialization: false,
            elision: false,
        }
    }

    /// Only context-based elision at the direct-deploy tiling
    /// (Figure 15's ablation).
    pub fn elision_only() -> TechniqueSet {
        TechniqueSet {
            tiling: false,
            specialization: false,
            elision: true,
        }
    }

    /// Only context-specialized models at the direct-deploy tiling.
    pub fn specialization_only() -> TechniqueSet {
        TechniqueSet {
            tiling: false,
            specialization: true,
            elision: false,
        }
    }
}

/// The optimizer's prediction of a configuration's behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionEstimate {
    /// Expected time to process one frame.
    pub frame_time: Duration,
    /// Fraction of frames processed within the deadline (1.0 when the
    /// deadline is met on average).
    pub processed_fraction: f64,
    /// Expected fraction of observed pixels downlinked.
    pub sent_fraction: f64,
    /// Expected fraction of observed pixels downlinked and high-value.
    pub value_fraction: f64,
    /// Estimated data value density of the saturated downlink.
    pub dvd: f64,
}

/// A deployable policy: tile count, per-context actions, and the models
/// those actions reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionLogic {
    arch: ModelArch,
    target: HwTarget,
    grid: usize,
    actions: Vec<Action>,
    models: Vec<SpecializedModel>,
    deadline: Duration,
    capacity_fraction: f64,
    estimate: SelectionEstimate,
}

impl SelectionLogic {
    /// Builds the DVD-maximizing selection logic for a target.
    ///
    /// `capacity_fraction` is the downlink capacity divided by the data
    /// volume observed over the same period.
    ///
    /// # Panics
    ///
    /// Panics if the artifacts contain no grids, the deadline is not
    /// positive, or `capacity_fraction` is not in `(0, 1]`.
    pub fn build(
        artifacts: &TransformationArtifacts,
        target: HwTarget,
        deadline: Duration,
        capacity_fraction: f64,
    ) -> SelectionLogic {
        Self::build_restricted(
            artifacts,
            target,
            deadline,
            capacity_fraction,
            TechniqueSet::all(),
        )
    }

    /// Like [`SelectionLogic::build`] but with a restricted technique set
    /// — used for the paper's per-technique ablations (Figures 14-15).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SelectionLogic::build`].
    pub fn build_restricted(
        artifacts: &TransformationArtifacts,
        target: HwTarget,
        deadline: Duration,
        capacity_fraction: f64,
        techniques: TechniqueSet,
    ) -> SelectionLogic {
        assert!(deadline.as_seconds() > 0.0, "deadline must be positive");
        assert!(
            capacity_fraction > 0.0 && capacity_fraction <= 1.0,
            "capacity fraction must be in (0, 1]"
        );
        assert!(!artifacts.grids.is_empty(), "artifacts contain no grids");

        let latency = LatencyModel::new(target);
        let mut best: Option<SelectionLogic> = None;

        // Without the tiling technique the application keeps the
        // direct-deploy tiling (the densest grid).
        let densest = artifacts
            .grids
            .iter()
            .map(|g| g.grid)
            .max()
            .expect("artifacts contain grids");

        for ga in &artifacts.grids {
            if !techniques.tiling && ga.grid != densest {
                continue;
            }
            let k = artifacts.contexts.len();
            let ModelTable {
                models,
                context_model_index,
                merged_model_index,
            } = ModelTable::for_grid(ga, k);

            // Per-context action options, filtered by the technique set.
            let options: Vec<Vec<ActionOutcome>> = (0..k)
                .map(|c| {
                    let mut opts = vec![ActionOutcome::process(
                        0,
                        &ga.global_eval_per_context[c],
                        latency.full_model_tile_time(artifacts.arch),
                    )];
                    if techniques.elision {
                        if ga.context_hv[c] <= ELIDE_DISCARD_THRESHOLD {
                            opts.push(ActionOutcome::discard());
                        }
                        if ga.context_hv[c] >= ELIDE_DOWNLINK_THRESHOLD {
                            opts.push(ActionOutcome::downlink(ga.context_hv[c]));
                        }
                    }
                    if techniques.specialization {
                        if let (Some(idx), Some(cm)) =
                            (context_model_index[c], ga.context_model_eval[c].as_ref())
                        {
                            opts.push(ActionOutcome::process(
                                idx,
                                cm,
                                latency.specialized_tile_time(
                                    artifacts.arch,
                                    models[idx].ops_ratio(),
                                ),
                            ));
                        }
                        for (mi, evals) in ga.merged_eval.iter().enumerate() {
                            if let Some(cm) = &evals[c] {
                                let idx = merged_model_index[mi];
                                opts.push(ActionOutcome::process(
                                    idx,
                                    cm,
                                    latency.specialized_tile_time(
                                        artifacts.arch,
                                        models[idx].ops_ratio(),
                                    ),
                                ));
                            }
                        }
                    }
                    opts
                })
                .collect();

            let chosen = optimize_actions(
                &options,
                &ga.context_weights,
                ga.grid * ga.grid,
                &latency,
                deadline,
                capacity_fraction,
            );
            let estimate = estimate_policy(
                &chosen.iter().map(|&(c, o)| (c, options[c][o])).collect::<Vec<_>>(),
                &ga.context_weights,
                ga.grid * ga.grid,
                &latency,
                deadline,
                capacity_fraction,
            );
            let actions: Vec<Action> = chosen
                .iter()
                .map(|&(c, o)| options[c][o].action)
                .collect();
            let candidate = SelectionLogic {
                arch: artifacts.arch,
                target,
                grid: ga.grid,
                actions,
                models: models.clone(),
                deadline,
                capacity_fraction,
                estimate,
            };
            let better = match &best {
                None => true,
                Some(b) => selection_score(&candidate.estimate) > selection_score(&b.estimate),
            };
            if better {
                best = Some(candidate);
            }
        }
        best.expect("at least one grid was evaluated")
    }

    /// The direct-deployment policy the paper compares against: the
    /// accuracy-maximal tiling from prior work (the densest grid, 121
    /// tiles) with the full reference model on every tile and no elision.
    pub fn direct_deploy(
        artifacts: &TransformationArtifacts,
        target: HwTarget,
        deadline: Duration,
        capacity_fraction: f64,
    ) -> SelectionLogic {
        let ga = artifacts
            .grids
            .iter()
            .max_by_key(|g| g.grid)
            .expect("artifacts contain grids");
        Self::fixed_policy(artifacts, ga.grid, target, deadline, capacity_fraction)
    }

    /// The "maximum-precision tiling" baseline of Figure 11: the grid
    /// whose global model scores the highest validation precision, full
    /// model everywhere, no elision.
    pub fn max_precision_tiling(
        artifacts: &TransformationArtifacts,
        target: HwTarget,
        deadline: Duration,
        capacity_fraction: f64,
    ) -> SelectionLogic {
        let ga = artifacts
            .grids
            .iter()
            .max_by(|a, b| {
                precision_rank(a.global_eval_all.precision())
                    .total_cmp(&precision_rank(b.global_eval_all.precision()))
            })
            .expect("artifacts contain grids");
        Self::fixed_policy(artifacts, ga.grid, target, deadline, capacity_fraction)
    }

    fn fixed_policy(
        artifacts: &TransformationArtifacts,
        grid: usize,
        target: HwTarget,
        deadline: Duration,
        capacity_fraction: f64,
    ) -> SelectionLogic {
        let ga = artifacts
            .grids
            .iter()
            .find(|g| g.grid == grid)
            .expect("grid present in artifacts");
        let latency = LatencyModel::new(target);
        let k = artifacts.contexts.len();
        let outcomes: Vec<(usize, ActionOutcome)> = (0..k)
            .map(|c| {
                (
                    c,
                    ActionOutcome::process(
                        0,
                        &ga.global_eval_per_context[c],
                        latency.full_model_tile_time(artifacts.arch),
                    ),
                )
            })
            .collect();
        let estimate = estimate_policy(
            &outcomes,
            &ga.context_weights,
            grid * grid,
            &latency,
            deadline,
            capacity_fraction,
        );
        SelectionLogic {
            arch: artifacts.arch,
            target,
            grid,
            actions: vec![Action::Process { model_index: 0 }; k],
            models: vec![ga.global_model.clone()],
            deadline,
            capacity_fraction,
            estimate,
        }
    }

    /// The selected tile-grid dimension.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Tiles per frame under the selected grid.
    pub fn tiles_per_frame(&self) -> usize {
        self.grid * self.grid
    }

    /// The action for a context. An out-of-range context id (possible
    /// only for a hand-built policy; decoded and synthesized policies
    /// are validated) degrades to the bent-pipe `Downlink` action
    /// rather than aborting the pipeline.
    pub fn action_for(&self, context: crate::context::ContextId) -> Action {
        self.actions
            .get(context.0)
            .copied()
            .unwrap_or(Action::Downlink)
    }

    /// All per-context actions, indexed by context id.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// The model table referenced by `Action::Process`.
    pub fn models(&self) -> &[SpecializedModel] {
        &self.models
    }

    /// The architecture being deployed.
    pub fn arch(&self) -> ModelArch {
        self.arch
    }

    /// The deployment target.
    pub fn target(&self) -> HwTarget {
        self.target
    }

    /// The frame deadline the logic was optimized for.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// The optimizer's estimate of deployed behavior.
    pub fn estimate(&self) -> &SelectionEstimate {
        &self.estimate
    }

    /// Encodes everything except the model table. Models ship as
    /// separate content-addressed artifacts (see [`crate::artifact`]);
    /// the policy references them only by table position, so the table
    /// is rebuilt at load time with [`ModelTable::for_grid`] and passed
    /// to [`SelectionLogic::decode_policy`].
    pub(crate) fn encode_policy(&self, enc: &mut Enc) {
        self.arch.encode(enc);
        enc.u16(self.target.index() as u16);
        enc.usize(self.grid);
        self.actions.encode(enc);
        enc.usize(self.models.len());
        enc.f64(self.deadline.as_seconds());
        enc.f64(self.capacity_fraction);
        self.estimate.encode(enc);
    }

    /// Decodes a policy encoded by [`SelectionLogic::encode_policy`],
    /// re-attaching a freshly rebuilt model table. Validates everything
    /// the runtime indexes into, so a decoded policy is panic-free to
    /// run: the table length must match the encoded one and every
    /// `Process` action must point inside it.
    pub(crate) fn decode_policy(
        dec: &mut Dec<'_>,
        models: Vec<SpecializedModel>,
    ) -> Result<SelectionLogic, WireError> {
        let arch = ModelArch::decode(dec)?;
        let target_tag = dec.u16()?;
        let target = HwTarget::ALL
            .get(usize::from(target_tag))
            .copied()
            .ok_or(WireError::BadTag {
                what: "HwTarget",
                tag: u32::from(target_tag),
            })?;
        let grid = dec.usize()?;
        let actions = Vec::<Action>::decode(dec)?;
        let model_count = dec.usize()?;
        let deadline = Duration::from_seconds(dec.f64()?);
        let capacity_fraction = dec.f64()?;
        let estimate = SelectionEstimate::decode(dec)?;
        if grid == 0 || actions.is_empty() {
            return Err(WireError::InvalidValue("selection logic without a policy"));
        }
        if model_count != models.len() {
            return Err(WireError::InvalidValue(
                "selection logic model table size mismatch",
            ));
        }
        if actions.iter().any(|a| {
            matches!(a, Action::Process { model_index } if *model_index >= models.len())
        }) {
            return Err(WireError::InvalidValue(
                "selection action references a missing model",
            ));
        }
        if !(deadline.as_seconds().is_finite() && deadline.as_seconds() > 0.0) {
            return Err(WireError::InvalidValue("selection deadline not positive"));
        }
        if !(capacity_fraction.is_finite()
            && capacity_fraction > 0.0
            && capacity_fraction <= 1.0)
        {
            return Err(WireError::InvalidValue(
                "selection capacity fraction out of range",
            ));
        }
        Ok(SelectionLogic {
            arch,
            target,
            grid,
            actions,
            models,
            deadline,
            capacity_fraction,
            estimate,
        })
    }
}

/// The candidate-model table of one grid: index 0 is the global model,
/// then single-context models in context order, then multi-context
/// (merged) models. Both the optimizer and the artifact loader build
/// tables through this one constructor, so a policy's `Process` indices
/// mean the same thing on the ground and after an uplink.
pub(crate) struct ModelTable {
    /// The table itself.
    pub models: Vec<SpecializedModel>,
    /// Per-context table position of that context's specialized model.
    pub context_model_index: Vec<Option<usize>>,
    /// Table position of each merged model, in `merged_models` order.
    pub merged_model_index: Vec<usize>,
}

impl ModelTable {
    /// Builds the canonical model table for a grid with `k` contexts.
    pub fn for_grid(ga: &GridArtifacts, k: usize) -> ModelTable {
        let mut models = vec![ga.global_model.clone()];
        let mut context_model_index = vec![None; k];
        for (c, m) in ga.context_models.iter().enumerate().take(k) {
            if let Some(m) = m {
                context_model_index[c] = Some(models.len());
                models.push(m.clone());
            }
        }
        let mut merged_model_index = Vec::with_capacity(ga.merged_models.len());
        for m in &ga.merged_models {
            merged_model_index.push(models.len());
            models.push(m.clone());
        }
        ModelTable {
            models,
            context_model_index,
            merged_model_index,
        }
    }
}

impl Encode for SelectionEstimate {
    fn encode(&self, enc: &mut Enc) {
        enc.f64(self.frame_time.as_seconds());
        enc.f64(self.processed_fraction);
        enc.f64(self.sent_fraction);
        enc.f64(self.value_fraction);
        enc.f64(self.dvd);
    }
}

impl Decode for SelectionEstimate {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(SelectionEstimate {
            frame_time: Duration::from_seconds(dec.f64()?),
            processed_fraction: dec.f64()?,
            sent_fraction: dec.f64()?,
            value_fraction: dec.f64()?,
            dvd: dec.f64()?,
        })
    }
}

/// Exhaustively (or greedily, for very large search spaces) picks the
/// per-context option indices maximizing estimated DVD. Returns
/// `(context, option_index)` pairs in context order.
fn optimize_actions(
    options: &[Vec<ActionOutcome>],
    weights: &[f64],
    tiles_per_frame: usize,
    latency: &LatencyModel,
    deadline: Duration,
    capacity_fraction: f64,
) -> Vec<(usize, usize)> {
    let k = options.len();
    let space: f64 = options.iter().map(|o| o.len() as f64).product();
    let score = |choice: &[usize]| -> (bool, i64, f64, f64) {
        let outcomes: Vec<(usize, ActionOutcome)> = choice
            .iter()
            .enumerate()
            .map(|(c, &o)| (c, options[c][o]))
            .collect();
        let est = estimate_policy(
            &outcomes,
            weights,
            tiles_per_frame,
            latency,
            deadline,
            capacity_fraction,
        );
        selection_score(&est)
    };

    let mut best_choice: Vec<usize> = vec![0; k];
    if space <= 600_000.0 {
        // Odometer enumeration.
        let mut choice = vec![0usize; k];
        let mut best_score = score(&choice);
        loop {
            // Advance odometer.
            let mut pos = 0;
            loop {
                if pos == k {
                    return best_choice.into_iter().enumerate().collect();
                }
                choice[pos] += 1;
                if choice[pos] < options[pos].len() {
                    break;
                }
                choice[pos] = 0;
                pos += 1;
            }
            let s = score(&choice);
            if s > best_score {
                best_score = s;
                best_choice.copy_from_slice(&choice);
            }
        }
    } else {
        // Coordinate ascent from the all-global-model start (option 0).
        let mut choice: Vec<usize> = vec![0; k];
        let mut best_score = score(&choice);
        for _ in 0..8 {
            let mut improved = false;
            for c in 0..k {
                let original = choice[c];
                for o in 0..options[c].len() {
                    if o == original {
                        continue;
                    }
                    choice[c] = o;
                    let s = score(&choice);
                    if s > best_score {
                        best_score = s;
                        improved = true;
                    } else {
                        choice[c] = original;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        best_choice = choice;
        best_choice.into_iter().enumerate().collect()
    }
}

/// DVD quantum used when comparing candidate policies. Differences below
/// this are statistical noise of the validation estimates, so the
/// optimizer resolves them toward deadline-meeting, higher-value,
/// cheaper configurations instead (the paper's "meeting the soft
/// deadline" behavior, Section 3.4).
const DVD_COMPARE_QUANTUM: f64 = 0.005;

/// Ranks a precision for baseline-grid comparison, treating non-finite
/// values as worst. `ConfusionMatrix::precision` is zero-guarded today,
/// but corrupted evaluation data (e.g. an injected fault upstream) can
/// route NaN through this ranking — and `partial_cmp().expect(..)` here
/// used to panic on it instead of degrading.
fn precision_rank(precision: f64) -> f64 {
    if precision.is_finite() {
        precision
    } else {
        f64::NEG_INFINITY
    }
}

/// Lexicographic policy score: meeting the frame deadline first — the
/// paper's runtime "executes the most precise models that support average
/// frame processing times less than the frame deadline" — then quantized
/// DVD, then total value downlinked, then cheapness.
fn selection_score(est: &SelectionEstimate) -> (bool, i64, f64, f64) {
    (
        est.processed_fraction >= 1.0,
        (est.dvd / DVD_COMPARE_QUANTUM).round() as i64,
        est.value_fraction,
        -est.frame_time.as_seconds(),
    )
}

/// The shared estimator: predicts frame time, processed fraction, sent
/// and value fractions, and DVD for a per-context policy.
pub(crate) fn estimate_policy(
    outcomes: &[(usize, ActionOutcome)],
    weights: &[f64],
    tiles_per_frame: usize,
    latency: &LatencyModel,
    deadline: Duration,
    capacity_fraction: f64,
) -> SelectionEstimate {
    let base_per_tile = latency.context_engine_tile_time() + latency.resize_tile_time();
    let mut extra = Duration::ZERO;
    let mut sent = 0.0;
    let mut value = 0.0;
    for &(c, outcome) in outcomes {
        let w = weights[c];
        extra += outcome.extra_time * w;
        sent += w * outcome.sent_fraction;
        value += w * outcome.value_fraction;
    }
    let frame_time = (base_per_tile + extra) * tiles_per_frame as f64;
    let processed_fraction = if frame_time <= deadline {
        1.0
    } else {
        deadline / frame_time
    };
    let eff_sent = processed_fraction * sent;
    let eff_value = processed_fraction * value;
    let dvd = if eff_sent <= 0.0 {
        0.0
    } else {
        eff_value / eff_sent.max(capacity_fraction)
    };
    SelectionEstimate {
        frame_time,
        processed_fraction,
        sent_fraction: eff_sent,
        value_fraction: eff_value,
        dvd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kodan_ml::eval::ConfusionMatrix;

    fn latency() -> LatencyModel {
        LatencyModel::new(HwTarget::OrinAgx15W)
    }

    #[test]
    fn non_finite_precision_ranks_worst() {
        // Regression for the `.expect("precision is finite")` panic: the
        // baseline comparator must order NaN/inf below every real
        // precision instead of aborting.
        assert_eq!(precision_rank(0.7), 0.7);
        assert_eq!(precision_rank(f64::NAN), f64::NEG_INFINITY);
        assert_eq!(precision_rank(f64::INFINITY), f64::NEG_INFINITY);
        assert_eq!(precision_rank(f64::NEG_INFINITY), f64::NEG_INFINITY);
        let mut ranks = [f64::NAN, 0.2, 0.9, f64::INFINITY, 0.0];
        ranks.sort_by(|a, b| precision_rank(*a).total_cmp(&precision_rank(*b)));
        // Both non-finite values sort first; 0.9 wins the max.
        assert_eq!(ranks[4], 0.9);
        assert!((precision_rank(ranks[0])).is_infinite());
    }

    fn process_outcome(prec: f64, recall: f64, prevalence: f64, time_s: f64) -> ActionOutcome {
        // Build a confusion matrix with the requested statistics over
        // 1000 pixels.
        let pos = (1000.0 * prevalence) as u64;
        let tp = (pos as f64 * recall) as u64;
        let fp = ((tp as f64 / prec) - tp as f64).round() as u64;
        let cm = ConfusionMatrix {
            tp,
            fp,
            tn: 1000 - pos - fp,
            fn_: pos - tp,
        };
        ActionOutcome::process(0, &cm, Duration::from_seconds(time_s))
    }

    #[test]
    fn estimator_meets_deadline_at_low_cost() {
        let outcomes = vec![(0usize, ActionOutcome::downlink(0.9))];
        let est = estimate_policy(
            &outcomes,
            &[1.0],
            9,
            &latency(),
            Duration::from_seconds(22.0),
            0.2,
        );
        assert_eq!(est.processed_fraction, 1.0);
        assert!(est.frame_time.as_seconds() < 1.0);
        // Everything sent at 90% value, saturating: DVD = 0.9.
        assert!((est.dvd - 0.9).abs() < 1e-9);
    }

    #[test]
    fn estimator_penalizes_missed_deadline() {
        let slow = process_outcome(0.95, 0.95, 0.5, 2.0);
        let outcomes = vec![(0usize, slow)];
        let est = estimate_policy(
            &outcomes,
            &[1.0],
            121,
            &latency(),
            Duration::from_seconds(22.0),
            0.2,
        );
        assert!(est.processed_fraction < 0.15);
        // Produces less than capacity: idle downlink dilutes DVD.
        assert!(est.sent_fraction < 0.2);
        assert!(est.dvd < 0.5, "dvd = {}", est.dvd);
    }

    #[test]
    fn estimator_thins_when_oversending() {
        // Send everything (bent-pipe-like): DVD equals prevalence.
        let outcomes = vec![(0usize, ActionOutcome::downlink(0.48))];
        let est = estimate_policy(
            &outcomes,
            &[1.0],
            9,
            &latency(),
            Duration::from_seconds(22.0),
            0.2,
        );
        assert!((est.dvd - 0.48).abs() < 1e-9);
    }

    #[test]
    fn optimizer_prefers_elision_for_extreme_contexts() {
        // Context 0: 97% high-value; context 1: 3% high-value; context 2:
        // mixed. A modestly-precise model is available. The optimizer
        // should downlink context 0, discard context 1 under pressure.
        let model_mixed = process_outcome(0.93, 0.9, 0.5, 1.6);
        let options = vec![
            vec![
                ActionOutcome::discard(),
                ActionOutcome::downlink(0.97),
                process_outcome(0.98, 0.9, 0.97, 1.6),
            ],
            vec![
                ActionOutcome::discard(),
                ActionOutcome::downlink(0.03),
                process_outcome(0.6, 0.9, 0.03, 1.6),
            ],
            vec![
                ActionOutcome::discard(),
                ActionOutcome::downlink(0.5),
                model_mixed,
            ],
        ];
        let weights = vec![0.4, 0.3, 0.3];
        let chosen = optimize_actions(
            &options,
            &weights,
            121,
            &latency(),
            Duration::from_seconds(22.0),
            0.2,
        );
        let picks: Vec<usize> = chosen.iter().map(|&(_, o)| o).collect();
        // Context 1 (low value) must not be downlinked raw.
        assert_ne!(picks[1], 1, "low-value context downlinked raw: {picks:?}");
        // Context 0 should be elided (downlink) — processing 121 tiles of
        // a 1.6 s model busts the deadline hard.
        assert_eq!(picks[0], 1, "high-value context not elided: {picks:?}");
    }

    #[test]
    fn optimizer_is_exhaustive_for_small_spaces() {
        // One context, options where the best is the last: make sure the
        // odometer reaches it.
        let options = vec![vec![
            ActionOutcome::discard(),
            ActionOutcome::downlink(0.2),
            ActionOutcome::downlink(0.95),
        ]];
        let chosen = optimize_actions(
            &options,
            &[1.0],
            9,
            &latency(),
            Duration::from_seconds(22.0),
            0.2,
        );
        assert_eq!(chosen[0].1, 2);
    }
}
