//! Context-based model specialization.
//!
//! Rather than executing the original datacenter-scale reference
//! application, Kodan trains and runs models specialized to contexts
//! (paper Section 3.3). Specialized models are *smaller* — here, an MLP
//! with a third of the reference width — because each serves a narrower
//! slice of the data distribution, and they retain or improve accuracy on
//! their own context while executing faster.
//!
//! The module also implements the reference ("direct deploy") model: the
//! full-capacity network trained on all contexts, whose execution time on
//! each target is the paper's Table 1.

use crate::context::ContextId;
use kodan_geodata::features::{pixel_features, FEATURE_DIM};
use kodan_geodata::pixel::CHANNELS;
use kodan_geodata::resize::{resize_channels, resize_mask};
use kodan_geodata::tile::TileImage;
use kodan_ml::eval::ConfusionMatrix;
use kodan_ml::mlp::Mlp;
use kodan_ml::train::TrainConfig;
use kodan_ml::zoo::ModelArch;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// What slice of the data a model serves.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelScope {
    /// Trained on every context: the reference/direct-deploy model.
    Global,
    /// Trained on a single context's tiles.
    Context(ContextId),
    /// Trained across several contexts' tiles (paper Section 3.3:
    /// "specialized across multiple contexts").
    Multi(Vec<ContextId>),
}

impl ModelScope {
    /// True if this scope covers the given context.
    pub fn covers(&self, context: ContextId) -> bool {
        match self {
            ModelScope::Global => true,
            ModelScope::Context(c) => *c == context,
            ModelScope::Multi(cs) => cs.contains(&context),
        }
    }
}

/// A trained per-pixel cloud/clear classifier plus the metadata the
/// selection logic and latency model need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecializedModel {
    arch: ModelArch,
    scope: ModelScope,
    classifier: Mlp,
    feature_budget: usize,
    input_resolution: usize,
    /// Op count relative to the full reference architecture, in `(0, 1]`.
    ops_ratio: f64,
}

impl SpecializedModel {
    /// Trains the full-capacity reference model on (a sample of) all
    /// tiles. This is what direct deployment runs.
    pub fn train_global(
        tiles: &[TileImage],
        arch: ModelArch,
        max_train_pixels: usize,
        config: &TrainConfig,
    ) -> SpecializedModel {
        Self::train_scoped(tiles, arch, ModelScope::Global, max_train_pixels, config)
    }

    /// Trains a reduced-capacity model specialized to one context's
    /// tiles.
    pub fn train_for_context(
        tiles: &[TileImage],
        arch: ModelArch,
        context: ContextId,
        max_train_pixels: usize,
        config: &TrainConfig,
    ) -> SpecializedModel {
        Self::train_scoped(
            tiles,
            arch,
            ModelScope::Context(context),
            max_train_pixels,
            config,
        )
    }

    /// Trains a reduced-capacity model specialized across several
    /// contexts' tiles.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is empty.
    pub fn train_for_contexts(
        tiles: &[TileImage],
        arch: ModelArch,
        contexts: Vec<ContextId>,
        max_train_pixels: usize,
        config: &TrainConfig,
    ) -> SpecializedModel {
        assert!(!contexts.is_empty(), "multi-context scope needs contexts");
        Self::train_scoped(
            tiles,
            arch,
            ModelScope::Multi(contexts),
            max_train_pixels,
            config,
        )
    }

    fn train_scoped(
        tiles: &[TileImage],
        arch: ModelArch,
        scope: ModelScope,
        max_train_pixels: usize,
        config: &TrainConfig,
    ) -> SpecializedModel {
        assert!(!tiles.is_empty(), "training needs tiles");
        assert!(max_train_pixels > 0, "training needs a pixel budget");
        let full_hidden = arch.hidden_units();
        let hidden = match &scope {
            ModelScope::Global => full_hidden,
            // Specialized models are smaller: a third of the reference
            // width for single contexts, half for multi-context scopes
            // (paper Section 3.3: "smaller and simpler").
            ModelScope::Context(_) => (full_hidden / 3).max(3),
            ModelScope::Multi(_) => (full_hidden / 2).max(4),
        };
        let budget = arch.feature_budget();
        let resolution = arch.input_resolution();

        let (x, y) = sample_training_pixels(tiles, resolution, budget, max_train_pixels, config.seed);
        let classifier = Mlp::fit_flat(&x, budget, &y, hidden, config);
        SpecializedModel {
            arch,
            scope,
            classifier,
            feature_budget: budget,
            input_resolution: resolution,
            ops_ratio: hidden as f64 / full_hidden as f64,
        }
    }

    /// The architecture this model derives from.
    pub fn arch(&self) -> ModelArch {
        self.arch
    }

    /// The model's scope.
    pub fn scope(&self) -> &ModelScope {
        &self.scope
    }

    /// Relative op count versus the full reference architecture.
    pub fn ops_ratio(&self) -> f64 {
        self.ops_ratio
    }

    /// The model's input resolution (pixels per side).
    pub fn input_resolution(&self) -> usize {
        self.input_resolution
    }

    /// Predicts the per-pixel high-value mask of a tile *at the tile's
    /// native resolution* (predictions are made at the model input
    /// resolution and carried back by nearest-neighbor resampling —
    /// exactly where decimation error enters).
    pub fn predict_tile(&self, tile: &TileImage) -> Vec<bool> {
        let feats = tile_features(tile, self.input_resolution);
        let r = self.input_resolution;
        // Fused batch forward pass over all r*r pixels: one scratch
        // buffer for the whole tile instead of a per-pixel loop of
        // classifier calls. The classifier reads the first
        // `feature_budget` features of each FEATURE_DIM-strided row —
        // the same slices the per-pixel path passed — and 0.5 is the
        // [`PixelClassifier::predict`] threshold, so the mask is
        // bit-identical.
        let mut probs = Vec::new();
        self.classifier
            .predict_proba_batch_into(&feats, FEATURE_DIM, &mut probs);
        let pred_at_r: Vec<bool> = probs.iter().map(|&p| p >= 0.5).collect();
        resize_mask(&pred_at_r, r, tile.size())
    }

    /// Evaluates the model on one tile against native-resolution truth.
    /// Positive class = high-value (clear) pixel.
    pub fn evaluate_tile(&self, tile: &TileImage) -> ConfusionMatrix {
        let pred = self.predict_tile(tile);
        let truth_hv: Vec<bool> = tile.truth_cloudy().iter().map(|&c| !c).collect();
        ConfusionMatrix::from_predictions(&pred, &truth_hv)
    }

    /// Evaluates the model over many tiles.
    pub fn evaluate<'a, I>(&self, tiles: I) -> ConfusionMatrix
    where
        I: IntoIterator<Item = &'a TileImage>,
    {
        let mut cm = ConfusionMatrix::new();
        for t in tiles {
            cm += self.evaluate_tile(t);
        }
        cm
    }

    /// Integrity checksum over the classifier's weights (see
    /// [`Mlp::weight_checksum`]). The runtime compares this against the
    /// value recorded at transformation time before trusting a
    /// specialized model on orbit.
    pub fn weight_checksum(&self) -> u64 {
        self.classifier.weight_checksum()
    }

    /// Flips one classifier weight bit — a modeled single-event upset
    /// (see [`Mlp::flip_weight_bit`]). Total for any coordinates.
    pub fn corrupt_weight_bit(&mut self, index: u64, bit: u32) {
        self.classifier.flip_weight_bit(index, bit);
    }

    /// A copy of this model re-labelled with a different scope. Used by
    /// the artifact loader to stand a grid's global model in for a
    /// corrupted specialized model while keeping the original slot's
    /// scope (so action routing is unchanged).
    pub(crate) fn rescoped(&self, scope: ModelScope) -> SpecializedModel {
        let mut clone = self.clone();
        clone.scope = scope;
        clone
    }
}

impl kodan_wire::Encode for ModelScope {
    fn encode(&self, enc: &mut kodan_wire::Enc) {
        match self {
            ModelScope::Global => enc.u16(0),
            ModelScope::Context(c) => {
                enc.u16(1);
                c.encode(enc);
            }
            ModelScope::Multi(cs) => {
                enc.u16(2);
                cs.encode(enc);
            }
        }
    }
}

impl kodan_wire::Decode for ModelScope {
    fn decode(dec: &mut kodan_wire::Dec<'_>) -> Result<Self, kodan_wire::WireError> {
        match dec.u16()? {
            0 => Ok(ModelScope::Global),
            1 => Ok(ModelScope::Context(ContextId::decode(dec)?)),
            2 => {
                let cs = Vec::<ContextId>::decode(dec)?;
                if cs.is_empty() {
                    return Err(kodan_wire::WireError::InvalidValue(
                        "multi-context scope without contexts",
                    ));
                }
                Ok(ModelScope::Multi(cs))
            }
            tag => Err(kodan_wire::WireError::BadTag {
                what: "ModelScope",
                tag: u32::from(tag),
            }),
        }
    }
}

impl kodan_wire::Encode for SpecializedModel {
    fn encode(&self, enc: &mut kodan_wire::Enc) {
        self.arch.encode(enc);
        self.scope.encode(enc);
        self.classifier.encode(enc);
        enc.usize(self.feature_budget);
        enc.usize(self.input_resolution);
        enc.f64(self.ops_ratio);
    }
}

impl kodan_wire::Decode for SpecializedModel {
    fn decode(dec: &mut kodan_wire::Dec<'_>) -> Result<Self, kodan_wire::WireError> {
        use kodan_ml::PixelClassifier;
        let arch = ModelArch::decode(dec)?;
        let scope = ModelScope::decode(dec)?;
        let classifier = Mlp::decode(dec)?;
        let feature_budget = dec.usize()?;
        let input_resolution = dec.usize()?;
        let ops_ratio = dec.f64()?;
        // `predict_tile` slices `feature_budget` features out of each
        // FEATURE_DIM-strided row and resizes to `input_resolution`;
        // these bounds make the loaded model panic-free to run.
        if feature_budget == 0
            || feature_budget > FEATURE_DIM
            || classifier.input_dim() != feature_budget
            || input_resolution == 0
            || !(ops_ratio.is_finite() && ops_ratio > 0.0 && ops_ratio <= 1.0)
        {
            return Err(kodan_wire::WireError::InvalidValue(
                "specialized model metadata out of bounds",
            ));
        }
        Ok(SpecializedModel {
            arch,
            scope,
            classifier,
            feature_budget,
            input_resolution,
            ops_ratio,
        })
    }
}

/// Extracts the full per-pixel feature matrix of a tile at a given model
/// input resolution.
pub fn tile_features(tile: &TileImage, resolution: usize) -> Vec<f64> {
    let resized = resize_channels(tile.channels(), tile.size(), CHANNELS, resolution);
    pixel_features(&resized, resolution)
}

/// Truth labels (high-value = true) of a tile at a model input
/// resolution.
pub fn tile_labels(tile: &TileImage, resolution: usize) -> Vec<bool> {
    let truth_hv: Vec<bool> = tile.truth_cloudy().iter().map(|&c| !c).collect();
    resize_mask(&truth_hv, tile.size(), resolution)
}

/// The maximum number of distinct tiles visited when sampling training
/// pixels. Spreading the budget over many tiles keeps the sample's class
/// balance close to the population's even though cloud cover is heavily
/// frame-correlated; the cap bounds the featurization cost at large tile
/// grids.
const MAX_SAMPLE_TILES: usize = 32;

/// Samples up to `max_pixels` (feature, label) rows from tiles,
/// deterministically. Tiles are visited in shuffled order and the pixel
/// budget is spread evenly across up to [`MAX_SAMPLE_TILES`] of them
/// (strided within each tile), so the sample spans many frames. Taking
/// whole tiles instead is tempting but degenerate: cloud cover is
/// frame-correlated, and a budget-sized run of tiles from a few clear
/// (or overcast) frames yields a single-class sample and a
/// constant-output model.
fn sample_training_pixels(
    tiles: &[TileImage],
    resolution: usize,
    feature_budget: usize,
    max_pixels: usize,
    seed: u64,
) -> (Vec<f64>, Vec<bool>) {
    let mut order: Vec<usize> = (0..tiles.len()).collect();
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x7A11);
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let visit = order.len().min(MAX_SAMPLE_TILES).max(1);
    let per_tile = max_pixels.div_ceil(visit).max(1);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for &idx in order.iter().take(visit) {
        if y.len() >= max_pixels {
            break;
        }
        let tile = match tiles.get(idx) {
            Some(tile) => tile,
            None => continue,
        };
        let feats = tile_features(tile, resolution);
        let labels = tile_labels(tile, resolution);
        let total = labels.len();
        let take = per_tile.min(total).min(max_pixels - y.len());
        let stride = (total / take.max(1)).max(1);
        let mut taken = 0;
        let mut i = 0;
        while taken < take && i < total {
            let start = i * FEATURE_DIM;
            match (feats.get(start..start + feature_budget), labels.get(i)) {
                (Some(row), Some(&label)) => {
                    x.extend_from_slice(row);
                    y.push(label);
                }
                _ => break,
            }
            taken += 1;
            i += stride;
        }
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kodan_geodata::{Dataset, DatasetConfig, World};
    use kodan_ml::train::TrainConfig;

    fn tiles() -> Vec<TileImage> {
        let world = World::new(42);
        let mut cfg = DatasetConfig::small(1);
        cfg.frame_count = 10;
        Dataset::sample(&world, &cfg).tiles(3)
    }

    fn fast_config() -> TrainConfig {
        TrainConfig::fast(1)
    }

    #[test]
    fn global_model_beats_chance_substantially() {
        let tiles = tiles();
        let model = SpecializedModel::train_global(
            &tiles,
            ModelArch::ResNet50DilatedPpm,
            2_000,
            &fast_config(),
        );
        let cm = model.evaluate(tiles.iter());
        // The cirrus band makes cloud masking learnable: expect well
        // above the majority-class baseline.
        assert!(cm.accuracy() > 0.75, "accuracy = {}", cm.accuracy());
        assert!(cm.precision() > 0.7, "precision = {}", cm.precision());
    }

    #[test]
    fn specialized_model_is_smaller_and_scoped() {
        let tiles = tiles();
        let ctx = ContextId(0);
        let model = SpecializedModel::train_for_context(
            &tiles,
            ModelArch::ResNet101UperNet,
            ctx,
            1_000,
            &fast_config(),
        );
        assert_eq!(model.scope(), &ModelScope::Context(ctx));
        assert!(model.ops_ratio() < 0.5, "ops ratio = {}", model.ops_ratio());
        assert!(model.ops_ratio() > 0.0);
    }

    #[test]
    fn prediction_has_native_resolution() {
        let tiles = tiles();
        let model = SpecializedModel::train_global(
            &tiles,
            ModelArch::MobileNetV2DilatedC1,
            1_000,
            &fast_config(),
        );
        let pred = model.predict_tile(&tiles[0]);
        assert_eq!(pred.len(), tiles[0].size() * tiles[0].size());
    }

    #[test]
    fn evaluation_counts_every_native_pixel() {
        let tiles = tiles();
        let model = SpecializedModel::train_global(
            &tiles,
            ModelArch::MobileNetV2DilatedC1,
            1_000,
            &fast_config(),
        );
        let cm = model.evaluate_tile(&tiles[0]);
        assert_eq!(cm.total() as usize, tiles[0].size() * tiles[0].size());
    }

    #[test]
    fn training_is_deterministic() {
        let tiles = tiles();
        let a = SpecializedModel::train_global(
            &tiles,
            ModelArch::HrNetV2C1,
            1_000,
            &fast_config(),
        );
        let b = SpecializedModel::train_global(
            &tiles,
            ModelArch::HrNetV2C1,
            1_000,
            &fast_config(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn feature_and_label_extraction_shapes() {
        let tiles = tiles();
        let feats = tile_features(&tiles[0], 16);
        assert_eq!(feats.len(), 16 * 16 * FEATURE_DIM);
        let labels = tile_labels(&tiles[0], 16);
        assert_eq!(labels.len(), 16 * 16);
    }

    #[test]
    fn pixel_budget_caps_training_set() {
        let tiles = tiles();
        let (x, y) = sample_training_pixels(&tiles, 16, 6, 500, 1);
        assert_eq!(y.len(), 500);
        assert_eq!(x.len(), 500 * 6);
    }
}
