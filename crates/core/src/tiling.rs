//! Frame-tiling analysis: the accuracy/precision/time trade (Figures 6,
//! 13 and 14).
//!
//! Tile count per frame determines both the decimation each tile suffers
//! on its way to the model input and the total frame processing time.
//! This module reads the per-grid validation statistics out of the
//! transformation artifacts and prices each tiling on a target.

use crate::pipeline::TransformationArtifacts;
use crate::selection::{estimate_policy, SelectionEstimate};
use crate::elide::ActionOutcome;
use kodan_cote::time::Duration;
use kodan_hw::latency::LatencyModel;
use kodan_hw::targets::HwTarget;
use serde::{Deserialize, Serialize};

/// One point of a tiling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TilingPoint {
    /// Grid dimension.
    pub grid: usize,
    /// Tiles per frame (`grid * grid`).
    pub tiles_per_frame: usize,
    /// Validation accuracy of the global model at this tiling.
    pub accuracy: f64,
    /// Validation precision of the global model at this tiling.
    pub precision: f64,
    /// Frame processing time on the target (global model everywhere).
    pub frame_time: Duration,
    /// Estimated behavior of the tiles-only policy on the target.
    pub estimate: SelectionEstimate,
}

/// Sweeps every grid in the artifacts for a target, pricing the
/// global-model-everywhere policy (the tiling ablation of Figures 13-14:
/// no contexts, no elision).
pub fn tiling_sweep(
    artifacts: &TransformationArtifacts,
    target: HwTarget,
    deadline: Duration,
    capacity_fraction: f64,
) -> Vec<TilingPoint> {
    let latency = LatencyModel::new(target);
    artifacts
        .grids
        .iter()
        .map(|ga| {
            let outcomes: Vec<(usize, ActionOutcome)> = (0..artifacts.contexts.len())
                .map(|c| {
                    (
                        c,
                        ActionOutcome::process(
                            0,
                            &ga.global_eval_per_context[c],
                            latency.full_model_tile_time(artifacts.arch),
                        ),
                    )
                })
                .collect();
            let estimate = estimate_policy(
                &outcomes,
                &ga.context_weights,
                ga.grid * ga.grid,
                &latency,
                deadline,
                capacity_fraction,
            );
            TilingPoint {
                grid: ga.grid,
                tiles_per_frame: ga.grid * ga.grid,
                accuracy: ga.global_eval_all.accuracy(),
                precision: ga.global_eval_all.precision(),
                frame_time: estimate.frame_time,
                estimate,
            }
        })
        .collect()
}

/// The grid that maximizes validation accuracy.
pub fn accuracy_optimal_grid(points: &[TilingPoint]) -> usize {
    points
        .iter()
        .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).expect("finite"))
        .expect("sweep is non-empty")
        .grid
}

/// The grid that maximizes validation precision.
pub fn precision_optimal_grid(points: &[TilingPoint]) -> usize {
    points
        .iter()
        .max_by(|a, b| a.precision.partial_cmp(&b.precision).expect("finite"))
        .expect("sweep is non-empty")
        .grid
}

/// The grid that maximizes estimated DVD on the target.
pub fn dvd_optimal_grid(points: &[TilingPoint]) -> usize {
    points
        .iter()
        .max_by(|a, b| a.estimate.dvd.partial_cmp(&b.estimate.dvd).expect("finite"))
        .expect("sweep is non-empty")
        .grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KodanConfig;
    use crate::pipeline::Transformation;
    use kodan_geodata::{Dataset, DatasetConfig, World};
    use kodan_ml::zoo::ModelArch;

    fn sweep(target: HwTarget) -> Vec<TilingPoint> {
        let world = World::new(42);
        let mut ds_cfg = DatasetConfig::small(1);
        ds_cfg.frame_count = 12;
        ds_cfg.frame_px = 132;
        let dataset = Dataset::sample(&world, &ds_cfg);
        let artifacts = Transformation::new(KodanConfig::fast(3))
            .run(&dataset, ModelArch::ResNet50DilatedPpm)
            .expect("transformation succeeds");
        tiling_sweep(
            &artifacts,
            target,
            Duration::from_seconds(22.0),
            0.21,
        )
    }

    #[test]
    fn sweep_covers_all_grids_with_valid_stats() {
        let points = sweep(HwTarget::OrinAgx15W);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert_eq!(p.tiles_per_frame, p.grid * p.grid);
            assert!((0.0..=1.0).contains(&p.accuracy));
            assert!((0.0..=1.0).contains(&p.precision));
            assert!(p.frame_time.as_seconds() > 0.0);
        }
    }

    #[test]
    fn frame_time_scales_with_tile_count() {
        let points = sweep(HwTarget::OrinAgx15W);
        let by_grid = |g: usize| {
            points
                .iter()
                .find(|p| p.grid == g)
                .expect("grid present")
                .frame_time
                .as_seconds()
        };
        assert!(by_grid(11) > by_grid(6));
        assert!(by_grid(6) > by_grid(4));
        assert!(by_grid(4) > by_grid(3));
        // 121 tiles vs 9 tiles: ~13.4x.
        let ratio = by_grid(11) / by_grid(3);
        assert!((12.0..15.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn constrained_target_prefers_coarser_tiling_than_unconstrained() {
        let orin = dvd_optimal_grid(&sweep(HwTarget::OrinAgx15W));
        let gpu = dvd_optimal_grid(&sweep(HwTarget::Gtx1070Ti));
        assert!(
            orin <= gpu,
            "orin prefers grid {orin}, gpu prefers grid {gpu}"
        );
        // On the Orin, dense tiling is unaffordable.
        assert!(orin <= 4, "orin picked grid {orin}");
    }

    #[test]
    fn optimal_grid_selectors_agree_with_manual_scan() {
        let points = sweep(HwTarget::Gtx1070Ti);
        let acc = accuracy_optimal_grid(&points);
        for p in &points {
            let best = points.iter().find(|q| q.grid == acc).expect("present");
            assert!(p.accuracy <= best.accuracy + 1e-12);
        }
        let prec = precision_optimal_grid(&points);
        for p in &points {
            let best = points.iter().find(|q| q.grid == prec).expect("present");
            assert!(p.precision <= best.precision + 1e-12);
        }
    }
}
