//! Property-based tests for the Kodan core's accounting invariants:
//! DVD bounds, action-outcome consistency, and constellation sizing.

use kodan::coverage::satellites_required;
use kodan::dvd::DownlinkAccounting;
use kodan::elide::ActionOutcome;
use kodan_cote::time::Duration;
use kodan_ml::eval::ConfusionMatrix;
use proptest::prelude::*;

proptest! {
    #[test]
    fn dvd_accounting_invariants(
        capacity in 1.0f64..1e6,
        produced in 0.0f64..1e6,
        value_ratio in 0.0f64..1.0,
        observed_extra in 0.0f64..1e6,
        prevalence in 0.0f64..1.0,
    ) {
        let observed = produced + observed_extra + 1.0;
        let accounting = DownlinkAccounting {
            capacity_px: capacity,
            produced_px: produced,
            produced_value_px: produced * value_ratio,
            observed_px: observed,
            observed_value_px: observed * prevalence,
        };
        // Downlinked never exceeds capacity or production.
        prop_assert!(accounting.downlinked_px() <= capacity + 1e-9);
        prop_assert!(accounting.downlinked_px() <= produced + 1e-9);
        // Value never exceeds volume.
        prop_assert!(
            accounting.downlinked_value_px() <= accounting.downlinked_px() + 1e-9
        );
        // DVD in [0, 1].
        let dvd = accounting.dvd();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&dvd), "dvd {}", dvd);
        // Thinning preserves the value ratio.
        if produced > 0.0 {
            let kept_ratio = accounting.downlinked_value_px()
                / accounting.downlinked_px().max(1e-12);
            prop_assert!((kept_ratio - value_ratio).abs() < 1e-6);
        }
        prop_assert!((0.0..=1.0 + 1e-9).contains(&accounting.capacity_utilization()));
    }

    #[test]
    fn action_outcomes_are_consistent(
        tp in 0u64..1000,
        fp in 0u64..1000,
        tn in 0u64..1000,
        fn_ in 0u64..1000,
        time_s in 0.0f64..10.0,
        hv in 0.0f64..1.0,
    ) {
        let cm = ConfusionMatrix { tp, fp, tn, fn_ };
        let process = ActionOutcome::process(0, &cm, Duration::from_seconds(time_s));
        prop_assert!(process.value_fraction <= process.sent_fraction + 1e-12);
        prop_assert!((0.0..=1.0).contains(&process.sent_fraction));
        prop_assert!((0.0..=1.0).contains(&process.value_fraction));
        prop_assert!((0.0..=1.0).contains(&process.precision()));
        // Process precision equals the confusion matrix's.
        if tp + fp > 0 && cm.total() > 0 {
            prop_assert!((process.precision() - cm.precision()).abs() < 1e-9);
        }

        let downlink = ActionOutcome::downlink(hv);
        prop_assert_eq!(downlink.sent_fraction, 1.0);
        prop_assert!((downlink.precision() - hv).abs() < 1e-12);

        let discard = ActionOutcome::discard();
        prop_assert_eq!(discard.sent_fraction, 0.0);
        prop_assert_eq!(discard.value_fraction, 0.0);
    }

    #[test]
    fn satellites_required_is_monotone_and_tight(
        frame_s in 0.1f64..10_000.0,
        deadline_s in 0.1f64..100.0,
    ) {
        let frame = Duration::from_seconds(frame_s);
        let deadline = Duration::from_seconds(deadline_s);
        let n = satellites_required(frame, deadline);
        prop_assert!(n >= 1);
        // n satellites suffice; n-1 would not (when n > 1).
        prop_assert!(n as f64 * deadline_s + 1e-9 >= frame_s);
        if n > 1 {
            prop_assert!((n - 1) as f64 * deadline_s < frame_s + 1e-9);
        }
        // Monotone in frame time.
        let n2 = satellites_required(frame + deadline, deadline);
        prop_assert!(n2 >= n);
    }
}
