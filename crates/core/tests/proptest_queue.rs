//! Property-based tests for the downlink queue: conservation, priority
//! ordering and storage bounds must hold for arbitrary workloads.

use kodan::queue::{DownlinkQueue, QueueEntry};
use proptest::prelude::*;

fn entry_strategy() -> impl Strategy<Value = QueueEntry> {
    (1.0f64..1000.0, 0.0f64..1.0).prop_map(|(bits, density)| {
        QueueEntry::new(bits, bits * density).expect("generated entry is valid")
    })
}

proptest! {
    #[test]
    fn bits_are_conserved(
        entries in prop::collection::vec(entry_strategy(), 1..60),
        storage in 100.0f64..50_000.0,
        budget in 0.0f64..50_000.0,
    ) {
        let mut q = DownlinkQueue::new(storage);
        let mut pushed = 0.0;
        let mut pushed_value = 0.0;
        for e in &entries {
            pushed += e.bits;
            pushed_value += e.value_bits;
            q.push(*e);
        }
        let r = q.drain(budget);
        // Conservation of volume and value.
        let accounted = r.sent_bits + q.dropped_bits() + q.occupied_bits();
        prop_assert!((accounted - pushed).abs() < 1e-6);
        prop_assert!(r.sent_value_bits <= pushed_value + 1e-6);
        // Bounds.
        prop_assert!(r.sent_bits <= budget + 1e-6);
        prop_assert!(q.occupied_bits() <= storage + 1e-6);
        prop_assert!(r.sent_value_bits <= r.sent_bits + 1e-6);
    }

    #[test]
    fn drained_density_dominates_residual_density(
        entries in prop::collection::vec(entry_strategy(), 2..40),
        budget_fraction in 0.1f64..0.9,
    ) {
        // With unbounded storage, what goes down first must be at least
        // as dense as what stays behind.
        let mut q = DownlinkQueue::new(1e12);
        let total: f64 = entries.iter().map(|e| e.bits).sum();
        for e in &entries {
            q.push(*e);
        }
        let r = q.drain(total * budget_fraction);
        if r.sent_bits > 1e-9 && q.occupied_bits() > 1e-9 {
            let sent_density = r.sent_value_bits / r.sent_bits;
            let residual_value: f64 =
                entries.iter().map(|e| e.value_bits).sum::<f64>() - r.sent_value_bits;
            let residual_density = residual_value / q.occupied_bits();
            prop_assert!(
                sent_density >= residual_density - 1e-6,
                "sent {} < residual {}",
                sent_density,
                residual_density
            );
        }
    }

    #[test]
    fn eviction_never_exceeds_storage(
        entries in prop::collection::vec(entry_strategy(), 1..80),
        storage in 50.0f64..2_000.0,
    ) {
        let mut q = DownlinkQueue::new(storage);
        for e in &entries {
            q.push(*e);
            prop_assert!(q.occupied_bits() <= storage + 1e-6);
        }
    }

    #[test]
    fn repeated_drains_eventually_empty_the_queue(
        entries in prop::collection::vec(entry_strategy(), 1..30),
    ) {
        let mut q = DownlinkQueue::new(1e12);
        for e in &entries {
            q.push(*e);
        }
        for _ in 0..2000 {
            if q.is_empty() {
                break;
            }
            q.drain(100.0);
        }
        prop_assert!(q.is_empty());
        prop_assert!(q.occupied_bits().abs() < 1e-6);
    }
}
