//! Physical constants for Earth (WGS84) and two-body dynamics.

/// Earth gravitational parameter, m^3/s^2 (WGS84).
pub const EARTH_MU: f64 = 3.986_004_418e14;

/// Earth equatorial radius, m (WGS84 semi-major axis).
pub const EARTH_RADIUS_EQ: f64 = 6_378_137.0;

/// Earth polar radius, m (WGS84 semi-minor axis).
pub const EARTH_RADIUS_POLAR: f64 = 6_356_752.314_245;

/// Earth mean radius, m (IUGG).
pub const EARTH_RADIUS_MEAN: f64 = 6_371_008.8;

/// WGS84 flattening.
pub const EARTH_FLATTENING: f64 = 1.0 / 298.257_223_563;

/// WGS84 first eccentricity squared.
pub const EARTH_E2: f64 = EARTH_FLATTENING * (2.0 - EARTH_FLATTENING);

/// Earth J2 zonal harmonic coefficient (oblateness).
pub const EARTH_J2: f64 = 1.082_626_68e-3;

/// Earth sidereal rotation rate, rad/s.
pub const EARTH_ROTATION_RATE: f64 = 7.292_115_146_706_979e-5;

/// Mean solar day, s.
pub const SOLAR_DAY: f64 = 86_400.0;

/// Tropical year, days. Used for sun-synchronous orbit design.
pub const TROPICAL_YEAR_DAYS: f64 = 365.242_19;

/// Required nodal regression rate for a sun-synchronous orbit, rad/s
/// (360 degrees per tropical year, eastward).
pub fn sun_synchronous_node_rate() -> f64 {
    2.0 * std::f64::consts::PI / (TROPICAL_YEAR_DAYS * SOLAR_DAY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eccentricity_consistent_with_flattening() {
        let e2 = 1.0 - (EARTH_RADIUS_POLAR / EARTH_RADIUS_EQ).powi(2);
        assert!((e2 - EARTH_E2).abs() < 1e-9);
    }

    #[test]
    fn sun_sync_rate_close_to_published_value() {
        // ~1.991e-7 rad/s in the astrodynamics literature.
        let rate = sun_synchronous_node_rate();
        assert!((rate - 1.991e-7).abs() < 1e-9, "rate = {rate}");
    }
}
