//! Constellations: groups of satellites on related orbits.

use crate::orbit::Orbit;
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// A constellation of satellites.
///
/// Two layouts cover the paper's experiments:
///
/// - [`Constellation::same_plane`]: all satellites share one orbital plane,
///   evenly phased (the configuration behind Figure 2, where additional
///   satellites claim idle ground-station time until the downlink
///   saturates).
/// - [`Constellation::walker`]: satellites spread over several planes
///   (used for the coverage analysis behind Figure 3).
///
/// # Example
///
/// ```
/// use kodan_cote::constellation::Constellation;
/// use kodan_cote::orbit::Orbit;
/// let c = Constellation::same_plane(Orbit::sun_synchronous(705_000.0), 8);
/// assert_eq!(c.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constellation {
    satellites: Vec<Orbit>,
}

impl Constellation {
    /// A single-satellite "constellation".
    pub fn single(orbit: Orbit) -> Constellation {
        Constellation {
            satellites: vec![orbit],
        }
    }

    /// `count` satellites evenly phased within one orbital plane.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn same_plane(base: Orbit, count: usize) -> Constellation {
        assert!(count > 0, "a constellation needs at least one satellite");
        let satellites = (0..count)
            .map(|i| {
                let phase = TAU * (i as f64) / (count as f64);
                base.with_mean_anomaly(base.elements().mean_anomaly + phase)
            })
            .collect();
        Constellation { satellites }
    }

    /// A Walker-delta-like constellation: `planes` planes evenly spread in
    /// RAAN, `per_plane` satellites evenly phased in each plane, with an
    /// inter-plane phasing offset of `phase_step` fractions of a slot.
    ///
    /// # Panics
    ///
    /// Panics if `planes` or `per_plane` is zero.
    pub fn walker(base: Orbit, planes: usize, per_plane: usize, phase_step: f64) -> Constellation {
        assert!(planes > 0 && per_plane > 0, "empty constellation");
        let mut satellites = Vec::with_capacity(planes * per_plane);
        for p in 0..planes {
            let raan = base.elements().raan + TAU * (p as f64) / (planes as f64);
            for s in 0..per_plane {
                let slot = TAU / (per_plane as f64);
                let phase = slot * (s as f64) + slot * phase_step * (p as f64);
                satellites.push(
                    base.with_raan(raan)
                        .with_mean_anomaly(base.elements().mean_anomaly + phase),
                );
            }
        }
        Constellation { satellites }
    }

    /// `count` satellites spread to maximize coverage: as many planes as
    /// satellites, with staggered phases. This approximates how commercial
    /// imaging constellations (Planet's "Dove" flocks) distribute over
    /// sun-synchronous planes for daily coverage.
    pub fn spread(base: Orbit, count: usize) -> Constellation {
        assert!(count > 0, "a constellation needs at least one satellite");
        let satellites = (0..count)
            .map(|i| {
                // Golden-angle RAAN spreading avoids clustering for any count.
                let golden = TAU * 0.381_966_011_250_105;
                let raan = base.elements().raan + (i as f64) * golden;
                let phase = TAU * (i as f64) / (count as f64);
                base.with_raan(raan)
                    .with_mean_anomaly(base.elements().mean_anomaly + phase)
            })
            .collect();
        Constellation { satellites }
    }

    /// The satellites' orbits.
    pub fn orbits(&self) -> &[Orbit] {
        &self.satellites
    }

    /// Number of satellites.
    pub fn len(&self) -> usize {
        self.satellites.len()
    }

    /// True if the constellation has no satellites (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.satellites.is_empty()
    }

    /// Iterates over satellite orbits.
    pub fn iter(&self) -> std::slice::Iter<'_, Orbit> {
        self.satellites.iter()
    }
}

impl<'a> IntoIterator for &'a Constellation {
    type Item = &'a Orbit;
    type IntoIter = std::slice::Iter<'a, Orbit>;
    fn into_iter(self) -> Self::IntoIter {
        self.satellites.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::propagate;

    fn base() -> Orbit {
        Orbit::sun_synchronous(705_000.0)
    }

    #[test]
    fn same_plane_shares_raan_and_spreads_phase() {
        let c = Constellation::same_plane(base(), 4);
        let raan0 = c.orbits()[0].elements().raan;
        for orbit in &c {
            assert_eq!(orbit.elements().raan, raan0);
        }
        let phases: Vec<f64> = c.iter().map(|o| o.elements().mean_anomaly).collect();
        for pair in phases.windows(2) {
            let gap = (pair[1] - pair[0]).rem_euclid(TAU);
            assert!((gap - TAU / 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn same_plane_satellites_are_separated_in_space() {
        let c = Constellation::same_plane(base(), 4);
        let t = base().epoch();
        let p0 = propagate(&c.orbits()[0], t).position;
        let p1 = propagate(&c.orbits()[1], t).position;
        // Quarter-orbit separation at LEO is thousands of km.
        assert!(p0.distance(p1) > 1.0e6);
    }

    #[test]
    fn walker_populates_all_planes() {
        let c = Constellation::walker(base(), 3, 4, 0.5);
        assert_eq!(c.len(), 12);
        let mut raans: Vec<f64> = c.iter().map(|o| o.elements().raan).collect();
        raans.sort_by(|a, b| a.partial_cmp(b).unwrap());
        raans.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert_eq!(raans.len(), 3);
    }

    #[test]
    fn spread_uses_distinct_planes() {
        let c = Constellation::spread(base(), 10);
        assert_eq!(c.len(), 10);
        let mut raans: Vec<f64> = c.iter().map(|o| o.elements().raan).collect();
        raans.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for pair in raans.windows(2) {
            assert!((pair[1] - pair[0]).abs() > 1e-6, "planes collide");
        }
    }

    #[test]
    #[should_panic(expected = "at least one satellite")]
    fn rejects_empty_same_plane() {
        let _ = Constellation::same_plane(base(), 0);
    }
}
