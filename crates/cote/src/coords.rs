//! Coordinate frames and conversions: ECI, ECEF and geodetic coordinates.
//!
//! The simulator uses three frames:
//!
//! - **ECI** (Earth-centered inertial): orbit propagation output.
//! - **ECEF** (Earth-centered, Earth-fixed): ground geometry. Obtained from
//!   ECI by rotating through the Greenwich Mean Sidereal Time angle.
//! - **Geodetic** latitude/longitude/altitude over the WGS84 ellipsoid.

use crate::bodies::{EARTH_E2, EARTH_RADIUS_EQ};
use crate::time::Epoch;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};
use std::fmt;

/// A geodetic position over the WGS84 ellipsoid.
///
/// # Example
///
/// ```
/// use kodan_cote::coords::Geodetic;
/// let p = Geodetic::from_degrees(47.6, -122.3, 0.0); // Seattle
/// assert!((p.latitude_deg() - 47.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Geodetic {
    /// Geodetic latitude, radians, in `[-pi/2, pi/2]`.
    pub latitude: f64,
    /// Longitude, radians, normalized to `(-pi, pi]`.
    pub longitude: f64,
    /// Height above the ellipsoid, meters.
    pub altitude: f64,
}

impl Geodetic {
    /// Creates a geodetic position from radians and meters.
    pub fn new(latitude: f64, longitude: f64, altitude: f64) -> Geodetic {
        Geodetic {
            latitude,
            longitude: normalize_longitude(longitude),
            altitude,
        }
    }

    /// Creates a geodetic position from degrees and meters.
    pub fn from_degrees(lat_deg: f64, lon_deg: f64, altitude_m: f64) -> Geodetic {
        Geodetic::new(lat_deg.to_radians(), lon_deg.to_radians(), altitude_m)
    }

    /// Latitude in degrees.
    pub fn latitude_deg(&self) -> f64 {
        self.latitude.to_degrees()
    }

    /// Longitude in degrees.
    pub fn longitude_deg(&self) -> f64 {
        self.longitude.to_degrees()
    }

    /// Converts to an ECEF position vector in meters.
    pub fn to_ecef(&self) -> Vec3 {
        let (slat, clat) = self.latitude.sin_cos();
        let (slon, clon) = self.longitude.sin_cos();
        // Prime-vertical radius of curvature.
        let n = EARTH_RADIUS_EQ / (1.0 - EARTH_E2 * slat * slat).sqrt();
        Vec3 {
            x: (n + self.altitude) * clat * clon,
            y: (n + self.altitude) * clat * slon,
            z: (n * (1.0 - EARTH_E2) + self.altitude) * slat,
        }
    }

    /// Local "up" unit vector (ellipsoid normal) in ECEF.
    pub fn up(&self) -> Vec3 {
        let (slat, clat) = self.latitude.sin_cos();
        let (slon, clon) = self.longitude.sin_cos();
        Vec3::new(clat * clon, clat * slon, slat)
    }

    /// Great-circle distance to another geodetic point over the mean sphere,
    /// in meters. Uses the haversine formula; adequate for frame-grid and
    /// coverage bookkeeping.
    pub fn great_circle_distance(&self, other: &Geodetic) -> f64 {
        let dlat = other.latitude - self.latitude;
        let dlon = other.longitude - self.longitude;
        let a = (dlat / 2.0).sin().powi(2)
            + self.latitude.cos() * other.latitude.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * crate::bodies::EARTH_RADIUS_MEAN * a.sqrt().clamp(-1.0, 1.0).asin()
    }
}

impl fmt::Display for Geodetic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:+.3} deg, {:+.3} deg, {:.0} m)",
            self.latitude_deg(),
            self.longitude_deg(),
            self.altitude
        )
    }
}

/// Normalizes a longitude in radians to `(-pi, pi]`.
pub fn normalize_longitude(lon: f64) -> f64 {
    let mut l = lon % TAU;
    if l > PI {
        l -= TAU;
    } else if l <= -PI {
        l += TAU;
    }
    l
}

/// Greenwich Mean Sidereal Time angle, radians, at the given epoch.
///
/// Linear-rate approximation referenced to J2000; accurate to well under a
/// degree over the multi-year spans this simulator covers, which is ample
/// for contact-window and coverage statistics.
pub fn gmst(epoch: Epoch) -> f64 {
    let d = epoch.days_since_j2000();
    let theta = 4.894_961_212_823_058_7 + 6.300_388_098_984_893_5 * d;
    theta.rem_euclid(TAU)
}

/// Rotates an ECI position (meters) into ECEF at the given epoch.
pub fn eci_to_ecef(r_eci: Vec3, epoch: Epoch) -> Vec3 {
    r_eci.rotated_z(-gmst(epoch))
}

/// Rotates an ECEF position (meters) into ECI at the given epoch.
pub fn ecef_to_eci(r_ecef: Vec3, epoch: Epoch) -> Vec3 {
    r_ecef.rotated_z(gmst(epoch))
}

/// Converts an ECEF position in meters to geodetic coordinates.
///
/// Uses Bowring-style fixed-point iteration; converges to sub-millimeter in
/// a handful of iterations for LEO geometries.
pub fn ecef_to_geodetic(r: Vec3) -> Geodetic {
    let p = (r.x * r.x + r.y * r.y).sqrt();
    let longitude = r.y.atan2(r.x);
    if p < 1e-9 {
        // On the polar axis.
        let lat = if r.z >= 0.0 { PI / 2.0 } else { -PI / 2.0 };
        let alt = r.z.abs() - crate::bodies::EARTH_RADIUS_POLAR;
        return Geodetic::new(lat, longitude, alt);
    }
    let mut lat = (r.z / (p * (1.0 - EARTH_E2))).atan();
    let mut alt = 0.0;
    for _ in 0..8 {
        let slat = lat.sin();
        let n = EARTH_RADIUS_EQ / (1.0 - EARTH_E2 * slat * slat).sqrt();
        alt = p / lat.cos() - n;
        lat = (r.z / (p * (1.0 - EARTH_E2 * n / (n + alt)))).atan();
    }
    Geodetic::new(lat, longitude, alt)
}

/// Elevation angle, radians, of a target (ECEF, meters) as seen from an
/// observer at a geodetic site. Positive means above the local horizon.
pub fn elevation_angle(site: &Geodetic, target_ecef: Vec3) -> f64 {
    let site_ecef = site.to_ecef();
    let range = target_ecef - site_ecef;
    let up = site.up();
    (range.dot(up) / range.norm()).clamp(-1.0, 1.0).asin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bodies::{EARTH_RADIUS_EQ, EARTH_RADIUS_POLAR};

    #[test]
    fn equator_ecef_round_trip() {
        let g = Geodetic::from_degrees(0.0, 0.0, 0.0);
        let r = g.to_ecef();
        assert!((r.x - EARTH_RADIUS_EQ).abs() < 1e-6);
        assert!(r.y.abs() < 1e-6);
        assert!(r.z.abs() < 1e-6);
        let back = ecef_to_geodetic(r);
        assert!(back.latitude.abs() < 1e-9);
        assert!(back.longitude.abs() < 1e-9);
        assert!(back.altitude.abs() < 1e-3);
    }

    #[test]
    fn pole_ecef_round_trip() {
        let g = Geodetic::from_degrees(90.0, 0.0, 0.0);
        let r = g.to_ecef();
        assert!((r.z - EARTH_RADIUS_POLAR).abs() < 1e-6);
        let back = ecef_to_geodetic(r);
        assert!((back.latitude_deg() - 90.0).abs() < 1e-6);
        assert!(back.altitude.abs() < 1e-3);
    }

    #[test]
    fn mid_latitude_round_trip_with_altitude() {
        let g = Geodetic::from_degrees(47.65, -122.3, 705_000.0);
        let back = ecef_to_geodetic(g.to_ecef());
        assert!((back.latitude_deg() - 47.65).abs() < 1e-6);
        assert!((back.longitude_deg() - (-122.3)).abs() < 1e-9);
        assert!((back.altitude - 705_000.0).abs() < 0.01);
    }

    #[test]
    fn longitude_normalization() {
        assert!((normalize_longitude(3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_longitude(-3.0 * PI) - PI).abs() < 1e-12);
        assert_eq!(normalize_longitude(0.5), 0.5);
    }

    #[test]
    fn gmst_advances_slightly_faster_than_solar_time() {
        let t0 = Epoch::mission_start();
        let t1 = t0 + crate::time::Duration::from_days(1.0);
        // One solar day advances GMST by slightly more than one full turn:
        // ~0.9856 degrees extra.
        let advance = (gmst(t1) - gmst(t0)).rem_euclid(TAU);
        let extra_deg = advance.to_degrees();
        assert!(
            (extra_deg - 0.9856).abs() < 0.01,
            "extra advance = {extra_deg} deg"
        );
    }

    #[test]
    fn eci_ecef_round_trip() {
        let epoch = Epoch::mission_start() + crate::time::Duration::from_hours(5.3);
        let r = Vec3::new(7.0e6, -1.0e6, 2.0e6);
        let back = ecef_to_eci(eci_to_ecef(r, epoch), epoch);
        assert!(r.distance(back) < 1e-6);
    }

    #[test]
    fn elevation_straight_up_is_90_degrees() {
        let site = Geodetic::from_degrees(45.0, 10.0, 0.0);
        let overhead = site.to_ecef() + site.up() * 705_000.0;
        let el = elevation_angle(&site, overhead);
        assert!((el.to_degrees() - 90.0).abs() < 1e-6);
    }

    #[test]
    fn elevation_below_horizon_is_negative() {
        let site = Geodetic::from_degrees(0.0, 0.0, 0.0);
        // A point on the opposite side of Earth.
        let antipode = Geodetic::from_degrees(0.0, 180.0, 705_000.0).to_ecef();
        assert!(elevation_angle(&site, antipode) < 0.0);
    }

    #[test]
    fn great_circle_distance_quarter_turn() {
        let a = Geodetic::from_degrees(0.0, 0.0, 0.0);
        let b = Geodetic::from_degrees(0.0, 90.0, 0.0);
        let expected = crate::bodies::EARTH_RADIUS_MEAN * PI / 2.0;
        assert!((a.great_circle_distance(&b) - expected).abs() < 1.0);
    }
}
