//! Constellation coverage analysis over the WRS scene grid.
//!
//! Answers the paper's Figure 3 question: how many satellites does it take
//! to *observe* every frame of Earth each day? Observation is counted on
//! the WRS-style grid of [`crate::wrs`]; a scene is observed when any
//! satellite's ground track passes through it during the horizon.

use crate::constellation::Constellation;
use crate::propagate::ground_track_point;
use crate::sensor::Imager;
use crate::time::Duration;
use crate::wrs::{SceneId, WorldReferenceSystem};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Result of a coverage analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Number of satellites analyzed.
    pub satellite_count: usize,
    /// Unique scenes observed during the horizon.
    pub unique_scenes: usize,
    /// Total scenes in the grid.
    pub total_scenes: u32,
    /// Total (non-unique) frame observations.
    pub total_observations: u64,
}

impl CoverageReport {
    /// Fraction of the grid observed, in `[0, 1]`.
    pub fn coverage_fraction(&self) -> f64 {
        self.unique_scenes as f64 / f64::from(self.total_scenes)
    }

    /// True if every scene was observed at least once.
    pub fn is_global(&self) -> bool {
        self.unique_scenes as u32 >= self.total_scenes
    }
}

/// Computes the unique-scene coverage of a constellation over `horizon`.
///
/// Each satellite contributes one ground-track sample per frame deadline
/// (i.e., one per captured frame). Scenes poleward of the grid limit clamp
/// into the boundary rows, mirroring how WRS-2 handles near-polar scenes.
pub fn coverage(
    constellation: &Constellation,
    imager: &Imager,
    wrs: &WorldReferenceSystem,
    horizon: Duration,
) -> CoverageReport {
    let mut scenes: BTreeSet<SceneId> = BTreeSet::new();
    let mut observations: u64 = 0;
    for orbit in constellation {
        let deadline = imager.frame_deadline(orbit);
        let count = (horizon / deadline).floor() as u64;
        for i in 0..count {
            let t = orbit.epoch() + deadline * (i as f64);
            let point = ground_track_point(orbit, t);
            scenes.insert(wrs.scene_of(&point));
            observations += 1;
        }
    }
    CoverageReport {
        satellite_count: constellation.len(),
        unique_scenes: scenes.len(),
        total_scenes: wrs.scene_count(),
        total_observations: observations,
    }
}

/// Sweeps constellation sizes and reports coverage for each, using the
/// spread (multi-plane) layout. Returns one report per entry in `counts`.
pub fn coverage_sweep(
    base: crate::orbit::Orbit,
    counts: &[usize],
    imager: &Imager,
    wrs: &WorldReferenceSystem,
    horizon: Duration,
) -> Vec<CoverageReport> {
    counts
        .iter()
        .map(|&n| {
            let constellation = Constellation::spread(base, n);
            coverage(&constellation, imager, wrs, horizon)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orbit::Orbit;

    fn landsat_coverage(n: usize, hours: f64) -> CoverageReport {
        let base = Orbit::sun_synchronous(705_000.0);
        coverage(
            &Constellation::spread(base, n),
            &Imager::landsat_oli(),
            &WorldReferenceSystem::wrs2_like(),
            Duration::from_hours(hours),
        )
    }

    #[test]
    fn single_satellite_covers_small_fraction_daily() {
        let report = landsat_coverage(1, 24.0);
        // One satellite revisits the full WRS-2 grid only every 16 days.
        let frac = report.coverage_fraction();
        assert!(
            (0.01..0.25).contains(&frac),
            "single-satellite daily coverage = {frac}"
        );
        assert!(!report.is_global());
    }

    #[test]
    fn coverage_increases_with_satellite_count() {
        let c1 = landsat_coverage(1, 12.0);
        let c8 = landsat_coverage(8, 12.0);
        assert!(c8.unique_scenes > c1.unique_scenes);
        assert_eq!(c8.satellite_count, 8);
    }

    #[test]
    fn observations_scale_linearly_with_satellites() {
        let c1 = landsat_coverage(1, 6.0);
        let c4 = landsat_coverage(4, 6.0);
        assert_eq!(c4.total_observations, 4 * c1.total_observations);
    }

    #[test]
    fn sweep_returns_one_report_per_count() {
        let base = Orbit::sun_synchronous(705_000.0);
        let reports = coverage_sweep(
            base,
            &[1, 2, 4],
            &Imager::landsat_oli(),
            &WorldReferenceSystem::wrs2_like(),
            Duration::from_hours(3.0),
        );
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].satellite_count, 1);
        assert_eq!(reports[2].satellite_count, 4);
    }
}
