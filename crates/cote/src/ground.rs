//! Ground stations and the ground segment.

use crate::coords::{elevation_angle, Geodetic};
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A downlink ground station.
///
/// # Example
///
/// ```
/// use kodan_cote::ground::GroundStation;
/// let gs = GroundStation::new("Svalbard", 78.23, 15.39, 5.0, 384.0e6);
/// assert_eq!(gs.name(), "Svalbard");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundStation {
    name: String,
    location: Geodetic,
    min_elevation: f64,
    downlink_rate_bps: f64,
}

impl GroundStation {
    /// Creates a ground station.
    ///
    /// `min_elevation_deg` is the mask angle below which no contact is
    /// possible; `downlink_rate_bps` is the sustained space-to-ground rate.
    ///
    /// # Panics
    ///
    /// Panics if the downlink rate is not positive or the mask angle is
    /// outside `[0, 90)` degrees.
    pub fn new(
        name: impl Into<String>,
        lat_deg: f64,
        lon_deg: f64,
        min_elevation_deg: f64,
        downlink_rate_bps: f64,
    ) -> GroundStation {
        assert!(downlink_rate_bps > 0.0, "downlink rate must be positive");
        assert!(
            (0.0..90.0).contains(&min_elevation_deg),
            "mask angle must be in [0, 90) degrees"
        );
        GroundStation {
            name: name.into(),
            location: Geodetic::from_degrees(lat_deg, lon_deg, 0.0),
            min_elevation: min_elevation_deg.to_radians(),
            downlink_rate_bps,
        }
    }

    /// Station name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Station location.
    pub fn location(&self) -> &Geodetic {
        &self.location
    }

    /// Elevation mask angle, radians.
    pub fn min_elevation(&self) -> f64 {
        self.min_elevation
    }

    /// Sustained downlink rate, bits/second.
    pub fn downlink_rate_bps(&self) -> f64 {
        self.downlink_rate_bps
    }

    /// True if a satellite at the given ECEF position (meters) is above the
    /// station's elevation mask.
    pub fn sees(&self, sat_ecef: Vec3) -> bool {
        elevation_angle(&self.location, sat_ecef) >= self.min_elevation
    }

    /// Elevation of the satellite above this station's horizon, radians.
    pub fn elevation_of(&self, sat_ecef: Vec3) -> f64 {
        elevation_angle(&self.location, sat_ecef)
    }
}

impl fmt::Display for GroundStation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.name, self.location)
    }
}

/// A set of ground stations serving a constellation.
///
/// Each station serves at most one satellite at a time; the simulator
/// resolves contention in [`crate::sim`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundSegment {
    stations: Vec<GroundStation>,
}

impl GroundSegment {
    /// Creates a ground segment from a list of stations.
    ///
    /// # Panics
    ///
    /// Panics if `stations` is empty.
    pub fn new(stations: Vec<GroundStation>) -> GroundSegment {
        assert!(!stations.is_empty(), "a ground segment needs stations");
        GroundSegment { stations }
    }

    /// The Landsat-8 ground segment: the primary Landsat Ground Network
    /// stations (Sioux Falls, Fairbanks, Svalbard, Alice Springs,
    /// Neustrelitz) with an X-band class 384 Mb/s downlink and a 5 degree
    /// mask, following the published Landsat network description.
    pub fn landsat() -> GroundSegment {
        const RATE: f64 = 384.0e6;
        const MASK: f64 = 5.0;
        GroundSegment::new(vec![
            GroundStation::new("Sioux Falls", 43.74, -96.62, MASK, RATE),
            GroundStation::new("Fairbanks", 64.86, -147.85, MASK, RATE),
            GroundStation::new("Svalbard", 78.23, 15.39, MASK, RATE),
            GroundStation::new("Alice Springs", -23.70, 133.88, MASK, RATE),
            GroundStation::new("Neustrelitz", 53.33, 13.07, MASK, RATE),
        ])
    }

    /// A minimal single-station segment, useful for tests.
    pub fn single(station: GroundStation) -> GroundSegment {
        GroundSegment::new(vec![station])
    }

    /// The stations in this segment.
    pub fn stations(&self) -> &[GroundStation] {
        &self.stations
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// Always false: construction requires at least one station.
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// Iterates over stations.
    pub fn iter(&self) -> std::slice::Iter<'_, GroundStation> {
        self.stations.iter()
    }
}

impl<'a> IntoIterator for &'a GroundSegment {
    type Item = &'a GroundStation;
    type IntoIter = std::slice::Iter<'a, GroundStation>;
    fn into_iter(self) -> Self::IntoIter {
        self.stations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn station_sees_overhead_satellite() {
        let gs = GroundStation::new("Test", 40.0, -100.0, 5.0, 1e8);
        let overhead = gs.location().to_ecef() + gs.location().up() * 705_000.0;
        assert!(gs.sees(overhead));
        assert!((gs.elevation_of(overhead).to_degrees() - 90.0).abs() < 1e-6);
    }

    #[test]
    fn station_does_not_see_antipodal_satellite() {
        let gs = GroundStation::new("Test", 40.0, -100.0, 5.0, 1e8);
        let antipode = Geodetic::from_degrees(-40.0, 80.0, 705_000.0).to_ecef();
        assert!(!gs.sees(antipode));
    }

    #[test]
    fn landsat_segment_has_five_stations() {
        let seg = GroundSegment::landsat();
        assert_eq!(seg.len(), 5);
        assert!(!seg.is_empty());
        assert!(seg.iter().any(|s| s.name() == "Svalbard"));
    }

    #[test]
    #[should_panic(expected = "downlink rate")]
    fn rejects_zero_rate() {
        let _ = GroundStation::new("Bad", 0.0, 0.0, 5.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "stations")]
    fn rejects_empty_segment() {
        let _ = GroundSegment::new(vec![]);
    }
}
