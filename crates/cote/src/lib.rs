//! # kodan-cote
//!
//! An orbital-mechanics and space-segment simulator, built as the substrate
//! for the Kodan (ASPLOS '23) reproduction. It stands in for the `cote`
//! simulator used by the paper ("computing on the edge", Denby & Lucia,
//! ASPLOS '20) and models:
//!
//! - time systems and simulated epochs ([`time`]),
//! - Earth constants and coordinate frames — ECI, ECEF, geodetic
//!   ([`bodies`], [`coords`]),
//! - Keplerian orbits with J2 secular perturbations and sun-synchronous
//!   design helpers ([`orbit`], [`propagate`]),
//! - ground stations, elevation geometry and contact windows ([`ground`],
//!   [`link`]),
//! - imaging sensors, ground tracks, frame capture and the frame deadline
//!   ([`sensor`]),
//! - the Landsat-style Worldwide Reference System frame grid ([`wrs`]),
//! - constellations ([`constellation`]) and day-scale space-segment
//!   simulation with ground-station contention ([`sim`], [`coverage`]).
//!
//! Everything is deterministic and uses simulated time only; there is no
//! wall-clock or I/O dependence, which makes day-scale sweeps cheap and
//! reproducible.
//!
//! ## Example
//!
//! ```
//! use kodan_cote::orbit::Orbit;
//! use kodan_cote::ground::GroundSegment;
//! use kodan_cote::link::contact_windows;
//! use kodan_cote::time::Duration;
//!
//! let orbit = Orbit::sun_synchronous(705_000.0); // Landsat-8-like
//! let segment = GroundSegment::landsat();
//! let windows = contact_windows(&orbit, &segment, Duration::from_hours(24.0));
//! assert!(!windows.is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bodies;
pub mod constellation;
pub mod coords;
pub mod coverage;
pub mod ground;
pub mod link;
pub mod link_budget;
pub mod orbit;
pub mod propagate;
pub mod sensor;
pub mod sim;
pub mod time;
pub mod vec3;
pub mod wrs;

pub use orbit::Orbit;
pub use sensor::Imager;
pub use time::{Duration, Epoch};
pub use vec3::Vec3;
