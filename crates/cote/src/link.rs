//! Contact windows and downlink capacity.
//!
//! A contact window is a maximal interval during which a satellite is above
//! a ground station's elevation mask. Windows are found by coarse time
//! stepping followed by bisection refinement of the rise and set edges.

use crate::ground::{GroundSegment, GroundStation};
use crate::orbit::Orbit;
use crate::propagate::position_ecef;
use crate::time::{Duration, Epoch};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single satellite-to-station contact opportunity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContactWindow {
    /// Index of the station within the ground segment that produced this
    /// window.
    pub station: usize,
    /// Rise time (first instant above the mask).
    pub start: Epoch,
    /// Set time (last instant above the mask).
    pub end: Epoch,
    /// Sustained downlink rate during the pass, bits/second.
    pub rate_bps: f64,
}

impl ContactWindow {
    /// Pass duration.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// Total bits that can be downlinked during this pass at the sustained
    /// rate.
    pub fn capacity_bits(&self) -> f64 {
        self.duration().as_seconds() * self.rate_bps
    }

    /// True if `epoch` falls within the window.
    pub fn contains(&self, epoch: Epoch) -> bool {
        epoch >= self.start && epoch <= self.end
    }
}

impl fmt::Display for ContactWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "contact(station {}, {} for {})",
            self.station,
            self.start,
            self.duration()
        )
    }
}

/// Coarse step in seconds used when scanning for visibility transitions. A
/// typical LEO pass lasts several minutes, so 10 s cannot skip over one —
/// but a grazing pass that peaks just above the mask can fit entirely
/// between two samples, so invisible->invisible steps whose midpoint is
/// near the horizon are probed recursively (see [`find_visible_between`]).
const SCAN_STEP_SECONDS: f64 = 10.0;

/// How far below the elevation mask (radians) the midpoint of a scan step
/// may sit while still being probed for an interior grazing pass. A LEO
/// satellite's elevation changes by at most ~3 degrees over half a scan
/// step, so 8 degrees conservatively bounds the probe to near-horizon
/// intervals — everything further below the mask provably cannot peak
/// above it within the step.
const GRAZING_MARGIN_RAD: f64 = 8.0 * std::f64::consts::PI / 180.0;

/// Smallest interval the grazing probe subdivides, seconds. Passes below
/// ~1 s are discarded by [`push_window`] anyway, so probing a finer grid
/// buys nothing.
const PROBE_FLOOR_SECONDS: f64 = 0.5;

/// Computes all contact windows between one satellite and every station of
/// a ground segment over `[orbit.epoch(), orbit.epoch() + horizon]`.
///
/// Windows are returned sorted by start time. Edges are refined to ~100 ms
/// by bisection.
pub fn contact_windows(
    orbit: &Orbit,
    segment: &GroundSegment,
    horizon: Duration,
) -> Vec<ContactWindow> {
    let mut windows = Vec::new();
    for (idx, station) in segment.iter().enumerate() {
        windows.extend(station_windows(orbit, station, idx, horizon));
    }
    windows.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("epochs are finite"));
    windows
}

fn station_windows(
    orbit: &Orbit,
    station: &GroundStation,
    station_idx: usize,
    horizon: Duration,
) -> Vec<ContactWindow> {
    let t0 = orbit.epoch();
    let t_end = t0 + horizon;
    let elevation = |t: Epoch| station.elevation_of(position_ecef(orbit, t));
    let mask = station.min_elevation();
    let visible = |t: Epoch| elevation(t) >= mask;

    let mut windows = Vec::new();
    let mut t = t0;
    let mut was_visible = visible(t);
    let mut rise = if was_visible { Some(t) } else { None };

    let step = Duration::from_seconds(SCAN_STEP_SECONDS);
    while t < t_end {
        let stepped = t + step;
        let t_next = if stepped < t_end { stepped } else { t_end };
        let now_visible = visible(t_next);
        if now_visible != was_visible {
            let edge = bisect_transition(&visible, t, t_next);
            if now_visible {
                rise = Some(edge);
            } else if let Some(r) = rise.take() {
                push_window(&mut windows, station_idx, station, r, edge);
            }
            was_visible = now_visible;
        } else if !now_visible {
            // Both endpoints below the mask: a grazing pass shorter than
            // one scan step can still peak above it in between. Probe the
            // interior, but only while the elevation stays near the
            // horizon, so the extra cost is confined to grazing geometry.
            if let Some(peak) = find_visible_between(&elevation, mask, t, t_next) {
                let rise_edge = bisect_transition(&visible, t, peak);
                let set_edge = bisect_transition(&visible, peak, t_next);
                push_window(&mut windows, station_idx, station, rise_edge, set_edge);
            }
        }
        t = t_next;
    }
    if let Some(r) = rise {
        push_window(&mut windows, station_idx, station, r, t_end);
    }
    windows
}

fn push_window(
    windows: &mut Vec<ContactWindow>,
    station_idx: usize,
    station: &GroundStation,
    start: Epoch,
    end: Epoch,
) {
    // Discard degenerate grazing passes shorter than a second.
    if (end - start).as_seconds() >= 1.0 {
        windows.push(ContactWindow {
            station: station_idx,
            start,
            end,
            rate_bps: station.downlink_rate_bps(),
        });
    }
}

/// Hunts for a visible instant strictly inside `(lo, hi)` when both
/// endpoints are below the mask, by recursive midpoint halving down to
/// [`PROBE_FLOOR_SECONDS`]. Subtrees whose midpoint elevation is more
/// than [`GRAZING_MARGIN_RAD`] below the mask are pruned: the elevation
/// cannot climb that far within the sub-interval.
fn find_visible_between(
    elevation: &impl Fn(Epoch) -> f64,
    mask: f64,
    lo: Epoch,
    hi: Epoch,
) -> Option<Epoch> {
    if (hi - lo).as_seconds() < PROBE_FLOOR_SECONDS {
        return None;
    }
    let mid = lo + (hi - lo) * 0.5;
    let el = elevation(mid);
    if el >= mask {
        return Some(mid);
    }
    if el < mask - GRAZING_MARGIN_RAD {
        return None;
    }
    find_visible_between(elevation, mask, lo, mid)
        .or_else(|| find_visible_between(elevation, mask, mid, hi))
}

/// Bisects a visibility transition within `(lo, hi)` down to 100 ms.
fn bisect_transition(visible: &impl Fn(Epoch) -> bool, lo: Epoch, hi: Epoch) -> Epoch {
    let mut lo = lo;
    let mut hi = hi;
    let lo_state = visible(lo);
    while (hi - lo).as_seconds() > 0.1 {
        let mid = lo + (hi - lo) * 0.5;
        if visible(mid) == lo_state {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Total downlink capacity (bits) of a set of windows.
pub fn total_capacity_bits(windows: &[ContactWindow]) -> f64 {
    windows.iter().map(ContactWindow::capacity_bits).sum()
}

/// Total contact time of a set of windows.
pub fn total_contact_time(windows: &[ContactWindow]) -> Duration {
    windows
        .iter()
        .fold(Duration::ZERO, |acc, w| acc + w.duration())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GroundSegment;

    fn landsat_day_windows() -> Vec<ContactWindow> {
        let orbit = Orbit::sun_synchronous(705_000.0);
        contact_windows(&orbit, &GroundSegment::landsat(), Duration::from_hours(24.0))
    }

    #[test]
    fn polar_orbit_contacts_polar_stations_often() {
        let windows = landsat_day_windows();
        // Svalbard (station 2) sees a polar orbiter on most of its ~14.5
        // revolutions per day.
        let svalbard = windows.iter().filter(|w| w.station == 2).count();
        assert!(
            (8..=16).contains(&svalbard),
            "Svalbard passes per day = {svalbard}"
        );
    }

    #[test]
    fn pass_durations_are_leo_scale() {
        let windows = landsat_day_windows();
        assert!(!windows.is_empty());
        for w in &windows {
            let mins = w.duration().as_minutes();
            assert!(
                (0.0..=16.0).contains(&mins),
                "pass duration {mins} min is not LEO-scale"
            );
        }
    }

    #[test]
    fn windows_sorted_and_within_horizon() {
        let orbit = Orbit::sun_synchronous(705_000.0);
        let horizon = Duration::from_hours(24.0);
        let windows = contact_windows(&orbit, &GroundSegment::landsat(), horizon);
        let t0 = orbit.epoch();
        for pair in windows.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
        for w in &windows {
            assert!(w.start >= t0);
            assert!(w.end <= t0 + horizon + Duration::from_seconds(1.0));
            assert!(w.end > w.start);
        }
    }

    #[test]
    fn daily_contact_time_is_tens_of_minutes() {
        let windows = landsat_day_windows();
        let total = total_contact_time(&windows);
        // Five stations, a handful of passes each, minutes per pass.
        assert!(
            (20.0..=500.0).contains(&total.as_minutes()),
            "total contact = {total}"
        );
    }

    #[test]
    fn capacity_is_rate_times_duration() {
        let windows = landsat_day_windows();
        let w = &windows[0];
        assert!((w.capacity_bits() - w.duration().as_seconds() * w.rate_bps).abs() < 1.0);
        assert!(total_capacity_bits(&windows) > 0.0);
    }

    #[test]
    fn contains_respects_bounds() {
        let windows = landsat_day_windows();
        let w = &windows[0];
        assert!(w.contains(w.start));
        assert!(w.contains(w.end));
        assert!(!w.contains(w.end + Duration::from_seconds(5.0)));
    }

    #[test]
    fn grazing_passes_shorter_than_a_scan_step_are_found() {
        // Regression for the coarse-scan miss: a pass that rises and sets
        // entirely between two SCAN_STEP_SECONDS samples used to vanish.
        //
        // Synthesis: find the orbit's peak elevation over a day at a probe
        // site, then set the station mask just below that peak so the
        // above-mask interval lasts only ~5 s. Probe sites are tried until
        // the pass also sits *between* 10 s grid samples, which is exactly
        // the geometry the old endpoint-only scan could not see.
        let orbit = Orbit::sun_synchronous(705_000.0);
        let day = Duration::from_hours(24.0);
        let t0 = orbit.epoch();
        let sites = [
            (45.0, 8.0),
            (30.0, -100.0),
            (52.0, 151.0),
            (10.0, 35.0),
            (-33.0, -70.0),
            (60.0, -45.0),
        ];
        let mut synthesized = None;
        for (lat, lon) in sites {
            let probe = GroundStation::new("Probe", lat, lon, 5.0, 1e8);
            let elevation =
                |t: Epoch| probe.elevation_of(crate::propagate::position_ecef(&orbit, t));
            // Coarse argmax at 1 s resolution.
            let mut best_t = t0;
            let mut best_el = f64::NEG_INFINITY;
            let mut t = t0;
            while t < t0 + day {
                let el = elevation(t);
                if el > best_el {
                    best_el = el;
                    best_t = t;
                }
                t += Duration::from_seconds(1.0);
            }
            // Mask at the elevation 2.5 s off-peak -> a ~5 s pass.
            let half = Duration::from_seconds(2.5);
            let thr = elevation(best_t - half).min(elevation(best_t + half));
            let mask_deg = thr.to_degrees();
            // Keep only geometries where the whole pass sits between two
            // 10 s grid samples (offset of the peak within the grid).
            let off = (best_t - t0).as_seconds() % SCAN_STEP_SECONDS;
            if (1.0..90.0).contains(&mask_deg) && (3.0..=7.0).contains(&off) {
                synthesized = Some((lat, lon, mask_deg, best_t));
                break;
            }
        }
        let (lat, lon, mask_deg, peak_t) =
            synthesized.expect("no probe site produced an off-grid grazing pass");

        let station = GroundStation::new("Grazing", lat, lon, mask_deg, 1e8);
        let seg = GroundSegment::single(station.clone());
        let windows = contact_windows(&orbit, &seg, day);
        let hit = windows
            .iter()
            .find(|w| w.contains(peak_t))
            .expect("grazing pass missed by the scan");
        assert!(
            hit.duration().as_seconds() < SCAN_STEP_SECONDS,
            "synthesized pass lasts {} s, not grazing",
            hit.duration().as_seconds()
        );
        // Proof this is the regression geometry: every coarse grid sample
        // near the pass is below the mask, so the old endpoint-only scan
        // saw invisible -> invisible and skipped it.
        let mut k = ((hit.start - t0).as_seconds() / SCAN_STEP_SECONDS).floor() - 2.0;
        while k * SCAN_STEP_SECONDS < (hit.end - t0).as_seconds() + 2.0 * SCAN_STEP_SECONDS {
            let sample = t0 + Duration::from_seconds(k * SCAN_STEP_SECONDS);
            assert!(
                !station.sees(crate::propagate::position_ecef(&orbit, sample)),
                "a 10 s grid sample lands inside the pass; geometry is not grazing"
            );
            k += 1.0;
        }
    }

    #[test]
    fn equatorial_station_and_polar_orbit_still_meet() {
        let orbit = Orbit::sun_synchronous(705_000.0);
        let seg = GroundSegment::single(crate::ground::GroundStation::new(
            "Equator", 0.0, 0.0, 5.0, 1e8,
        ));
        let windows = contact_windows(&orbit, &seg, Duration::from_days(2.0));
        // An equatorial station sees a polar LEO a couple of times per day.
        assert!(!windows.is_empty());
    }
}
