//! Physical-layer link budgets: elevation-dependent achievable rates.
//!
//! The base simulator treats a pass as a constant-rate pipe. This module
//! refines that with a textbook RF link budget: achievable data rate
//! follows from EIRP, free-space path loss over the slant range, receiver
//! G/T and the required Eb/N0, capped by the modem's maximum rate. Low
//! passes (long slant ranges) close the link at a lower rate than
//! overhead passes — the effect that makes a ground segment's *geometry*
//! matter beyond its contact minutes.

use crate::bodies::EARTH_RADIUS_MEAN;
use serde::{Deserialize, Serialize};

/// Boltzmann's constant in decibel form, dBW/(K·Hz).
pub const BOLTZMANN_DBW: f64 = -228.6;

/// A space-to-ground radio link model.
///
/// # Example
///
/// ```
/// use kodan_cote::link_budget::RadioLink;
/// let link = RadioLink::landsat_x_band();
/// let low = link.achievable_rate_bps(10f64.to_radians(), 705_000.0);
/// let high = link.achievable_rate_bps(80f64.to_radians(), 705_000.0);
/// assert!(high >= low);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioLink {
    /// Satellite effective isotropic radiated power, dBW.
    pub eirp_dbw: f64,
    /// Carrier frequency, Hz.
    pub frequency_hz: f64,
    /// Ground-station figure of merit G/T, dB/K.
    pub station_g_over_t_db: f64,
    /// Required Eb/N0 including implementation margin, dB.
    pub required_eb_n0_db: f64,
    /// Modem/allocation rate cap, bits/s.
    pub max_rate_bps: f64,
}

impl RadioLink {
    /// A Landsat-class X-band downlink: 8.2 GHz, 384 Mb/s cap, with RF
    /// parameters placing the rate knee around 15-20 degrees elevation.
    pub fn landsat_x_band() -> RadioLink {
        RadioLink {
            eirp_dbw: 12.0,
            frequency_hz: 8.2e9,
            station_g_over_t_db: 22.0,
            required_eb_n0_db: 4.4,
            max_rate_bps: 384.0e6,
        }
    }

    /// A cubesat S-band downlink: 2.2 GHz, 10 Mb/s cap, modest EIRP.
    pub fn cubesat_s_band() -> RadioLink {
        RadioLink {
            eirp_dbw: 3.0,
            frequency_hz: 2.2e9,
            station_g_over_t_db: 15.0,
            required_eb_n0_db: 4.4,
            max_rate_bps: 10.0e6,
        }
    }

    /// Slant range in meters from a ground station to a satellite at
    /// `altitude_m`, seen at elevation `elevation_rad`.
    ///
    /// The geometric formula is only meaningful for elevations in
    /// `[0, pi/2]`; inputs outside that interval are clamped to it.
    /// Callers feeding raw propagator output can therefore pass slightly
    /// negative (below-horizon) or slightly-past-vertical angles from
    /// floating-point jitter without aborting — this used to `assert!`
    /// and panic, which is unacceptable in the unattended runtime path.
    pub fn slant_range_m(elevation_rad: f64, altitude_m: f64) -> f64 {
        let elevation_rad = elevation_rad.clamp(0.0, std::f64::consts::FRAC_PI_2);
        let re = EARTH_RADIUS_MEAN;
        let r_orbit = re + altitude_m;
        let cos_e = elevation_rad.cos();
        let sin_e = elevation_rad.sin();
        (r_orbit * r_orbit - (re * cos_e).powi(2)).sqrt() - re * sin_e
    }

    /// Free-space path loss in dB over `range_m` at this link's
    /// frequency.
    pub fn free_space_path_loss_db(&self, range_m: f64) -> f64 {
        20.0 * (range_m).log10() + 20.0 * self.frequency_hz.log10() - 147.55
    }

    /// Achievable information rate at an elevation, bits/s, capped by the
    /// modem rate.
    ///
    /// Domain: any finite elevation. Below-horizon elevations
    /// (`elevation_rad <= 0`) cannot close the link and return exactly 0;
    /// elevations past vertical are clamped to `pi/2` by
    /// [`RadioLink::slant_range_m`].
    pub fn achievable_rate_bps(&self, elevation_rad: f64, altitude_m: f64) -> f64 {
        self.achievable_rate_bps_faded(elevation_rad, altitude_m, 0.0)
    }

    /// [`RadioLink::achievable_rate_bps`] with an additional link-budget
    /// penalty of `fade_db` decibels (e.g. rain fade). A fade of 0 dB is
    /// exactly the clear-sky rate; 10 dB costs one order of magnitude of
    /// rate wherever the modem cap is not binding.
    pub fn achievable_rate_bps_faded(
        &self,
        elevation_rad: f64,
        altitude_m: f64,
        fade_db: f64,
    ) -> f64 {
        if elevation_rad <= 0.0 {
            return 0.0;
        }
        let range = RadioLink::slant_range_m(elevation_rad, altitude_m);
        let fspl = self.free_space_path_loss_db(range);
        let rate_db_hz = self.eirp_dbw + self.station_g_over_t_db - fspl
            - BOLTZMANN_DBW
            - self.required_eb_n0_db
            - fade_db.max(0.0);
        let rate = 10f64.powf(rate_db_hz / 10.0);
        rate.min(self.max_rate_bps)
    }

    /// Integrates capacity over a pass described by a sequence of
    /// `(elevation_rad, dwell_seconds)` samples.
    pub fn pass_capacity_bits<I>(&self, samples: I, altitude_m: f64) -> f64
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        samples
            .into_iter()
            .map(|(el, dt)| self.achievable_rate_bps(el.max(0.0), altitude_m) * dt)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slant_range_geometry() {
        // Straight overhead: range equals altitude.
        let overhead = RadioLink::slant_range_m(std::f64::consts::FRAC_PI_2, 705_000.0);
        assert!((overhead - 705_000.0).abs() < 1.0);
        // At the horizon the range is much longer.
        let horizon = RadioLink::slant_range_m(0.0, 705_000.0);
        assert!(horizon > 2_500_000.0, "horizon range {horizon}");
        // Monotone decreasing with elevation.
        let mut prev = horizon;
        for deg in (5..=90).step_by(5) {
            let r = RadioLink::slant_range_m((deg as f64).to_radians(), 705_000.0);
            assert!(r < prev);
            prev = r;
        }
    }

    #[test]
    fn fspl_grows_with_range_and_frequency() {
        let link = RadioLink::landsat_x_band();
        assert!(link.free_space_path_loss_db(2e6) > link.free_space_path_loss_db(1e6));
        let s_band = RadioLink::cubesat_s_band();
        assert!(
            link.free_space_path_loss_db(1e6) > s_band.free_space_path_loss_db(1e6),
            "X band should lose more than S band over the same range"
        );
    }

    #[test]
    fn fspl_magnitude_is_textbook() {
        // 8.2 GHz over 1000 km is about 170.7 dB.
        let link = RadioLink::landsat_x_band();
        let fspl = link.free_space_path_loss_db(1.0e6);
        assert!((fspl - 170.7).abs() < 0.5, "fspl = {fspl}");
    }

    #[test]
    fn rate_is_monotone_in_elevation_and_capped() {
        let link = RadioLink::landsat_x_band();
        let mut prev = 0.0;
        for deg in 1..=90 {
            let rate = link.achievable_rate_bps((deg as f64).to_radians(), 705_000.0);
            assert!(rate >= prev - 1e-6, "rate dipped at {deg} deg");
            assert!(rate <= link.max_rate_bps + 1e-6);
            prev = rate;
        }
        // High passes reach the modem cap.
        assert!(
            (link.achievable_rate_bps(80f64.to_radians(), 705_000.0) - link.max_rate_bps)
                .abs()
                < 1.0
        );
    }

    #[test]
    fn low_elevation_passes_lose_rate() {
        let link = RadioLink::landsat_x_band();
        let low = link.achievable_rate_bps(5f64.to_radians(), 705_000.0);
        assert!(
            low < link.max_rate_bps,
            "5-degree rate {low} should be below the cap"
        );
        assert!(low > 0.0);
    }

    #[test]
    fn pass_capacity_integrates_samples() {
        let link = RadioLink::landsat_x_band();
        // A symmetric pass rising to 30 degrees.
        let samples = [(5.0f64, 60.0), (15.0, 60.0), (30.0, 60.0), (15.0, 60.0), (5.0, 60.0)];
        let bits = link.pass_capacity_bits(
            samples.iter().map(|&(d, t)| (d.to_radians(), t)),
            705_000.0,
        );
        assert!(bits > 0.0);
        assert!(bits <= link.max_rate_bps * 300.0);
    }

    #[test]
    fn zero_elevation_cannot_close() {
        let link = RadioLink::cubesat_s_band();
        assert_eq!(link.achievable_rate_bps(0.0, 500_000.0), 0.0);
    }

    #[test]
    fn below_horizon_elevations_degrade_instead_of_panicking() {
        // Regression: slant_range_m used to assert on elevations outside
        // [0, pi/2], so raw propagator output with a slightly negative
        // elevation aborted the process. Now the geometry clamps.
        let horizon = RadioLink::slant_range_m(0.0, 705_000.0);
        assert_eq!(RadioLink::slant_range_m(-0.01, 705_000.0), horizon);
        let overhead = RadioLink::slant_range_m(std::f64::consts::FRAC_PI_2, 705_000.0);
        assert_eq!(
            RadioLink::slant_range_m(std::f64::consts::FRAC_PI_2 + 0.01, 705_000.0),
            overhead
        );
        // And the rate for anything at or below the horizon is exactly 0.
        let link = RadioLink::landsat_x_band();
        for deg in [-30.0, -5.0, -0.001, 0.0] {
            assert_eq!(
                link.achievable_rate_bps((deg as f64).to_radians(), 705_000.0),
                0.0,
                "{deg} deg should not close the link"
            );
        }
    }

    #[test]
    fn rain_fade_costs_rate_where_the_cap_is_not_binding() {
        let link = RadioLink::landsat_x_band();
        let el = 5f64.to_radians();
        let clear = link.achievable_rate_bps(el, 705_000.0);
        assert_eq!(link.achievable_rate_bps_faded(el, 705_000.0, 0.0), clear);
        let faded = link.achievable_rate_bps_faded(el, 705_000.0, 10.0);
        assert!(faded < clear, "10 dB fade must reduce the rate");
        assert!(
            (faded * 10.0 - clear).abs() / clear < 1e-9,
            "10 dB is one order of magnitude below the cap"
        );
        // Negative fades are treated as clear sky, not a gain.
        assert_eq!(link.achievable_rate_bps_faded(el, 705_000.0, -3.0), clear);
        // Below the horizon fading is moot: still zero.
        assert_eq!(link.achievable_rate_bps_faded(-0.1, 705_000.0, 3.0), 0.0);
    }
}
