//! Keplerian orbits and sun-synchronous orbit design.

use crate::bodies::{sun_synchronous_node_rate, EARTH_J2, EARTH_MU, EARTH_RADIUS_EQ};
use crate::time::{Duration, Epoch};
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;
use std::fmt;

/// Classical Keplerian orbital elements at a reference epoch.
///
/// Angles are in radians; the semi-major axis is in meters. Together with
/// [`crate::propagate::propagate`] this fully determines satellite position
/// at any simulated time.
///
/// # Example
///
/// ```
/// use kodan_cote::orbit::Orbit;
/// let orbit = Orbit::sun_synchronous(705_000.0);
/// // Landsat-8's published inclination is ~98.2 degrees.
/// assert!((orbit.elements().inclination.to_degrees() - 98.2).abs() < 0.2);
/// assert!((orbit.period().as_minutes() - 98.8).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeplerianElements {
    /// Semi-major axis, meters.
    pub semi_major_axis: f64,
    /// Eccentricity (0 = circular).
    pub eccentricity: f64,
    /// Inclination, radians.
    pub inclination: f64,
    /// Right ascension of the ascending node, radians.
    pub raan: f64,
    /// Argument of perigee, radians.
    pub arg_perigee: f64,
    /// Mean anomaly at the reference epoch, radians.
    pub mean_anomaly: f64,
}

/// An orbit: Keplerian elements pinned to a reference epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Orbit {
    elements: KeplerianElements,
    epoch: Epoch,
}

impl Orbit {
    /// Creates an orbit from explicit elements at a reference epoch.
    ///
    /// # Panics
    ///
    /// Panics if the semi-major axis is not strictly positive or the
    /// eccentricity is outside `[0, 1)`.
    pub fn new(elements: KeplerianElements, epoch: Epoch) -> Orbit {
        assert!(
            elements.semi_major_axis > 0.0,
            "semi-major axis must be positive"
        );
        assert!(
            (0.0..1.0).contains(&elements.eccentricity),
            "eccentricity must be in [0, 1) for a closed orbit"
        );
        Orbit { elements, epoch }
    }

    /// A circular sun-synchronous orbit at the given altitude (meters above
    /// the equatorial radius), starting at the default mission epoch.
    ///
    /// The inclination is solved so that J2 nodal regression matches one
    /// revolution per tropical year. Landsat 8 (705 km) yields ~98.2 deg.
    pub fn sun_synchronous(altitude_m: f64) -> Orbit {
        Orbit::sun_synchronous_at(altitude_m, Epoch::mission_start())
    }

    /// Like [`Orbit::sun_synchronous`] with an explicit reference epoch.
    ///
    /// # Panics
    ///
    /// Panics if no sun-synchronous inclination exists at this altitude
    /// (altitudes above roughly 6000 km).
    pub fn sun_synchronous_at(altitude_m: f64, epoch: Epoch) -> Orbit {
        let a = EARTH_RADIUS_EQ + altitude_m;
        let cos_i = -sun_synchronous_node_rate() * 2.0 * a.powf(3.5)
            / (3.0 * EARTH_J2 * EARTH_MU.sqrt() * EARTH_RADIUS_EQ * EARTH_RADIUS_EQ);
        assert!(
            cos_i.abs() <= 1.0,
            "no sun-synchronous inclination exists at altitude {altitude_m} m"
        );
        Orbit::new(
            KeplerianElements {
                semi_major_axis: a,
                eccentricity: 0.0,
                inclination: cos_i.acos(),
                raan: 0.0,
                arg_perigee: 0.0,
                mean_anomaly: 0.0,
            },
            epoch,
        )
    }

    /// A circular orbit at a given altitude and inclination (radians).
    pub fn circular(altitude_m: f64, inclination: f64, epoch: Epoch) -> Orbit {
        Orbit::new(
            KeplerianElements {
                semi_major_axis: EARTH_RADIUS_EQ + altitude_m,
                eccentricity: 0.0,
                inclination,
                raan: 0.0,
                arg_perigee: 0.0,
                mean_anomaly: 0.0,
            },
            epoch,
        )
    }

    /// The orbital elements at the reference epoch.
    pub fn elements(&self) -> &KeplerianElements {
        &self.elements
    }

    /// The reference epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Returns a copy with the RAAN shifted by `delta` radians. Used to
    /// spread constellation planes.
    pub fn with_raan(mut self, raan: f64) -> Orbit {
        self.elements.raan = raan.rem_euclid(TAU);
        self
    }

    /// Returns a copy with the mean anomaly shifted to `m` radians. Used to
    /// phase satellites within a plane.
    pub fn with_mean_anomaly(mut self, m: f64) -> Orbit {
        self.elements.mean_anomaly = m.rem_euclid(TAU);
        self
    }

    /// Mean motion, rad/s (two-body).
    pub fn mean_motion(&self) -> f64 {
        (EARTH_MU / self.elements.semi_major_axis.powi(3)).sqrt()
    }

    /// Orbital period (two-body Keplerian).
    pub fn period(&self) -> Duration {
        Duration::from_seconds(TAU / self.mean_motion())
    }

    /// Altitude above the equatorial radius for a circular orbit, meters.
    pub fn altitude(&self) -> f64 {
        self.elements.semi_major_axis * (1.0 - self.elements.eccentricity) - EARTH_RADIUS_EQ
    }

    /// Inertial orbital speed for a circular orbit, m/s.
    pub fn orbital_speed(&self) -> f64 {
        (EARTH_MU / self.elements.semi_major_axis).sqrt()
    }

    /// Speed of the sub-satellite point over the ground, m/s.
    ///
    /// For a circular LEO orbit the ground-track point sweeps the mean
    /// Earth radius at the orbital angular rate; Earth's own rotation is a
    /// second-order correction for near-polar orbits and is neglected.
    pub fn ground_speed(&self) -> f64 {
        self.mean_motion() * crate::bodies::EARTH_RADIUS_MEAN
    }
}

impl fmt::Display for Orbit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "orbit(a={:.1} km, e={:.4}, i={:.2} deg, raan={:.2} deg)",
            self.elements.semi_major_axis / 1000.0,
            self.elements.eccentricity,
            self.elements.inclination.to_degrees(),
            self.elements.raan.to_degrees()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn landsat_like_period_and_inclination() {
        let orbit = Orbit::sun_synchronous(705_000.0);
        assert!((orbit.period().as_minutes() - 98.8).abs() < 0.5);
        assert!((orbit.elements().inclination.to_degrees() - 98.2).abs() < 0.2);
    }

    #[test]
    fn iss_like_period() {
        let orbit = Orbit::circular(420_000.0, 51.6f64.to_radians(), Epoch::mission_start());
        assert!((orbit.period().as_minutes() - 92.8).abs() < 0.6);
    }

    #[test]
    fn ground_speed_for_landsat_altitude() {
        let orbit = Orbit::sun_synchronous(705_000.0);
        // Published Landsat-8 ground velocity is ~6.7-6.8 km/s.
        let gs = orbit.ground_speed();
        assert!((6500.0..7000.0).contains(&gs), "ground speed = {gs}");
    }

    #[test]
    fn raan_and_phase_builders_normalize() {
        let orbit = Orbit::sun_synchronous(705_000.0)
            .with_raan(3.0 * TAU + 0.5)
            .with_mean_anomaly(-0.5);
        assert!((orbit.elements().raan - 0.5).abs() < 1e-12);
        assert!((orbit.elements().mean_anomaly - (TAU - 0.5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "eccentricity")]
    fn rejects_hyperbolic_orbits() {
        let mut el = *Orbit::sun_synchronous(705_000.0).elements();
        el.eccentricity = 1.5;
        let _ = Orbit::new(el, Epoch::mission_start());
    }

    #[test]
    fn altitude_round_trips() {
        let orbit = Orbit::sun_synchronous(600_000.0);
        assert!((orbit.altitude() - 600_000.0).abs() < 1e-6);
    }
}
