//! Orbit propagation: two-body motion with J2 secular perturbations.
//!
//! The propagator applies the standard first-order secular J2 drift rates to
//! the node, argument of perigee and mean anomaly, solves Kepler's equation,
//! and rotates the perifocal state into ECI. This captures the effects that
//! matter at day scale for Earth observation — nodal regression (which makes
//! sun-synchronous orbits work) and the ground-track walk — without the
//! complexity of a full SGP4 implementation.

use crate::bodies::{EARTH_J2, EARTH_RADIUS_EQ};
use crate::coords::{ecef_to_geodetic, eci_to_ecef, Geodetic};
use crate::orbit::Orbit;
use crate::time::Epoch;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// Position and velocity in the ECI frame, meters and meters/second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateVector {
    /// ECI position, meters.
    pub position: Vec3,
    /// ECI velocity, meters/second.
    pub velocity: Vec3,
}

/// Solves Kepler's equation `E - e sin E = M` for the eccentric anomaly
/// using Newton iteration.
///
/// Converges quadratically for elliptical orbits; for the near-circular
/// orbits this simulator deals in, 3-4 iterations reach machine precision.
pub fn solve_kepler(mean_anomaly: f64, eccentricity: f64) -> f64 {
    let m = mean_anomaly.rem_euclid(TAU);
    let mut e_anom = if eccentricity < 0.8 { m } else { std::f64::consts::PI };
    for _ in 0..30 {
        let f = e_anom - eccentricity * e_anom.sin() - m;
        let fp = 1.0 - eccentricity * e_anom.cos();
        let delta = f / fp;
        e_anom -= delta;
        if delta.abs() < 1e-14 {
            break;
        }
    }
    e_anom
}

/// J2 secular rates (radians/second) for an orbit: `(raan_dot,
/// arg_perigee_dot, mean_anomaly_dot_correction)`.
pub fn j2_secular_rates(orbit: &Orbit) -> (f64, f64, f64) {
    let el = orbit.elements();
    let n = orbit.mean_motion();
    let p = el.semi_major_axis * (1.0 - el.eccentricity * el.eccentricity);
    let factor = 1.5 * EARTH_J2 * (EARTH_RADIUS_EQ / p).powi(2) * n;
    let cos_i = el.inclination.cos();
    let sin2_i = el.inclination.sin().powi(2);
    let sqrt_1me2 = (1.0 - el.eccentricity * el.eccentricity).sqrt();
    let raan_dot = -factor * cos_i;
    let argp_dot = factor * (2.0 - 2.5 * sin2_i);
    let m_dot_corr = factor * sqrt_1me2 * (1.0 - 1.5 * sin2_i);
    (raan_dot, argp_dot, m_dot_corr)
}

/// Propagates an orbit to `epoch`, returning the ECI state vector.
pub fn propagate(orbit: &Orbit, epoch: Epoch) -> StateVector {
    let el = orbit.elements();
    let dt = (epoch - orbit.epoch()).as_seconds();
    let n = orbit.mean_motion();
    let (raan_dot, argp_dot, m_dot_corr) = j2_secular_rates(orbit);

    let raan = el.raan + raan_dot * dt;
    let argp = el.arg_perigee + argp_dot * dt;
    let m = el.mean_anomaly + (n + m_dot_corr) * dt;

    let e_anom = solve_kepler(m, el.eccentricity);
    let (sin_e, cos_e) = e_anom.sin_cos();
    let a = el.semi_major_axis;
    let ecc = el.eccentricity;
    let r_mag = a * (1.0 - ecc * cos_e);

    // Perifocal position and velocity.
    let sqrt_1me2 = (1.0 - ecc * ecc).sqrt();
    let x_p = a * (cos_e - ecc);
    let y_p = a * sqrt_1me2 * sin_e;
    let vx = -(n * a * a / r_mag) * sin_e;
    let vy = (n * a * a / r_mag) * sqrt_1me2 * cos_e;

    let pos = perifocal_to_eci(Vec3::new(x_p, y_p, 0.0), raan, el.inclination, argp);
    let vel = perifocal_to_eci(Vec3::new(vx, vy, 0.0), raan, el.inclination, argp);
    StateVector {
        position: pos,
        velocity: vel,
    }
}

/// Rotates a perifocal-frame vector into ECI through the classical 3-1-3
/// rotation (RAAN about Z, inclination about X, argument of perigee about Z).
fn perifocal_to_eci(v: Vec3, raan: f64, inclination: f64, arg_perigee: f64) -> Vec3 {
    v.rotated_z(arg_perigee)
        .rotated_x(inclination)
        .rotated_z(raan)
}

/// The sub-satellite (ground-track) point at `epoch`.
pub fn ground_track_point(orbit: &Orbit, epoch: Epoch) -> Geodetic {
    let state = propagate(orbit, epoch);
    let ecef = eci_to_ecef(state.position, epoch);
    ecef_to_geodetic(ecef)
}

/// Satellite ECEF position in meters at `epoch`.
pub fn position_ecef(orbit: &Orbit, epoch: Epoch) -> Vec3 {
    let state = propagate(orbit, epoch);
    eci_to_ecef(state.position, epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn landsat() -> Orbit {
        Orbit::sun_synchronous(705_000.0)
    }

    #[test]
    fn kepler_solver_circular_is_identity() {
        for m in [0.0, 0.5, 1.0, 3.0, 6.0] {
            assert!((solve_kepler(m, 0.0) - m.rem_euclid(TAU)).abs() < 1e-12);
        }
    }

    #[test]
    fn kepler_solver_satisfies_equation() {
        for &(m, e) in &[(0.3, 0.1), (2.0, 0.5), (5.5, 0.8), (1.0, 0.95)] {
            let ea = solve_kepler(m, e);
            let recovered = ea - e * ea.sin();
            assert!(
                (recovered - m.rem_euclid(TAU)).abs() < 1e-10,
                "m={m} e={e}"
            );
        }
    }

    #[test]
    fn propagated_radius_matches_semi_major_axis() {
        let orbit = landsat();
        for h in [0.0, 0.3, 1.7, 12.0] {
            let state = propagate(&orbit, orbit.epoch() + Duration::from_hours(h));
            let r = state.position.norm();
            assert!(
                (r - orbit.elements().semi_major_axis).abs() < 1.0,
                "radius {r} at {h} h"
            );
        }
    }

    #[test]
    fn velocity_is_orthogonal_to_position_for_circular_orbit() {
        let orbit = landsat();
        let state = propagate(&orbit, orbit.epoch() + Duration::from_minutes(17.0));
        let cos_angle =
            state.position.dot(state.velocity) / (state.position.norm() * state.velocity.norm());
        assert!(cos_angle.abs() < 1e-6);
    }

    #[test]
    fn speed_matches_circular_orbit_speed() {
        let orbit = landsat();
        let state = propagate(&orbit, orbit.epoch() + Duration::from_minutes(42.0));
        assert!((state.velocity.norm() - orbit.orbital_speed()).abs() < 1.0);
    }

    #[test]
    fn orbit_returns_to_start_after_one_period() {
        let orbit = landsat();
        let s0 = propagate(&orbit, orbit.epoch());
        let s1 = propagate(&orbit, orbit.epoch() + orbit.period());
        // J2 drifts the node, perigee and mean anomaly during one
        // revolution; the combined displacement is tens of kilometers —
        // small relative to the 7000 km orbit radius.
        let drift = s0.position.distance(s1.position);
        assert!(drift < 150_000.0, "drift = {drift} m");
        assert!(drift < 0.03 * orbit.elements().semi_major_axis);
    }

    #[test]
    fn sun_sync_node_precesses_about_one_degree_per_day() {
        let orbit = landsat();
        let (raan_dot, _, _) = j2_secular_rates(&orbit);
        let deg_per_day = raan_dot.to_degrees() * 86_400.0;
        assert!(
            (deg_per_day - 0.9856).abs() < 0.02,
            "node rate = {deg_per_day} deg/day"
        );
    }

    #[test]
    fn ground_track_latitude_bounded_by_inclination() {
        let orbit = landsat();
        let max_lat = std::f64::consts::PI - orbit.elements().inclination; // retrograde
        let mut seen_max: f64 = 0.0;
        for i in 0..200 {
            let t = orbit.epoch() + Duration::from_minutes(i as f64);
            let g = ground_track_point(&orbit, t);
            seen_max = seen_max.max(g.latitude.abs());
            assert!(g.latitude.abs() <= max_lat + 0.05);
        }
        // A polar orbit must actually reach high latitudes.
        assert!(seen_max.to_degrees() > 75.0);
    }

    #[test]
    fn ground_track_covers_many_longitudes_per_day() {
        let orbit = landsat();
        let mut buckets = [false; 24];
        for i in 0..1440 {
            let t = orbit.epoch() + Duration::from_minutes(i as f64);
            let g = ground_track_point(&orbit, t);
            let idx = (((g.longitude_deg() + 180.0) / 15.0) as usize).min(23);
            buckets[idx] = true;
        }
        let covered = buckets.iter().filter(|b| **b).count();
        assert!(covered >= 20, "covered {covered}/24 longitude buckets");
    }

    #[test]
    fn altitude_stays_near_nominal() {
        let orbit = landsat();
        for i in 0..50 {
            let t = orbit.epoch() + Duration::from_minutes(i as f64 * 3.0);
            let g = ground_track_point(&orbit, t);
            // Geodetic altitude varies with Earth oblateness (up to ~21 km).
            assert!(
                (680_000.0..=730_000.0).contains(&g.altitude),
                "altitude {} at step {i}",
                g.altitude
            );
        }
    }
}
