//! Imaging sensors, frame capture and the frame deadline.
//!
//! An Earth-observation satellite captures an image *frame* each time its
//! ground track sweeps one frame length. The time between captures is the
//! **frame deadline**: an on-orbit data processing system must finish one
//! frame before the next arrives or fall behind (the paper's computational
//! bottleneck, Section 2).

use crate::orbit::Orbit;
use crate::propagate::ground_track_point;
use crate::time::{Duration, Epoch};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An imaging payload.
///
/// # Example
///
/// ```
/// use kodan_cote::sensor::Imager;
/// use kodan_cote::orbit::Orbit;
/// let imager = Imager::landsat_oli();
/// let orbit = Orbit::sun_synchronous(705_000.0);
/// let deadline = imager.frame_deadline(&orbit);
/// // Landsat-class frames arrive every ~20-30 s.
/// assert!((15.0..35.0).contains(&deadline.as_seconds()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Imager {
    /// Along-track frame length on the ground, meters.
    frame_length_m: f64,
    /// Cross-track swath width, meters.
    swath_m: f64,
    /// Frame dimension in pixels (frames are square: `px` x `px`).
    frame_px: u32,
    /// Bits per pixel across all spectral bands.
    bits_per_pixel: u32,
}

impl Imager {
    /// Creates an imager.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or negative.
    pub fn new(frame_length_m: f64, swath_m: f64, frame_px: u32, bits_per_pixel: u32) -> Imager {
        assert!(frame_length_m > 0.0, "frame length must be positive");
        assert!(swath_m > 0.0, "swath must be positive");
        assert!(frame_px > 0, "frame must have pixels");
        assert!(bits_per_pixel > 0, "pixels must have bits");
        Imager {
            frame_length_m,
            swath_m,
            frame_px,
            bits_per_pixel,
        }
    }

    /// A Landsat-8 OLI-like imager: 185 km x 180 km scenes, ~10K x 10K
    /// pixels, 11 bands at 12 bits packed into 132 bits/pixel. This yields
    /// the paper's "hyperspectral, 10K image frames" and a ~22 s frame
    /// deadline at the Landsat orbit.
    pub fn landsat_oli() -> Imager {
        Imager::new(150_000.0, 185_000.0, 10_000, 132)
    }

    /// A small-sat multispectral imager (Dove-like): 25 km frames,
    /// 4K pixels, 4 bands x 12 bits.
    pub fn dove_like() -> Imager {
        Imager::new(25_000.0, 25_000.0, 4_000, 48)
    }

    /// Along-track frame length, meters.
    pub fn frame_length_m(&self) -> f64 {
        self.frame_length_m
    }

    /// Cross-track swath, meters.
    pub fn swath_m(&self) -> f64 {
        self.swath_m
    }

    /// Frame dimension in pixels.
    pub fn frame_px(&self) -> u32 {
        self.frame_px
    }

    /// Ground sample distance, meters/pixel (along-track).
    pub fn gsd_m(&self) -> f64 {
        self.frame_length_m / f64::from(self.frame_px)
    }

    /// Raw size of one frame in bits.
    pub fn frame_bits(&self) -> f64 {
        f64::from(self.frame_px) * f64::from(self.frame_px) * f64::from(self.bits_per_pixel)
    }

    /// The frame deadline for this imager on a given orbit: the time for
    /// the sub-satellite point to sweep one frame length.
    pub fn frame_deadline(&self, orbit: &Orbit) -> Duration {
        Duration::from_seconds(self.frame_length_m / orbit.ground_speed())
    }

    /// Number of frames captured over `span` on a given orbit, assuming
    /// continuous imaging.
    pub fn frames_in(&self, orbit: &Orbit, span: Duration) -> u64 {
        (span / self.frame_deadline(orbit)).floor() as u64
    }
}

impl fmt::Display for Imager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "imager({:.0} km frames, {} px, {:.1} m GSD)",
            self.frame_length_m / 1000.0,
            self.frame_px,
            self.gsd_m()
        )
    }
}

/// A captured frame: when and where a satellite imaged the ground.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameCapture {
    /// Index of the capturing satellite within its constellation.
    pub satellite: usize,
    /// Capture time.
    pub epoch: Epoch,
    /// Sub-satellite point at capture time.
    pub center: crate::coords::Geodetic,
    /// Frame sequence number for this satellite (0-based).
    pub sequence: u64,
}

/// Generates the frame-capture schedule for one satellite over a horizon:
/// one capture per frame deadline, tagged with the ground-track point.
pub fn capture_schedule(
    orbit: &Orbit,
    imager: &Imager,
    satellite: usize,
    horizon: Duration,
) -> Vec<FrameCapture> {
    let deadline = imager.frame_deadline(orbit);
    let count = (horizon / deadline).floor() as u64;
    (0..count)
        .map(|i| {
            let epoch = orbit.epoch() + deadline * (i as f64);
            FrameCapture {
                satellite,
                epoch,
                center: ground_track_point(orbit, epoch),
                sequence: i,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn landsat_deadline_is_about_22_seconds() {
        let imager = Imager::landsat_oli();
        let orbit = Orbit::sun_synchronous(705_000.0);
        let d = imager.frame_deadline(&orbit).as_seconds();
        assert!((20.0..26.0).contains(&d), "deadline = {d} s");
    }

    #[test]
    fn landsat_gsd_is_15m_class() {
        let imager = Imager::landsat_oli();
        assert!((10.0..20.0).contains(&imager.gsd_m()));
    }

    #[test]
    fn frame_bits_are_gigabit_class() {
        let imager = Imager::landsat_oli();
        let gbits = imager.frame_bits() / 1e9;
        assert!((1.0..30.0).contains(&gbits), "frame = {gbits} Gbit");
    }

    #[test]
    fn frames_per_day_near_3600() {
        let imager = Imager::landsat_oli();
        let orbit = Orbit::sun_synchronous(705_000.0);
        let frames = imager.frames_in(&orbit, Duration::from_days(1.0));
        // The paper quotes "nearly 3600 observable frames" per day.
        assert!(
            (3200..4400).contains(&frames),
            "frames per day = {frames}"
        );
    }

    #[test]
    fn capture_schedule_is_uniformly_spaced() {
        let imager = Imager::landsat_oli();
        let orbit = Orbit::sun_synchronous(705_000.0);
        let schedule = capture_schedule(&orbit, &imager, 0, Duration::from_hours(1.0));
        assert!(schedule.len() > 100);
        let deadline = imager.frame_deadline(&orbit);
        for pair in schedule.windows(2) {
            let gap = pair[1].epoch - pair[0].epoch;
            assert!((gap.as_seconds() - deadline.as_seconds()).abs() < 1e-9);
            assert_eq!(pair[1].sequence, pair[0].sequence + 1);
        }
    }

    #[test]
    fn capture_centers_move_along_track() {
        let imager = Imager::landsat_oli();
        let orbit = Orbit::sun_synchronous(705_000.0);
        let schedule = capture_schedule(&orbit, &imager, 0, Duration::from_minutes(10.0));
        for pair in schedule.windows(2) {
            let d = pair[0].center.great_circle_distance(&pair[1].center);
            // Should be about one frame length apart.
            assert!(
                (d - imager.frame_length_m()).abs() < 0.15 * imager.frame_length_m(),
                "consecutive centers {d} m apart"
            );
        }
    }

    #[test]
    #[should_panic(expected = "frame length")]
    fn rejects_zero_frame() {
        let _ = Imager::new(0.0, 1.0, 1, 1);
    }
}
