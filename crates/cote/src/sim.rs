//! Day-scale space-segment simulation with ground-station contention.
//!
//! This module answers the space-networking questions behind the paper's
//! motivation figures: how many frames does a constellation *observe*, and
//! how many can it *downlink*, as the ground segment saturates?
//!
//! Each ground station serves one satellite at a time. Overlapping contact
//! windows are resolved first-come-first-served: a satellite keeps a
//! station until its pass ends, and later arrivals get whatever remains of
//! their own window. As constellation population grows, stations approach
//! 100 % utilization and total downlinked data saturates — the paper's
//! *downlink bottleneck* (Figure 2).

use crate::constellation::Constellation;
use crate::ground::GroundSegment;
use crate::link::{contact_windows, ContactWindow};
use crate::sensor::Imager;
use crate::time::{Duration, Epoch};
use serde::{Deserialize, Serialize};

/// A contention-resolved downlink pass: the interval a station actually
/// spends serving one satellite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServedPass {
    /// Satellite index within the constellation.
    pub satellite: usize,
    /// Station index within the ground segment.
    pub station: usize,
    /// Service start (>= geometric rise time).
    pub start: Epoch,
    /// Service end.
    pub end: Epoch,
    /// Sustained rate during service, bits/second.
    pub rate_bps: f64,
}

impl ServedPass {
    /// Service duration.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// Bits deliverable during this pass.
    pub fn bits(&self) -> f64 {
        self.duration().as_seconds() * self.rate_bps
    }

    /// This pass truncated to the leading `keep_fraction` of its duration
    /// (clamped to `[0, 1]`). Models a contact cut short by a station
    /// fault or early loss of signal.
    pub fn shortened(&self, keep_fraction: f64) -> ServedPass {
        let keep = keep_fraction.clamp(0.0, 1.0);
        ServedPass {
            end: self.start + self.duration() * keep,
            ..self.clone()
        }
    }

    /// This pass at a different sustained rate (e.g. after rain fade).
    pub fn with_rate(&self, rate_bps: f64) -> ServedPass {
        ServedPass {
            rate_bps: rate_bps.max(0.0),
            ..self.clone()
        }
    }
}

/// Aggregate result of a space-segment simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceSegmentReport {
    /// Simulation horizon.
    pub horizon: Duration,
    /// Frame deadline for the constellation's (shared) imager and orbit.
    pub frame_deadline: Duration,
    /// Frames observed per satellite over the horizon.
    pub frames_seen_per_satellite: u64,
    /// Total frames observed across the constellation.
    pub frames_seen_total: u64,
    /// Contention-resolved passes.
    pub passes: Vec<ServedPass>,
    /// Total downlink capacity across all passes, bits.
    pub capacity_bits: f64,
    /// Raw bits per frame for the imager.
    pub frame_bits: f64,
}

impl SpaceSegmentReport {
    /// Whole raw frames that fit into the downlink capacity.
    pub fn frames_downlinkable(&self) -> u64 {
        (self.capacity_bits / self.frame_bits).floor() as u64
    }

    /// Per-satellite downlink capacity in bits.
    pub fn capacity_bits_for(&self, satellite: usize) -> f64 {
        self.passes
            .iter()
            .filter(|p| p.satellite == satellite)
            .map(ServedPass::bits)
            .sum()
    }

    /// Fraction of observed frames that can be downlinked raw.
    pub fn downlink_fraction(&self) -> f64 {
        if self.frames_seen_total == 0 {
            return 0.0;
        }
        (self.frames_downlinkable() as f64 / self.frames_seen_total as f64).min(1.0)
    }
}

/// Simulates a constellation against a ground segment over `horizon`.
///
/// All satellites carry the same `imager`. Contact windows are computed per
/// satellite, then merged per station with first-come-first-served
/// contention resolution.
pub fn simulate_space_segment(
    constellation: &Constellation,
    imager: &Imager,
    segment: &GroundSegment,
    horizon: Duration,
) -> SpaceSegmentReport {
    let orbits = constellation.orbits();
    let frame_deadline = imager.frame_deadline(&orbits[0]);
    let frames_seen_per_satellite = imager.frames_in(&orbits[0], horizon);

    // Collect geometric windows across all satellites.
    let mut geometric: Vec<(usize, ContactWindow)> = Vec::new();
    for (sat_idx, orbit) in orbits.iter().enumerate() {
        for w in contact_windows(orbit, segment, horizon) {
            geometric.push((sat_idx, w));
        }
    }

    let passes = resolve_contention(&mut geometric, segment.len());
    let capacity_bits = passes.iter().map(ServedPass::bits).sum();

    SpaceSegmentReport {
        horizon,
        frame_deadline,
        frames_seen_per_satellite,
        frames_seen_total: frames_seen_per_satellite * orbits.len() as u64,
        passes,
        capacity_bits,
        frame_bits: imager.frame_bits(),
    }
}

/// First-come-first-served allocation of station time to satellites.
///
/// Windows are sorted by rise time per station. Each window is served from
/// `max(rise, station_free_at)` to its set time; windows fully shadowed by
/// an earlier pass are dropped.
fn resolve_contention(
    geometric: &mut [(usize, ContactWindow)],
    station_count: usize,
) -> Vec<ServedPass> {
    geometric.sort_by(|a, b| {
        a.1.start
            .partial_cmp(&b.1.start)
            .expect("epochs are finite")
    });
    let mut free_at: Vec<Option<Epoch>> = vec![None; station_count];
    let mut passes = Vec::new();
    for (sat, window) in geometric.iter() {
        let station = window.station;
        let start = match free_at[station] {
            Some(t) if t > window.start => t,
            _ => window.start,
        };
        if start < window.end {
            passes.push(ServedPass {
                satellite: *sat,
                station,
                start,
                end: window.end,
                rate_bps: window.rate_bps,
            });
            free_at[station] = Some(window.end);
        }
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orbit::Orbit;

    fn landsat_report(sats: usize, hours: f64) -> SpaceSegmentReport {
        let constellation =
            Constellation::same_plane(Orbit::sun_synchronous(705_000.0), sats);
        simulate_space_segment(
            &constellation,
            &Imager::landsat_oli(),
            &GroundSegment::landsat(),
            Duration::from_hours(hours),
        )
    }

    #[test]
    fn single_satellite_downlinks_small_fraction() {
        let report = landsat_report(1, 24.0);
        assert!(report.frames_seen_total > 3000);
        // The paper: the ground segment receives only a few percent of
        // observations for Landsat-class frames.
        let frac = report.downlink_fraction();
        assert!(frac > 0.0 && frac < 0.25, "downlink fraction = {frac}");
    }

    #[test]
    fn more_satellites_observe_proportionally_more() {
        let r1 = landsat_report(1, 6.0);
        let r4 = landsat_report(4, 6.0);
        assert_eq!(r4.frames_seen_total, 4 * r1.frames_seen_total);
    }

    #[test]
    fn capacity_grows_then_saturates() {
        let caps: Vec<f64> = [1usize, 4, 16, 48]
            .iter()
            .map(|&n| landsat_report(n, 6.0).capacity_bits)
            .collect();
        // Monotone non-decreasing...
        for pair in caps.windows(2) {
            assert!(pair[1] >= pair[0] * 0.99, "capacity decreased: {caps:?}");
        }
        // ...with diminishing returns: the 16->48 jump is proportionally far
        // smaller than the 1->4 jump.
        let early_gain = caps[1] / caps[0];
        let late_gain = caps[3] / caps[2];
        assert!(
            late_gain < early_gain,
            "no saturation: early x{early_gain:.2}, late x{late_gain:.2}"
        );
    }

    #[test]
    fn stations_never_serve_two_satellites_at_once() {
        let report = landsat_report(8, 6.0);
        for station in 0..GroundSegment::landsat().len() {
            let mut intervals: Vec<(f64, f64)> = report
                .passes
                .iter()
                .filter(|p| p.station == station)
                .map(|p| {
                    (
                        p.start.seconds_since_start(),
                        p.end.seconds_since_start(),
                    )
                })
                .collect();
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for pair in intervals.windows(2) {
                assert!(
                    pair[1].0 >= pair[0].1 - 1e-6,
                    "station {station} double-booked: {pair:?}"
                );
            }
        }
    }

    #[test]
    fn per_satellite_capacity_sums_to_total() {
        let report = landsat_report(4, 6.0);
        let sum: f64 = (0..4).map(|s| report.capacity_bits_for(s)).sum();
        assert!((sum - report.capacity_bits).abs() < 1.0);
    }

    #[test]
    fn served_passes_are_within_geometry() {
        let report = landsat_report(2, 6.0);
        for p in &report.passes {
            assert!(p.end > p.start);
            assert!(p.rate_bps > 0.0);
            assert!(p.bits() > 0.0);
        }
    }
}
