//! Simulated time: epochs and durations.
//!
//! All simulation time is expressed as seconds relative to a mission start
//! epoch. An [`Epoch`] additionally carries an offset from the J2000 epoch so
//! that Earth-rotation angles (GMST) are well-defined.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Seconds in one Julian day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// A span of simulated time, stored as seconds.
///
/// Unlike `std::time::Duration`, this type is signed and fractional: orbit
/// propagation frequently needs negative offsets (e.g. bisection around a
/// contact-window edge) and sub-second resolution.
///
/// # Example
///
/// ```
/// use kodan_cote::time::Duration;
/// let d = Duration::from_minutes(90.0);
/// assert_eq!(d.as_seconds(), 5400.0);
/// assert!(d < Duration::from_hours(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Duration(f64);

impl Duration {
    /// A zero-length duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration from seconds.
    pub fn from_seconds(seconds: f64) -> Self {
        Duration(seconds)
    }

    /// Creates a duration from minutes.
    pub fn from_minutes(minutes: f64) -> Self {
        Duration(minutes * 60.0)
    }

    /// Creates a duration from hours.
    pub fn from_hours(hours: f64) -> Self {
        Duration(hours * 3600.0)
    }

    /// Creates a duration from days (86 400 s each).
    pub fn from_days(days: f64) -> Self {
        Duration(days * SECONDS_PER_DAY)
    }

    /// This duration in seconds.
    pub fn as_seconds(self) -> f64 {
        self.0
    }

    /// This duration in minutes.
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// This duration in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// This duration in days.
    pub fn as_days(self) -> f64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Absolute value of this duration.
    pub fn abs(self) -> Duration {
        Duration(self.0.abs())
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// True if this duration is negative.
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= SECONDS_PER_DAY {
            write!(f, "{:.2} d", self.as_days())
        } else if self.0.abs() >= 3600.0 {
            write!(f, "{:.2} h", self.as_hours())
        } else if self.0.abs() >= 60.0 {
            write!(f, "{:.2} min", self.as_minutes())
        } else {
            write!(f, "{:.2} s", self.0)
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: f64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    fn div(self, rhs: f64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = f64;
    fn div(self, rhs: Duration) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Duration {
    type Output = Duration;
    fn neg(self) -> Duration {
        Duration(-self.0)
    }
}

/// An instant of simulated time.
///
/// Stored as seconds since the mission start, together with the mission
/// start's offset from the J2000 epoch (2000-01-01 12:00 TT) in days. The
/// J2000 offset anchors Earth-rotation angles; the per-mission seconds keep
/// floating-point resolution high over day-scale simulations.
///
/// # Example
///
/// ```
/// use kodan_cote::time::{Duration, Epoch};
/// let t0 = Epoch::mission_start();
/// let t1 = t0 + Duration::from_minutes(99.0);
/// assert!((t1 - t0).as_minutes() - 99.0 < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Epoch {
    /// Days from J2000 to the mission start.
    j2000_offset_days: f64,
    /// Seconds since mission start.
    seconds: f64,
}

impl Epoch {
    /// The default mission start epoch (arbitrary but fixed: ~2023-03-25,
    /// the first day of ASPLOS '23).
    pub fn mission_start() -> Epoch {
        Epoch {
            j2000_offset_days: 8484.0,
            seconds: 0.0,
        }
    }

    /// An epoch a given number of days after J2000.
    pub fn from_j2000_days(days: f64) -> Epoch {
        Epoch {
            j2000_offset_days: days,
            seconds: 0.0,
        }
    }

    /// Seconds since the mission start epoch.
    pub fn seconds_since_start(self) -> f64 {
        self.seconds
    }

    /// Days since the J2000 epoch, used for Earth-rotation angles.
    pub fn days_since_j2000(self) -> f64 {
        self.j2000_offset_days + self.seconds / SECONDS_PER_DAY
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::mission_start()
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.2}s", self.seconds)
    }
}

impl Add<Duration> for Epoch {
    type Output = Epoch;
    fn add(self, rhs: Duration) -> Epoch {
        Epoch {
            j2000_offset_days: self.j2000_offset_days,
            seconds: self.seconds + rhs.as_seconds(),
        }
    }
}

impl AddAssign<Duration> for Epoch {
    fn add_assign(&mut self, rhs: Duration) {
        self.seconds += rhs.as_seconds();
    }
}

impl Sub<Duration> for Epoch {
    type Output = Epoch;
    fn sub(self, rhs: Duration) -> Epoch {
        Epoch {
            j2000_offset_days: self.j2000_offset_days,
            seconds: self.seconds - rhs.as_seconds(),
        }
    }
}

impl Sub for Epoch {
    type Output = Duration;
    fn sub(self, rhs: Epoch) -> Duration {
        let day_delta = (self.j2000_offset_days - rhs.j2000_offset_days) * SECONDS_PER_DAY;
        Duration::from_seconds(day_delta + self.seconds - rhs.seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_round_trip() {
        let d = Duration::from_days(1.5);
        assert!((d.as_hours() - 36.0).abs() < 1e-12);
        assert!((d.as_minutes() - 2160.0).abs() < 1e-12);
        assert!((d.as_seconds() - 129_600.0).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_seconds(90.0);
        let b = Duration::from_seconds(30.0);
        assert_eq!((a + b).as_seconds(), 120.0);
        assert_eq!((a - b).as_seconds(), 60.0);
        assert_eq!((a * 2.0).as_seconds(), 180.0);
        assert_eq!((a / 3.0).as_seconds(), 30.0);
        assert_eq!(a / b, 3.0);
        assert_eq!((-a).as_seconds(), -90.0);
        assert!((-a).is_negative());
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn duration_min_max() {
        let a = Duration::from_seconds(10.0);
        let b = Duration::from_seconds(20.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn epoch_offsets_accumulate() {
        let t0 = Epoch::mission_start();
        let t1 = t0 + Duration::from_hours(2.0);
        let t2 = t1 - Duration::from_minutes(30.0);
        assert!(((t2 - t0).as_minutes() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn epoch_tracks_j2000_days() {
        let t0 = Epoch::from_j2000_days(100.0);
        let t1 = t0 + Duration::from_days(2.0);
        assert!((t1.days_since_j2000() - 102.0).abs() < 1e-12);
    }

    #[test]
    fn epoch_difference_across_offsets() {
        let a = Epoch::from_j2000_days(10.0);
        let b = Epoch::from_j2000_days(11.0) + Duration::from_hours(12.0);
        assert!(((b - a).as_days() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats_scale() {
        assert_eq!(format!("{}", Duration::from_seconds(12.0)), "12.00 s");
        assert_eq!(format!("{}", Duration::from_minutes(5.0)), "5.00 min");
        assert_eq!(format!("{}", Duration::from_hours(3.0)), "3.00 h");
        assert_eq!(format!("{}", Duration::from_days(2.0)), "2.00 d");
    }
}
