//! Three-dimensional vectors for orbital geometry.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-vector of `f64` components, used for positions and velocities in
/// kilometers or meters depending on context (each API documents its units).
///
/// # Example
///
/// ```
/// use kodan_cote::vec3::Vec3;
/// let a = Vec3::new(1.0, 0.0, 0.0);
/// let b = Vec3::new(0.0, 1.0, 0.0);
/// assert_eq!(a.dot(b), 0.0);
/// assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    pub fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector is (near) zero.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 1e-12, "cannot normalize a zero vector");
        self / n
    }

    /// Angle between two vectors in radians, in `[0, pi]`.
    pub fn angle_to(self, rhs: Vec3) -> f64 {
        let denom = self.norm() * rhs.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(rhs) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Distance between two points.
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Rotates this vector about the Z axis by `angle` radians
    /// (counter-clockwise looking down +Z).
    pub fn rotated_z(self, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        Vec3 {
            x: c * self.x - s * self.y,
            y: s * self.x + c * self.y,
            z: self.z,
        }
    }

    /// Rotates this vector about the X axis by `angle` radians.
    pub fn rotated_x(self, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        Vec3 {
            x: self.x,
            y: c * self.y - s * self.z,
            z: s * self.y + c * self.z,
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(Vec3::new(1.0, 0.0, 0.0).norm(), 1.0);
        assert_eq!(Vec3::new(0.0, 3.0, 4.0).norm(), 5.0);
    }

    #[test]
    fn cross_product_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
    }

    #[test]
    fn angle_between_orthogonal_vectors() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 2.0, 0.0);
        assert!((a.angle_to(b) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((a.angle_to(-a) - std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(a.angle_to(a), 0.0);
    }

    #[test]
    fn rotation_about_z_quarter_turn() {
        let v = Vec3::new(1.0, 0.0, 5.0).rotated_z(std::f64::consts::FRAC_PI_2);
        assert!((v.x - 0.0).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
        assert_eq!(v.z, 5.0);
    }

    #[test]
    fn rotation_about_x_quarter_turn() {
        let v = Vec3::new(7.0, 1.0, 0.0).rotated_x(std::f64::consts::FRAC_PI_2);
        assert_eq!(v.x, 7.0);
        assert!((v.y - 0.0).abs() < 1e-12);
        assert!((v.z - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0, a + a);
        assert_eq!(2.0 * a, a + a);
        assert_eq!(a / 1.0, a);
        assert_eq!(-(-a), a);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec3::new(3.0, -4.0, 12.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }
}
