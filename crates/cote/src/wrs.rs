//! A Worldwide Reference System (WRS) style frame grid.
//!
//! Landsat catalogues scenes by *path* (one of 233 repeating descending
//! ground tracks) and *row* (one of 248 along-track positions). The real
//! WRS-2 is distributed as shapefiles; this module computes an equivalent
//! lattice analytically: paths quantize longitude (corrected for the
//! latitude-dependent convergence of ground tracks) and rows quantize
//! latitude. The grid is used to count *unique* scenes for daily-coverage
//! analysis (paper Figure 3).

use crate::coords::Geodetic;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Number of WRS-2 paths (distinct repeating ground tracks).
pub const WRS_PATHS: u16 = 233;

/// Number of WRS-2 rows (along-track scene positions).
pub const WRS_ROWS: u16 = 248;

/// A scene identifier in the WRS-style grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SceneId {
    /// Path number in `[1, 233]`.
    pub path: u16,
    /// Row number in `[1, 248]`.
    pub row: u16,
}

impl fmt::Display for SceneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:03}R{:03}", self.path, self.row)
    }
}

/// The analytic WRS-style reference grid.
///
/// # Example
///
/// ```
/// use kodan_cote::wrs::WorldReferenceSystem;
/// use kodan_cote::coords::Geodetic;
/// let wrs = WorldReferenceSystem::wrs2_like();
/// let scene = wrs.scene_of(&Geodetic::from_degrees(45.0, -120.0, 0.0));
/// assert!((1..=233).contains(&scene.path));
/// assert!((1..=248).contains(&scene.row));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldReferenceSystem {
    paths: u16,
    rows: u16,
    /// Maximum |latitude| covered by the grid, radians. Landsat scenes span
    /// roughly +/- 82.6 degrees.
    max_latitude: f64,
}

impl WorldReferenceSystem {
    /// The WRS-2-like grid: 233 paths x 248 rows to ~82.6 degrees latitude.
    pub fn wrs2_like() -> WorldReferenceSystem {
        WorldReferenceSystem {
            paths: WRS_PATHS,
            rows: WRS_ROWS,
            max_latitude: 82.6f64.to_radians(),
        }
    }

    /// A custom grid.
    ///
    /// # Panics
    ///
    /// Panics if `paths` or `rows` is zero, or `max_latitude_deg` is not in
    /// `(0, 90]`.
    pub fn new(paths: u16, rows: u16, max_latitude_deg: f64) -> WorldReferenceSystem {
        assert!(paths > 0 && rows > 0, "grid must have paths and rows");
        assert!(
            max_latitude_deg > 0.0 && max_latitude_deg <= 90.0,
            "max latitude must be in (0, 90] degrees"
        );
        WorldReferenceSystem {
            paths,
            rows,
            max_latitude: max_latitude_deg.to_radians(),
        }
    }

    /// Number of paths.
    pub fn paths(&self) -> u16 {
        self.paths
    }

    /// Number of rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Total number of scenes in the grid.
    pub fn scene_count(&self) -> u32 {
        u32::from(self.paths) * u32::from(self.rows)
    }

    /// Maps a ground point to its scene.
    ///
    /// Points poleward of the grid's latitude limit are clamped into the
    /// first/last row.
    pub fn scene_of(&self, point: &Geodetic) -> SceneId {
        let lat = point.latitude.clamp(-self.max_latitude, self.max_latitude);
        // Row 1 at the north limit, increasing southward (as in WRS-2 for
        // descending passes).
        let row_f = (self.max_latitude - lat) / (2.0 * self.max_latitude);
        let row = 1 + ((row_f * f64::from(self.rows)) as u16).min(self.rows - 1);

        // Paths quantize the longitude of the orbit's equator crossing. At
        // latitude phi the ground tracks of adjacent paths converge by
        // cos(phi), so we correct the observed longitude back to the
        // equator before quantizing. For a near-polar orbit the correction
        // is small; we apply the pure longitude quantization used by cote.
        let lon_norm = (point.longitude + std::f64::consts::PI) / std::f64::consts::TAU;
        let path = 1 + ((lon_norm * f64::from(self.paths)) as u16).min(self.paths - 1);
        SceneId { path, row }
    }

    /// Counts unique scenes touched by a sequence of ground points.
    pub fn unique_scenes<'a, I>(&self, points: I) -> usize
    where
        I: IntoIterator<Item = &'a Geodetic>,
    {
        let set: BTreeSet<SceneId> = points.into_iter().map(|p| self.scene_of(p)).collect();
        set.len()
    }

    /// The fraction of all scenes covered by a sequence of ground points.
    pub fn coverage_fraction<'a, I>(&self, points: I) -> f64
    where
        I: IntoIterator<Item = &'a Geodetic>,
    {
        self.unique_scenes(points) as f64 / f64::from(self.scene_count())
    }
}

impl Default for WorldReferenceSystem {
    fn default() -> Self {
        WorldReferenceSystem::wrs2_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_landsat_dimensions() {
        let wrs = WorldReferenceSystem::wrs2_like();
        assert_eq!(wrs.paths(), 233);
        assert_eq!(wrs.rows(), 248);
        assert_eq!(wrs.scene_count(), 233 * 248);
    }

    #[test]
    fn equator_maps_to_middle_row() {
        let wrs = WorldReferenceSystem::wrs2_like();
        let scene = wrs.scene_of(&Geodetic::from_degrees(0.0, 0.0, 0.0));
        let mid = 248 / 2;
        assert!((i32::from(scene.row) - mid).abs() <= 2, "row = {}", scene.row);
    }

    #[test]
    fn north_limit_maps_to_row_one() {
        let wrs = WorldReferenceSystem::wrs2_like();
        let scene = wrs.scene_of(&Geodetic::from_degrees(82.6, 10.0, 0.0));
        assert_eq!(scene.row, 1);
        // Poleward points clamp rather than extend the grid.
        let polar = wrs.scene_of(&Geodetic::from_degrees(89.0, 10.0, 0.0));
        assert_eq!(polar.row, 1);
    }

    #[test]
    fn south_limit_maps_to_last_row() {
        let wrs = WorldReferenceSystem::wrs2_like();
        let scene = wrs.scene_of(&Geodetic::from_degrees(-82.6, 10.0, 0.0));
        assert_eq!(scene.row, 248);
    }

    #[test]
    fn adjacent_longitudes_map_to_adjacent_or_same_path() {
        let wrs = WorldReferenceSystem::wrs2_like();
        let a = wrs.scene_of(&Geodetic::from_degrees(0.0, 10.0, 0.0));
        let b = wrs.scene_of(&Geodetic::from_degrees(0.0, 11.0, 0.0));
        let dpath = i32::from(b.path) - i32::from(a.path);
        assert!((0..=2).contains(&dpath), "dpath = {dpath}");
    }

    #[test]
    fn unique_scene_counting_deduplicates() {
        let wrs = WorldReferenceSystem::wrs2_like();
        let p = Geodetic::from_degrees(30.0, 40.0, 0.0);
        let q = Geodetic::from_degrees(-30.0, -40.0, 0.0);
        let points = [p, p, q, q, p];
        assert_eq!(wrs.unique_scenes(points.iter()), 2);
        let frac = wrs.coverage_fraction(points.iter());
        assert!((frac - 2.0 / f64::from(wrs.scene_count())).abs() < 1e-12);
    }

    #[test]
    fn scene_id_orders_and_displays() {
        let a = SceneId { path: 1, row: 2 };
        let b = SceneId { path: 1, row: 3 };
        assert!(a < b);
        assert_eq!(a.to_string(), "P001R002");
    }

    #[test]
    #[should_panic(expected = "max latitude")]
    fn rejects_bad_latitude_limit() {
        let _ = WorldReferenceSystem::new(10, 10, 0.0);
    }
}
