//! Property-based tests for the orbital-geometry substrate: coordinate
//! round trips, Kepler-solver residuals, rotation invariants and time
//! arithmetic must hold for *all* inputs in their domains, not just the
//! hand-picked cases of the unit tests.

use kodan_cote::bodies::EARTH_MU;
use kodan_cote::coords::{ecef_to_geodetic, eci_to_ecef, ecef_to_eci, Geodetic};
use kodan_cote::orbit::Orbit;
use kodan_cote::propagate::{propagate, solve_kepler};
use kodan_cote::time::{Duration, Epoch};
use kodan_cote::vec3::Vec3;
use proptest::prelude::*;

proptest! {
    #[test]
    fn geodetic_ecef_round_trip(
        lat in -89.9f64..89.9,
        lon in -179.9f64..179.9,
        alt in 0.0f64..2_000_000.0,
    ) {
        let g = Geodetic::from_degrees(lat, lon, alt);
        let back = ecef_to_geodetic(g.to_ecef());
        prop_assert!((back.latitude_deg() - lat).abs() < 1e-6);
        prop_assert!((back.longitude_deg() - lon).abs() < 1e-6);
        prop_assert!((back.altitude - alt).abs() < 0.01);
    }

    #[test]
    fn eci_ecef_rotation_preserves_norm(
        x in -1e7f64..1e7,
        y in -1e7f64..1e7,
        z in -1e7f64..1e7,
        hours in 0.0f64..48.0,
    ) {
        let epoch = Epoch::mission_start() + Duration::from_hours(hours);
        let r = Vec3::new(x, y, z);
        let rotated = eci_to_ecef(r, epoch);
        prop_assert!((rotated.norm() - r.norm()).abs() < 1e-6);
        let back = ecef_to_eci(rotated, epoch);
        prop_assert!(back.distance(r) < 1e-5);
    }

    #[test]
    fn kepler_solver_residual_is_tiny(
        mean_anomaly in 0.0f64..std::f64::consts::TAU,
        eccentricity in 0.0f64..0.95,
    ) {
        let e_anom = solve_kepler(mean_anomaly, eccentricity);
        let residual = e_anom - eccentricity * e_anom.sin() - mean_anomaly;
        prop_assert!(residual.rem_euclid(std::f64::consts::TAU).min(
            (std::f64::consts::TAU - residual.rem_euclid(std::f64::consts::TAU)).abs()
        ) < 1e-9);
    }

    #[test]
    fn propagation_conserves_energy_for_circular_orbits(
        altitude in 300_000.0f64..2_000_000.0,
        inclination_deg in 0.0f64..179.0,
        minutes in 0.0f64..600.0,
    ) {
        let orbit = Orbit::circular(
            altitude,
            inclination_deg.to_radians(),
            Epoch::mission_start(),
        );
        let state = propagate(&orbit, orbit.epoch() + Duration::from_minutes(minutes));
        let r = state.position.norm();
        let v = state.velocity.norm();
        // Specific orbital energy: v^2/2 - mu/r = -mu/(2a).
        let energy = v * v / 2.0 - EARTH_MU / r;
        let expected = -EARTH_MU / (2.0 * orbit.elements().semi_major_axis);
        prop_assert!(
            ((energy - expected) / expected).abs() < 1e-3,
            "energy {} vs expected {}", energy, expected
        );
    }

    #[test]
    fn cross_product_is_orthogonal(
        ax in -10.0f64..10.0, ay in -10.0f64..10.0, az in -10.0f64..10.0,
        bx in -10.0f64..10.0, by in -10.0f64..10.0, bz in -10.0f64..10.0,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-9 * (1.0 + a.norm() * b.norm()));
        prop_assert!(c.dot(b).abs() < 1e-9 * (1.0 + a.norm() * b.norm()));
    }

    #[test]
    fn duration_arithmetic_is_consistent(
        a in -1e6f64..1e6,
        b in -1e6f64..1e6,
    ) {
        let da = Duration::from_seconds(a);
        let db = Duration::from_seconds(b);
        prop_assert!(((da + db) - db - da).as_seconds().abs() < 1e-6);
        prop_assert_eq!(da.min(db), if a < b { da } else { db });
        prop_assert!((da.abs().as_seconds() - a.abs()).abs() < 1e-12);
    }

    #[test]
    fn epoch_ordering_matches_offsets(
        s1 in 0.0f64..1e6,
        s2 in 0.0f64..1e6,
    ) {
        let t0 = Epoch::mission_start();
        let a = t0 + Duration::from_seconds(s1);
        let b = t0 + Duration::from_seconds(s2);
        prop_assert_eq!(a < b, s1 < s2);
        prop_assert!(((a - b).as_seconds() - (s1 - s2)).abs() < 1e-9);
    }
}
