//! Property-based tests for the RF link budget: geometric and monotone
//! invariants over the whole elevation/altitude domain.

use kodan_cote::link_budget::RadioLink;
use proptest::prelude::*;

proptest! {
    #[test]
    fn slant_range_bounded_by_geometry(
        elevation_deg in 0.0f64..90.0,
        altitude in 200_000.0f64..2_000_000.0,
    ) {
        let range = RadioLink::slant_range_m(elevation_deg.to_radians(), altitude);
        // Never shorter than the altitude, never longer than the horizon
        // chord.
        prop_assert!(range >= altitude - 1.0, "range {} < altitude {}", range, altitude);
        let horizon = RadioLink::slant_range_m(0.0, altitude);
        prop_assert!(range <= horizon + 1.0);
    }

    #[test]
    fn rate_is_monotone_in_elevation(
        altitude in 200_000.0f64..2_000_000.0,
        e1 in 1.0f64..89.0,
        e2 in 1.0f64..89.0,
    ) {
        let link = RadioLink::landsat_x_band();
        let r1 = link.achievable_rate_bps(e1.to_radians(), altitude);
        let r2 = link.achievable_rate_bps(e2.to_radians(), altitude);
        if e1 < e2 {
            prop_assert!(r1 <= r2 + 1e-6);
        }
        prop_assert!(r1 >= 0.0 && r1 <= link.max_rate_bps + 1e-6);
    }

    #[test]
    fn lower_altitude_never_hurts_the_link(
        elevation_deg in 5.0f64..90.0,
        alt_low in 200_000.0f64..800_000.0,
        extra in 10_000.0f64..1_000_000.0,
    ) {
        let link = RadioLink::cubesat_s_band();
        let low = link.achievable_rate_bps(elevation_deg.to_radians(), alt_low);
        let high = link.achievable_rate_bps(elevation_deg.to_radians(), alt_low + extra);
        prop_assert!(low >= high - 1e-6, "closer satellite got a worse link");
    }

    #[test]
    fn pass_capacity_is_additive_and_bounded(
        samples in prop::collection::vec((1.0f64..89.0, 1.0f64..120.0), 1..20),
    ) {
        let link = RadioLink::landsat_x_band();
        let altitude = 705_000.0;
        let total_time: f64 = samples.iter().map(|&(_, dt)| dt).sum();
        let bits = link.pass_capacity_bits(
            samples.iter().map(|&(deg, dt)| (deg.to_radians(), dt)),
            altitude,
        );
        prop_assert!(bits >= 0.0);
        prop_assert!(bits <= link.max_rate_bps * total_time + 1e-3);
        // Splitting the samples changes nothing.
        let half = samples.len() / 2;
        let a = link.pass_capacity_bits(
            samples[..half].iter().map(|&(deg, dt)| (deg.to_radians(), dt)),
            altitude,
        );
        let b = link.pass_capacity_bits(
            samples[half..].iter().map(|&(deg, dt)| (deg.to_radians(), dt)),
            altitude,
        );
        prop_assert!((a + b - bits).abs() < 1e-3);
    }
}
