//! Deterministic, seeded fault injection for the Kodan on-orbit runtime.
//!
//! A satellite cannot phone home for help: radiation flips bits in model
//! weights, thermal limits throttle compute, ground contacts drop or
//! shrink, and rain fades the downlink. This crate models all four as a
//! *pure function of a seed and the fault site's identity* — no wall
//! clock, no global state — so a mission run under a [`FaultPlan`] is
//! byte-reproducible at any worker count: the fault hitting frame 17 is
//! decided by `(seed, frame 17)` alone, never by which thread got there
//! first.
//!
//! The plan only *decides* faults; the runtime policies that survive them
//! (checksum fallback, retry-with-backoff, value-aware queue shedding)
//! live in `kodan-core` and consume the [`FrameFaults`] /
//! [`ContactFault`] decisions this crate hands out. Each recovery the
//! runtime takes is announced as a `FaultRecovered` telemetry event —
//! the trigger that makes `kodan-telemetry`'s flight recorder freeze a
//! black-box window of the frames leading up to it, so every
//! degradation in a mission has a replayable causal record.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use kodan_cote::sim::ServedPass;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Stream-splitting constants: each fault site class draws from its own
/// ChaCha stream so adding a fault class never shifts another's decisions.
const DOMAIN_FRAME: u64 = 0xF1;
const DOMAIN_TILE: u64 = 0xF2;
const DOMAIN_CONTACT: u64 = 0xF3;

/// Golden-ratio multipliers decorrelate the domain and identity words
/// before they are folded into the seed (same trick as `par::stream_seed`).
const MIX_A: u64 = 0x9E37_79B9_7F4A_7C15;
const MIX_B: u64 = 0xD1B5_4A32_D192_ED03;

/// Fault rates and magnitudes for one mission.
///
/// All rates are probabilities in `[0, 1]` evaluated once per fault site
/// (frame, tile or contact). A config with every rate at zero —
/// [`FaultConfig::disabled`] — injects nothing and leaves the runtime's
/// behavior bit-identical to a fault-free build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master seed for every fault stream.
    pub seed: u64,
    /// Per-frame probability of a single-event upset flipping one bit of
    /// one specialized-model weight.
    pub seu_rate: f64,
    /// Per-frame probability of a thermal-throttling episode.
    pub slowdown_rate: f64,
    /// Modeled-time multiplier (>= 1) applied to every stage cost of a
    /// throttled frame.
    pub slowdown_factor: f64,
    /// Per-tile probability of a transient classify failure (each retry
    /// re-rolls independently).
    pub classify_fault_rate: f64,
    /// Bounded retries the runtime attempts before giving up on a tile.
    pub classify_retries: u32,
    /// Modeled seconds of backoff before the first retry; doubles on each
    /// subsequent retry.
    pub retry_backoff_s: f64,
    /// Per-contact probability that a ground-station pass is missed
    /// entirely.
    pub contact_drop_rate: f64,
    /// Per-contact probability that a surviving pass is shortened.
    pub contact_shorten_rate: f64,
    /// Fraction of the pass duration kept when shortened, in `(0, 1]`.
    pub contact_shorten_keep: f64,
    /// Per-contact probability of rain fade on a surviving pass.
    pub rain_fade_rate: f64,
    /// Link-budget degradation of a faded pass, in dB (rate scales by
    /// `10^(-dB/10)`).
    pub rain_fade_db: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

impl FaultConfig {
    /// A config that injects nothing (all rates zero).
    pub fn disabled() -> FaultConfig {
        FaultConfig {
            seed: 0,
            seu_rate: 0.0,
            slowdown_rate: 0.0,
            slowdown_factor: 1.0,
            classify_fault_rate: 0.0,
            classify_retries: 3,
            retry_backoff_s: 0.05,
            contact_drop_rate: 0.0,
            contact_shorten_rate: 0.0,
            contact_shorten_keep: 0.5,
            rain_fade_rate: 0.0,
            rain_fade_db: 3.0,
        }
    }

    /// A moderately hostile environment: occasional upsets, throttling
    /// and contact degradation, the regime the degradation policies are
    /// tuned for.
    pub fn nominal(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            seu_rate: 0.05,
            slowdown_rate: 0.1,
            slowdown_factor: 2.0,
            classify_fault_rate: 0.02,
            classify_retries: 3,
            retry_backoff_s: 0.05,
            contact_drop_rate: 0.1,
            contact_shorten_rate: 0.2,
            contact_shorten_keep: 0.5,
            rain_fade_rate: 0.25,
            rain_fade_db: 3.0,
        }
    }

    /// [`FaultConfig::nominal`] with every rate scaled by `intensity`
    /// (clamped to `[0, 1]`); magnitudes are held fixed. `intensity == 0`
    /// is [`FaultConfig::disabled`] with the given seed; `1` is nominal.
    /// This is the knob the `fault_resilience` bench sweeps.
    pub fn scaled(seed: u64, intensity: f64) -> FaultConfig {
        let k = intensity.clamp(0.0, 1.0);
        let nominal = FaultConfig::nominal(seed);
        FaultConfig {
            seed,
            seu_rate: nominal.seu_rate * k,
            slowdown_rate: nominal.slowdown_rate * k,
            classify_fault_rate: nominal.classify_fault_rate * k,
            contact_drop_rate: nominal.contact_drop_rate * k,
            contact_shorten_rate: nominal.contact_shorten_rate * k,
            rain_fade_rate: nominal.rain_fade_rate * k,
            ..nominal
        }
    }

    /// Parses a config from `key = value` lines.
    ///
    /// Unknown keys are rejected (a typo'd rate silently defaulting to
    /// zero would fake resilience). Blank lines and `#` comments are
    /// ignored. Missing keys keep their [`FaultConfig::disabled`]
    /// defaults, so a file listing only `seed` and `seu_rate` is valid.
    pub fn parse(text: &str) -> Result<FaultConfig, String> {
        let mut config = FaultConfig::disabled();
        for (line_no, raw) in text.lines().enumerate() {
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", line_no + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("line {}: {} `{}`", line_no + 1, what, value);
            let float = |slot: &mut f64| -> Result<(), String> {
                *slot = value.parse().map_err(|_| bad("invalid number"))?;
                Ok(())
            };
            match key {
                "seed" => config.seed = value.parse().map_err(|_| bad("invalid seed"))?,
                "seu_rate" => float(&mut config.seu_rate)?,
                "slowdown_rate" => float(&mut config.slowdown_rate)?,
                "slowdown_factor" => float(&mut config.slowdown_factor)?,
                "classify_fault_rate" => float(&mut config.classify_fault_rate)?,
                "classify_retries" => {
                    config.classify_retries =
                        value.parse().map_err(|_| bad("invalid retry count"))?
                }
                "retry_backoff_s" => float(&mut config.retry_backoff_s)?,
                "contact_drop_rate" => float(&mut config.contact_drop_rate)?,
                "contact_shorten_rate" => float(&mut config.contact_shorten_rate)?,
                "contact_shorten_keep" => float(&mut config.contact_shorten_keep)?,
                "rain_fade_rate" => float(&mut config.rain_fade_rate)?,
                "rain_fade_db" => float(&mut config.rain_fade_db)?,
                other => return Err(format!("line {}: unknown key `{other}`", line_no + 1)),
            }
        }
        config.validate()?;
        Ok(config)
    }

    /// Checks that every rate is a probability, every magnitude is in its
    /// documented domain and nothing is NaN.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("seu_rate", self.seu_rate),
            ("slowdown_rate", self.slowdown_rate),
            ("classify_fault_rate", self.classify_fault_rate),
            ("contact_drop_rate", self.contact_drop_rate),
            ("contact_shorten_rate", self.contact_shorten_rate),
            ("rain_fade_rate", self.rain_fade_rate),
        ];
        for (name, rate) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        if !(self.slowdown_factor >= 1.0 && self.slowdown_factor.is_finite()) {
            return Err(format!(
                "slowdown_factor must be >= 1, got {}",
                self.slowdown_factor
            ));
        }
        if !(self.retry_backoff_s >= 0.0 && self.retry_backoff_s.is_finite()) {
            return Err(format!(
                "retry_backoff_s must be >= 0, got {}",
                self.retry_backoff_s
            ));
        }
        if !(self.contact_shorten_keep > 0.0 && self.contact_shorten_keep <= 1.0) {
            return Err(format!(
                "contact_shorten_keep must be in (0, 1], got {}",
                self.contact_shorten_keep
            ));
        }
        if !(self.rain_fade_db >= 0.0 && self.rain_fade_db.is_finite()) {
            return Err(format!(
                "rain_fade_db must be >= 0, got {}",
                self.rain_fade_db
            ));
        }
        Ok(())
    }

    /// True when any fault class can actually fire.
    pub fn is_active(&self) -> bool {
        self.seu_rate > 0.0
            || self.slowdown_rate > 0.0
            || self.classify_fault_rate > 0.0
            || self.contact_drop_rate > 0.0
            || self.contact_shorten_rate > 0.0
            || self.rain_fade_rate > 0.0
    }
}

/// A single-event upset: which weight slot and which bit it flips.
///
/// `weight_index` is reduced modulo the victim model's parameter count by
/// the runtime, so the plan needs no knowledge of model shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeuUpset {
    /// Unreduced index into the victim model's flattened parameters.
    pub weight_index: u64,
    /// Bit position to flip (reduced modulo 64 by the runtime).
    pub bit: u32,
}

/// The faults decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameFaults {
    /// A weight upset, if one fires this frame.
    pub seu: Option<SeuUpset>,
    /// Stage-cost multiplier; `1.0` means no throttling.
    pub slowdown: f64,
}

impl FrameFaults {
    /// A fault-free frame.
    pub fn none() -> FrameFaults {
        FrameFaults {
            seu: None,
            slowdown: 1.0,
        }
    }
}

/// The fault decided for one ground-station contact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContactFault {
    /// The contact is missed entirely (e.g. station outage).
    pub dropped: bool,
    /// Fraction of the pass duration that survives; `1.0` means full.
    pub keep_fraction: f64,
    /// Rain-fade link degradation in dB; `0.0` means clear sky.
    pub fade_db: f64,
}

impl ContactFault {
    /// A clean contact.
    pub fn none() -> ContactFault {
        ContactFault {
            dropped: false,
            keep_fraction: 1.0,
            fade_db: 0.0,
        }
    }

    /// True when this contact is degraded in any way.
    pub fn is_faulty(&self) -> bool {
        self.dropped || self.keep_fraction < 1.0 || self.fade_db > 0.0
    }
}

/// One contact after fault application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContactOutcome {
    /// The surviving (possibly shortened/faded) pass; `None` if dropped.
    pub pass: Option<ServedPass>,
    /// The fault decision that produced it.
    pub fault: ContactFault,
    /// Downlink bits lost relative to the clean pass.
    pub lost_bits: f64,
}

/// A deterministic fault schedule: pure function of `(seed, site identity)`.
///
/// Every query opens a fresh ChaCha12 stream keyed on the fault site, so
/// decisions are independent of query order — the property that keeps
/// fault-injected missions byte-identical at any worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Wraps a validated config into a plan.
    pub fn new(config: FaultConfig) -> Result<FaultPlan, String> {
        config.validate()?;
        Ok(FaultPlan { config })
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True when any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.config.is_active()
    }

    /// A fresh stream for one fault site.
    fn stream(&self, domain: u64, identity: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(
            self.config.seed ^ domain.wrapping_mul(MIX_A) ^ identity.wrapping_mul(MIX_B),
        )
    }

    /// Decides the faults for frame `frame_index`.
    ///
    /// Draw order (SEU roll, SEU site, slowdown roll) is part of the
    /// plan's stability contract: reordering would silently change every
    /// seeded mission.
    pub fn frame_faults(&self, frame_index: u64) -> FrameFaults {
        if self.config.seu_rate <= 0.0 && self.config.slowdown_rate <= 0.0 {
            return FrameFaults::none();
        }
        let mut rng = self.stream(DOMAIN_FRAME, frame_index);
        let seu = if rng.random_range(0.0..1.0) < self.config.seu_rate {
            Some(SeuUpset {
                weight_index: rng.random_range(0..=u64::MAX),
                bit: rng.random_range(0..64u32),
            })
        } else {
            None
        };
        let slowdown = if rng.random_range(0.0..1.0) < self.config.slowdown_rate {
            self.config.slowdown_factor
        } else {
            1.0
        };
        FrameFaults { seu, slowdown }
    }

    /// How many consecutive classify attempts fail for one tile.
    ///
    /// Geometric in `classify_fault_rate`, capped at `classify_retries + 1`
    /// so a rate of `1.0` deterministically exhausts the retry budget
    /// instead of looping forever. A return of `0` means the first attempt
    /// succeeds; any value `> classify_retries` means the tile is lost.
    pub fn classify_failures(&self, frame_index: u64, tile_index: u64) -> u32 {
        if self.config.classify_fault_rate <= 0.0 {
            return 0;
        }
        let identity = frame_index.wrapping_mul(0x1_0000_0001).wrapping_add(tile_index);
        let mut rng = self.stream(DOMAIN_TILE, identity);
        let mut failures = 0u32;
        while failures <= self.config.classify_retries
            && rng.random_range(0.0..1.0) < self.config.classify_fault_rate
        {
            failures += 1;
        }
        failures
    }

    /// Decides the fault for contact `contact_index`.
    ///
    /// Contacts are identified by their index in the mission's
    /// time-sorted own-satellite pass list.
    pub fn contact_fault(&self, contact_index: u64) -> ContactFault {
        let cfg = &self.config;
        if cfg.contact_drop_rate <= 0.0
            && cfg.contact_shorten_rate <= 0.0
            && cfg.rain_fade_rate <= 0.0
        {
            return ContactFault::none();
        }
        let mut rng = self.stream(DOMAIN_CONTACT, contact_index);
        // Fixed draw order, all three rolls always consumed: dropping a
        // contact must not shift the shorten/fade decisions of later rolls.
        let dropped = rng.random_range(0.0..1.0) < cfg.contact_drop_rate;
        let shortened = rng.random_range(0.0..1.0) < cfg.contact_shorten_rate;
        let faded = rng.random_range(0.0..1.0) < cfg.rain_fade_rate;
        ContactFault {
            dropped,
            keep_fraction: if shortened { cfg.contact_shorten_keep } else { 1.0 },
            fade_db: if faded { cfg.rain_fade_db } else { 0.0 },
        }
    }

    /// Applies contact faults to a time-sorted pass list.
    ///
    /// Dropped contacts yield `pass: None` and lose their full capacity;
    /// shortened contacts keep `keep_fraction` of their duration; faded
    /// contacts keep their duration at a rate scaled by `10^(-dB/10)`.
    pub fn degrade_passes(&self, passes: &[ServedPass]) -> Vec<ContactOutcome> {
        passes
            .iter()
            .enumerate()
            .map(|(index, pass)| {
                let fault = self.contact_fault(index as u64);
                let clean_bits = pass.bits();
                if fault.dropped {
                    return ContactOutcome {
                        pass: None,
                        fault,
                        lost_bits: clean_bits,
                    };
                }
                let degraded = pass
                    .shortened(fault.keep_fraction)
                    .with_rate(pass.rate_bps * 10f64.powf(-fault.fade_db / 10.0));
                let lost_bits = (clean_bits - degraded.bits()).max(0.0);
                ContactOutcome {
                    pass: Some(degraded),
                    fault,
                    lost_bits,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kodan_cote::time::{Duration, Epoch};

    fn pass(minutes: f64, rate_bps: f64) -> ServedPass {
        let start = Epoch::mission_start();
        ServedPass {
            satellite: 0,
            station: 0,
            start,
            end: start + Duration::from_minutes(minutes),
            rate_bps,
        }
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let plan = FaultPlan::new(FaultConfig::disabled()).unwrap();
        assert!(!plan.is_active());
        for i in 0..200 {
            assert_eq!(plan.frame_faults(i), FrameFaults::none());
            assert_eq!(plan.classify_failures(i, i), 0);
            assert_eq!(plan.contact_fault(i), ContactFault::none());
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_identity() {
        let plan = FaultPlan::new(FaultConfig::nominal(7)).unwrap();
        // Query in two different orders; every answer must match.
        let forward: Vec<FrameFaults> = (0..64).map(|i| plan.frame_faults(i)).collect();
        let backward: Vec<FrameFaults> =
            (0..64).rev().map(|i| plan.frame_faults(i)).collect();
        for (i, fault) in forward.iter().enumerate() {
            assert_eq!(*fault, backward[63 - i], "frame {i} decision order-dependent");
        }
        let clone = FaultPlan::new(FaultConfig::nominal(7)).unwrap();
        for i in 0..64 {
            assert_eq!(plan.contact_fault(i), clone.contact_fault(i));
            assert_eq!(plan.classify_failures(i, 3), clone.classify_failures(i, 3));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(FaultConfig::nominal(1)).unwrap();
        let b = FaultPlan::new(FaultConfig::nominal(2)).unwrap();
        let diverged = (0..256).any(|i| a.frame_faults(i) != b.frame_faults(i));
        assert!(diverged, "seeds 1 and 2 produced identical fault schedules");
    }

    #[test]
    fn nominal_rates_fire_at_roughly_their_probability() {
        let plan = FaultPlan::new(FaultConfig::nominal(42)).unwrap();
        let n = 4000u64;
        let seu = (0..n).filter(|&i| plan.frame_faults(i).seu.is_some()).count() as f64;
        let frac = seu / n as f64;
        assert!(
            (frac - 0.05).abs() < 0.02,
            "seu empirical rate {frac} far from configured 0.05"
        );
    }

    #[test]
    fn classify_failures_cap_at_retries_plus_one() {
        let mut cfg = FaultConfig::nominal(5);
        cfg.classify_fault_rate = 1.0;
        cfg.classify_retries = 2;
        let plan = FaultPlan::new(cfg).unwrap();
        for frame in 0..32 {
            for tile in 0..8 {
                assert_eq!(plan.classify_failures(frame, tile), 3);
            }
        }
    }

    #[test]
    fn degrade_passes_conserves_or_loses_bits() {
        let plan = FaultPlan::new(FaultConfig::nominal(11)).unwrap();
        let passes: Vec<ServedPass> = (0..40).map(|i| pass(8.0, 1e8 + i as f64)).collect();
        let outcomes = plan.degrade_passes(&passes);
        assert_eq!(outcomes.len(), passes.len());
        let mut dropped = 0;
        let mut degraded = 0;
        for (outcome, clean) in outcomes.iter().zip(&passes) {
            match &outcome.pass {
                None => {
                    assert!(outcome.fault.dropped);
                    assert_eq!(outcome.lost_bits, clean.bits());
                    dropped += 1;
                }
                Some(p) => {
                    assert!(p.bits() <= clean.bits() + 1e-6);
                    assert!((clean.bits() - p.bits() - outcome.lost_bits).abs() < 1e-6);
                    if outcome.fault.is_faulty() {
                        degraded += 1;
                    }
                }
            }
        }
        assert!(dropped > 0, "nominal drop rate never fired over 40 contacts");
        assert!(degraded > 0, "no surviving contact was shortened or faded");
    }

    #[test]
    fn scaled_zero_is_inactive_and_one_is_nominal() {
        assert!(!FaultConfig::scaled(9, 0.0).is_active());
        assert_eq!(FaultConfig::scaled(9, 1.0), FaultConfig::nominal(9));
        let half = FaultConfig::scaled(9, 0.5);
        assert!((half.seu_rate - 0.025).abs() < 1e-12);
        assert_eq!(half.slowdown_factor, 2.0, "magnitudes are not scaled");
    }

    #[test]
    fn parse_round_trips_keys_and_rejects_garbage() {
        let text = "\
            # mission fault plan\n\
            seed = 77\n\
            seu_rate = 0.5   # harsh\n\
            classify_retries = 5\n\
            rain_fade_db = 6.0\n";
        let cfg = FaultConfig::parse(text).unwrap();
        assert_eq!(cfg.seed, 77);
        assert_eq!(cfg.seu_rate, 0.5);
        assert_eq!(cfg.classify_retries, 5);
        assert_eq!(cfg.rain_fade_db, 6.0);
        // Unlisted keys keep their disabled defaults.
        assert_eq!(cfg.contact_drop_rate, 0.0);

        assert!(FaultConfig::parse("not a key value line").is_err());
        assert!(FaultConfig::parse("seu_rate = banana").is_err());
        assert!(FaultConfig::parse("made_up_key = 1").is_err());
        assert!(FaultConfig::parse("seu_rate = 1.5").is_err(), "rate out of range");
    }

    #[test]
    fn validate_rejects_bad_magnitudes() {
        let mut cfg = FaultConfig::nominal(1);
        cfg.slowdown_factor = 0.5;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::nominal(1);
        cfg.contact_shorten_keep = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::nominal(1);
        cfg.retry_backoff_s = f64::NAN;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::nominal(1);
        cfg.seu_rate = -0.1;
        assert!(cfg.validate().is_err());
    }
}
