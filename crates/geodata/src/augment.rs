//! Training-time data augmentation.
//!
//! The paper's methodology section: "During training, we apply data
//! augmentation to improve accuracy and avoid over-fitting." For
//! satellite imagery the natural invariances are the dihedral flips
//! (a scene is equally valid mirrored or transposed — orbits ascend and
//! descend) and small radiometric perturbations (sensor gain/offset
//! drift between instruments).

use crate::pixel::CHANNELS;
use crate::tile::TileImage;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A geometric/radiometric augmentation of a tile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Augmentation {
    /// Mirror left-right.
    FlipHorizontal,
    /// Mirror top-bottom.
    FlipVertical,
    /// Transpose rows and columns.
    Transpose,
    /// Per-channel multiplicative gain and additive offset.
    RadiometricJitter {
        /// Multiplicative gain applied to every channel.
        gain: f64,
        /// Additive offset applied to every channel.
        offset: f64,
    },
}

impl Augmentation {
    /// Applies this augmentation to a tile, producing a new tile with
    /// consistently transformed pixels and truth mask.
    pub fn apply(&self, tile: &TileImage) -> TileImage {
        let size = tile.size();
        match self {
            Augmentation::FlipHorizontal => {
                remap(tile, |r, c| (r, size - 1 - c))
            }
            Augmentation::FlipVertical => {
                remap(tile, |r, c| (size - 1 - r, c))
            }
            Augmentation::Transpose => remap(tile, |r, c| (c, r)),
            Augmentation::RadiometricJitter { gain, offset } => {
                let channels: Vec<f32> = tile
                    .channels()
                    .iter()
                    .map(|&v| ((f64::from(v) * gain + offset).clamp(0.0, 1.0)) as f32)
                    .collect();
                tile.with_channels(channels)
            }
        }
    }
}

/// Builds a tile whose pixel at `(r, c)` comes from `src(r, c)` in the
/// original.
fn remap(tile: &TileImage, src: impl Fn(usize, usize) -> (usize, usize)) -> TileImage {
    let size = tile.size();
    let mut channels = vec![0.0f32; size * size * CHANNELS];
    let mut truth = vec![false; size * size];
    for r in 0..size {
        for c in 0..size {
            let (sr, sc) = src(r, c);
            let dst = r * size + c;
            let s = sr * size + sc;
            channels[dst * CHANNELS..(dst + 1) * CHANNELS]
                .copy_from_slice(&tile.channels()[s * CHANNELS..(s + 1) * CHANNELS]);
            truth[dst] = tile.truth_cloudy()[s];
        }
    }
    tile.with_channels_and_truth(channels, truth)
}

/// Generates augmented variants of a tile set: for each source tile a
/// deterministic, seed-driven choice of one geometric flip and one
/// radiometric jitter.
///
/// Returns only the new tiles; callers typically chain them after the
/// originals.
pub fn augment_tiles(tiles: &[TileImage], seed: u64) -> Vec<TileImage> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0xA06);
    let mut out = Vec::with_capacity(tiles.len() * 2);
    for tile in tiles {
        let geometric = match rng.random_range(0..3) {
            0 => Augmentation::FlipHorizontal,
            1 => Augmentation::FlipVertical,
            _ => Augmentation::Transpose,
        };
        out.push(geometric.apply(tile));
        let jitter = Augmentation::RadiometricJitter {
            gain: rng.random_range(0.95..1.05),
            offset: rng.random_range(-0.02..0.02),
        };
        out.push(jitter.apply(tile));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::World;
    use crate::tile::tile_frame;

    fn tile() -> TileImage {
        let frame = World::new(42).render_frame(20.0, 30.0, 0.0, 36, 150.0);
        tile_frame(&frame, 3).swap_remove(4)
    }

    #[test]
    fn flips_are_involutions() {
        let t = tile();
        for aug in [
            Augmentation::FlipHorizontal,
            Augmentation::FlipVertical,
            Augmentation::Transpose,
        ] {
            let twice = aug.apply(&aug.apply(&t));
            assert_eq!(twice.channels(), t.channels(), "{aug:?}");
            assert_eq!(twice.truth_cloudy(), t.truth_cloudy(), "{aug:?}");
        }
    }

    #[test]
    fn flips_preserve_label_statistics() {
        let t = tile();
        for aug in [
            Augmentation::FlipHorizontal,
            Augmentation::FlipVertical,
            Augmentation::Transpose,
        ] {
            let a = aug.apply(&t);
            assert!((a.cloud_fraction() - t.cloud_fraction()).abs() < 1e-12);
            assert_eq!(a.surface_fractions(), t.surface_fractions());
            assert_eq!(a.size(), t.size());
        }
    }

    #[test]
    fn horizontal_flip_mirrors_pixels() {
        let t = tile();
        let flipped = Augmentation::FlipHorizontal.apply(&t);
        let size = t.size();
        for r in 0..size {
            for c in 0..size {
                let orig = &t.channels()
                    [(r * size + c) * CHANNELS..(r * size + c + 1) * CHANNELS];
                let mirrored = &flipped.channels()[(r * size + (size - 1 - c)) * CHANNELS
                    ..(r * size + (size - 1 - c) + 1) * CHANNELS];
                assert_eq!(orig, mirrored);
            }
        }
    }

    #[test]
    fn jitter_moves_radiometry_but_not_truth() {
        let t = tile();
        let jittered = Augmentation::RadiometricJitter {
            gain: 1.04,
            offset: 0.01,
        }
        .apply(&t);
        assert_ne!(jittered.channels(), t.channels());
        assert_eq!(jittered.truth_cloudy(), t.truth_cloudy());
        for &v in jittered.channels() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn augment_tiles_doubles_the_set_twice_over() {
        let tiles = vec![tile(), tile()];
        let augmented = augment_tiles(&tiles, 7);
        assert_eq!(augmented.len(), 4);
        // Deterministic.
        assert_eq!(augment_tiles(&tiles, 7), augmented);
        assert_ne!(augment_tiles(&tiles, 8), augmented);
    }
}
