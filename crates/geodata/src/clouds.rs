//! Cloud fields: spatially and temporally correlated cloud cover.
//!
//! Cloud cover is the *value signal* of the paper's evaluation: every
//! benchmark application filters cloudy (low-value) pixels from clear
//! (high-value) ones. The field is fBm-driven so clouds form coherent
//! systems with fractal edges, and a latitude climatology concentrates
//! cover in the tropics (ITCZ) and the mid-latitude storm belts, leaving
//! the subtropical deserts comparatively clear — as on Earth.

use crate::noise::NoiseField;
use serde::{Deserialize, Serialize};

/// A seeded, time-evolving cloud field.
///
/// # Example
///
/// ```
/// use kodan_geodata::clouds::CloudField;
/// let clouds = CloudField::new(7, 0.52);
/// let tau = clouds.optical_depth(10.0, 20.0, 0.0);
/// assert!((0.0..=1.0).contains(&tau));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudField {
    field: NoiseField,
    /// Bias added to the raw noise before thresholding; higher means
    /// cloudier. Calibrated from the target coverage at construction.
    bias: f64,
    /// Target global cloud fraction used to derive `bias`.
    target_coverage: f64,
}

/// Spatial frequency of synoptic cloud systems, cycles per degree.
const CLOUD_SCALE: f64 = 1.0 / 8.0;
/// Temporal frequency: systems evolve over a few days.
const CLOUD_TIME_SCALE: f64 = 1.0 / 2.5;
/// Optical depth above which a pixel is "cloudy" in the truth mask.
pub const CLOUD_TRUTH_THRESHOLD: f64 = 0.5;

impl CloudField {
    /// Creates a cloud field with the given seed and target global cloud
    /// coverage fraction.
    ///
    /// The paper's representative dataset is 52 % cloudy; the global
    /// climatology used for the motivation figures is 67 % [23].
    ///
    /// # Panics
    ///
    /// Panics if `target_coverage` is outside `(0, 1)`.
    pub fn new(seed: u64, target_coverage: f64) -> CloudField {
        assert!(
            (0.0..1.0).contains(&target_coverage) && target_coverage > 0.0,
            "cloud coverage must be in (0, 1)"
        );
        // Calibrate the bias by bisection so the realized global coverage
        // matches the target. A coarse latitude-weighted sample is enough:
        // the residual error is a couple of percent.
        let mut field = CloudField {
            field: NoiseField::new(seed ^ 0xC10D),
            bias: 0.0,
            target_coverage,
        };
        let mut lo = -0.6;
        let mut hi = 0.6;
        for _ in 0..20 {
            let mid = (lo + hi) / 2.0;
            field.bias = mid;
            if field.measured_coverage(0.0, 48) < target_coverage {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        field.bias = (lo + hi) / 2.0;
        field
    }

    /// The target coverage this field was calibrated for.
    pub fn target_coverage(&self) -> f64 {
        self.target_coverage
    }

    /// Cloud optical depth in `[0, 1]` at a geodetic point (degrees) and
    /// time (days). Values above [`CLOUD_TRUTH_THRESHOLD`] are cloudy in
    /// the truth mask.
    pub fn optical_depth(&self, lat_deg: f64, lon_deg: f64, t_days: f64) -> f64 {
        let x = lon_deg * lat_deg.to_radians().cos() * CLOUD_SCALE;
        let y = lat_deg * CLOUD_SCALE;
        let raw = self.field.fbm(x, y, t_days * CLOUD_TIME_SCALE, 6, 2.1, 0.55);
        let climate = latitude_climatology(lat_deg);
        (raw + self.bias + climate).clamp(0.0, 1.0)
    }

    /// True if the point is cloudy (truth label).
    pub fn is_cloudy(&self, lat_deg: f64, lon_deg: f64, t_days: f64) -> bool {
        self.optical_depth(lat_deg, lon_deg, t_days) > CLOUD_TRUTH_THRESHOLD
    }

    /// Measures the realized cloud fraction over a latitude-weighted
    /// global sample at time `t_days`.
    pub fn measured_coverage(&self, t_days: f64, resolution: usize) -> f64 {
        let mut cloudy = 0.0;
        let mut total = 0.0;
        for i in 0..resolution {
            let lat = -90.0 + 180.0 * (i as f64 + 0.5) / resolution as f64;
            let w = lat.to_radians().cos();
            for j in 0..resolution {
                let lon = -180.0 + 360.0 * (j as f64 + 0.5) / resolution as f64;
                if self.is_cloudy(lat, lon, t_days) {
                    cloudy += w;
                }
                total += w;
            }
        }
        cloudy / total
    }
}

/// Latitude-dependent cloudiness bias: positive in the ITCZ (equator) and
/// mid-latitude storm belts (~55 deg), negative over the subtropical dry
/// zones (~25 deg).
fn latitude_climatology(lat_deg: f64) -> f64 {
    let itcz = 0.05 * (-(lat_deg / 12.0).powi(2)).exp();
    let storm_n = 0.04 * (-((lat_deg - 55.0) / 15.0).powi(2)).exp();
    let storm_s = 0.04 * (-((lat_deg + 55.0) / 15.0).powi(2)).exp();
    let dry_n = -0.045 * (-((lat_deg - 25.0) / 10.0).powi(2)).exp();
    let dry_s = -0.045 * (-((lat_deg + 25.0) / 10.0).powi(2)).exp();
    itcz + storm_n + storm_s + dry_n + dry_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_calibration_is_close() {
        for &target in &[0.4, 0.52, 0.67] {
            let field = CloudField::new(11, target);
            let measured = field.measured_coverage(0.0, 80);
            assert!(
                (measured - target).abs() < 0.04,
                "target {target}, measured {measured}"
            );
        }
    }

    #[test]
    fn higher_target_means_more_clouds() {
        let dry = CloudField::new(11, 0.3).measured_coverage(0.0, 60);
        let wet = CloudField::new(11, 0.7).measured_coverage(0.0, 60);
        assert!(wet > dry + 0.2, "dry {dry}, wet {wet}");
    }

    #[test]
    fn clouds_evolve_over_days() {
        let field = CloudField::new(3, 0.5);
        let mut changed = 0;
        for i in 0..100 {
            let lat = -60.0 + i as f64;
            let lon = i as f64 * 3.0;
            let a = field.is_cloudy(lat, lon, 0.0);
            let b = field.is_cloudy(lat, lon, 10.0);
            if a != b {
                changed += 1;
            }
        }
        assert!(changed > 15, "only {changed} points changed in 10 days");
    }

    #[test]
    fn clouds_are_spatially_coherent() {
        // Points 10 km apart should usually share cloud state; fractal
        // edges make some boundary flips expected.
        let field = CloudField::new(3, 0.5);
        let mut same = 0;
        for i in 0..300 {
            let lat = -75.0 + i as f64 * 0.5;
            let lon = i as f64 * 1.1;
            if field.is_cloudy(lat, lon, 0.0) == field.is_cloudy(lat + 0.09, lon, 0.0) {
                same += 1;
            }
        }
        assert!(same > 240, "coherence {same}/300");
    }

    #[test]
    fn subtropics_are_clearer_than_storm_belts() {
        let field = CloudField::new(17, 0.55);
        let band_coverage = |lat: f64| -> f64 {
            let mut cloudy = 0;
            let n = 720;
            for j in 0..n {
                let lon = -180.0 + 360.0 * j as f64 / n as f64;
                if field.is_cloudy(lat, lon, 0.0) {
                    cloudy += 1;
                }
            }
            cloudy as f64 / n as f64
        };
        // Average both hemispheres to damp noise.
        let dry = (band_coverage(25.0) + band_coverage(-25.0)) / 2.0;
        let stormy = (band_coverage(55.0) + band_coverage(-55.0)) / 2.0;
        assert!(stormy > dry, "storm belt {stormy} vs subtropics {dry}");
    }

    #[test]
    fn optical_depth_in_unit_range() {
        let field = CloudField::new(23, 0.52);
        for i in 0..500 {
            let tau = field.optical_depth(-80.0 + i as f64 * 0.3, i as f64 * 0.7, 0.5);
            assert!((0.0..=1.0).contains(&tau));
        }
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn rejects_degenerate_coverage() {
        let _ = CloudField::new(1, 1.0);
    }
}
