//! Representative dataset assembly and train/validation splits.
//!
//! The paper's one-time transformation step starts from "a representative
//! dataset" of satellite imagery with classification vector labels and
//! per-pixel masks (Section 4). This module assembles the procedural
//! equivalent: frames sampled along polar ground-track latitudes, carrying
//! per-pixel truth, to be tiled and labeled on demand.

use crate::frame::{FrameImage, World};
use crate::tile::{tile_frame, TileImage};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Configuration for dataset generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Seed for frame placement (the world has its own seed).
    pub seed: u64,
    /// Number of frames to sample.
    pub frame_count: usize,
    /// Native frame resolution in pixels. Must be divisible by every tile
    /// grid that will be evaluated (132 covers the paper's 3/4/6/11).
    pub frame_px: usize,
    /// Frame ground extent, kilometers.
    pub frame_km: f64,
    /// Maximum |latitude| sampled (matches the WRS grid limit).
    pub max_latitude_deg: f64,
    /// Time span (days) over which frames are spread.
    pub time_span_days: f64,
}

impl DatasetConfig {
    /// A small, fast configuration for unit tests.
    pub fn small(seed: u64) -> DatasetConfig {
        DatasetConfig {
            seed,
            frame_count: 12,
            frame_px: 66,
            frame_km: 150.0,
            max_latitude_deg: 82.6,
            time_span_days: 4.0,
        }
    }

    /// The default evaluation configuration: enough frames for stable
    /// accuracy/precision statistics at the paper's tile grids.
    pub fn evaluation(seed: u64) -> DatasetConfig {
        DatasetConfig {
            seed,
            frame_count: 64,
            frame_px: 132,
            frame_km: 150.0,
            max_latitude_deg: 82.6,
            time_span_days: 16.0,
        }
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig::evaluation(0)
    }
}

/// A set of frames with ground truth: the representative dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    frames: Vec<FrameImage>,
}

impl Dataset {
    /// Samples a representative dataset from a world.
    ///
    /// Frame centers follow polar-orbit statistics: the latitude of a
    /// ground-track point is `arcsin(sin(u))`-distributed (denser near the
    /// turning latitudes), and longitudes are uniform. Capture times are
    /// spread over the configured span so cloud systems vary.
    ///
    /// # Panics
    ///
    /// Panics if `frame_count` is zero.
    pub fn sample(world: &World, config: &DatasetConfig) -> Dataset {
        assert!(config.frame_count > 0, "dataset needs frames");
        let mut rng = ChaCha12Rng::seed_from_u64(config.seed ^ 0xDA7A);
        let max_lat = config.max_latitude_deg.to_radians();
        // Draw frame placements sequentially (determinism), render in
        // parallel (frames are independent).
        let placements: Vec<(f64, f64, f64)> = (0..config.frame_count)
            .map(|_| {
                // Uniform argument-of-latitude -> arcsine latitude density.
                let u: f64 = rng.random_range(0.0..std::f64::consts::TAU);
                let lat = (u.sin() * max_lat.sin()).asin().to_degrees();
                let lon: f64 = rng.random_range(-180.0..180.0);
                let t: f64 = rng.random_range(0.0..config.time_span_days);
                (lat, lon, t)
            })
            .collect();
        let frames = render_parallel(world, &placements, config.frame_px, config.frame_km);
        Dataset { frames }
    }

    /// Builds a dataset from existing frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn from_frames(frames: Vec<FrameImage>) -> Dataset {
        assert!(!frames.is_empty(), "dataset needs frames");
        Dataset { frames }
    }

    /// The frames in this dataset.
    pub fn frames(&self) -> &[FrameImage] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Always false (construction requires frames).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Tiles every frame on a `grid` x `grid` lattice and returns all
    /// tiles.
    pub fn tiles(&self, grid: usize) -> Vec<TileImage> {
        self.frames
            .iter()
            .flat_map(|f| tile_frame(f, grid))
            .collect()
    }

    /// Dataset-wide cloud (low-value) pixel fraction.
    pub fn cloud_fraction(&self) -> f64 {
        // Serial left-to-right accumulation in frame order pins the
        // (non-associative) f64 reduction order.
        let mut total = 0.0;
        for frame in &self.frames {
            total += frame.cloud_fraction();
        }
        total / self.frames.len() as f64
    }

    /// Splits frames into train and validation subsets.
    ///
    /// Splitting at frame granularity avoids leaking pixels of one frame
    /// into both sides (tiles of a frame share cloud systems).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_fraction < 1`, or if either side would be
    /// empty.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let mut indices: Vec<usize> = (0..self.frames.len()).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x5917);
        // Fisher-Yates shuffle.
        for i in (1..indices.len()).rev() {
            let j = rng.random_range(0..=i);
            indices.swap(i, j);
        }
        let n_train = ((self.frames.len() as f64) * train_fraction).round() as usize;
        let n_train = n_train.clamp(1, self.frames.len() - 1);
        let (train_idx, val_idx) = indices.split_at(n_train.min(indices.len()));
        let train = train_idx
            .iter()
            .filter_map(|&i| self.frames.get(i).cloned())
            .collect();
        let val = val_idx
            .iter()
            .filter_map(|&i| self.frames.get(i).cloned())
            .collect();
        (Dataset { frames: train }, Dataset { frames: val })
    }
}

/// Renders frames at the given placements across worker threads, keeping
/// output order. Thread count adapts to the host; results are identical
/// to sequential rendering because each frame depends only on its
/// placement and the (shared, immutable) world.
fn render_parallel(
    world: &World,
    placements: &[(f64, f64, f64)],
    frame_px: usize,
    frame_km: f64,
) -> Vec<FrameImage> {
    // geodata sits below kodan_core in the dependency graph and cannot
    // use par; order-keyed slots give the same guarantee.
    // lint:allow(thread-discipline): par lives above geodata in the dep graph; the probe only sizes the pool, never the output
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(placements.len().max(1));
    if workers <= 1 || placements.len() < 4 {
        return placements
            .iter()
            .map(|&(lat, lon, t)| world.render_frame(lat, lon, t, frame_px, frame_km))
            .collect();
    }
    let mut slots: Vec<Option<FrameImage>> = vec![None; placements.len()];
    let chunk = placements.len().div_ceil(workers);
    // lint:allow(thread-discipline): scoped spawn writes disjoint index-keyed slots, so output equals the serial render order
    crossbeam::scope(|scope| {
        for (slot_chunk, place_chunk) in
            slots.chunks_mut(chunk).zip(placements.chunks(chunk))
        {
            scope.spawn(move |_| {
                for (slot, &(lat, lon, t)) in slot_chunk.iter_mut().zip(place_chunk) {
                    *slot = Some(world.render_frame(lat, lon, t, frame_px, frame_km));
                }
            });
        }
    })
    .expect("render workers do not panic");
    slots
        .into_iter()
        .map(|s| s.expect("every slot rendered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> Dataset {
        let world = World::new(42);
        Dataset::sample(&world, &DatasetConfig::small(1))
    }

    #[test]
    fn sampling_honors_frame_count_and_size() {
        let ds = small_dataset();
        assert_eq!(ds.len(), 12);
        for f in ds.frames() {
            assert_eq!(f.width(), 66);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let world = World::new(42);
        let a = Dataset::sample(&world, &DatasetConfig::small(1));
        let b = Dataset::sample(&world, &DatasetConfig::small(1));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_sample_different_frames() {
        let world = World::new(42);
        let a = Dataset::sample(&world, &DatasetConfig::small(1));
        let b = Dataset::sample(&world, &DatasetConfig::small(2));
        assert_ne!(a, b);
    }

    #[test]
    fn latitudes_stay_within_grid_limit() {
        let ds = small_dataset();
        for f in ds.frames() {
            assert!(f.center_lat_deg().abs() <= 82.6 + 1e-9);
        }
    }

    #[test]
    fn cloud_fraction_near_target() {
        let world = World::new(42); // default 52% target
        let mut config = DatasetConfig::small(3);
        config.frame_count = 48;
        let ds = Dataset::sample(&world, &config);
        let cf = ds.cloud_fraction();
        assert!((0.3..0.75).contains(&cf), "cloud fraction = {cf}");
    }

    #[test]
    fn tiles_cover_all_frames() {
        let ds = small_dataset();
        let tiles = ds.tiles(3);
        assert_eq!(tiles.len(), 12 * 9);
    }

    #[test]
    fn split_partitions_frames() {
        let ds = small_dataset();
        let (train, val) = ds.split(0.75, 7);
        assert_eq!(train.len() + val.len(), ds.len());
        assert_eq!(train.len(), 9);
        // No frame appears on both sides.
        for tf in train.frames() {
            assert!(!val.frames().contains(tf));
        }
    }

    #[test]
    fn split_is_deterministic() {
        let ds = small_dataset();
        let (a_train, _) = ds.split(0.5, 9);
        let (b_train, _) = ds.split(0.5, 9);
        assert_eq!(a_train, b_train);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn rejects_degenerate_split() {
        let _ = small_dataset().split(1.0, 0);
    }
}
