//! Per-pixel feature extraction for the ML substrate.
//!
//! The pixel classifiers operate on hand-computed features rather than raw
//! convolutions: the five spectral channels plus derived radiometric
//! indices and local texture statistics. Texture features are the bridge
//! between the resize pipeline and accuracy: decimation averages texture
//! away, interpolation flattens it, so a classifier that leans on texture
//! degrades whenever tile size and input size diverge — exactly the
//! tiling/precision coupling the paper measures.

use crate::pixel::CHANNELS;

/// Number of features per pixel.
pub const FEATURE_DIM: usize = 12;

/// Human-readable feature names, index-aligned with the output of
/// [`pixel_features`].
pub const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "blue",
    "green",
    "red",
    "nir",
    "cirrus",
    "luminance",
    "local_std",
    "local_range",
    "cirrus_excess",
    "ndvi",
    "whiteness",
    "nir_blue_ratio",
];

/// Computes the per-pixel feature matrix for an interleaved image buffer
/// of `size` x `size` pixels.
///
/// Returns a row-major matrix with one row of [`FEATURE_DIM`] features per
/// pixel.
///
/// # Panics
///
/// Panics if the buffer length does not match `size * size * CHANNELS`.
pub fn pixel_features(channels: &[f32], size: usize) -> Vec<f64> {
    assert_eq!(
        channels.len(),
        size * size * CHANNELS,
        "buffer length mismatch"
    );
    let lum = luminance_plane(channels, size);
    let mut out = Vec::with_capacity(size * size * FEATURE_DIM);
    for r in 0..size {
        for c in 0..size {
            let idx = r * size + c;
            let px = &channels[idx * CHANNELS..(idx + 1) * CHANNELS];
            let blue = f64::from(px[0]);
            let green = f64::from(px[1]);
            let red = f64::from(px[2]);
            let nir = f64::from(px[3]);
            let cirrus = f64::from(px[4]);
            let l = lum[idx];

            let (local_std, local_range) = neighborhood_stats(&lum, size, r, c);
            let cirrus_excess = cirrus - 0.05 * l;
            let ndvi = (nir - red) / (nir + red + 1e-6);
            let whiteness = -((blue - green).abs() + (green - red).abs());
            let nir_blue = (nir / (blue + 1e-3)).min(8.0);

            out.extend_from_slice(&[
                blue,
                green,
                red,
                nir,
                cirrus,
                l,
                local_std,
                local_range,
                cirrus_excess,
                ndvi,
                whiteness,
                nir_blue,
            ]);
        }
    }
    out
}

/// Visible-band luminance plane.
fn luminance_plane(channels: &[f32], size: usize) -> Vec<f64> {
    (0..size * size)
        .map(|idx| {
            let px = &channels[idx * CHANNELS..(idx + 1) * CHANNELS];
            (f64::from(px[0]) + f64::from(px[1]) + f64::from(px[2])) / 3.0
        })
        .collect()
}

/// Standard deviation and range of luminance in the 3x3 neighborhood
/// (clamped at edges).
fn neighborhood_stats(lum: &[f64], size: usize, r: usize, c: usize) -> (f64, f64) {
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut n = 0.0;
    for dr in -1i64..=1 {
        for dc in -1i64..=1 {
            let rr = (r as i64 + dr).clamp(0, size as i64 - 1) as usize;
            let cc = (c as i64 + dc).clamp(0, size as i64 - 1) as usize;
            let v = lum[rr * size + cc];
            sum += v;
            sum_sq += v * v;
            min = min.min(v);
            max = max.max(v);
            n += 1.0;
        }
    }
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    (var.sqrt(), max - min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::World;
    use crate::resize::resize_channels;
    use crate::tile::tile_frame;

    #[test]
    fn feature_matrix_shape() {
        let buf = vec![0.5f32; 8 * 8 * CHANNELS];
        let feats = pixel_features(&buf, 8);
        assert_eq!(feats.len(), 8 * 8 * FEATURE_DIM);
    }

    #[test]
    fn constant_image_has_zero_texture() {
        let buf = vec![0.3f32; 6 * 6 * CHANNELS];
        let feats = pixel_features(&buf, 6);
        for row in feats.chunks_exact(FEATURE_DIM) {
            assert!(row[6].abs() < 1e-9, "local_std {}", row[6]);
            assert!(row[7].abs() < 1e-9, "local_range {}", row[7]);
        }
    }

    #[test]
    fn texture_features_respond_to_checkerboard() {
        let mut buf = vec![0.0f32; 6 * 6 * CHANNELS];
        for r in 0..6 {
            for c in 0..6 {
                let v = ((r + c) % 2) as f32;
                for ch in 0..CHANNELS {
                    buf[(r * 6 + c) * CHANNELS + ch] = v;
                }
            }
        }
        let feats = pixel_features(&buf, 6);
        let center = &feats[(2 * 6 + 2) * FEATURE_DIM..(2 * 6 + 3) * FEATURE_DIM];
        assert!(center[6] > 0.3, "local_std {}", center[6]);
        assert!((center[7] - 1.0).abs() < 1e-9, "local_range {}", center[7]);
    }

    #[test]
    fn ndvi_positive_for_vegetation_signature() {
        // NIR >> red, the vegetation red edge.
        let mut buf = vec![0.0f32; CHANNELS];
        buf[2] = 0.05; // red
        buf[3] = 0.35; // nir
        let feats = pixel_features(&buf, 1);
        assert!(feats[9] > 0.5, "ndvi = {}", feats[9]);
    }

    #[test]
    fn whiteness_highest_for_gray_pixels() {
        let gray = {
            let mut b = vec![0.5f32; CHANNELS];
            b[4] = 0.1;
            pixel_features(&b, 1)[10]
        };
        let colorful = {
            let mut b = vec![0.0f32; CHANNELS];
            b[0] = 0.1;
            b[1] = 0.5;
            b[2] = 0.9;
            pixel_features(&b, 1)[10]
        };
        assert!(gray > colorful);
    }

    #[test]
    fn resize_mismatch_weakens_texture_features() {
        // The core mechanism behind the tiling optimum: texture features
        // measured after upsampling are weaker than at native resolution.
        let frame = World::new(42).render_frame(5.0, 15.0, 0.0, 66, 150.0);
        let tiles = tile_frame(&frame, 11); // 6 px tiles
        let tile = &tiles[60];
        let native = pixel_features(tile.channels(), tile.size());
        let upsampled_buf = resize_channels(tile.channels(), tile.size(), CHANNELS, 22);
        let upsampled = pixel_features(&upsampled_buf, 22);

        let mean_std = |feats: &[f64]| {
            let rows = feats.len() / FEATURE_DIM;
            feats
                .chunks_exact(FEATURE_DIM)
                .map(|r| r[6])
                .sum::<f64>()
                / rows as f64
        };
        assert!(
            mean_std(&upsampled) < mean_std(&native),
            "upsampled texture {} vs native {}",
            mean_std(&upsampled),
            mean_std(&native)
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_bad_buffer() {
        let _ = pixel_features(&[0.0; 7], 2);
    }
}
