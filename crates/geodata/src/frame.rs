//! Whole-frame rendering: the `World` generator and the `FrameImage` type.
//!
//! A frame is what the satellite's imager captures at one ground-track
//! point: a square raster of multispectral pixels with, for evaluation
//! purposes, the per-pixel truth (cloud mask and surface type) that a real
//! dataset would provide as annotations.

use crate::clouds::{CloudField, CLOUD_TRUTH_THRESHOLD};
use crate::pixel::{synthesize_pixel, Confusers, PixelEnvironment, CHANNELS};
use crate::surface::{SurfaceMap, SurfaceType};
use serde::{Deserialize, Serialize};

/// The procedural world: surface map + cloud field + confusers, all from
/// one seed.
///
/// # Example
///
/// ```
/// use kodan_geodata::frame::World;
/// let world = World::new(42);
/// let frame = world.render_frame(45.0, 10.0, 0.0, 33, 150.0);
/// assert_eq!(frame.width() * frame.height(), frame.pixel_count());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct World {
    seed: u64,
    surface: SurfaceMap,
    clouds: CloudField,
    confusers: Confusers,
}

impl World {
    /// Creates a world with the representative-dataset cloud coverage
    /// (52 % cloudy, as in the paper's Sentinel-2 dataset).
    pub fn new(seed: u64) -> World {
        World::with_cloud_coverage(seed, 0.52)
    }

    /// Creates a world with a specific target cloud coverage — e.g. 0.67
    /// for the global climatology used in the motivation figures.
    pub fn with_cloud_coverage(seed: u64, coverage: f64) -> World {
        World {
            seed,
            surface: SurfaceMap::new(seed),
            clouds: CloudField::new(seed, coverage),
            confusers: Confusers::new(seed),
        }
    }

    /// The world seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The surface map.
    pub fn surface(&self) -> &SurfaceMap {
        &self.surface
    }

    /// The cloud field.
    pub fn clouds(&self) -> &CloudField {
        &self.clouds
    }

    /// Renders a square frame of `px` x `px` pixels centered at
    /// (`lat_deg`, `lon_deg`) covering `frame_km` kilometers on a side, at
    /// simulation time `t_days`.
    ///
    /// # Panics
    ///
    /// Panics if `px` is zero or `frame_km` is not positive.
    pub fn render_frame(
        &self,
        lat_deg: f64,
        lon_deg: f64,
        t_days: f64,
        px: usize,
        frame_km: f64,
    ) -> FrameImage {
        assert!(px > 0, "frame must have pixels");
        assert!(frame_km > 0.0, "frame must have extent");
        let deg_per_km = 1.0 / 111.32;
        let half = frame_km / 2.0;
        let cos_lat = lat_deg.to_radians().cos().max(0.05);

        let mut channels = vec![0.0f32; px * px * CHANNELS];
        let mut truth_cloudy = vec![false; px * px];
        let mut surface = Vec::with_capacity(px * px);

        for row in 0..px {
            // Row 0 at the north edge.
            let dy_km = half - frame_km * (row as f64 + 0.5) / px as f64;
            let p_lat = lat_deg + dy_km * deg_per_km;
            for col in 0..px {
                let dx_km = -half + frame_km * (col as f64 + 0.5) / px as f64;
                let p_lon = lon_deg + dx_km * deg_per_km / cos_lat;

                let s = self.surface.classify(p_lat, p_lon);
                let depth = self.clouds.optical_depth(p_lat, p_lon, t_days);
                let env = PixelEnvironment {
                    surface: s,
                    cloud_depth: depth,
                    lat_deg: p_lat,
                    lon_deg: p_lon,
                    t_days,
                };
                let values =
                    synthesize_pixel(&env, &self.confusers, self.seed, col as i64, row as i64);
                let idx = row * px + col;
                channels[idx * CHANNELS..(idx + 1) * CHANNELS]
                    .copy_from_slice(&values);
                truth_cloudy[idx] = depth > CLOUD_TRUTH_THRESHOLD;
                surface.push(s);
            }
        }

        FrameImage {
            px,
            channels,
            truth_cloudy,
            surface,
            center_lat_deg: lat_deg,
            center_lon_deg: lon_deg,
            t_days,
            frame_km,
        }
    }
}

/// A rendered frame: pixels plus ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameImage {
    px: usize,
    /// Interleaved channel data, `px * px * CHANNELS` long.
    channels: Vec<f32>,
    /// Per-pixel cloud truth.
    truth_cloudy: Vec<bool>,
    /// Per-pixel surface truth.
    surface: Vec<SurfaceType>,
    center_lat_deg: f64,
    center_lon_deg: f64,
    t_days: f64,
    frame_km: f64,
}

impl FrameImage {
    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.px
    }

    /// Frame height in pixels (frames are square).
    pub fn height(&self) -> usize {
        self.px
    }

    /// Total pixel count.
    pub fn pixel_count(&self) -> usize {
        self.px * self.px
    }

    /// Ground extent of the frame, kilometers on a side.
    pub fn frame_km(&self) -> f64 {
        self.frame_km
    }

    /// Frame center latitude, degrees.
    pub fn center_lat_deg(&self) -> f64 {
        self.center_lat_deg
    }

    /// Frame center longitude, degrees.
    pub fn center_lon_deg(&self) -> f64 {
        self.center_lon_deg
    }

    /// Capture time, days.
    pub fn t_days(&self) -> f64 {
        self.t_days
    }

    /// The interleaved channel buffer (`CHANNELS` floats per pixel).
    pub fn channels(&self) -> &[f32] {
        &self.channels
    }

    /// Reflectance of one pixel in one channel.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates or channel are out of range.
    pub fn at(&self, row: usize, col: usize, channel: usize) -> f32 {
        assert!(row < self.px && col < self.px && channel < CHANNELS);
        self.channels[(row * self.px + col) * CHANNELS + channel]
    }

    /// Per-pixel cloud truth mask (row-major).
    pub fn truth_cloudy(&self) -> &[bool] {
        &self.truth_cloudy
    }

    /// Per-pixel surface truth (row-major).
    pub fn surface(&self) -> &[SurfaceType] {
        &self.surface
    }

    /// Fraction of pixels that are cloudy.
    pub fn cloud_fraction(&self) -> f64 {
        self.truth_cloudy.iter().filter(|&&c| c).count() as f64 / self.pixel_count() as f64
    }

    /// Fraction of pixels that are high-value (clear).
    pub fn high_value_fraction(&self) -> f64 {
        1.0 - self.cloud_fraction()
    }

    /// Fraction of pixels of each surface type, indexed by
    /// [`SurfaceType::index`].
    pub fn surface_fractions(&self) -> [f64; 8] {
        let mut counts = [0.0f64; 8];
        for s in &self.surface {
            counts[s.index()] += 1.0;
        }
        let n = self.pixel_count() as f64;
        for c in &mut counts {
            *c /= n;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_dimensions_and_buffers_agree() {
        let world = World::new(1);
        let frame = world.render_frame(30.0, 50.0, 0.0, 24, 150.0);
        assert_eq!(frame.width(), 24);
        assert_eq!(frame.pixel_count(), 576);
        assert_eq!(frame.channels().len(), 576 * CHANNELS);
        assert_eq!(frame.truth_cloudy().len(), 576);
        assert_eq!(frame.surface().len(), 576);
    }

    #[test]
    fn rendering_is_deterministic() {
        let world = World::new(11);
        let a = world.render_frame(-5.0, 100.0, 1.5, 16, 150.0);
        let b = world.render_frame(-5.0, 100.0, 1.5, 16, 150.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_locations_differ() {
        let world = World::new(11);
        let a = world.render_frame(-5.0, 100.0, 0.0, 16, 150.0);
        let b = world.render_frame(40.0, -80.0, 0.0, 16, 150.0);
        assert_ne!(a.channels(), b.channels());
    }

    #[test]
    fn cloud_fraction_matches_truth_mask() {
        let world = World::new(11);
        let frame = world.render_frame(50.0, 10.0, 0.0, 20, 150.0);
        let manual =
            frame.truth_cloudy().iter().filter(|&&c| c).count() as f64 / 400.0;
        assert!((frame.cloud_fraction() - manual).abs() < 1e-12);
        assert!((frame.high_value_fraction() + frame.cloud_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn surface_fractions_sum_to_one() {
        let world = World::new(11);
        let frame = world.render_frame(10.0, 30.0, 0.0, 20, 150.0);
        let sum: f64 = frame.surface_fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ocean_frames_are_mostly_ocean() {
        // Find an ocean-dominated frame by scanning; the map is seeded so
        // this is stable.
        let world = World::new(42);
        let mut found = false;
        for lon in (-180..180).step_by(20) {
            let frame = world.render_frame(-20.0, lon as f64, 0.0, 12, 150.0);
            let ocean = frame.surface_fractions()[SurfaceType::Ocean.index()];
            if ocean > 0.95 {
                found = true;
                break;
            }
        }
        assert!(found, "no open-ocean frame found along -20 deg latitude");
    }

    #[test]
    fn cloudy_pixels_are_brighter_on_average() {
        let world = World::new(42);
        // Average over several frames to smooth confuser noise.
        let mut clear_sum = 0.0;
        let mut clear_n = 0.0;
        let mut cloud_sum = 0.0;
        let mut cloud_n = 0.0;
        for lon in (-180..180).step_by(45) {
            let frame = world.render_frame(0.0, lon as f64, 0.0, 16, 150.0);
            for row in 0..16 {
                for col in 0..16 {
                    let lum = (frame.at(row, col, 0)
                        + frame.at(row, col, 1)
                        + frame.at(row, col, 2)) as f64;
                    if frame.truth_cloudy()[row * 16 + col] {
                        cloud_sum += lum;
                        cloud_n += 1.0;
                    } else {
                        clear_sum += lum;
                        clear_n += 1.0;
                    }
                }
            }
        }
        assert!(clear_n > 0.0 && cloud_n > 0.0);
        assert!(cloud_sum / cloud_n > clear_sum / clear_n);
    }

    #[test]
    #[should_panic(expected = "pixels")]
    fn rejects_zero_pixel_frame() {
        let _ = World::new(1).render_frame(0.0, 0.0, 0.0, 0, 150.0);
    }
}
