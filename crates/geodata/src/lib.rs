//! # kodan-geodata
//!
//! A procedural geospatial dataset, built as the data substrate for the
//! Kodan (ASPLOS '23) reproduction. It stands in for the Sentinel-2 Cloud
//! Mask Catalogue used by the paper: multispectral satellite image tiles
//! with per-pixel cloud truth masks and per-tile classification label
//! vectors.
//!
//! Everything is generated deterministically from a seed:
//!
//! - [`noise`] — seeded value noise and fractal Brownian motion,
//! - [`surface`] — a global surface-type map (ocean, forest, desert, ...),
//! - [`clouds`] — spatially and temporally correlated cloud fields with
//!   latitude-dependent climatology,
//! - [`pixel`] — multispectral radiance synthesis, including the classic
//!   cloud-masking confusers (ocean sun glint, desert dust, snow),
//! - [`frame`] — whole-frame rendering at a ground-track point,
//! - [`tile`] — frame tiling and per-tile labels,
//! - [`resize`] — the decimation/interpolation pipeline that couples frame
//!   tiling to model input resolution (paper Section 3, Figure 6),
//! - [`features`] — per-pixel feature extraction for the ML substrate,
//! - [`dataset`] — representative dataset assembly and train/validation
//!   splits.
//!
//! The generator is designed so the phenomena Kodan exploits *emerge* from
//! the data rather than being hard-coded: cloud/surface separability varies
//! by surface context, tiles are spatially coherent, and cloud edges carry
//! fine structure that decimation destroys.
//!
//! ## Example
//!
//! ```
//! use kodan_geodata::frame::World;
//!
//! let world = World::new(7);
//! let frame = world.render_frame(12.0, -71.0, 0.0, 66, 150.0);
//! assert_eq!(frame.width(), 66);
//! let cloudy = frame.cloud_fraction();
//! assert!((0.0..=1.0).contains(&cloudy));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod augment;
pub mod clouds;
pub mod dataset;
pub mod features;
pub mod frame;
pub mod noise;
pub mod pixel;
pub mod resize;
pub mod stats;
pub mod surface;
pub mod tile;

pub use dataset::{Dataset, DatasetConfig};
pub use frame::{FrameImage, World};
pub use surface::SurfaceType;
pub use tile::TileImage;
