//! Seeded value noise and fractal Brownian motion.
//!
//! All procedural structure in the dataset — continents, biomes, cloud
//! fields, sensor confusers — is driven by the noise in this module. The
//! generator is a lattice value noise: pseudo-random values hashed from
//! integer lattice coordinates, blended with a quintic smoothstep. Fractal
//! Brownian motion (fBm) sums octaves of it for natural-looking structure
//! with power at many spatial scales — which is exactly what gives cloud
//! edges the fine detail that tiling decimation destroys.
//!
//! Determinism matters: the same `(seed, coordinates)` always produces the
//! same field, so datasets are reproducible and tests are stable.

use serde::{Deserialize, Serialize};

/// SplitMix64 — a small, high-quality 64-bit mixer used to hash lattice
/// coordinates into pseudo-random values.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a set of integers (plus a seed) to a uniform `f64` in `[0, 1)`.
#[inline]
pub fn hash_to_unit(seed: u64, coords: &[i64]) -> f64 {
    let mut h = splitmix64(seed);
    for &c in coords {
        h = splitmix64(h ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    // 53 mantissa bits -> [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Quintic smoothstep `6t^5 - 15t^4 + 10t^3`, C2-continuous at 0 and 1.
#[inline]
fn smooth(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

#[inline]
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// A seeded 3-D value-noise field over `(x, y, t)`.
///
/// The third axis is typically time (days), which gives cloud fields
/// temporal evolution. For static fields (terrain), pass `t = 0`.
///
/// # Example
///
/// ```
/// use kodan_geodata::noise::NoiseField;
/// let n = NoiseField::new(42);
/// let v = n.value(1.5, 2.5, 0.0);
/// assert!((0.0..=1.0).contains(&v));
/// assert_eq!(v, NoiseField::new(42).value(1.5, 2.5, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoiseField {
    seed: u64,
}

impl NoiseField {
    /// Creates a noise field with the given seed.
    pub fn new(seed: u64) -> NoiseField {
        NoiseField { seed }
    }

    /// The seed of this field.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Single-octave value noise at `(x, y, t)`, in `[0, 1]`.
    pub fn value(&self, x: f64, y: f64, t: f64) -> f64 {
        let x0 = x.floor();
        let y0 = y.floor();
        let t0 = t.floor();
        let fx = smooth(x - x0);
        let fy = smooth(y - y0);
        let ft = smooth(t - t0);
        let (xi, yi, ti) = (x0 as i64, y0 as i64, t0 as i64);

        let corner = |dx: i64, dy: i64, dt: i64| {
            hash_to_unit(self.seed, &[xi + dx, yi + dy, ti + dt])
        };

        let c000 = corner(0, 0, 0);
        let c100 = corner(1, 0, 0);
        let c010 = corner(0, 1, 0);
        let c110 = corner(1, 1, 0);
        let c001 = corner(0, 0, 1);
        let c101 = corner(1, 0, 1);
        let c011 = corner(0, 1, 1);
        let c111 = corner(1, 1, 1);

        let x00 = lerp(c000, c100, fx);
        let x10 = lerp(c010, c110, fx);
        let x01 = lerp(c001, c101, fx);
        let x11 = lerp(c011, c111, fx);
        let y0v = lerp(x00, x10, fy);
        let y1v = lerp(x01, x11, fy);
        lerp(y0v, y1v, ft)
    }

    /// Fractal Brownian motion: `octaves` octaves of value noise with the
    /// given `lacunarity` (frequency multiplier per octave) and `gain`
    /// (amplitude multiplier per octave). Output is normalized to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `octaves` is zero.
    pub fn fbm(&self, x: f64, y: f64, t: f64, octaves: u32, lacunarity: f64, gain: f64) -> f64 {
        assert!(octaves > 0, "fBm needs at least one octave");
        let mut sum = 0.0;
        let mut amplitude = 1.0;
        let mut total_amplitude = 0.0;
        let mut fx = x;
        let mut fy = y;
        let mut ft = t;
        for octave in 0..octaves {
            // Re-seed per octave so octaves are independent fields.
            let field = NoiseField::new(self.seed.wrapping_add(u64::from(octave) * 0x9E37));
            sum += amplitude * field.value(fx, fy, ft);
            total_amplitude += amplitude;
            amplitude *= gain;
            fx *= lacunarity;
            fy *= lacunarity;
            ft *= lacunarity;
        }
        sum / total_amplitude
    }

    /// Standard 5-octave fBm with lacunarity 2 and gain 0.5 — the default
    /// used for terrain and clouds.
    pub fn fbm5(&self, x: f64, y: f64, t: f64) -> f64 {
        self.fbm(x, y, t, 5, 2.0, 0.5)
    }
}

/// White noise keyed by pixel coordinates: zero-mean, approximately
/// Gaussian (sum of four uniforms), scaled by `sigma`. Used for sensor
/// noise so that rendering needs no RNG state.
pub fn pixel_noise(seed: u64, x: i64, y: i64, channel: usize, sigma: f64) -> f64 {
    let mut acc = 0.0;
    for k in 0..4u64 {
        acc += hash_to_unit(
            seed ^ 0xC0FF_EE00u64.wrapping_add(k),
            &[x, y, channel as i64],
        );
    }
    // Sum of 4 uniforms: mean 2.0, variance 4/12. Normalize to ~N(0,1).
    (acc - 2.0) / (1.0 / 3.0f64).sqrt() * sigma
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_uniform_ish() {
        let a = hash_to_unit(1, &[10, 20]);
        let b = hash_to_unit(1, &[10, 20]);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));

        // Mean of many hashes should be near 0.5.
        let mean: f64 = (0..10_000)
            .map(|i| hash_to_unit(7, &[i, i * 3 + 1]))
            .sum::<f64>()
            / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let n1 = NoiseField::new(1);
        let n2 = NoiseField::new(2);
        let mut diffs = 0;
        for i in 0..100 {
            let x = i as f64 * 0.37;
            if (n1.value(x, x, 0.0) - n2.value(x, x, 0.0)).abs() > 1e-6 {
                diffs += 1;
            }
        }
        assert!(diffs > 90);
    }

    #[test]
    fn noise_is_continuous() {
        let n = NoiseField::new(9);
        let mut prev = n.value(0.0, 0.5, 0.0);
        for i in 1..1000 {
            let x = i as f64 * 0.001;
            let v = n.value(x, 0.5, 0.0);
            assert!((v - prev).abs() < 0.05, "jump at x={x}");
            prev = v;
        }
    }

    #[test]
    fn noise_in_unit_range() {
        let n = NoiseField::new(3);
        for i in 0..500 {
            let x = i as f64 * 0.173;
            let v = n.fbm5(x, x * 0.7, 0.3);
            assert!((0.0..=1.0).contains(&v), "fbm out of range: {v}");
        }
    }

    #[test]
    fn fbm_adds_fine_structure() {
        // fBm should vary on finer scales than a single octave: compare
        // total variation along a transect.
        let n = NoiseField::new(11);
        let tv = |f: &dyn Fn(f64) -> f64| -> f64 {
            let mut acc = 0.0;
            let mut prev = f(0.0);
            for i in 1..2000 {
                let v = f(i as f64 * 0.005);
                acc += (v - prev).abs();
                prev = v;
            }
            acc
        };
        let single = tv(&|x| n.value(x, 0.0, 0.0));
        let fractal = tv(&|x| n.fbm5(x, 0.0, 0.0));
        assert!(
            fractal > 1.2 * single,
            "fbm TV {fractal} vs single-octave TV {single}"
        );
    }

    #[test]
    fn time_axis_evolves_field() {
        let n = NoiseField::new(5);
        let before = n.fbm5(3.3, 4.4, 0.0);
        let after = n.fbm5(3.3, 4.4, 5.0);
        assert!((before - after).abs() > 1e-6);
    }

    #[test]
    fn pixel_noise_statistics() {
        let mut mean = 0.0;
        let mut var = 0.0;
        let count = 20_000;
        for i in 0..count {
            let v = pixel_noise(1, i, i * 7 + 3, 0, 0.05);
            mean += v;
            var += v * v;
        }
        mean /= count as f64;
        var = var / count as f64 - mean * mean;
        assert!(mean.abs() < 0.005, "mean = {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.01, "sigma = {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "octave")]
    fn fbm_rejects_zero_octaves() {
        let _ = NoiseField::new(0).fbm(0.0, 0.0, 0.0, 0, 2.0, 0.5);
    }
}
