//! Multispectral pixel synthesis.
//!
//! Each pixel's top-of-atmosphere radiance is a blend of its surface
//! reflectance and cloud reflectance, weighted by cloud optical depth,
//! plus the *confusers* that make real cloud masking hard:
//!
//! - **sun glint** brightens ocean pixels in the visible bands, mimicking
//!   cloud;
//! - **dust plumes** over desert raise the cirrus band, mimicking thin
//!   cirrus;
//! - **snow** is intrinsically bright and raises the cirrus band.
//!
//! Because each confuser is surface-specific, the optimal cloud/clear
//! decision boundary differs by surface context. That is precisely why
//! context-specialized models beat a single global model (paper
//! Section 5.3) — and here it emerges from the radiometry rather than
//! being assumed.

use crate::noise::{pixel_noise, NoiseField};
use crate::surface::SurfaceType;
use serde::{Deserialize, Serialize};

/// Number of spectral channels.
pub const CHANNELS: usize = 5;

/// Channel names, indexed as in every per-pixel array.
pub const CHANNEL_NAMES: [&str; CHANNELS] = ["blue", "green", "red", "nir", "cirrus"];

/// Cloud top-of-atmosphere reflectance per channel: bright and white in
/// the visible and NIR, strong in the cirrus absorption band.
pub const CLOUD_ALBEDO: [f64; CHANNELS] = [0.76, 0.75, 0.74, 0.70, 0.32];

/// Per-channel sensor noise (standard deviation of reflectance units).
pub const SENSOR_NOISE_SIGMA: f64 = 0.045;

/// Inputs to pixel synthesis, gathered by the frame renderer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PixelEnvironment {
    /// Surface under the pixel.
    pub surface: SurfaceType,
    /// Cloud optical depth in `[0, 1]`.
    pub cloud_depth: f64,
    /// Geodetic latitude, degrees (drives confuser fields).
    pub lat_deg: f64,
    /// Geodetic longitude, degrees.
    pub lon_deg: f64,
    /// Simulation time, days.
    pub t_days: f64,
}

/// The confuser field generator: slowly-varying nuisance signals keyed to
/// surface type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Confusers {
    glint: NoiseField,
    dust: NoiseField,
}

/// Spatial frequency of confuser patches, cycles per degree.
const CONFUSER_SCALE: f64 = 1.0 / 4.0;

impl Confusers {
    /// Creates the confuser generator from a seed.
    pub fn new(seed: u64) -> Confusers {
        Confusers {
            glint: NoiseField::new(seed ^ 0x611A),
            dust: NoiseField::new(seed ^ 0xD057),
        }
    }

    /// Additive per-channel perturbation for a pixel environment.
    pub fn perturbation(&self, env: &PixelEnvironment) -> [f64; CHANNELS] {
        let x = env.lon_deg * CONFUSER_SCALE;
        let y = env.lat_deg * CONFUSER_SCALE;
        let mut delta = [0.0; CHANNELS];
        match env.surface {
            SurfaceType::Ocean | SurfaceType::Wetland => {
                // Sun glint: patchy visible brightening over water.
                let g = self.glint.fbm5(x, y, env.t_days * 0.5);
                if g > 0.6 {
                    let strength = (g - 0.6) * 1.3;
                    delta[0] += 0.45 * strength;
                    delta[1] += 0.45 * strength;
                    delta[2] += 0.42 * strength;
                    delta[3] += 0.25 * strength;
                }
            }
            SurfaceType::Desert => {
                // Dust plumes raise the cirrus band and redden the visible.
                let d = self.dust.fbm5(x, y, env.t_days * 0.3);
                if d > 0.55 {
                    let strength = (d - 0.55) * 1.1;
                    delta[4] += 0.30 * strength;
                    delta[2] += 0.10 * strength;
                }
            }
            SurfaceType::Snow => {
                // Snow's intrinsic cirrus-band response varies with grain
                // size; modeled as a smooth perturbation.
                let s = self.dust.fbm5(x + 37.0, y - 11.0, env.t_days * 0.1);
                delta[4] += 0.10 * s;
            }
            _ => {}
        }
        delta
    }
}

/// Synthesizes one pixel's reflectance in all channels.
///
/// `noise_seed` keys the deterministic per-pixel sensor noise; `px`/`py`
/// are the pixel's integer coordinates within its frame.
pub fn synthesize_pixel(
    env: &PixelEnvironment,
    confusers: &Confusers,
    noise_seed: u64,
    px: i64,
    py: i64,
) -> [f32; CHANNELS] {
    let surface_albedo = env.surface.albedo();
    let confusion = confusers.perturbation(env);
    // Cloud transmissivity: optical depth in [0,1] maps to opacity with a
    // soft knee so thin cloud leaves the surface partially visible.
    let opacity = cloud_opacity(env.cloud_depth);
    let mut out = [0.0f32; CHANNELS];
    for (c, slot) in out.iter_mut().enumerate() {
        let clear = (surface_albedo[c] + confusion[c]).clamp(0.0, 1.0);
        let value = clear * (1.0 - opacity) + CLOUD_ALBEDO[c] * opacity;
        let noisy = value + pixel_noise(noise_seed, px, py, c, SENSOR_NOISE_SIGMA);
        *slot = noisy.clamp(0.0, 1.0) as f32;
    }
    out
}

/// Maps cloud optical depth to visual opacity with a soft knee.
pub fn cloud_opacity(depth: f64) -> f64 {
    let d = depth.clamp(0.0, 1.0);
    // Smoothstep between depth 0.25 (invisible haze) and 0.95 (opaque
    // deck): clouds near the 0.5 truth threshold are faint, which is what
    // makes thin-cloud masking genuinely hard.
    let t = ((d - 0.25) / 0.7).clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(surface: SurfaceType, depth: f64) -> PixelEnvironment {
        PixelEnvironment {
            surface,
            cloud_depth: depth,
            lat_deg: 10.0,
            lon_deg: 20.0,
            t_days: 0.0,
        }
    }

    #[test]
    fn clear_ocean_is_dark_cloudy_ocean_is_bright() {
        let confusers = Confusers::new(1);
        let clear = synthesize_pixel(&env(SurfaceType::Ocean, 0.0), &confusers, 1, 5, 5);
        let cloudy = synthesize_pixel(&env(SurfaceType::Ocean, 1.0), &confusers, 1, 5, 5);
        let clear_vis: f32 = clear[..3].iter().sum();
        let cloudy_vis: f32 = cloudy[..3].iter().sum();
        assert!(
            cloudy_vis > clear_vis + 1.0,
            "clear {clear_vis} vs cloudy {cloudy_vis}"
        );
    }

    #[test]
    fn snow_looks_like_cloud_in_the_visible() {
        let confusers = Confusers::new(1);
        let snow = synthesize_pixel(&env(SurfaceType::Snow, 0.0), &confusers, 1, 9, 9);
        let cloud = synthesize_pixel(&env(SurfaceType::Ocean, 1.0), &confusers, 1, 9, 9);
        // Visible channels within ~0.2 of each other: the hard context.
        for c in 0..3 {
            assert!(
                (snow[c] - cloud[c]).abs() < 0.25,
                "channel {c}: snow {} vs cloud {}",
                snow[c],
                cloud[c]
            );
        }
    }

    #[test]
    fn cirrus_band_separates_cloud_from_most_surfaces() {
        let confusers = Confusers::new(1);
        for surface in [SurfaceType::Ocean, SurfaceType::Forest, SurfaceType::Urban] {
            let clear = synthesize_pixel(&env(surface, 0.0), &confusers, 1, 3, 3);
            let cloudy = synthesize_pixel(&env(surface, 1.0), &confusers, 1, 3, 3);
            assert!(
                cloudy[4] > clear[4] + 0.2,
                "{surface}: cirrus clear {} vs cloudy {}",
                clear[4],
                cloudy[4]
            );
        }
    }

    #[test]
    fn opacity_has_soft_knee() {
        assert_eq!(cloud_opacity(0.0), 0.0);
        assert_eq!(cloud_opacity(0.1), 0.0);
        assert_eq!(cloud_opacity(1.0), 1.0);
        let mid = cloud_opacity(0.5);
        assert!((0.15..0.7).contains(&mid), "mid opacity {mid}");
        // Monotone.
        let mut prev = 0.0;
        for i in 0..=20 {
            let o = cloud_opacity(i as f64 / 20.0);
            assert!(o >= prev);
            prev = o;
        }
    }

    #[test]
    fn pixels_are_deterministic() {
        let confusers = Confusers::new(5);
        let a = synthesize_pixel(&env(SurfaceType::Forest, 0.3), &confusers, 42, 7, 8);
        let b = synthesize_pixel(&env(SurfaceType::Forest, 0.3), &confusers, 42, 7, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn sensor_noise_varies_by_pixel() {
        let confusers = Confusers::new(5);
        let a = synthesize_pixel(&env(SurfaceType::Forest, 0.3), &confusers, 42, 7, 8);
        let b = synthesize_pixel(&env(SurfaceType::Forest, 0.3), &confusers, 42, 8, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn reflectance_stays_in_unit_range() {
        let confusers = Confusers::new(5);
        for depth in [0.0, 0.3, 0.7, 1.0] {
            for surface in SurfaceType::ALL {
                let px = synthesize_pixel(&env(surface, depth), &confusers, 11, 2, 3);
                for v in px {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
        }
    }
}
