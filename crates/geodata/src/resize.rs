//! Image resizing: the decimation/interpolation pipeline.
//!
//! Frame tiling couples tile size to model input size (paper Figure 6):
//! every tile is resized to the neural network's input resolution before
//! inference. Tiles larger than the input are **decimated** by area
//! averaging — fine cloud-edge structure is destroyed. Tiles smaller than
//! the input are **interpolated** bilinearly — no information is added,
//! and local texture flattens out. Both effects degrade the features the
//! classifier relies on, producing the interior optimum in tile count
//! that Section 5.4 of the paper reports.

/// Resizes an interleaved multi-channel image from `src_size` x `src_size`
/// to `dst_size` x `dst_size`.
///
/// Downscaling uses exact area averaging; upscaling uses bilinear
/// interpolation; equal sizes return a copy.
///
/// # Panics
///
/// Panics if sizes are zero or the buffer length does not match
/// `src_size * src_size * channels`.
pub fn resize_channels(
    src: &[f32],
    src_size: usize,
    channels: usize,
    dst_size: usize,
) -> Vec<f32> {
    assert!(src_size > 0 && dst_size > 0, "image sizes must be positive");
    assert_eq!(
        src.len(),
        src_size * src_size * channels,
        "buffer length mismatch"
    );
    if dst_size == src_size {
        return src.to_vec();
    }
    if dst_size < src_size {
        area_average(src, src_size, channels, dst_size)
    } else {
        bilinear(src, src_size, channels, dst_size)
    }
}

/// Area-average downscale: each destination pixel integrates the exact
/// (possibly fractional) source region it covers.
fn area_average(src: &[f32], src_size: usize, channels: usize, dst_size: usize) -> Vec<f32> {
    let scale = src_size as f64 / dst_size as f64;
    let mut out = vec![0.0f32; dst_size * dst_size * channels];
    for dr in 0..dst_size {
        let r0 = dr as f64 * scale;
        let r1 = (dr + 1) as f64 * scale;
        for dc in 0..dst_size {
            let c0 = dc as f64 * scale;
            let c1 = (dc + 1) as f64 * scale;
            let mut acc = vec![0.0f64; channels];
            let mut area = 0.0f64;
            let mut sr = r0.floor() as usize;
            while (sr as f64) < r1 && sr < src_size {
                let row_overlap = (r1.min((sr + 1) as f64) - r0.max(sr as f64)).max(0.0);
                let mut sc = c0.floor() as usize;
                while (sc as f64) < c1 && sc < src_size {
                    let col_overlap = (c1.min((sc + 1) as f64) - c0.max(sc as f64)).max(0.0);
                    let w = row_overlap * col_overlap;
                    let base = (sr * src_size + sc) * channels;
                    for ch in 0..channels {
                        acc[ch] += f64::from(src[base + ch]) * w;
                    }
                    area += w;
                    sc += 1;
                }
                sr += 1;
            }
            let base = (dr * dst_size + dc) * channels;
            for ch in 0..channels {
                out[base + ch] = (acc[ch] / area) as f32;
            }
        }
    }
    out
}

/// Bilinear upscale with half-pixel centers.
fn bilinear(src: &[f32], src_size: usize, channels: usize, dst_size: usize) -> Vec<f32> {
    let scale = src_size as f64 / dst_size as f64;
    let mut out = vec![0.0f32; dst_size * dst_size * channels];
    let max_idx = src_size - 1;
    for dr in 0..dst_size {
        let sy = ((dr as f64 + 0.5) * scale - 0.5).clamp(0.0, max_idx as f64);
        let y0 = sy.floor() as usize;
        let y1 = (y0 + 1).min(max_idx);
        let fy = sy - y0 as f64;
        for dc in 0..dst_size {
            let sx = ((dc as f64 + 0.5) * scale - 0.5).clamp(0.0, max_idx as f64);
            let x0 = sx.floor() as usize;
            let x1 = (x0 + 1).min(max_idx);
            let fx = sx - x0 as f64;
            let base = (dr * dst_size + dc) * channels;
            for ch in 0..channels {
                let v00 = f64::from(src[(y0 * src_size + x0) * channels + ch]);
                let v10 = f64::from(src[(y0 * src_size + x1) * channels + ch]);
                let v01 = f64::from(src[(y1 * src_size + x0) * channels + ch]);
                let v11 = f64::from(src[(y1 * src_size + x1) * channels + ch]);
                let top = v00 + (v10 - v00) * fx;
                let bot = v01 + (v11 - v01) * fx;
                out[base + ch] = (top + (bot - top) * fy) as f32;
            }
        }
    }
    out
}

/// Resizes a boolean mask with nearest-neighbor sampling. Used to carry
/// predictions made at model input resolution back to a tile's native
/// resolution (and truth masks the other way).
///
/// # Panics
///
/// Panics if sizes are zero or the mask length does not match.
pub fn resize_mask(src: &[bool], src_size: usize, dst_size: usize) -> Vec<bool> {
    assert!(src_size > 0 && dst_size > 0, "mask sizes must be positive");
    assert_eq!(src.len(), src_size * src_size, "mask length mismatch");
    if dst_size == src_size {
        return src.to_vec();
    }
    let scale = src_size as f64 / dst_size as f64;
    let mut out = vec![false; dst_size * dst_size];
    for dr in 0..dst_size {
        let sr = (((dr as f64 + 0.5) * scale) as usize).min(src_size - 1);
        for dc in 0..dst_size {
            let sc = (((dc as f64 + 0.5) * scale) as usize).min(src_size - 1);
            out[dr * dst_size + dc] = src[sr * src_size + sc];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard(size: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; size * size];
        for r in 0..size {
            for c in 0..size {
                v[r * size + c] = ((r + c) % 2) as f32;
            }
        }
        v
    }

    #[test]
    fn identity_resize_is_copy() {
        let src = checkerboard(8);
        assert_eq!(resize_channels(&src, 8, 1, 8), src);
        let mask: Vec<bool> = src.iter().map(|&v| v > 0.5).collect();
        assert_eq!(resize_mask(&mask, 8, 8), mask);
    }

    #[test]
    fn downscale_preserves_mean() {
        let src = checkerboard(16);
        let dst = resize_channels(&src, 16, 1, 4);
        let src_mean: f32 = src.iter().sum::<f32>() / src.len() as f32;
        let dst_mean: f32 = dst.iter().sum::<f32>() / dst.len() as f32;
        assert!((src_mean - dst_mean).abs() < 1e-5);
    }

    #[test]
    fn downscale_destroys_checkerboard_contrast() {
        // The decimation mechanism: a 2x2 checkerboard block averages to
        // exactly 0.5 everywhere — all fine structure gone.
        let src = checkerboard(16);
        let dst = resize_channels(&src, 16, 1, 8);
        for &v in &dst {
            assert!((v - 0.5).abs() < 1e-6, "value {v}");
        }
    }

    #[test]
    fn upscale_flattens_local_texture() {
        // Interpolated neighbors are highly correlated, so local variance
        // shrinks relative to the source.
        let src = checkerboard(8);
        let dst = resize_channels(&src, 8, 1, 16);
        let variance = |v: &[f32]| {
            let m: f32 = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|x| (x - m).powi(2)).sum::<f32>() / v.len() as f32
        };
        assert!(variance(&dst) < variance(&src));
    }

    #[test]
    fn upscale_of_constant_is_constant() {
        let src = vec![0.7f32; 6 * 6 * 3];
        let dst = resize_channels(&src, 6, 3, 13);
        for &v in &dst {
            assert!((v - 0.7).abs() < 1e-6);
        }
        assert_eq!(dst.len(), 13 * 13 * 3);
    }

    #[test]
    fn fractional_ratio_downscale_preserves_mean() {
        // 33 -> 22 is the fractional case frame tiling hits in practice.
        let src: Vec<f32> = (0..33 * 33).map(|i| (i % 7) as f32 / 6.0).collect();
        let dst = resize_channels(&src, 33, 1, 22);
        let src_mean: f32 = src.iter().sum::<f32>() / src.len() as f32;
        let dst_mean: f32 = dst.iter().sum::<f32>() / dst.len() as f32;
        assert!((src_mean - dst_mean).abs() < 2e-3);
    }

    #[test]
    fn mask_round_trip_through_upscale_is_lossless() {
        let mask: Vec<bool> = (0..12 * 12).map(|i| i % 3 == 0).collect();
        let up = resize_mask(&mask, 12, 24);
        let back = resize_mask(&up, 24, 12);
        assert_eq!(back, mask);
    }

    #[test]
    fn mask_downscale_samples_centers() {
        let mut mask = vec![false; 4 * 4];
        // Mark the block whose center lands at (1,1) region.
        mask[1 * 4 + 1] = true;
        let down = resize_mask(&mask, 4, 2);
        assert!(down.iter().filter(|&&b| b).count() <= 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_bad_buffer() {
        let _ = resize_channels(&[0.0; 10], 4, 1, 2);
    }
}
