//! Dataset summary statistics.
//!
//! The paper characterizes its representative dataset (48 % high-value /
//! 52 % cloudy); this module computes the equivalent summary for a
//! procedural dataset — overall value balance, per-surface cloudiness,
//! radiometry, and latitude structure — for documentation and sanity
//! checks before a transformation run.

use crate::dataset::Dataset;
use crate::pixel::{CHANNELS, CHANNEL_NAMES};
use crate::surface::SurfaceType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-surface-type aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfaceStat {
    /// The surface type.
    pub surface: SurfaceType,
    /// Tiles whose dominant surface this is.
    pub tile_count: usize,
    /// Mean cloud fraction over those tiles.
    pub mean_cloud_fraction: f64,
}

/// Latitude-band aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatitudeBandStat {
    /// Band center latitude, degrees.
    pub center_deg: f64,
    /// Tiles in the band.
    pub tile_count: usize,
    /// Mean cloud fraction in the band.
    pub mean_cloud_fraction: f64,
}

/// Summary statistics of a dataset at one tile grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of frames.
    pub frame_count: usize,
    /// Number of tiles at the analyzed grid.
    pub tile_count: usize,
    /// Pixel-level cloud (low-value) fraction.
    pub cloud_fraction: f64,
    /// Mean reflectance per channel.
    pub channel_means: [f64; CHANNELS],
    /// Reflectance standard deviation per channel.
    pub channel_stds: [f64; CHANNELS],
    /// Per-dominant-surface aggregates, ordered by tile count.
    pub per_surface: Vec<SurfaceStat>,
    /// Cloudiness by 30-degree latitude band, south to north.
    pub latitude_bands: Vec<LatitudeBandStat>,
}

impl DatasetStats {
    /// Computes statistics over a dataset tiled at `grid`.
    ///
    /// # Panics
    ///
    /// Panics if `grid` does not divide the dataset's frame dimension.
    pub fn compute(dataset: &Dataset, grid: usize) -> DatasetStats {
        let tiles = dataset.tiles(grid);
        let tile_count = tiles.len();

        let mut cloud_sum = 0.0;
        let mut means = [0.0f64; CHANNELS];
        let mut sq = [0.0f64; CHANNELS];
        let mut surface_count = [0usize; 8];
        let mut surface_cloud = [0.0f64; 8];
        let band_count = 6;
        let mut band_tiles = vec![0usize; band_count];
        let mut band_cloud = vec![0.0f64; band_count];

        for tile in &tiles {
            cloud_sum += tile.cloud_fraction();
            let m = tile.channel_means();
            for c in 0..CHANNELS {
                means[c] += m[c];
                sq[c] += m[c] * m[c];
            }
            let dom = tile.dominant_surface().index();
            surface_count[dom] += 1;
            surface_cloud[dom] += tile.cloud_fraction();
            let band = (((tile.center_lat_deg() + 90.0) / 30.0) as usize).min(band_count - 1);
            band_tiles[band] += 1;
            band_cloud[band] += tile.cloud_fraction();
        }

        let n = tile_count.max(1) as f64;
        for c in 0..CHANNELS {
            means[c] /= n;
            sq[c] = (sq[c] / n - means[c] * means[c]).max(0.0).sqrt();
        }

        let mut per_surface: Vec<SurfaceStat> = SurfaceType::ALL
            .iter()
            .filter(|s| surface_count[s.index()] > 0)
            .map(|&surface| SurfaceStat {
                surface,
                tile_count: surface_count[surface.index()],
                mean_cloud_fraction: surface_cloud[surface.index()]
                    / surface_count[surface.index()] as f64,
            })
            .collect();
        per_surface.sort_by(|a, b| b.tile_count.cmp(&a.tile_count));

        let latitude_bands = (0..band_count)
            .map(|b| LatitudeBandStat {
                center_deg: -90.0 + 30.0 * b as f64 + 15.0,
                tile_count: band_tiles[b],
                mean_cloud_fraction: if band_tiles[b] > 0 {
                    band_cloud[b] / band_tiles[b] as f64
                } else {
                    0.0
                },
            })
            .collect();

        DatasetStats {
            frame_count: dataset.len(),
            tile_count,
            cloud_fraction: cloud_sum / n,
            channel_means: means,
            channel_stds: sq,
            per_surface,
            latitude_bands,
        }
    }

    /// Pixel-level high-value fraction.
    pub fn high_value_fraction(&self) -> f64 {
        1.0 - self.cloud_fraction
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} frames, {} tiles; {:.1}% cloudy / {:.1}% high-value",
            self.frame_count,
            self.tile_count,
            self.cloud_fraction * 100.0,
            self.high_value_fraction() * 100.0
        )?;
        writeln!(f, "channels (mean +/- std):")?;
        for c in 0..CHANNELS {
            writeln!(
                f,
                "  {:<8} {:.3} +/- {:.3}",
                CHANNEL_NAMES[c], self.channel_means[c], self.channel_stds[c]
            )?;
        }
        writeln!(f, "dominant surfaces:")?;
        for s in &self.per_surface {
            writeln!(
                f,
                "  {:<10} {:>5} tiles, {:>5.1}% cloudy",
                s.surface.name(),
                s.tile_count,
                s.mean_cloud_fraction * 100.0
            )?;
        }
        writeln!(f, "latitude bands:")?;
        for b in &self.latitude_bands {
            if b.tile_count > 0 {
                writeln!(
                    f,
                    "  {:>5.0} deg: {:>5} tiles, {:>5.1}% cloudy",
                    b.center_deg,
                    b.tile_count,
                    b.mean_cloud_fraction * 100.0
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use crate::frame::World;

    fn stats() -> DatasetStats {
        let world = World::new(42);
        let mut cfg = DatasetConfig::small(1);
        cfg.frame_count = 16;
        let dataset = Dataset::sample(&world, &cfg);
        DatasetStats::compute(&dataset, 3)
    }

    #[test]
    fn counts_are_consistent() {
        let s = stats();
        assert_eq!(s.frame_count, 16);
        assert_eq!(s.tile_count, 16 * 9);
        let surface_total: usize = s.per_surface.iter().map(|p| p.tile_count).sum();
        assert_eq!(surface_total, s.tile_count);
        let band_total: usize = s.latitude_bands.iter().map(|b| b.tile_count).sum();
        assert_eq!(band_total, s.tile_count);
    }

    #[test]
    fn fractions_are_physical() {
        let s = stats();
        assert!((0.0..=1.0).contains(&s.cloud_fraction));
        assert!((s.cloud_fraction + s.high_value_fraction() - 1.0).abs() < 1e-12);
        for p in &s.per_surface {
            assert!((0.0..=1.0).contains(&p.mean_cloud_fraction));
        }
        for c in 0..CHANNELS {
            assert!((0.0..=1.0).contains(&s.channel_means[c]));
            assert!(s.channel_stds[c] >= 0.0);
        }
    }

    #[test]
    fn surfaces_sorted_by_prevalence() {
        let s = stats();
        for pair in s.per_surface.windows(2) {
            assert!(pair[0].tile_count >= pair[1].tile_count);
        }
        // Ocean should be the most common dominant surface on an
        // Earth-like world.
        assert_eq!(s.per_surface[0].surface, SurfaceType::Ocean);
    }

    #[test]
    fn display_is_complete() {
        let text = stats().to_string();
        assert!(text.contains("cloudy"));
        assert!(text.contains("cirrus"));
        assert!(text.contains("ocean"));
        assert!(text.contains("latitude bands"));
    }
}
