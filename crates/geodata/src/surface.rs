//! The global surface-type map: what kind of terrain is under each pixel.
//!
//! Surface types are the backbone of *geospatial contexts* (paper
//! Section 3.2): images of ocean look alike, images of desert look alike,
//! and the difficulty of cloud masking differs between them. The map is
//! procedural — continents from low-frequency fBm elevation, biomes from
//! latitude-driven temperature and noise-driven moisture — but its
//! statistics are tuned to Earth-like values (about two-thirds ocean).

use crate::noise::NoiseField;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A terrain class, as would be recorded in a dataset's classification
/// label vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SurfaceType {
    /// Open water.
    Ocean,
    /// Closed-canopy forest.
    Forest,
    /// Grassland and cropland.
    Grassland,
    /// Sand and bare rock deserts.
    Desert,
    /// Built-up areas.
    Urban,
    /// Permanent snow and ice.
    Snow,
    /// High-latitude barren tundra.
    Tundra,
    /// Coastal wetlands and marshes.
    Wetland,
}

impl SurfaceType {
    /// All surface types, in a fixed order used for label vectors.
    pub const ALL: [SurfaceType; 8] = [
        SurfaceType::Ocean,
        SurfaceType::Forest,
        SurfaceType::Grassland,
        SurfaceType::Desert,
        SurfaceType::Urban,
        SurfaceType::Snow,
        SurfaceType::Tundra,
        SurfaceType::Wetland,
    ];

    /// Index of this type within [`SurfaceType::ALL`].
    pub fn index(self) -> usize {
        // Exhaustive match keeps this total: adding a variant without
        // updating ALL is a compile error here, not a runtime panic.
        match self {
            SurfaceType::Ocean => 0,
            SurfaceType::Forest => 1,
            SurfaceType::Grassland => 2,
            SurfaceType::Desert => 3,
            SurfaceType::Urban => 4,
            SurfaceType::Snow => 5,
            SurfaceType::Tundra => 6,
            SurfaceType::Wetland => 7,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SurfaceType::Ocean => "ocean",
            SurfaceType::Forest => "forest",
            SurfaceType::Grassland => "grassland",
            SurfaceType::Desert => "desert",
            SurfaceType::Urban => "urban",
            SurfaceType::Snow => "snow",
            SurfaceType::Tundra => "tundra",
            SurfaceType::Wetland => "wetland",
        }
    }

    /// True for land surfaces.
    pub fn is_land(self) -> bool {
        self != SurfaceType::Ocean
    }

    /// Top-of-atmosphere reflectance of this surface in each spectral
    /// channel (see [`crate::pixel`] for channel definitions). Values are
    /// representative of real remote-sensing albedos: ocean is dark, snow
    /// and desert are bright, vegetation peaks in the near-infrared.
    pub fn albedo(self) -> [f64; crate::pixel::CHANNELS] {
        match self {
            //                     blue   green  red    nir    cirrus
            SurfaceType::Ocean => [0.06, 0.05, 0.04, 0.02, 0.010],
            SurfaceType::Forest => [0.04, 0.07, 0.05, 0.35, 0.015],
            SurfaceType::Grassland => [0.08, 0.12, 0.10, 0.30, 0.015],
            SurfaceType::Desert => [0.25, 0.30, 0.36, 0.42, 0.030],
            SurfaceType::Urban => [0.15, 0.17, 0.18, 0.22, 0.025],
            SurfaceType::Snow => [0.85, 0.84, 0.80, 0.62, 0.080],
            SurfaceType::Tundra => [0.12, 0.14, 0.13, 0.20, 0.020],
            SurfaceType::Wetland => [0.05, 0.08, 0.06, 0.15, 0.012],
        }
    }
}

impl fmt::Display for SurfaceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The procedural global surface map.
///
/// # Example
///
/// ```
/// use kodan_geodata::surface::SurfaceMap;
/// let map = SurfaceMap::new(42);
/// let t = map.classify(35.0, -40.0); // mid-Atlantic-ish
/// assert_eq!(t, map.classify(35.0, -40.0)); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfaceMap {
    elevation: NoiseField,
    moisture: NoiseField,
    urban: NoiseField,
    /// Elevation threshold separating ocean from land; tuned so roughly
    /// two-thirds of the globe is ocean.
    sea_level: f64,
}

/// Spatial frequency of continents, cycles per degree.
const CONTINENT_SCALE: f64 = 1.0 / 40.0;
/// Spatial frequency of moisture bands.
const MOISTURE_SCALE: f64 = 1.0 / 25.0;
/// Spatial frequency of urban patches (small).
const URBAN_SCALE: f64 = 1.0 / 2.0;

impl SurfaceMap {
    /// Creates a surface map from a seed.
    pub fn new(seed: u64) -> SurfaceMap {
        SurfaceMap {
            elevation: NoiseField::new(seed ^ 0x5EA5),
            moisture: NoiseField::new(seed ^ 0x3017),
            urban: NoiseField::new(seed ^ 0x0B01),
            sea_level: 0.55,
        }
    }

    /// Raw elevation value in `[0, 1]` at a geodetic point (degrees).
    pub fn elevation(&self, lat_deg: f64, lon_deg: f64) -> f64 {
        let (x, y) = wrap_coords(lat_deg, lon_deg, CONTINENT_SCALE);
        self.elevation.fbm5(x, y, 0.0)
    }

    /// Classifies the surface at a geodetic point (degrees).
    pub fn classify(&self, lat_deg: f64, lon_deg: f64) -> SurfaceType {
        let elevation = self.elevation(lat_deg, lon_deg);
        if elevation < self.sea_level {
            return SurfaceType::Ocean;
        }

        // Temperature falls with |latitude| and altitude; a little noise
        // keeps biome boundaries organic.
        let (mx, my) = wrap_coords(lat_deg, lon_deg, MOISTURE_SCALE);
        let moisture = self.moisture.fbm5(mx, my, 0.0);
        let temp_noise = (self.moisture.value(mx * 3.0, my * 3.0, 1.0) - 0.5) * 0.15;
        let temperature =
            (lat_deg.to_radians().cos() - (elevation - self.sea_level) * 0.8 + temp_noise)
                .clamp(0.0, 1.0);

        if temperature < 0.28 {
            return SurfaceType::Snow;
        }
        if temperature < 0.42 {
            return SurfaceType::Tundra;
        }

        // Sparse urban patches on temperate land.
        let (ux, uy) = wrap_coords(lat_deg, lon_deg, URBAN_SCALE);
        if self.urban.value(ux, uy, 0.0) > 0.965 {
            return SurfaceType::Urban;
        }

        if moisture < 0.38 && temperature > 0.7 {
            return SurfaceType::Desert;
        }
        // Wetlands hug the coast: just-above-sea-level with high moisture.
        if elevation < self.sea_level + 0.02 && moisture > 0.6 {
            return SurfaceType::Wetland;
        }
        if moisture > 0.55 {
            return SurfaceType::Forest;
        }
        SurfaceType::Grassland
    }

    /// Estimates the global fraction of each surface type by sampling a
    /// latitude-weighted grid (`resolution` points per axis). Returns
    /// fractions indexed by [`SurfaceType::index`].
    pub fn global_fractions(&self, resolution: usize) -> [f64; 8] {
        let mut weights = [0.0f64; 8];
        let mut total = 0.0;
        for i in 0..resolution {
            let lat = -90.0 + 180.0 * (i as f64 + 0.5) / resolution as f64;
            let w = lat.to_radians().cos(); // area weight
            for j in 0..resolution {
                let lon = -180.0 + 360.0 * (j as f64 + 0.5) / resolution as f64;
                weights[self.classify(lat, lon).index()] += w;
                total += w;
            }
        }
        for w in &mut weights {
            *w /= total;
        }
        weights
    }
}

/// Maps (lat, lon) in degrees into noise-space coordinates at a given
/// spatial scale, compressing longitude by cos(lat) so features have
/// roughly isotropic ground dimensions.
fn wrap_coords(lat_deg: f64, lon_deg: f64, scale: f64) -> (f64, f64) {
    let x = lon_deg * lat_deg.to_radians().cos() / scale.recip();
    let y = lat_deg / scale.recip();
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ocean_fraction_is_earth_like() {
        let map = SurfaceMap::new(42);
        let fractions = map.global_fractions(60);
        let ocean = fractions[SurfaceType::Ocean.index()];
        assert!(
            (0.45..0.8).contains(&ocean),
            "ocean fraction = {ocean:.3}"
        );
    }

    #[test]
    fn high_latitudes_are_frozen() {
        let map = SurfaceMap::new(42);
        let mut snow_or_tundra_or_ocean = 0;
        let mut total = 0;
        for lon in (-180..180).step_by(10) {
            for &lat in &[84.0, -84.0] {
                let t = map.classify(lat, lon as f64);
                total += 1;
                if matches!(
                    t,
                    SurfaceType::Snow | SurfaceType::Tundra | SurfaceType::Ocean
                ) {
                    snow_or_tundra_or_ocean += 1;
                }
            }
        }
        assert!(
            snow_or_tundra_or_ocean as f64 / total as f64 > 0.9,
            "{snow_or_tundra_or_ocean}/{total}"
        );
    }

    #[test]
    fn all_types_occur_somewhere() {
        let map = SurfaceMap::new(42);
        let fractions = map.global_fractions(120);
        for t in SurfaceType::ALL {
            assert!(
                fractions[t.index()] > 0.0,
                "surface type {t} never occurs"
            );
        }
    }

    #[test]
    fn classification_is_deterministic() {
        let a = SurfaceMap::new(9).classify(12.3, 45.6);
        let b = SurfaceMap::new(9).classify(12.3, 45.6);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_move_the_continents() {
        let m1 = SurfaceMap::new(1);
        let m2 = SurfaceMap::new(2);
        let mut differ = 0;
        for i in 0..100 {
            let lat = -60.0 + (i as f64) * 1.2;
            let lon = (i as f64) * 3.6 - 180.0;
            if m1.classify(lat, lon) != m2.classify(lat, lon) {
                differ += 1;
            }
        }
        assert!(differ > 10, "only {differ} points differ");
    }

    #[test]
    fn surface_is_spatially_coherent() {
        // Neighboring points (0.1 degrees apart) should usually share a
        // surface type; that coherence is what makes tile contexts
        // meaningful.
        let map = SurfaceMap::new(42);
        let mut same = 0;
        let mut total = 0;
        for i in 0..200 {
            let lat = -80.0 + (i as f64) * 0.8;
            let lon = (i as f64) * 1.7 - 170.0;
            if map.classify(lat, lon) == map.classify(lat + 0.1, lon + 0.1) {
                same += 1;
            }
            total += 1;
        }
        assert!(
            same as f64 / total as f64 > 0.8,
            "coherence = {same}/{total}"
        );
    }

    #[test]
    fn index_round_trips() {
        for (i, t) in SurfaceType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn albedos_are_physical() {
        for t in SurfaceType::ALL {
            for a in t.albedo() {
                assert!((0.0..=1.0).contains(&a), "{t} albedo {a}");
            }
        }
        // Vegetation has the classic red-edge: NIR much brighter than red.
        let forest = SurfaceType::Forest.albedo();
        assert!(forest[3] > 3.0 * forest[2]);
        // Ocean is dark everywhere.
        assert!(SurfaceType::Ocean.albedo().iter().all(|&a| a < 0.1));
    }
}
