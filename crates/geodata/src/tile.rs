//! Frame tiling and per-tile labels.
//!
//! Geospatial applications split each frame into a grid of tiles and
//! process tiles independently (paper Section 2, Figure 1). A tile carries
//! its pixels, its truth masks, and the *classification label vector* that
//! the representative dataset provides for clustering into contexts.

use crate::frame::FrameImage;
use crate::pixel::CHANNELS;
use crate::surface::SurfaceType;
use serde::{Deserialize, Serialize};

/// Dimension of a tile's label vector: 8 surface fractions + cloud
/// fraction + mean luminance + luminance standard deviation + mean cirrus.
pub const LABEL_DIM: usize = 12;

/// One tile cut from a frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileImage {
    size: usize,
    channels: Vec<f32>,
    truth_cloudy: Vec<bool>,
    surface_fractions: [f64; 8],
    cloud_fraction: f64,
    /// (row, col) of this tile within its frame's grid.
    grid_pos: (usize, usize),
    center_lat_deg: f64,
    center_lon_deg: f64,
}

impl TileImage {
    /// Tile edge length in native pixels.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Interleaved channel data at native resolution.
    pub fn channels(&self) -> &[f32] {
        &self.channels
    }

    /// Per-pixel cloud truth at native resolution (row-major).
    pub fn truth_cloudy(&self) -> &[bool] {
        &self.truth_cloudy
    }

    /// Fraction of pixels of each surface type.
    pub fn surface_fractions(&self) -> &[f64; 8] {
        &self.surface_fractions
    }

    /// Fraction of cloudy pixels (low-value data).
    pub fn cloud_fraction(&self) -> f64 {
        self.cloud_fraction
    }

    /// Fraction of clear pixels (high-value data).
    pub fn high_value_fraction(&self) -> f64 {
        1.0 - self.cloud_fraction
    }

    /// Position of this tile within the frame grid, `(row, col)`.
    pub fn grid_pos(&self) -> (usize, usize) {
        self.grid_pos
    }

    /// Approximate tile center latitude, degrees.
    pub fn center_lat_deg(&self) -> f64 {
        self.center_lat_deg
    }

    /// Approximate tile center longitude, degrees.
    pub fn center_lon_deg(&self) -> f64 {
        self.center_lon_deg
    }

    /// The dominant surface type of the tile.
    pub fn dominant_surface(&self) -> SurfaceType {
        let mut best = SurfaceType::Ocean;
        let mut best_frac = -1.0;
        for t in SurfaceType::ALL {
            let f = self.surface_fractions[t.index()];
            if f > best_frac {
                best_frac = f;
                best = t;
            }
        }
        best
    }

    /// Mean reflectance per channel.
    pub fn channel_means(&self) -> [f64; CHANNELS] {
        let mut means = [0.0f64; CHANNELS];
        let n = (self.size * self.size) as f64;
        for px in self.channels.chunks_exact(CHANNELS) {
            for (c, v) in px.iter().enumerate() {
                means[c] += f64::from(*v);
            }
        }
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Mean and standard deviation of visible luminance.
    pub fn luminance_stats(&self) -> (f64, f64) {
        let n = (self.size * self.size) as f64;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for px in self.channels.chunks_exact(CHANNELS) {
            let lum = (f64::from(px[0]) + f64::from(px[1]) + f64::from(px[2])) / 3.0;
            sum += lum;
            sum_sq += lum * lum;
        }
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0);
        (mean, var.sqrt())
    }

    /// Returns a copy of this tile with replaced channel data (same
    /// truth and metadata). Used by radiometric augmentation.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match this tile's shape.
    pub fn with_channels(&self, channels: Vec<f32>) -> TileImage {
        assert_eq!(
            channels.len(),
            self.size * self.size * CHANNELS,
            "channel buffer length mismatch"
        );
        TileImage {
            channels,
            ..self.clone()
        }
    }

    /// Returns a copy of this tile with replaced channels and truth mask
    /// (cloud fraction is recomputed). Used by geometric augmentation.
    ///
    /// # Panics
    ///
    /// Panics if either buffer length does not match this tile's shape.
    pub fn with_channels_and_truth(
        &self,
        channels: Vec<f32>,
        truth_cloudy: Vec<bool>,
    ) -> TileImage {
        assert_eq!(
            channels.len(),
            self.size * self.size * CHANNELS,
            "channel buffer length mismatch"
        );
        assert_eq!(
            truth_cloudy.len(),
            self.size * self.size,
            "truth buffer length mismatch"
        );
        let cloud_fraction =
            truth_cloudy.iter().filter(|&&b| b).count() as f64 / truth_cloudy.len() as f64;
        TileImage {
            channels,
            truth_cloudy,
            cloud_fraction,
            ..self.clone()
        }
    }

    /// The tile's classification label vector, as the representative
    /// dataset would annotate it: surface fractions, cloud fraction, and
    /// radiometric summary statistics. These drive automatic context
    /// generation (paper Section 3.2).
    pub fn label_vector(&self) -> [f64; LABEL_DIM] {
        let (lum_mean, lum_std) = self.luminance_stats();
        let means = self.channel_means();
        let mut v = [0.0f64; LABEL_DIM];
        v[..8].copy_from_slice(&self.surface_fractions);
        v[8] = self.cloud_fraction;
        v[9] = lum_mean;
        v[10] = lum_std;
        v[11] = means[4]; // cirrus band mean
        v
    }
}

/// Splits a frame into a `grid` x `grid` lattice of tiles.
///
/// # Panics
///
/// Panics if `grid` is zero or does not evenly divide the frame dimension.
pub fn tile_frame(frame: &FrameImage, grid: usize) -> Vec<TileImage> {
    assert!(grid > 0, "grid must be positive");
    let px = frame.width();
    assert_eq!(
        px % grid,
        0,
        "grid {grid} must evenly divide frame dimension {px}"
    );
    let tile_px = px / grid;
    let deg_per_km = 1.0 / 111.32;
    let tile_km = frame.frame_km() / grid as f64;
    let cos_lat = frame.center_lat_deg().to_radians().cos().max(0.05);

    let mut tiles = Vec::with_capacity(grid * grid);
    for tr in 0..grid {
        for tc in 0..grid {
            let mut channels = Vec::with_capacity(tile_px * tile_px * CHANNELS);
            let mut truth = Vec::with_capacity(tile_px * tile_px);
            let mut surf_counts = [0.0f64; 8];
            for r in 0..tile_px {
                let fr = tr * tile_px + r;
                for c in 0..tile_px {
                    let fc = tc * tile_px + c;
                    let idx = fr * px + fc;
                    channels.extend_from_slice(
                        &frame.channels()[idx * CHANNELS..(idx + 1) * CHANNELS],
                    );
                    truth.push(frame.truth_cloudy()[idx]);
                    surf_counts[frame.surface()[idx].index()] += 1.0;
                }
            }
            let n = (tile_px * tile_px) as f64;
            for s in &mut surf_counts {
                *s /= n;
            }
            let cloud_fraction = truth.iter().filter(|&&b| b).count() as f64 / n;

            // Tile center offset from frame center, in km then degrees.
            let half = frame.frame_km() / 2.0;
            let cy_km = half - tile_km * (tr as f64 + 0.5);
            let cx_km = -half + tile_km * (tc as f64 + 0.5);

            tiles.push(TileImage {
                size: tile_px,
                channels,
                truth_cloudy: truth,
                surface_fractions: surf_counts,
                cloud_fraction,
                grid_pos: (tr, tc),
                center_lat_deg: frame.center_lat_deg() + cy_km * deg_per_km,
                center_lon_deg: frame.center_lon_deg() + cx_km * deg_per_km / cos_lat,
            });
        }
    }
    tiles
}

/// The tile grids evaluated in the paper: 121, 36, 16 and 9 tiles per
/// frame correspond to 11x11, 6x6, 4x4 and 3x3 lattices.
pub const PAPER_TILE_GRIDS: [usize; 4] = [11, 6, 4, 3];

/// Converts a grid dimension to tiles per frame.
pub fn tiles_per_frame(grid: usize) -> usize {
    grid * grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::World;

    fn test_frame() -> FrameImage {
        World::new(42).render_frame(20.0, 30.0, 0.0, 66, 150.0)
    }

    #[test]
    fn tiling_produces_grid_squared_tiles() {
        let frame = test_frame();
        for grid in [3, 6, 11] {
            let tiles = tile_frame(&frame, grid);
            assert_eq!(tiles.len(), grid * grid);
            for t in &tiles {
                assert_eq!(t.size(), 66 / grid);
                assert_eq!(t.channels().len(), t.size() * t.size() * CHANNELS);
            }
        }
    }

    #[test]
    fn tiles_partition_the_frame_exactly() {
        let frame = test_frame();
        let tiles = tile_frame(&frame, 3);
        // Cloud fraction of the frame equals the tile-average.
        let tile_avg: f64 =
            tiles.iter().map(TileImage::cloud_fraction).sum::<f64>() / tiles.len() as f64;
        assert!((tile_avg - frame.cloud_fraction()).abs() < 1e-9);
        // Pixel counts match.
        let total: usize = tiles.iter().map(|t| t.size() * t.size()).sum();
        assert_eq!(total, frame.pixel_count());
    }

    #[test]
    fn tile_pixels_match_frame_pixels() {
        let frame = test_frame();
        let tiles = tile_frame(&frame, 6);
        let tile_px = 11;
        let t = &tiles[7]; // grid (1,1)
        assert_eq!(t.grid_pos(), (1, 1));
        for r in 0..tile_px {
            for c in 0..tile_px {
                for ch in 0..CHANNELS {
                    let from_tile = t.channels()[(r * tile_px + c) * CHANNELS + ch];
                    let from_frame = frame.at(tile_px + r, tile_px + c, ch);
                    assert_eq!(from_tile, from_frame);
                }
            }
        }
    }

    #[test]
    fn label_vector_is_consistent() {
        let frame = test_frame();
        let tiles = tile_frame(&frame, 3);
        for t in &tiles {
            let v = t.label_vector();
            let surf_sum: f64 = v[..8].iter().sum();
            assert!((surf_sum - 1.0).abs() < 1e-9);
            assert!((v[8] - t.cloud_fraction()).abs() < 1e-12);
            assert!(v[9] >= 0.0 && v[9] <= 1.0);
            assert!(v[10] >= 0.0);
        }
    }

    #[test]
    fn dominant_surface_has_the_largest_fraction() {
        let frame = test_frame();
        for t in tile_frame(&frame, 6) {
            let dom = t.dominant_surface();
            let dom_frac = t.surface_fractions()[dom.index()];
            for s in SurfaceType::ALL {
                assert!(t.surface_fractions()[s.index()] <= dom_frac);
            }
        }
    }

    #[test]
    fn tile_centers_spread_across_the_frame() {
        let frame = test_frame();
        let tiles = tile_frame(&frame, 3);
        let lat_span = tiles
            .iter()
            .map(|t| t.center_lat_deg())
            .fold(f64::NEG_INFINITY, f64::max)
            - tiles
                .iter()
                .map(|t| t.center_lat_deg())
                .fold(f64::INFINITY, f64::min);
        // 150 km frame: tile centers span ~2/3 of ~1.35 degrees.
        assert!(lat_span > 0.5, "lat span = {lat_span}");
    }

    #[test]
    fn paper_grids_yield_paper_tile_counts() {
        let counts: Vec<usize> = PAPER_TILE_GRIDS.iter().map(|&g| tiles_per_frame(g)).collect();
        assert_eq!(counts, vec![121, 36, 16, 9]);
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn rejects_non_dividing_grid() {
        let frame = test_frame();
        let _ = tile_frame(&frame, 5);
    }
}
