//! Property-based tests for the dataset substrate: the resize pipeline,
//! noise generator and tiling must satisfy their invariants for all
//! sizes and seeds, because the evaluation's accuracy numbers rest on
//! them.

use kodan_geodata::frame::World;
use kodan_geodata::noise::{hash_to_unit, NoiseField};
use kodan_geodata::pixel::CHANNELS;
use kodan_geodata::resize::{resize_channels, resize_mask};
use kodan_geodata::tile::tile_frame;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn downscale_preserves_mean_for_any_image(
        seed in 0u64..1000,
        src in 4usize..40,
        dst in 1usize..40,
    ) {
        prop_assume!(dst <= src);
        let n = NoiseField::new(seed);
        let buf: Vec<f32> = (0..src * src)
            .map(|i| n.value((i % src) as f64 * 0.3, (i / src) as f64 * 0.3, 0.0) as f32)
            .collect();
        let out = resize_channels(&buf, src, 1, dst);
        prop_assert_eq!(out.len(), dst * dst);
        let src_mean: f64 = buf.iter().map(|&v| f64::from(v)).sum::<f64>() / buf.len() as f64;
        let dst_mean: f64 = out.iter().map(|&v| f64::from(v)).sum::<f64>() / out.len() as f64;
        prop_assert!((src_mean - dst_mean).abs() < 5e-3, "{} vs {}", src_mean, dst_mean);
    }

    #[test]
    fn resize_output_stays_in_input_range(
        seed in 0u64..1000,
        src in 2usize..30,
        dst in 2usize..60,
    ) {
        let n = NoiseField::new(seed);
        let buf: Vec<f32> = (0..src * src)
            .map(|i| n.value(i as f64 * 0.7, 0.0, 0.0) as f32)
            .collect();
        let lo = buf.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = buf.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for v in resize_channels(&buf, src, 1, dst) {
            prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6);
        }
    }

    #[test]
    fn mask_resize_preserves_constants(
        src in 1usize..30,
        dst in 1usize..60,
        value in proptest::bool::ANY,
    ) {
        let mask = vec![value; src * src];
        let out = resize_mask(&mask, src, dst);
        prop_assert_eq!(out.len(), dst * dst);
        prop_assert!(out.iter().all(|&b| b == value));
    }

    #[test]
    fn mask_integer_upscale_round_trips(
        src in 1usize..20,
        factor in 2usize..4,
        seed in 0u64..1000,
    ) {
        let mask: Vec<bool> = (0..src * src)
            .map(|i| hash_to_unit(seed, &[i as i64]) > 0.5)
            .collect();
        let up = resize_mask(&mask, src, src * factor);
        let back = resize_mask(&up, src * factor, src);
        prop_assert_eq!(back, mask);
    }

    #[test]
    fn noise_is_deterministic_and_bounded(
        seed in 0u64..10_000,
        x in -100.0f64..100.0,
        y in -100.0f64..100.0,
        t in 0.0f64..50.0,
    ) {
        let n = NoiseField::new(seed);
        let v = n.fbm5(x, y, t);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert_eq!(v, NoiseField::new(seed).fbm5(x, y, t));
    }

    #[test]
    fn hash_is_uniform_unit(
        seed in 0u64..10_000,
        a in -1_000_000i64..1_000_000,
        b in -1_000_000i64..1_000_000,
    ) {
        let v = hash_to_unit(seed, &[a, b]);
        prop_assert!((0.0..1.0).contains(&v));
    }
}

proptest! {
    // Frame rendering is expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tiling_partitions_any_frame(
        seed in 0u64..100,
        lat in -80.0f64..80.0,
        lon in -179.0f64..179.0,
        grid in prop::sample::select(vec![1usize, 2, 3, 4, 6]),
    ) {
        let world = World::new(seed);
        let frame = world.render_frame(lat, lon, 0.0, 24, 150.0);
        let tiles = tile_frame(&frame, grid);
        prop_assert_eq!(tiles.len(), grid * grid);
        let total_px: usize = tiles.iter().map(|t| t.size() * t.size()).sum();
        prop_assert_eq!(total_px, frame.pixel_count());
        // Cloud mass is conserved across the partition.
        let tile_cloud: f64 = tiles
            .iter()
            .map(|t| t.cloud_fraction() * (t.size() * t.size()) as f64)
            .sum();
        let frame_cloud = frame.cloud_fraction() * frame.pixel_count() as f64;
        prop_assert!((tile_cloud - frame_cloud).abs() < 1e-6);
        for t in &tiles {
            prop_assert_eq!(t.channels().len(), t.size() * t.size() * CHANNELS);
            let surf_sum: f64 = t.surface_fractions().iter().sum();
            prop_assert!((surf_sum - 1.0).abs() < 1e-9);
        }
    }
}
