//! The latency model: per-tile execution times on each deployment target.
//!
//! For the seven full reference architectures the model returns the
//! paper's measured Table 1 values exactly. Kodan's context-specialized
//! models are *smaller* networks, so their cost scales with their op
//! count relative to the full architecture, with a floor that accounts
//! for the fixed per-tile overheads (resize, memory traffic, kernel
//! launch) that do not shrink with the model.

use kodan_cote::time::Duration;
use kodan_ml::zoo::ModelArch;
use serde::{Deserialize, Serialize};

use crate::table1::per_tile_ms;
use crate::targets::HwTarget;

/// Fraction of a full model's per-tile time that remains even for an
/// arbitrarily small specialized model (pre/post-processing, memory).
pub const SPECIALIZATION_TIME_FLOOR: f64 = 0.12;

/// The latency model for one deployment target.
///
/// # Example
///
/// ```
/// use kodan_hw::latency::LatencyModel;
/// use kodan_hw::targets::HwTarget;
/// use kodan_ml::zoo::ModelArch;
///
/// let model = LatencyModel::new(HwTarget::Gtx1070Ti);
/// let full = model.full_model_tile_time(ModelArch::ResNet50DilatedPpm);
/// let specialized = model.specialized_tile_time(ModelArch::ResNet50DilatedPpm, 0.4);
/// assert!(specialized < full);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    target: HwTarget,
}

impl LatencyModel {
    /// Creates a latency model for a target.
    pub fn new(target: HwTarget) -> LatencyModel {
        LatencyModel { target }
    }

    /// The modeled target.
    pub fn target(&self) -> HwTarget {
        self.target
    }

    /// Per-tile time of the full reference architecture (Table 1).
    pub fn full_model_tile_time(&self, arch: ModelArch) -> Duration {
        Duration::from_seconds(per_tile_ms(arch, self.target) / 1000.0)
    }

    /// Per-tile time of a specialized variant whose op count is
    /// `ops_ratio` times the full architecture's (`0 < ops_ratio <= 1`).
    ///
    /// The cost scales linearly with ops down to
    /// [`SPECIALIZATION_TIME_FLOOR`].
    ///
    /// # Panics
    ///
    /// Panics if `ops_ratio` is not in `(0, 1]`.
    pub fn specialized_tile_time(&self, arch: ModelArch, ops_ratio: f64) -> Duration {
        assert!(
            ops_ratio > 0.0 && ops_ratio <= 1.0,
            "ops ratio must be in (0, 1]"
        );
        let scale = ops_ratio.max(SPECIALIZATION_TIME_FLOOR);
        self.full_model_tile_time(arch) * scale
    }

    /// Per-tile cost of the context engine: a nearest-centroid lookup on
    /// cheap tile statistics. Modeled as a small platform-dependent
    /// constant — milliseconds, not seconds.
    pub fn context_engine_tile_time(&self) -> Duration {
        let ms = match self.target {
            HwTarget::Gtx1070Ti => 2.0,
            HwTarget::CoreI7_7800X => 5.0,
            HwTarget::OrinAgx15W => 9.0,
        };
        Duration::from_seconds(ms / 1000.0)
    }

    /// Per-tile cost of splitting and resizing to the model input — paid
    /// for every tile regardless of the action taken on it.
    pub fn resize_tile_time(&self) -> Duration {
        let ms = match self.target {
            HwTarget::Gtx1070Ti => 1.0,
            HwTarget::CoreI7_7800X => 2.5,
            HwTarget::OrinAgx15W => 4.0,
        };
        Duration::from_seconds(ms / 1000.0)
    }

    /// Time to process one frame when every tile runs the full model
    /// (the direct-deployment configuration).
    pub fn direct_deploy_frame_time(&self, arch: ModelArch, tiles_per_frame: usize) -> Duration {
        let per_tile = self.full_model_tile_time(arch) + self.resize_tile_time();
        per_tile * tiles_per_frame as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_model_times_match_table_1() {
        let m = LatencyModel::new(HwTarget::OrinAgx15W);
        let t = m.full_model_tile_time(ModelArch::ResNet18DilatedPpm);
        assert!((t.as_seconds() - 0.9356).abs() < 1e-12);
    }

    #[test]
    fn specialization_scales_linearly_above_floor() {
        let m = LatencyModel::new(HwTarget::CoreI7_7800X);
        let full = m.full_model_tile_time(ModelArch::HrNetV2C1);
        let half = m.specialized_tile_time(ModelArch::HrNetV2C1, 0.5);
        assert!((half.as_seconds() - full.as_seconds() * 0.5).abs() < 1e-12);
    }

    #[test]
    fn specialization_respects_the_floor() {
        let m = LatencyModel::new(HwTarget::Gtx1070Ti);
        let tiny = m.specialized_tile_time(ModelArch::ResNet101UperNet, 0.01);
        let floor = m.full_model_tile_time(ModelArch::ResNet101UperNet)
            * SPECIALIZATION_TIME_FLOOR;
        assert!((tiny.as_seconds() - floor.as_seconds()).abs() < 1e-12);
    }

    #[test]
    fn engine_and_resize_are_cheap_relative_to_inference() {
        for target in HwTarget::ALL {
            let m = LatencyModel::new(target);
            let cheapest = m.full_model_tile_time(ModelArch::MobileNetV2DilatedC1);
            assert!(m.context_engine_tile_time() < cheapest * 0.06);
            assert!(m.resize_tile_time() < cheapest * 0.03);
        }
    }

    #[test]
    fn direct_deploy_at_121_tiles_busts_the_deadline_on_the_orin() {
        let m = LatencyModel::new(HwTarget::OrinAgx15W);
        let frame = m.direct_deploy_frame_time(ModelArch::MobileNetV2DilatedC1, 121);
        // The paper's computational bottleneck: ~75 s against a ~22 s
        // deadline for the lightest app on flight hardware.
        assert!(frame.as_seconds() > 70.0, "{}", frame.as_seconds());
    }

    #[test]
    fn app1_at_121_tiles_roughly_meets_deadline_on_the_1070ti() {
        let m = LatencyModel::new(HwTarget::Gtx1070Ti);
        let frame = m.direct_deploy_frame_time(ModelArch::MobileNetV2DilatedC1, 121);
        assert!(
            (20.0..24.0).contains(&frame.as_seconds()),
            "{}",
            frame.as_seconds()
        );
    }

    #[test]
    #[should_panic(expected = "ops ratio")]
    fn rejects_bad_ops_ratio() {
        let _ = LatencyModel::new(HwTarget::Gtx1070Ti)
            .specialized_tile_time(ModelArch::HrNetV2C1, 1.5);
    }
}
