//! # kodan-hw
//!
//! Hardware deployment-target models for the Kodan (ASPLOS '23)
//! reproduction. The paper evaluates on three physical platforms — a
//! GeForce GTX 1070 Ti, a Core i7-7800X, and a Jetson AGX Orin in its 15 W
//! mode — and reports measured per-tile inference times in Table 1. Those
//! platforms are not available here, so this crate models them:
//!
//! - [`targets`] — the platforms and their power envelopes,
//! - [`table1`] — the measured per-tile execution times from the paper,
//! - [`latency`] — a latency model that reproduces Table 1 exactly for
//!   the full architectures and scales it for Kodan's smaller specialized
//!   models and the context engine,
//! - [`power`] — energy accounting for an orbit-scale power budget.
//!
//! Everything downstream (frame deadlines met or missed, queue backlogs,
//! downlink contents) is simulated faithfully on top of these times.
//!
//! ## Example
//!
//! ```
//! use kodan_hw::targets::HwTarget;
//! use kodan_hw::latency::LatencyModel;
//! use kodan_ml::zoo::ModelArch;
//!
//! let orin = LatencyModel::new(HwTarget::OrinAgx15W);
//! let t = orin.full_model_tile_time(ModelArch::MobileNetV2DilatedC1);
//! assert!((t.as_seconds() - 0.6188).abs() < 1e-9); // Table 1: 618.8 ms
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod latency;
pub mod power;
pub mod table1;
pub mod targets;

pub use latency::LatencyModel;
pub use targets::HwTarget;
