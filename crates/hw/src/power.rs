//! Energy accounting for orbit-scale power budgets.
//!
//! Volume, mass, energy and cost constrain the space edge (paper
//! Sections 2-3). This module turns the latency model's compute times
//! into energy figures so deployments can be checked against a
//! solar-panel harvest budget — the reason the Orin's 15 W mode is the
//! flight-representative configuration.

use kodan_cote::time::Duration;
use serde::{Deserialize, Serialize};

use crate::targets::HwTarget;

/// Joules consumed by running a target for a duration at its nominal
/// draw.
pub fn compute_energy_j(target: HwTarget, busy: Duration) -> f64 {
    target.power_watts() * busy.as_seconds()
}

/// An orbit-average energy budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBudget {
    /// Orbit-average power available to the compute payload, watts.
    pub orbit_average_watts: f64,
}

impl EnergyBudget {
    /// A 3U-cubesat-class budget: deployable panels harvest ~20-30 W
    /// orbit-average; roughly 17 W is available to the payload after bus
    /// loads.
    pub fn cubesat_3u() -> EnergyBudget {
        EnergyBudget {
            orbit_average_watts: 17.0,
        }
    }

    /// A small-satellite budget with generous panels.
    pub fn smallsat() -> EnergyBudget {
        EnergyBudget {
            orbit_average_watts: 200.0,
        }
    }

    /// Maximum duty cycle (fraction of time the payload may compute)
    /// sustainable on this budget, in `[0, 1]`.
    pub fn max_duty_cycle(&self, target: HwTarget) -> f64 {
        (self.orbit_average_watts / target.power_watts()).min(1.0)
    }

    /// True if the target can compute continuously on this budget.
    pub fn supports_continuous(&self, target: HwTarget) -> bool {
        self.max_duty_cycle(target) >= 1.0
    }

    /// Energy available over a horizon, joules.
    pub fn energy_over(&self, horizon: Duration) -> f64 {
        self.orbit_average_watts * horizon.as_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        let e = compute_energy_j(HwTarget::OrinAgx15W, Duration::from_seconds(100.0));
        assert!((e - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn cubesat_budget_supports_only_the_orin() {
        let budget = EnergyBudget::cubesat_3u();
        assert!(budget.supports_continuous(HwTarget::OrinAgx15W));
        assert!(!budget.supports_continuous(HwTarget::Gtx1070Ti));
        assert!(!budget.supports_continuous(HwTarget::CoreI7_7800X));
    }

    #[test]
    fn duty_cycle_scales_with_power() {
        let budget = EnergyBudget::cubesat_3u();
        let gpu_duty = budget.max_duty_cycle(HwTarget::Gtx1070Ti);
        assert!((gpu_duty - 17.0 / 180.0).abs() < 1e-12);
        let orin_duty = budget.max_duty_cycle(HwTarget::OrinAgx15W);
        assert_eq!(orin_duty, 1.0);
    }

    #[test]
    fn smallsat_budget_supports_everything() {
        let budget = EnergyBudget::smallsat();
        for target in HwTarget::ALL {
            assert!(budget.supports_continuous(target), "{target}");
        }
    }

    #[test]
    fn energy_over_horizon() {
        let budget = EnergyBudget::cubesat_3u();
        let day = budget.energy_over(Duration::from_days(1.0));
        assert!((day - 17.0 * 86_400.0).abs() < 1e-6);
    }
}
