//! The measured per-tile execution times of the paper's Table 1.
//!
//! These are the paper's ground-truth measurements of the seven reference
//! applications on the three hardware targets, in milliseconds per tile.
//! They anchor the latency model: the reproduction's simulated deployments
//! consume exactly these times for full (unspecialized) models.

use kodan_ml::zoo::ModelArch;

use crate::targets::HwTarget;

/// Per-tile processing time in milliseconds, `[app][target]` with targets
/// in [`HwTarget::ALL`] order (1070 Ti, i7-7800, Orin 15W). Rows follow
/// [`ModelArch::ALL`] (App 1 through App 7).
pub const TABLE1_MS: [[f64; 3]; 7] = [
    [178.2, 440.6, 618.8],
    [237.6, 940.6, 935.6],
    [321.8, 1292.0, 1515.0],
    [361.4, 1787.0, 1594.0],
    [410.9, 2124.0, 1797.0],
    [445.5, 2307.0, 1970.0],
    [475.2, 2545.0, 2040.0],
];

/// Looks up the measured per-tile time for an architecture on a target,
/// in milliseconds.
pub fn per_tile_ms(arch: ModelArch, target: HwTarget) -> f64 {
    // `index()` is total and in-bounds by construction; the fallback (the
    // slowest measured entry) is a conservative latency, never a panic.
    TABLE1_MS
        .get(arch.index())
        .and_then(|row| row.get(target.index()))
        .copied()
        .unwrap_or(2545.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_check_table_corners() {
        assert_eq!(
            per_tile_ms(ModelArch::MobileNetV2DilatedC1, HwTarget::Gtx1070Ti),
            178.2
        );
        assert_eq!(
            per_tile_ms(ModelArch::ResNet101DilatedPpm, HwTarget::OrinAgx15W),
            2040.0
        );
        assert_eq!(
            per_tile_ms(ModelArch::ResNet50DilatedPpm, HwTarget::CoreI7_7800X),
            1787.0
        );
    }

    #[test]
    fn gpu_is_fastest_for_every_app() {
        for arch in ModelArch::ALL {
            let gpu = per_tile_ms(arch, HwTarget::Gtx1070Ti);
            assert!(gpu < per_tile_ms(arch, HwTarget::CoreI7_7800X));
            assert!(gpu < per_tile_ms(arch, HwTarget::OrinAgx15W));
        }
    }

    #[test]
    fn times_increase_with_app_number_per_target() {
        for target in HwTarget::ALL {
            let mut prev = 0.0;
            for arch in ModelArch::ALL {
                let t = per_tile_ms(arch, target);
                assert!(t > prev, "{arch} on {target}: {t} <= {prev}");
                prev = t;
            }
        }
    }

    #[test]
    fn app1_frame_time_exceeds_deadline_on_every_target_at_max_tiling() {
        // The paper's motivating observation: even App 1 at 121 tiles per
        // frame busts the ~22 s deadline everywhere (121 x 178.2 ms = 21.6 s
        // on the GPU — right at the edge; far beyond on the others).
        for target in [HwTarget::CoreI7_7800X, HwTarget::OrinAgx15W] {
            let frame_s = 121.0 * per_tile_ms(ModelArch::MobileNetV2DilatedC1, target) / 1000.0;
            assert!(frame_s > 22.0, "{target}: {frame_s} s");
        }
    }
}
