//! The hardware deployment targets of the paper's evaluation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A compute platform a Kodan application can be deployed to.
///
/// The three targets span the paper's design space: the Orin 15 W is "near
/// the maximum reasonable power draw for a 3U cubesat subsystem", while
/// the i7 and 1070 Ti "represent forward-looking computational hardware
/// for the space edge" (paper Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HwTarget {
    /// NVIDIA GeForce GTX 1070 Ti discrete GPU (~180 W).
    Gtx1070Ti,
    /// Intel Core i7-7800X, 12 threads at 3.5 GHz (~140 W).
    CoreI7_7800X,
    /// NVIDIA Jetson AGX Orin embedded GPU in its 15 W power mode.
    OrinAgx15W,
}

impl HwTarget {
    /// All targets, in the paper's column order (1070 Ti, i7-7800, Orin
    /// 15W).
    pub const ALL: [HwTarget; 3] = [
        HwTarget::Gtx1070Ti,
        HwTarget::CoreI7_7800X,
        HwTarget::OrinAgx15W,
    ];

    /// 0-based index within [`HwTarget::ALL`].
    pub fn index(self) -> usize {
        // Exhaustive match keeps this total: adding a variant without
        // updating ALL is a compile error here, not a runtime panic.
        match self {
            HwTarget::Gtx1070Ti => 0,
            HwTarget::CoreI7_7800X => 1,
            HwTarget::OrinAgx15W => 2,
        }
    }

    /// Short display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            HwTarget::Gtx1070Ti => "1070 Ti",
            HwTarget::CoreI7_7800X => "i7-7800",
            HwTarget::OrinAgx15W => "Orin 15W",
        }
    }

    /// Nominal power draw, watts.
    pub fn power_watts(self) -> f64 {
        match self {
            HwTarget::Gtx1070Ti => 180.0,
            HwTarget::CoreI7_7800X => 140.0,
            HwTarget::OrinAgx15W => 15.0,
        }
    }

    /// True if this platform fits a cubesat-class power budget.
    pub fn is_flight_representative(self) -> bool {
        matches!(self, HwTarget::OrinAgx15W)
    }
}

impl fmt::Display for HwTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_targets_in_paper_order() {
        assert_eq!(HwTarget::ALL.len(), 3);
        for (i, target) in HwTarget::ALL.iter().enumerate() {
            assert_eq!(target.index(), i);
        }
        assert_eq!(HwTarget::CoreI7_7800X.name(), "i7-7800");
    }

    #[test]
    fn only_the_orin_is_flight_representative() {
        assert!(HwTarget::OrinAgx15W.is_flight_representative());
        assert!(!HwTarget::Gtx1070Ti.is_flight_representative());
        assert!(!HwTarget::CoreI7_7800X.is_flight_representative());
        assert!(HwTarget::OrinAgx15W.power_watts() < 20.0);
    }
}
