//! The workspace call graph and its reachability queries.
//!
//! Nodes are the non-test `fn` items parsed from the eight deterministic
//! crates; edges over-approximate calls by resolving names, not types:
//!
//! - `Type::f(..)` resolves to the `f` defined on `Type` (exactly);
//! - `Self::f(..)` resolves within the caller's own `impl`;
//! - `module::f(..)`, free `f(..)` and method `.f(..)` calls resolve to
//!   *every* workspace function named `f`.
//!
//! Over-approximation is the safe direction for a gate: a spurious edge
//! costs one review, a missing edge hides a panic from the reachability
//! pass. Everything — node ids, edge lists, BFS order — is sorted so
//! graph construction and the witness chains derived from it are
//! byte-stable across runs (asserted by the determinism test in the lint
//! gate).

use crate::scan::FileAnalysis;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One function in the call graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// `Owner::name` or bare `name` — the display form used everywhere.
    pub display: String,
    /// The function's own name.
    pub name: String,
    /// The `impl`/`trait` owner, if any.
    pub owner: Option<String>,
    /// The implemented trait's last path segment, if any.
    pub trait_name: Option<String>,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Index of the file in the analysis set.
    pub file: usize,
    /// Index of the item within that file's parsed items.
    pub item: usize,
    /// True when this node is a protected entry point.
    pub entry: bool,
}

/// The protected entry points: code the ground cannot help once it runs.
///
/// - `Runtime::process_frame*` — the per-frame on-orbit hot path;
/// - `Mission::run*` — the mission simulation driving that path;
/// - `Transformation::run*` — ground-side pipeline synthesis whose
///   outputs are uplinked verbatim;
/// - `TelemetrySnapshot::from_json` — the snapshot parser behind
///   `kodan health --snapshot` and `kodan diff`, which must be total
///   on arbitrary (possibly corrupted) input files;
/// - every `wire` `Decode` impl — the first code that touches bytes
///   arriving over the radio.
const ENTRY_PREFIXES: [&str; 4] = [
    "Runtime::process_frame",
    "Mission::run",
    "Transformation::run",
    "TelemetrySnapshot::from_json",
];

fn is_entry(display: &str, name: &str, trait_name: Option<&str>) -> bool {
    ENTRY_PREFIXES.iter().any(|p| display.starts_with(p))
        || (trait_name == Some("Decode") && name == "decode")
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes, sorted by (path, line) — ids are indices into this.
    pub nodes: Vec<Node>,
    /// `edges[caller]` = sorted, deduplicated callee node ids.
    pub edges: Vec<Vec<usize>>,
    /// Sorted ids of the protected entry points.
    pub entries: Vec<usize>,
}

impl CallGraph {
    /// Builds the graph from parsed files. Only files flagged `in_graph`
    /// (the eight deterministic crates) contribute nodes; test functions
    /// never enter the graph, as callers or callees.
    pub fn build(files: &[FileAnalysis]) -> CallGraph {
        let mut nodes: Vec<Node> = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            if !file.in_graph {
                continue;
            }
            for (item_idx, item) in file.items.iter().enumerate() {
                if item.is_test {
                    continue;
                }
                let display = item.display();
                let entry = is_entry(&display, &item.name, item.trait_name.as_deref());
                nodes.push(Node {
                    display,
                    name: item.name.clone(),
                    owner: item.owner.clone(),
                    trait_name: item.trait_name.clone(),
                    path: file.path.clone(),
                    line: item.line,
                    file: file_idx,
                    item: item_idx,
                    entry,
                });
            }
        }
        // Files arrive sorted by path and items in source order, so node
        // ids are already deterministic; assert the invariant cheaply.
        debug_assert!(nodes
            .windows(2)
            .all(|w| (&w[0].path, w[0].line) <= (&w[1].path, w[1].line)));

        // Name indices for call resolution.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_owner_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, node) in nodes.iter().enumerate() {
            by_name.entry(&node.name).or_default().push(id);
            if let Some(owner) = &node.owner {
                by_owner_name
                    .entry((owner.as_str(), &node.name))
                    .or_default()
                    .push(id);
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (caller, node) in nodes.iter().enumerate() {
            let item = &files[node.file].items[node.item];
            let mut targets: BTreeSet<usize> = BTreeSet::new();
            for call in &item.calls {
                match call.qualifier.as_deref() {
                    Some("Self") => {
                        if let Some(owner) = &node.owner {
                            if let Some(ids) = by_owner_name.get(&(owner.as_str(), call.name.as_str())) {
                                targets.extend(ids);
                            }
                        }
                    }
                    Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                        // `Type::f` — exact owner match only; a type not
                        // defined in the workspace contributes no edge.
                        if let Some(ids) = by_owner_name.get(&(q, call.name.as_str())) {
                            targets.extend(ids);
                        }
                    }
                    _ => {
                        // Free, module-qualified, or method call: every
                        // function with this name.
                        if let Some(ids) = by_name.get(call.name.as_str()) {
                            targets.extend(ids);
                        }
                    }
                }
            }
            targets.remove(&caller); // self-loops add nothing to chains
            edges[caller] = targets.into_iter().collect();
        }

        let entries: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter_map(|(id, n)| n.entry.then_some(id))
            .collect();

        CallGraph {
            nodes,
            edges,
            entries,
        }
    }

    /// Multi-source BFS from the entry points. Returns, for each node,
    /// `Some(predecessor)` when reachable (entries are their own
    /// predecessor), `None` otherwise. Entries are seeded in id order and
    /// adjacency lists are sorted, so the predecessor assignment — and
    /// therefore every witness chain — is deterministic and shortest.
    pub fn reachability(&self) -> Vec<Option<usize>> {
        let mut pred: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &entry in &self.entries {
            pred[entry] = Some(entry);
            queue.push_back(entry);
        }
        while let Some(node) = queue.pop_front() {
            for &next in &self.edges[node] {
                if pred[next].is_none() {
                    pred[next] = Some(node);
                    queue.push_back(next);
                }
            }
        }
        pred
    }

    /// The witness chain for `node` under a reachability assignment:
    /// entry first, `node` last, each step rendered as
    /// `Display (path:line)`.
    pub fn chain(&self, pred: &[Option<usize>], node: usize) -> Vec<String> {
        let mut ids = vec![node];
        let mut cur = node;
        while let Some(p) = pred[cur] {
            if p == cur {
                break;
            }
            ids.push(p);
            cur = p;
        }
        ids.reverse();
        ids.iter()
            .map(|&id| {
                let n = &self.nodes[id];
                format!("{} ({}:{})", n.display, n.path, n.line)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::file_analysis_for_test;

    fn graph_of(sources: &[(&str, &str)]) -> (CallGraph, Vec<FileAnalysis>) {
        let mut files: Vec<FileAnalysis> = sources
            .iter()
            .map(|(path, src)| file_analysis_for_test(path, src))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        let graph = CallGraph::build(&files);
        (graph, files)
    }

    #[test]
    fn entry_points_are_detected() {
        let (graph, _) = graph_of(&[(
            "crates/core/src/runtime.rs",
            "impl Runtime {\n    pub fn process_frame(&self) {}\n    pub fn process_frames(&self) {}\n    fn helper(&self) {}\n}\n",
        )]);
        let entries: Vec<&str> = graph
            .entries
            .iter()
            .map(|&id| graph.nodes[id].display.as_str())
            .collect();
        assert_eq!(
            entries,
            vec!["Runtime::process_frame", "Runtime::process_frames"]
        );
    }

    #[test]
    fn decode_impls_are_entry_points() {
        let (graph, _) = graph_of(&[(
            "crates/wire/src/codec.rs",
            "impl Decode for Policy {\n    fn decode(d: &mut Dec) -> Self { Policy }\n}\nimpl Policy {\n    fn decode_other(&self) {}\n}\n",
        )]);
        assert_eq!(graph.entries.len(), 1);
        assert_eq!(graph.nodes[graph.entries[0]].display, "Policy::decode");
    }

    #[test]
    fn qualified_calls_resolve_exactly() {
        let (graph, _) = graph_of(&[(
            "crates/core/src/a.rs",
            "impl A {\n    fn go(&self) { B::make(); }\n    fn make(&self) {}\n}\nimpl B {\n    fn make() {}\n}\n",
        )]);
        let go = graph
            .nodes
            .iter()
            .position(|n| n.display == "A::go")
            .unwrap();
        let callees: Vec<&str> = graph.edges[go]
            .iter()
            .map(|&id| graph.nodes[id].display.as_str())
            .collect();
        // `B::make()` must not link to `A::make`.
        assert_eq!(callees, vec!["B::make"]);
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let (graph, _) = graph_of(&[(
            "crates/core/src/a.rs",
            "impl A {\n    fn go(&self, m: &M) { m.predict(); }\n}\nimpl M {\n    fn predict(&self) {}\n}\nimpl N {\n    fn predict(&self) {}\n}\n",
        )]);
        let go = graph
            .nodes
            .iter()
            .position(|n| n.display == "A::go")
            .unwrap();
        assert_eq!(graph.edges[go].len(), 2, "both predict impls are linked");
    }

    #[test]
    fn test_functions_never_enter_the_graph() {
        let (graph, _) = graph_of(&[(
            "crates/core/src/a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { live(); }\n}\n",
        )]);
        assert_eq!(graph.nodes.len(), 1);
        assert_eq!(graph.nodes[0].display, "live");
    }

    #[test]
    fn non_deterministic_crates_stay_out() {
        let (graph, _) = graph_of(&[
            ("crates/cli/src/main.rs", "fn main() { helper(); }\n"),
            ("crates/core/src/a.rs", "fn helper() {}\n"),
        ]);
        assert_eq!(graph.nodes.len(), 1);
        assert_eq!(graph.nodes[0].display, "helper");
    }

    #[test]
    fn reachability_walks_call_chains() {
        let (graph, _) = graph_of(&[(
            "crates/core/src/runtime.rs",
            "impl Runtime {\n    pub fn process_frame(&self) { step_a(); }\n}\nfn step_a() { step_b(); }\nfn step_b() {}\nfn orphan() {}\n",
        )]);
        let pred = graph.reachability();
        let idx = |d: &str| graph.nodes.iter().position(|n| n.display == d).unwrap();
        assert!(pred[idx("step_b")].is_some());
        assert!(pred[idx("orphan")].is_none());
        let chain = graph.chain(&pred, idx("step_b"));
        assert_eq!(chain.len(), 3);
        assert!(chain[0].starts_with("Runtime::process_frame "));
        assert!(chain[2].starts_with("step_b "));
    }

    #[test]
    fn chains_are_shortest_and_deterministic() {
        // Two routes to `sink`: direct from the entry and via `mid`.
        let src = "impl Mission {\n    pub fn run(&self) { sink(); mid(); }\n}\nfn mid() { sink(); }\nfn sink() {}\n";
        let (graph, _) = graph_of(&[("crates/cote/src/mission.rs", src)]);
        let pred = graph.reachability();
        let sink = graph
            .nodes
            .iter()
            .position(|n| n.display == "sink")
            .unwrap();
        let chain = graph.chain(&pred, sink);
        assert_eq!(chain.len(), 2, "BFS must pick the direct route");
        // And the whole assignment is identical across rebuilds.
        let (graph2, _) = graph_of(&[("crates/cote/src/mission.rs", src)]);
        assert_eq!(graph2.reachability(), pred);
    }
}
