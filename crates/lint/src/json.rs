//! Byte-stable JSON rendering for reports and call graphs.
//!
//! Hand-rolled so the analyzer stays dependency-free and its output is
//! deterministic down to the byte: key order is fixed, numbers are plain
//! decimal, and strings escape exactly quotes, backslashes and control
//! characters. The lint gate snapshots this output verbatim.

use crate::graph::CallGraph;
use crate::scan::Report;

/// Renders a report as the `kodan-lint --format json` document.
pub fn render_report(report: &Report) -> String {
    let mut out = String::from("{\n  \"files_scanned\": ");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\n  \"exit_code\": ");
    out.push_str(&report.exit_code().to_string());
    out.push_str(",\n  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"path\": ");
        out.push_str(&json_str(&d.path));
        out.push_str(", \"line\": ");
        out.push_str(&d.line.to_string());
        out.push_str(", \"rule\": ");
        out.push_str(&json_str(d.rule_id));
        out.push_str(", \"category\": ");
        out.push_str(&json_str(d.category.name()));
        out.push_str(", \"message\": ");
        out.push_str(&json_str(&d.message));
        out.push_str(", \"snippet\": ");
        out.push_str(&json_str(&d.snippet));
        out.push_str(", \"chain\": [");
        for (j, step) in d.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(step));
        }
        out.push_str("]}");
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// Renders the call graph as the `kodan-lint check --call-graph`
/// document: nodes sorted by (path, line), edges as id pairs.
pub fn render_call_graph(graph: &CallGraph) -> String {
    let mut out = String::from("{\n  \"nodes\": [");
    for (i, n) in graph.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"id\": ");
        out.push_str(&i.to_string());
        out.push_str(", \"fn\": ");
        out.push_str(&json_str(&n.display));
        out.push_str(", \"path\": ");
        out.push_str(&json_str(&n.path));
        out.push_str(", \"line\": ");
        out.push_str(&n.line.to_string());
        out.push_str(", \"entry\": ");
        out.push_str(if n.entry { "true" } else { "false" });
        out.push('}');
    }
    if !graph.nodes.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"edges\": [");
    let mut first = true;
    for (caller, callees) in graph.edges.iter().enumerate() {
        for &callee in callees {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    [");
            out.push_str(&caller.to_string());
            out.push_str(", ");
            out.push_str(&callee.to_string());
            out.push(']');
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// Minimal JSON string encoder (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_controls() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_renders_closed_arrays() {
        let doc = render_report(&Report::default());
        assert!(doc.contains("\"diagnostics\": []"));
        assert!(doc.contains("\"exit_code\": 0"));
    }

    #[test]
    fn empty_graph_renders_closed_arrays() {
        let doc = render_call_graph(&CallGraph::default());
        assert!(doc.contains("\"nodes\": []"));
        assert!(doc.contains("\"edges\": []"));
    }
}
