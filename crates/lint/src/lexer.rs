//! A small, string/char/comment-correct Rust lexer.
//!
//! The analyzer must not be fooled by `// unwrap()` in a comment or
//! `"HashMap"` in a string literal, so before any rule pattern runs the
//! source is *classified*: every byte is labeled as code, comment,
//! string or char-literal content. Rules then match only against the
//! code bytes, while suppression comments are read only from the
//! comment bytes.
//!
//! Handled syntax:
//!
//! - line comments (`//`, `///`, `//!`),
//! - block comments, including nesting (`/* /* */ */`),
//! - string literals with escapes (`"a \" b"`),
//! - raw strings with any hash count (`r"…"`, `r#"…"#`, `r##"…"##`),
//! - byte strings and raw byte strings (`b"…"`, `br#"…"#`),
//! - char and byte-char literals (`'x'`, `'\n'`, `'\u{1F600}'`, `b'x'`),
//! - lifetimes, which look like unterminated char literals (`'a`,
//!   `'static`, `'_`) and must stay classified as code.

/// The classification of one source byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteClass {
    /// Executable code, identifiers, punctuation, whitespace.
    Code,
    /// Comment delimiters and comment text.
    Comment,
    /// String-literal delimiters and contents (incl. raw/byte strings).
    Str,
    /// Char-literal delimiters and contents.
    Char,
}

/// Classifies every byte of `src`.
///
/// The returned vector has exactly `src.len()` entries; multi-byte UTF-8
/// sequences get the class of their first byte.
pub fn classify(src: &str) -> Vec<ByteClass> {
    let bytes = src.as_bytes();
    let mut classes = vec![ByteClass::Code; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment: runs to end of line.
                let end = line_end(bytes, i);
                fill(&mut classes, i, end, ByteClass::Comment);
                i = end;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let end = block_comment_end(bytes, i);
                fill(&mut classes, i, end, ByteClass::Comment);
                i = end;
            }
            b'"' => {
                let end = string_end(bytes, i + 1);
                fill(&mut classes, i, end, ByteClass::Str);
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_string_start(bytes, i) => {
                let (start_quote, hashes) = raw_prefix(bytes, i);
                if bytes.get(start_quote) == Some(&b'"') {
                    let end = if is_raw(bytes, i) {
                        raw_string_end(bytes, start_quote + 1, hashes)
                    } else {
                        string_end(bytes, start_quote + 1)
                    };
                    fill(&mut classes, i, end, ByteClass::Str);
                    i = end;
                } else if bytes.get(start_quote) == Some(&b'\'') && !is_raw(bytes, i) {
                    // Byte char literal b'x'.
                    let end = char_literal_end(bytes, start_quote + 1);
                    fill(&mut classes, i, end, ByteClass::Char);
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                if let Some(end) = char_literal_span(bytes, i) {
                    fill(&mut classes, i, end, ByteClass::Char);
                    i = end;
                } else {
                    // A lifetime: code.
                    i += 1;
                }
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                // Skip identifiers/numbers wholesale so an `r` or `b`
                // inside one (e.g. `attr"`, `sub"..."`) is never taken
                // for a raw-string prefix.
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                // ...unless the identifier really is a string prefix
                // (r, b, br, rb) glued to a quote — handled above only
                // when it starts the identifier, so re-check here.
                if j < bytes.len()
                    && (bytes[j] == b'"' || bytes[j] == b'#')
                    && is_raw_or_byte_string_start(bytes, i)
                {
                    // Let the next loop iteration handle it from `i`.
                    let (start_quote, hashes) = raw_prefix(bytes, i);
                    if bytes.get(start_quote) == Some(&b'"') {
                        let end = if is_raw(bytes, i) {
                            raw_string_end(bytes, start_quote + 1, hashes)
                        } else {
                            string_end(bytes, start_quote + 1)
                        };
                        fill(&mut classes, i, end, ByteClass::Str);
                        i = end;
                        continue;
                    }
                }
                i = j;
            }
            _ => i += 1,
        }
    }
    classes
}

/// A single source line with rule-facing views of its text.
#[derive(Debug, Clone)]
pub struct MaskedLine {
    /// 1-based line number.
    pub number: usize,
    /// The raw line text (no trailing newline).
    pub raw: String,
    /// The line with every non-code byte blanked to a space; rules
    /// pattern-match against this.
    pub code: String,
    /// The line with every non-comment byte blanked; suppression
    /// directives are read from this.
    pub comment: String,
}

/// Splits classified source into per-line masked views.
pub fn masked_lines(src: &str, classes: &[ByteClass]) -> Vec<MaskedLine> {
    let mut lines = Vec::new();
    let mut start = 0;
    let mut number = 1;
    let bytes = src.as_bytes();
    while start <= bytes.len() {
        let end = bytes[start..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| start + p)
            .unwrap_or(bytes.len());
        let raw = &src[start..end];
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::with_capacity(raw.len());
        for (offset, ch) in raw.char_indices() {
            let class = classes[start + offset];
            code.push(if class == ByteClass::Code { ch } else { ' ' });
            comment.push(if class == ByteClass::Comment { ch } else { ' ' });
        }
        lines.push(MaskedLine {
            number,
            raw: raw.to_string(),
            code,
            comment,
        });
        if end == bytes.len() {
            break;
        }
        start = end + 1;
        number += 1;
    }
    lines
}

fn fill(classes: &mut [ByteClass], start: usize, end: usize, class: ByteClass) {
    let end = end.min(classes.len());
    for slot in &mut classes[start..end] {
        *slot = class;
    }
}

fn line_end(bytes: &[u8], from: usize) -> usize {
    bytes[from..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|p| from + p)
        .unwrap_or(bytes.len())
}

/// Finds the end (exclusive) of a possibly nested block comment starting
/// at `from` (which points at `/*`). Unterminated comments run to EOF.
fn block_comment_end(bytes: &[u8], from: usize) -> usize {
    let mut depth = 0usize;
    let mut i = from;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    bytes.len()
}

/// Finds the end (exclusive, past the closing quote) of a normal string
/// whose contents start at `from`. Unterminated strings run to EOF.
fn string_end(bytes: &[u8], from: usize) -> usize {
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Finds the end of a raw string whose contents start at `from`, closed
/// by `"` followed by `hashes` `#`s.
fn raw_string_end(bytes: &[u8], from: usize, hashes: usize) -> usize {
    let mut i = from;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if bytes.get(i + 1 + k) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// True when position `i` starts one of `r"`, `r#`, `b"`, `br`, `rb`
/// followed by a string opener — i.e. a raw/byte string prefix.
fn is_raw_or_byte_string_start(bytes: &[u8], i: usize) -> bool {
    // Must not be in the middle of a longer identifier.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    let mut seen_r = false;
    let mut seen_b = false;
    while j < bytes.len() {
        match bytes[j] {
            b'r' if !seen_r => {
                seen_r = true;
                j += 1;
            }
            b'b' if !seen_b => {
                seen_b = true;
                j += 1;
            }
            _ => break,
        }
        if j - i >= 2 {
            break;
        }
    }
    if j == i {
        return false;
    }
    // After the prefix: either hashes then a quote (raw), or a quote.
    if seen_r {
        let mut k = j;
        while bytes.get(k) == Some(&b'#') {
            k += 1;
        }
        bytes.get(k) == Some(&b'"')
    } else {
        // Plain byte string b"…" or byte char b'…'.
        bytes.get(j) == Some(&b'"') || bytes.get(j) == Some(&b'\'')
    }
}

/// True if the prefix at `i` includes `r` (raw).
fn is_raw(bytes: &[u8], i: usize) -> bool {
    bytes[i] == b'r' || (bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'r'))
}

/// Returns (index of the opening quote, number of hashes) for the
/// raw/byte-string prefix at `i`.
fn raw_prefix(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    let mut hashes = 0;
    while bytes.get(j + hashes) == Some(&b'#') {
        hashes += 1;
    }
    (j + hashes, hashes)
}

/// If a char literal starts at `i` (pointing at `'`), returns its end
/// (exclusive); returns `None` for lifetimes.
fn char_literal_span(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        return Some(char_literal_end(bytes, i + 1));
    }
    if next == b'\'' {
        // Empty '' — malformed; consume both quotes as char.
        return Some(i + 2);
    }
    if next.is_ascii_alphanumeric() || next == b'_' {
        // Could be 'a' (char) or 'a / 'static (lifetime): scan the
        // identifier; a closing quote right after means char literal.
        let mut j = i + 1;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if bytes.get(j) == Some(&b'\'') {
            return Some(j + 1);
        }
        return None; // lifetime
    }
    // Punctuation or multi-byte char: ''' is handled above; scan to the
    // closing quote on the same line.
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'\'') {
        Some(j + 1)
    } else {
        None
    }
}

/// End (exclusive) of a char literal whose contents start at `from`
/// (just past the opening quote).
fn char_literal_end(bytes: &[u8], from: usize) -> usize {
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => return i, // malformed; stop at line end
            _ => i += 1,
        }
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_view(src: &str) -> String {
        let classes = classify(src);
        src.char_indices()
            .map(|(i, c)| {
                if classes[i] == ByteClass::Code {
                    c
                } else {
                    ' '
                }
            })
            .collect()
    }

    #[test]
    fn line_comments_are_masked() {
        let masked = code_view("let x = 1; // unwrap() here\nlet y = 2;");
        assert!(masked.contains("let x = 1;"));
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("let y = 2;"));
    }

    #[test]
    fn doc_comments_are_masked() {
        let masked = code_view("/// calls panic! on error\nfn f() {}\n//! HashMap note");
        assert!(!masked.contains("panic!"));
        assert!(!masked.contains("HashMap"));
        assert!(masked.contains("fn f() {}"));
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let masked = code_view("a /* outer /* inner unwrap() */ still */ b");
        assert!(!masked.contains("unwrap"));
        assert!(!masked.contains("still"));
        assert!(masked.starts_with('a'));
        assert!(masked.trim_end().ends_with('b'));
    }

    #[test]
    fn string_literals_are_masked() {
        let masked = code_view(r#"let s = "HashMap::unwrap()"; let t = 1;"#);
        assert!(!masked.contains("HashMap"));
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("let t = 1;"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let masked = code_view(r#"let s = "a \" unwrap() \" b"; code();"#);
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("code();"));
    }

    #[test]
    fn raw_strings_with_hashes_are_masked() {
        let masked = code_view(r##"let s = r#"contains "quotes" and unwrap()"#; after();"##);
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("after();"));
    }

    #[test]
    fn raw_string_without_hashes() {
        let masked = code_view(r#"let s = r"panic! inside"; after();"#);
        assert!(!masked.contains("panic!"));
        assert!(masked.contains("after();"));
    }

    #[test]
    fn byte_strings_are_masked() {
        let masked = code_view(r#"let s = b"unwrap()"; let r = br#; after();"#);
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("after();"));
    }

    #[test]
    fn raw_byte_strings_are_masked() {
        let masked = code_view(r##"let s = br#"panic!"#; after();"##);
        assert!(!masked.contains("panic!"));
        assert!(masked.contains("after();"));
    }

    #[test]
    fn char_literals_are_masked_but_lifetimes_are_code() {
        let masked = code_view("let c = '\"'; fn f<'a>(x: &'a str) -> &'static str { x }");
        assert!(masked.contains("fn f<'a>"), "lifetime mangled: {masked}");
        assert!(masked.contains("&'static str"));
        assert!(!masked.contains('"'));
    }

    #[test]
    fn escaped_char_literals() {
        let masked = code_view(r"let c = '\''; let d = '\u{1F600}'; done();");
        assert!(masked.contains("done();"));
        assert!(!masked.contains("1F600"));
    }

    #[test]
    fn quote_in_string_does_not_start_char() {
        let masked = code_view(r#"let s = "it's fine"; real();"#);
        assert!(masked.contains("real();"));
        assert!(!masked.contains("fine"));
    }

    #[test]
    fn identifier_ending_in_r_or_b_is_not_string_prefix() {
        let masked = code_view(r#"let var = super::thing; attr_b("x"); done();"#);
        assert!(masked.contains("let var = super::thing;"));
        assert!(masked.contains("attr_b("));
        assert!(!masked.contains('x'));
        assert!(masked.contains("done();"));
    }

    #[test]
    fn masked_lines_split_and_number() {
        let src = "fn a() {} // one\n\"two\"\nthree";
        let classes = classify(src);
        let lines = masked_lines(src, &classes);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].number, 1);
        assert!(lines[0].code.contains("fn a() {}"));
        assert!(lines[0].comment.contains("// one"));
        assert!(!lines[1].code.contains("two"));
        assert_eq!(lines[2].raw, "three");
    }

    #[test]
    fn comment_view_holds_suppressions() {
        let src = "x.sort(); // lint:allow(float-cmp): densities finite";
        let classes = classify(src);
        let lines = masked_lines(src, &classes);
        assert!(lines[0].comment.contains("lint:allow(float-cmp)"));
        assert!(!lines[0].code.contains("lint:allow"));
    }

    #[test]
    fn unterminated_block_comment_runs_to_eof() {
        let masked = code_view("code(); /* unterminated unwrap()");
        assert!(masked.contains("code();"));
        assert!(!masked.contains("unwrap"));
    }
}
