//! kodan-lint: a workspace-wide determinism and panic-safety static
//! analyzer for the Kodan reproduction.
//!
//! Kodan's central claim — that specialized on-orbit pipelines are
//! reproducible on the ground — only holds if the codebase is free of
//! two classes of hazard:
//!
//! 1. **Determinism hazards.** Wall-clock reads, entropy-seeded RNGs,
//!    and iteration over `HashMap`/`HashSet` all make a run's output
//!    depend on something other than its configuration, silently
//!    breaking the ground/orbit equivalence the paper's evaluation
//!    rests on.
//! 2. **Panic hazards.** An `unwrap()` in the per-tile runtime path is
//!    a latent mission abort: there is no operator in the loop to
//!    restart a crashed satellite pipeline.
//!
//! Clippy can flag some of these, but not with path-scoped policy
//! ("banned *here*, fine *there*"), and this workspace builds offline
//! where external lint drivers may be unavailable. So the checks are
//! implemented directly: a small string/comment-correct lexer
//! ([`lexer`]), a rule table with per-path scoping ([`rules`]), and a
//! scanner that walks the tree and reports violations ([`scan`]).
//!
//! On top of the line rules sits an interprocedural layer: a lightweight
//! item parser ([`parse`]) recovers functions, call expressions and
//! panic seeds from the masked code; a call-graph builder ([`graph`])
//! links them across the eight deterministic crates; and three
//! graph-backed passes ([`passes`]) report panic sources and
//! order-sensitive float reductions *reachable from protected entry
//! points* (`Runtime::process_frame*`, `Mission::run*`,
//! `Transformation::run*`, every `wire` `Decode` impl), each diagnostic
//! carrying the witness call chain, plus an audit that flags
//! `lint:allow` directives that no longer suppress anything.
//!
//! # Using the library
//!
//! ```
//! use kodan_lint::{default_rules, scan_source};
//!
//! let rules = default_rules();
//! let hits = scan_source(
//!     "crates/core/src/queue.rs",
//!     "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
//!     &rules,
//! );
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].rule_id, "unwrap");
//! ```
//!
//! # Suppressions
//!
//! A violation is silenced by a comment on the same or the preceding
//! line naming the rule and giving a reason:
//!
//! ```text
//! let first = items.first().unwrap(); // lint:allow(unwrap): len checked above
//! ```
//!
//! Code under `#[cfg(test)]` is exempt from every rule that sets
//! `exempt_test_code` (tests may unwrap freely).
//!
//! # Exit codes
//!
//! The `kodan-lint` binary exits with the bitwise OR of the categories
//! that fired: determinism = 1, panic-safety = 2, hygiene = 4; 0 when
//! clean, 64 on usage error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod graph;
pub mod json;
pub mod lexer;
pub mod parse;
pub mod passes;
pub mod rules;
pub mod scan;

pub use graph::CallGraph;
pub use rules::{default_rules, known_rule_ids, Category, Rule, RuleKind, ScopedRule};
pub use scan::{analyze, analyze_sources, check, scan_source, Analysis, Diagnostic, Report};
