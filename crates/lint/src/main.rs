//! The `kodan-lint` command-line driver.
//!
//! ```text
//! kodan-lint check [--root <dir>] [--format text|json] [--call-graph]
//! kodan-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean; otherwise the bitwise OR of determinism (1),
//! panic-safety (2) and hygiene (4) category bits; 64 on usage error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use kodan_lint::json::{render_call_graph, render_report};
use kodan_lint::{analyze, default_rules, passes, Report};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
kodan-lint: determinism & panic-safety analyzer for the Kodan workspace

USAGE:
    kodan-lint check [--root <dir>] [--format text|json] [--call-graph]
    kodan-lint --list-rules
    kodan-lint --help

--call-graph dumps the workspace call graph (nodes, edges, entry
points) as JSON instead of the diagnostics report.

Exit code is 0 when clean, else the OR of: 1 determinism,
2 panic-safety, 4 hygiene. Usage errors exit 64.";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(64)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut command = None;
    let mut call_graph = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--root" => {
                i += 1;
                root = PathBuf::from(args.get(i).ok_or("--root needs a value")?);
            }
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format must be text or json, got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--call-graph" => call_graph = true,
            "--list-rules" => {
                list_rules();
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }

    match command {
        Some("check") => {
            let rules = default_rules();
            let analysis = analyze(&root, &rules).map_err(|e| format!("scan failed: {e}"))?;
            if call_graph {
                println!("{}", render_call_graph(&analysis.graph));
                return Ok(ExitCode::SUCCESS);
            }
            match format {
                Format::Text => print_text(&analysis.report),
                Format::Json => println!("{}", render_report(&analysis.report)),
            }
            let code = analysis.report.exit_code();
            Ok(ExitCode::from(u8::try_from(code).unwrap_or(u8::MAX)))
        }
        _ => Err("no command given (try `kodan-lint check`)".to_string()),
    }
}

fn list_rules() {
    println!("{:<18} {:<13} description", "rule", "category");
    for scoped in default_rules() {
        println!(
            "{:<18} {:<13} {}",
            scoped.rule.id,
            scoped.rule.category.name(),
            scoped
                .rule
                .description
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    for graph_rule in passes::GRAPH_RULES {
        println!(
            "{:<18} {:<13} {}",
            graph_rule.id,
            graph_rule.category.name(),
            graph_rule
                .description
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
}

fn print_text(report: &Report) {
    for d in &report.diagnostics {
        println!(
            "{}:{}: [{}/{}] {}\n    {}",
            d.path,
            d.line,
            d.category.name(),
            d.rule_id,
            d.message.split_whitespace().collect::<Vec<_>>().join(" "),
            d.snippet,
        );
        for (i, step) in d.chain.iter().enumerate() {
            println!("    {}{}", "  ".repeat(i), step);
        }
    }
    println!(
        "kodan-lint: {} file(s) scanned, {} violation(s)",
        report.files_scanned,
        report.diagnostics.len()
    );
}
