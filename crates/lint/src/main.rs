//! The `kodan-lint` command-line driver.
//!
//! ```text
//! kodan-lint check [--root <dir>] [--format text|json]
//! kodan-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean; otherwise the bitwise OR of determinism (1),
//! panic-safety (2) and hygiene (4) category bits; 64 on usage error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use kodan_lint::{check, default_rules, Report};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
kodan-lint: determinism & panic-safety analyzer for the Kodan workspace

USAGE:
    kodan-lint check [--root <dir>] [--format text|json]
    kodan-lint --list-rules
    kodan-lint --help

Exit code is 0 when clean, else the OR of: 1 determinism,
2 panic-safety, 4 hygiene. Usage errors exit 64.";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(64)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut command = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--root" => {
                i += 1;
                root = PathBuf::from(args.get(i).ok_or("--root needs a value")?);
            }
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format must be text or json, got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--list-rules" => {
                list_rules();
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }

    match command {
        Some("check") => {
            let rules = default_rules();
            let report = check(&root, &rules).map_err(|e| format!("scan failed: {e}"))?;
            match format {
                Format::Text => print_text(&report),
                Format::Json => print_json(&report),
            }
            let code = report.exit_code();
            Ok(ExitCode::from(u8::try_from(code).unwrap_or(u8::MAX)))
        }
        _ => Err("no command given (try `kodan-lint check`)".to_string()),
    }
}

fn list_rules() {
    println!("{:<18} {:<13} description", "rule", "category");
    for scoped in default_rules() {
        println!(
            "{:<18} {:<13} {}",
            scoped.rule.id,
            scoped.rule.category.name(),
            scoped.rule.description.split_whitespace().collect::<Vec<_>>().join(" "),
        );
    }
}

fn print_text(report: &Report) {
    for d in &report.diagnostics {
        println!(
            "{}:{}: [{}/{}] {}\n    {}",
            d.path,
            d.line,
            d.category.name(),
            d.rule_id,
            d.message.split_whitespace().collect::<Vec<_>>().join(" "),
            d.snippet,
        );
    }
    println!(
        "kodan-lint: {} file(s) scanned, {} violation(s)",
        report.files_scanned,
        report.diagnostics.len()
    );
}

fn print_json(report: &Report) {
    let mut out = String::from("{\n  \"files_scanned\": ");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\n  \"exit_code\": ");
    out.push_str(&report.exit_code().to_string());
    out.push_str(",\n  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"path\": ");
        out.push_str(&json_str(&d.path));
        out.push_str(", \"line\": ");
        out.push_str(&d.line.to_string());
        out.push_str(", \"rule\": ");
        out.push_str(&json_str(d.rule_id));
        out.push_str(", \"category\": ");
        out.push_str(&json_str(d.category.name()));
        out.push_str(", \"snippet\": ");
        out.push_str(&json_str(&d.snippet));
        out.push('}');
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    println!("{out}");
}

/// Minimal JSON string encoder (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
