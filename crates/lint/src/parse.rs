//! A lightweight Rust *item* parser for interprocedural analysis.
//!
//! The line-scoped rules in [`crate::rules`] see one line at a time; the
//! graph-backed passes ([`crate::passes`]) need to know which *function*
//! a line belongs to, what that function calls, and which panic sources
//! it contains. This module recovers exactly that — and nothing more —
//! from the lexer's code mask:
//!
//! - `fn` items with their owner (`impl` type or `trait` name), their
//!   declaration line and body span;
//! - call expressions inside each body: free calls (`helper(..)`),
//!   method calls (`.classify(..)`) and qualified calls
//!   (`Matrix::zeros(..)`, `Self::validate(..)`);
//! - panic seeds: `unwrap`/`expect`, panic-family macros, slice/array
//!   indexing, and integer-looking division/modulo by a non-literal.
//!
//! It is *not* a type checker: method receivers are resolved by name
//! downstream ([`crate::graph`]), which over-approximates the true call
//! graph. For a lint gate that is the right bias — a hazard behind an
//! over-approximated edge is reviewed once; a hazard behind a missed
//! edge sails into orbit.

use crate::lexer::MaskedLine;

/// What kind of panic a seed can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeedKind {
    /// `.unwrap()` on an `Option`/`Result`.
    Unwrap,
    /// `.expect(..)` on an `Option`/`Result`.
    Expect,
    /// `panic!`, `todo!` or `unimplemented!`.
    PanicMacro,
    /// Slice/array indexing or range slicing (`xs[i]`, `&xs[a..b]`).
    SliceIndex,
    /// Integer-looking division or modulo by a non-literal denominator.
    IntDiv,
}

impl SeedKind {
    /// Stable lower-case label used in diagnostics and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SeedKind::Unwrap => "unwrap()",
            SeedKind::Expect => "expect()",
            SeedKind::PanicMacro => "panic-family macro",
            SeedKind::SliceIndex => "slice/array indexing",
            SeedKind::IntDiv => "unchecked integer division",
        }
    }
}

/// One panic source inside a function body.
#[derive(Debug, Clone)]
pub struct Seed {
    /// What kind of panic it can raise.
    pub kind: SeedKind,
    /// 1-based source line.
    pub line: usize,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// The called name (`classify`, `tile_frame`, ...).
    pub name: String,
    /// The `Path` before `::name(..)`, when present (`Matrix`, `Self`,
    /// `par`); `None` for free calls and `.name(..)` method calls.
    pub qualifier: Option<String>,
    /// True for `.name(..)` method-call syntax.
    pub is_method: bool,
    /// 1-based source line of the call.
    pub line: usize,
}

/// One `fn` item recovered from a source file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// The `impl` type (or `trait` name) the function is defined on,
    /// `None` for free functions.
    pub owner: Option<String>,
    /// For functions inside `impl Trait for Type`, the trait's last
    /// path segment (`Decode` for `impl wire::Decode for Mlp`).
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace (equals `line` for
    /// bodiless declarations).
    pub end_line: usize,
    /// True when the item sits inside a `#[cfg(test)]` region or carries
    /// a `#[test]`-family attribute.
    pub is_test: bool,
    /// Call expressions in the body, in source order.
    pub calls: Vec<Call>,
    /// Panic seeds in the body, in source order.
    pub seeds: Vec<Seed>,
}

impl FnItem {
    /// `Owner::name` when the function has an owner, else `name` — the
    /// stable display form used by diagnostics and the graph JSON.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A token of the code mask.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

/// Splits masked code into identifier / number / punctuation tokens with
/// line numbers. Non-code bytes were already blanked by the lexer, so a
/// string literal or comment can never produce a token.
fn tokenize(lines: &[MaskedLine]) -> Vec<Token> {
    let mut out = Vec::new();
    for line in lines {
        let bytes = line.code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_whitespace() {
                i += 1;
            } else if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(line.code[start..i].to_string()),
                    line: line.number,
                });
            } else if b.is_ascii_digit() {
                let start = i;
                // Numbers swallow alphanumerics, `_` and a decimal point
                // (covers 1_000, 0xFF, 2.5, 1e-9's mantissa, 3f64).
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || (bytes[i] == b'.'
                            && i + 1 < bytes.len()
                            && bytes[i + 1].is_ascii_digit()))
                {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Number(line.code[start..i].to_string()),
                    line: line.number,
                });
            } else {
                if !b.is_ascii() {
                    // Skip a multi-byte char wholesale.
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
                        j += 1;
                    }
                    i = j;
                    continue;
                }
                out.push(Token {
                    tok: Tok::Punct(b as char),
                    line: line.number,
                });
                i += 1;
            }
        }
    }
    out
}

/// Keywords that may directly precede `(` or `[` without forming a call
/// or an indexing expression.
const KEYWORDS: [&str; 22] = [
    "as", "box", "break", "const", "continue", "crate", "else", "fn", "for", "if", "impl", "in",
    "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "while",
];

fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

/// Integer-typed cast targets for the division heuristic.
const INT_TYPES: [&str; 12] = [
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// One entry of the parser's nesting stack.
#[derive(Debug, Clone)]
enum Scope {
    /// An anonymous `{ .. }` (block, struct literal, match body, ...).
    Block,
    /// A `mod name { .. }`.
    Mod,
    /// An `impl Type { .. }` / `impl Trait for Type { .. }` /
    /// `trait Name { .. }` body: (owner type, implemented trait).
    Impl(String, Option<String>),
    /// A function body; the index points into the result vector.
    Fn(usize),
}

/// Parses every `fn` item in a classified source file.
///
/// `test_lines[i]` must be true when line `i` (0-based index into
/// `lines`) sits inside a `#[cfg(test)]` region; the scanner computes it
/// once per file and shares it with the line rules.
pub fn parse_items(lines: &[MaskedLine], test_lines: &[bool]) -> Vec<FnItem> {
    let toks = tokenize(lines);
    let mut items: Vec<FnItem> = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();
    // Lines (1-based) that carry a #[test]-family attribute; the next fn
    // at the same nesting is test code even outside #[cfg(test)].
    let mut pending_test_attr = false;

    let in_test = |line_number: usize| -> bool {
        line_number >= 1 && test_lines.get(line_number - 1).copied().unwrap_or(false)
    };

    let mut i = 0;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('#') => {
                // Attribute: `#[..]` or `#![..]` — skip it wholesale, but
                // remember `#[test]` / `#[rstest]`-style markers.
                let mut j = i + 1;
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('!'))) {
                    j += 1;
                }
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
                    let mut depth = 0usize;
                    let mut body: Vec<&Tok> = Vec::new();
                    while j < toks.len() {
                        match &toks[j].tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            t => body.push(t),
                        }
                        j += 1;
                    }
                    if body
                        .iter()
                        .any(|t| matches!(t, Tok::Ident(id) if id == "test" || id == "bench"))
                    {
                        pending_test_attr = true;
                    }
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "mod" => {
                // `mod name {` opens a module scope; `mod name;` does not.
                let mut j = i + 1;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('{') => {
                            stack.push(Scope::Mod);
                            break;
                        }
                        Tok::Punct(';') => break,
                        _ => j += 1,
                    }
                }
                i = j + 1;
            }
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                let is_trait = kw == "trait";
                // Collect header tokens up to the opening brace (or `;`
                // for `trait Alias = ..;`-style items we don't model).
                let mut j = i + 1;
                let mut header: Vec<&Tok> = Vec::new();
                let mut angle = 0i32;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('{') if angle <= 0 => break,
                        Tok::Punct(';') if angle <= 0 => break,
                        Tok::Punct('<') => {
                            angle += 1;
                            header.push(&toks[j].tok);
                        }
                        Tok::Punct('>') => {
                            angle -= 1;
                            header.push(&toks[j].tok);
                        }
                        t => header.push(t),
                    }
                    j += 1;
                }
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('{'))) {
                    let (owner, trait_name) = if is_trait {
                        (first_path_segment(&header).unwrap_or_default(), None)
                    } else {
                        impl_header(&header)
                    };
                    stack.push(Scope::Impl(owner, trait_name));
                }
                i = j + 1;
            }
            Tok::Ident(kw) if kw == "fn" => {
                let decl_line = toks[i].line;
                let name = match toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(name)) => name.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let (owner, trait_name) = enclosing_impl(&stack);
                let is_test = in_test(decl_line) || pending_test_attr;
                pending_test_attr = false;
                // Scan the signature: body starts at the first `{` at
                // paren depth 0; a `;` there means a bodiless declaration.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut has_body = false;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('(') => paren += 1,
                        Tok::Punct(')') => paren -= 1,
                        Tok::Punct('{') if paren == 0 => {
                            has_body = true;
                            break;
                        }
                        Tok::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                items.push(FnItem {
                    name,
                    owner,
                    trait_name,
                    line: decl_line,
                    end_line: toks.get(j).map_or(decl_line, |t| t.line),
                    is_test,
                    calls: Vec::new(),
                    seeds: Vec::new(),
                });
                if has_body {
                    stack.push(Scope::Fn(items.len() - 1));
                }
                i = j + 1;
            }
            Tok::Punct('{') => {
                stack.push(Scope::Block);
                i += 1;
            }
            Tok::Punct('}') => {
                if let Some(scope) = stack.pop() {
                    if let Scope::Fn(idx) = scope {
                        items[idx].end_line = toks[i].line;
                    }
                }
                i += 1;
            }
            _ => {
                if let Some(idx) = enclosing_fn(&stack) {
                    scan_expression_token(&toks, i, &mut items[idx]);
                }
                i += 1;
            }
        }
    }
    items
}

/// The innermost enclosing function body on the stack, if any.
fn enclosing_fn(stack: &[Scope]) -> Option<usize> {
    stack.iter().rev().find_map(|s| match s {
        Scope::Fn(idx) => Some(*idx),
        _ => None,
    })
}

/// The innermost enclosing impl/trait scope — but not across a function
/// boundary (a nested `fn` inside a method is a free function).
fn enclosing_impl(stack: &[Scope]) -> (Option<String>, Option<String>) {
    for scope in stack.iter().rev() {
        match scope {
            Scope::Impl(owner, trait_name) => {
                return (Some(owner.clone()), trait_name.clone());
            }
            Scope::Fn(_) => return (None, None),
            _ => {}
        }
    }
    (None, None)
}

/// Last segment of the first `::`-path in an item header, generics
/// stripped (`kodan_wire::Decode<T>` -> `Decode`).
fn first_path_segment(header: &[&Tok]) -> Option<String> {
    let mut last = None;
    let mut angle = 0i32;
    for tok in header {
        match tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Ident(id) if angle == 0 => {
                if id == "where" || id == "for" {
                    break;
                }
                last = Some(id.clone());
            }
            Tok::Punct('{') => break,
            _ => {}
        }
    }
    last
}

/// Splits an `impl` header into (owner type, implemented trait):
/// `impl Type` -> (Type, None); `impl Trait for Type` -> (Type, Trait).
fn impl_header(header: &[&Tok]) -> (String, Option<String>) {
    let for_pos = {
        let mut angle = 0i32;
        let mut pos = None;
        for (k, tok) in header.iter().enumerate() {
            match tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Ident(id) if angle == 0 && id == "for" => {
                    pos = Some(k);
                    break;
                }
                _ => {}
            }
        }
        pos
    };
    match for_pos {
        Some(pos) => {
            let trait_name = first_path_segment(&header[..pos]);
            let owner = first_path_segment(&header[pos + 1..]).unwrap_or_default();
            (owner, trait_name)
        }
        None => (first_path_segment(header).unwrap_or_default(), None),
    }
}

/// Inspects the token at `i` inside a function body and records any call
/// or panic seed it starts.
fn scan_expression_token(toks: &[Token], i: usize, item: &mut FnItem) {
    let line = toks[i].line;
    match &toks[i].tok {
        Tok::Ident(name) => {
            if is_keyword(name) {
                return;
            }
            let next = toks.get(i + 1).map(|t| &t.tok);
            if matches!(next, Some(Tok::Punct('!'))) {
                if name == "panic" || name == "todo" || name == "unimplemented" {
                    item.seeds.push(Seed {
                        kind: SeedKind::PanicMacro,
                        line,
                    });
                }
                return;
            }
            if !matches!(next, Some(Tok::Punct('('))) {
                return;
            }
            // A call: classify as method, qualified or free.
            let prev = toks.get(i.wrapping_sub(1)).map(|t| &t.tok);
            let prev2 = toks.get(i.wrapping_sub(2)).map(|t| &t.tok);
            let prev3 = toks.get(i.wrapping_sub(3)).map(|t| &t.tok);
            if matches!(prev, Some(Tok::Punct('.'))) {
                if name == "unwrap" && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(')'))) {
                    item.seeds.push(Seed {
                        kind: SeedKind::Unwrap,
                        line,
                    });
                    return;
                }
                if name == "expect" {
                    item.seeds.push(Seed {
                        kind: SeedKind::Expect,
                        line,
                    });
                    return;
                }
                item.calls.push(Call {
                    name: name.clone(),
                    qualifier: None,
                    is_method: true,
                    line,
                });
                return;
            }
            let qualifier = match (prev2, prev) {
                (Some(Tok::Punct(':')), Some(Tok::Punct(':'))) => match prev3 {
                    Some(Tok::Ident(q)) => Some(q.clone()),
                    // `::<f64>(..)` turbofish or `<T as Trait>::f(..)`:
                    // treat as unqualified.
                    _ => None,
                },
                _ => None,
            };
            item.calls.push(Call {
                name: name.clone(),
                qualifier,
                is_method: false,
                line,
            });
        }
        Tok::Punct('[') => {
            // Indexing when the bracket directly follows a value-ending
            // token; array literals/types/attributes follow punctuation
            // or keywords instead.
            match toks.get(i.wrapping_sub(1)).map(|t| &t.tok) {
                Some(Tok::Ident(prev)) if !is_keyword(prev) => {
                    // A lifetime tick before the ident means `&'a [T]` — a
                    // slice *type*, not an indexing expression.
                    let lifetime = matches!(
                        toks.get(i.wrapping_sub(2)).map(|t| &t.tok),
                        Some(Tok::Punct('\''))
                    );
                    if !lifetime {
                        item.seeds.push(Seed {
                            kind: SeedKind::SliceIndex,
                            line,
                        });
                    }
                }
                Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('?')) => {
                    item.seeds.push(Seed {
                        kind: SeedKind::SliceIndex,
                        line,
                    });
                }
                _ => {}
            }
        }
        Tok::Punct(op) if *op == '/' || *op == '%' => {
            // Skip `//`, `/*`, `*/` remnants (masked anyway), and look at
            // the denominator.
            let mut j = i + 1;
            if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('='))) {
                j += 1; // compound assignment `/=`, `%=`
            }
            if int_division_by_non_literal(toks, j, *op) {
                item.seeds.push(Seed {
                    kind: SeedKind::IntDiv,
                    line,
                });
            }
        }
        _ => {}
    }
}

/// The integer-division heuristic: true when the operand starting at
/// `toks[j]` looks like a non-literal *integer* denominator.
///
/// Type information is out of reach for a lexical analyzer, so the
/// heuristic is asymmetric by design — it must never flag the pervasive
/// floating-point division in the math kernels:
///
/// - a numeric literal denominator never fires (a non-zero constant
///   cannot raise a division panic, and `x / 0` is a compile error);
/// - a denominator cast `as f64`/`as f32` never fires, one cast to an
///   integer type always fires;
/// - a `.len()`-terminated denominator always fires (lengths are the
///   workspace's dominant zero-capable divisor);
/// - a bare lower-case identifier fires only for `%` — modulo on floats
///   is vanishingly rare while `index % n` is the classic wrap-around
///   panic; SCREAMING_CASE consts are compile-time non-zero by review.
fn int_division_by_non_literal(toks: &[Token], j: usize, op: char) -> bool {
    // Collect the operand: ident/field/call path or parenthesized group.
    let mut k = j;
    let mut saw_len_call = false;
    let mut bare_path = true;
    let mut last_ident: Option<&str>;
    match toks.get(k).map(|t| &t.tok) {
        Some(Tok::Number(_)) => return false,
        Some(Tok::Punct('(')) => {
            // Parenthesized group: scan its tokens for a verdict.
            let mut depth = 0i32;
            let mut int_cast = false;
            let mut float_marker = false;
            let mut pending_as = false;
            while k < toks.len() {
                match &toks[k].tok {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Ident(id) => {
                        if pending_as {
                            if INT_TYPES.contains(&id.as_str()) {
                                int_cast = true;
                            } else if id == "f64" || id == "f32" {
                                float_marker = true;
                            }
                            pending_as = false;
                        }
                        if id == "as" {
                            pending_as = true;
                        }
                    }
                    Tok::Number(n) => {
                        if n.contains('.') || n.contains("f64") || n.contains("f32") {
                            float_marker = true;
                        }
                    }
                    _ => pending_as = false,
                }
                k += 1;
            }
            // After the group, an `as` cast settles it.
            if let Some(cast) = cast_after(toks, k + 1) {
                return cast;
            }
            return int_cast && !float_marker;
        }
        Some(Tok::Ident(first)) => {
            if is_keyword(first) {
                return false;
            }
            last_ident = Some(first);
            k += 1;
        }
        _ => return false,
    }
    // Walk `.field`, `.call(..)`, `::seg` chains.
    loop {
        match toks.get(k).map(|t| &t.tok) {
            Some(Tok::Punct('.')) | Some(Tok::Punct(':')) => {
                bare_path = bare_path && !matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Punct('.')));
                k += 1;
                if let Some(Tok::Ident(seg)) = toks.get(k).map(|t| &t.tok) {
                    last_ident = Some(seg);
                    k += 1;
                } else {
                    break;
                }
            }
            Some(Tok::Punct('(')) => {
                // A trailing call: remember if it is `.len()`.
                if last_ident == Some("len") {
                    saw_len_call = true;
                }
                bare_path = false;
                let mut depth = 0i32;
                while k < toks.len() {
                    match &toks[k].tok {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                k += 1;
            }
            _ => break,
        }
    }
    if let Some(cast) = cast_after(toks, k) {
        return cast;
    }
    if saw_len_call {
        return true;
    }
    // Bare identifier path: `%` by a run-time value is the classic
    // wrap-around panic; `/` by an identifier is overwhelmingly float
    // math in this workspace. SCREAMING_CASE denominators are consts.
    if op == '%' {
        if let Some(id) = last_ident {
            let screaming = id
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
            return !screaming && bare_path;
        }
    }
    false
}

/// If tokens at `k` are `as <type>`, returns `Some(true)` for an integer
/// type and `Some(false)` for a float type; `None` when there is no cast.
fn cast_after(toks: &[Token], k: usize) -> Option<bool> {
    match toks.get(k).map(|t| &t.tok) {
        Some(Tok::Ident(id)) if id == "as" => match toks.get(k + 1).map(|t| &t.tok) {
            Some(Tok::Ident(ty)) if INT_TYPES.contains(&ty.as_str()) => Some(true),
            Some(Tok::Ident(ty)) if ty == "f64" || ty == "f32" => Some(false),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{classify, masked_lines};

    fn parse(src: &str) -> Vec<FnItem> {
        let classes = classify(src);
        let lines = masked_lines(src, &classes);
        let test_lines = vec![false; lines.len()];
        parse_items(&lines, &test_lines)
    }

    fn parse_with_tests(src: &str) -> Vec<FnItem> {
        let classes = classify(src);
        let lines = masked_lines(src, &classes);
        let test_lines = crate::scan::test_code_lines(&lines);
        parse_items(&lines, &test_lines)
    }

    #[test]
    fn free_function_with_call_and_seed() {
        let items = parse("fn f(x: Option<u8>) -> u8 { helper(); x.unwrap() }\n");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "f");
        assert_eq!(items[0].owner, None);
        assert_eq!(items[0].calls.len(), 1);
        assert_eq!(items[0].calls[0].name, "helper");
        assert!(!items[0].calls[0].is_method);
        assert_eq!(items[0].seeds.len(), 1);
        assert_eq!(items[0].seeds[0].kind, SeedKind::Unwrap);
    }

    #[test]
    fn impl_methods_get_their_owner() {
        let src = "struct Runtime;\nimpl Runtime {\n    pub fn process_frame(&self) {\n        self.helper();\n    }\n    fn helper(&self) {}\n}\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].display(), "Runtime::process_frame");
        assert_eq!(items[1].display(), "Runtime::helper");
        assert_eq!(items[0].calls.len(), 1);
        assert!(items[0].calls[0].is_method);
        assert_eq!(items[0].calls[0].name, "helper");
    }

    #[test]
    fn trait_impls_record_the_trait() {
        let src = "impl kodan_wire::Decode for Mlp {\n    fn decode(dec: &mut Dec) -> Self { todo!() }\n}\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].display(), "Mlp::decode");
        assert_eq!(items[0].trait_name.as_deref(), Some("Decode"));
        assert_eq!(items[0].seeds.len(), 1);
        assert_eq!(items[0].seeds[0].kind, SeedKind::PanicMacro);
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let src = "impl<T: Clone> Encode for Vec<T> {\n    fn encode(&self) { inner(); }\n}\n";
        let items = parse(src);
        assert_eq!(items[0].owner.as_deref(), Some("Vec"));
        assert_eq!(items[0].trait_name.as_deref(), Some("Encode"));
    }

    #[test]
    fn nested_impls_and_shadowed_names() {
        let src = "impl A {\n    fn go(&self) { self.go2(); }\n}\nimpl B {\n    fn go(&self) { free(); }\n}\nfn go() {}\n";
        let items = parse(src);
        let displays: Vec<String> = items.iter().map(FnItem::display).collect();
        assert_eq!(displays, vec!["A::go", "B::go", "go"]);
    }

    #[test]
    fn qualified_calls_capture_the_qualifier() {
        let src = "fn f() { Matrix::zeros(3); par::stream_seed(1, 2); Self::check(); }\n";
        let items = parse(src);
        let calls = &items[0].calls;
        assert_eq!(calls.len(), 3);
        assert_eq!(calls[0].qualifier.as_deref(), Some("Matrix"));
        assert_eq!(calls[1].qualifier.as_deref(), Some("par"));
        assert_eq!(calls[2].qualifier.as_deref(), Some("Self"));
    }

    #[test]
    fn indexing_is_a_seed_but_literals_and_types_are_not() {
        let src = "fn f(xs: &[u8], i: usize) -> u8 {\n    let a: [u8; 2] = [1, 2];\n    let _ = &xs[1..];\n    xs[i]\n}\n";
        let items = parse(src);
        let kinds: Vec<SeedKind> = items[0].seeds.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SeedKind::SliceIndex, SeedKind::SliceIndex]);
        assert_eq!(items[0].seeds[0].line, 3);
        assert_eq!(items[0].seeds[1].line, 4);
    }

    #[test]
    fn macro_brackets_are_not_indexing() {
        let items = parse("fn f() -> Vec<u8> { vec![1, 2, 3] }\n");
        assert!(items[0].seeds.is_empty());
    }

    #[test]
    fn lifetime_slice_types_are_not_indexing() {
        // `&'t [T]` in an enum variant or fn signature is a slice *type*:
        // the lifetime ident before `[` must not read as an index base.
        let src = "fn f<'t>(xs: &'t [u8]) -> &'t [u8] {\n    enum E<'a> { V(&'a [u8]) }\n    xs\n}\n";
        let items = parse(src);
        assert!(items[0].seeds.is_empty());
    }

    #[test]
    fn int_division_heuristic() {
        // `.len()` denominator fires; float casts and literals do not.
        let fires = |expr: &str| -> bool {
            let src = format!("fn f() {{ let _ = {expr}; }}\n");
            parse(&src)[0]
                .seeds
                .iter()
                .any(|s| s.kind == SeedKind::IntDiv)
        };
        assert!(fires("a / xs.len()"));
        assert!(fires("x % n"));
        assert!(fires("x % (k as u64)"));
        assert!(fires("i / (n as usize)"));
        assert!(!fires("a / xs.len() as f64"));
        assert!(!fires("a / 2"));
        assert!(!fires("a / 2.0"));
        assert!(!fires("a / b"));
        assert!(!fires("x % CHANNELS"));
        assert!(!fires("a / (b as f64)"));
    }

    #[test]
    fn expect_and_unwrap_variants() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap();\n    x.expect(\"reason\");\n    x.unwrap_or(0);\n    x.unwrap_or_default();\n}\n";
        let items = parse(src);
        let kinds: Vec<SeedKind> = items[0].seeds.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SeedKind::Unwrap, SeedKind::Expect]);
        // unwrap_or / unwrap_or_default are calls, not seeds.
        assert!(items[0].calls.iter().any(|c| c.name == "unwrap_or"));
    }

    #[test]
    fn cfg_test_functions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n";
        let items = parse_with_tests(src);
        assert_eq!(items.len(), 3);
        assert!(!items[0].is_test);
        assert!(items[1].is_test);
        assert!(items[2].is_test);
    }

    #[test]
    fn test_attr_marks_integration_test_fns() {
        let src = "#[test]\nfn gate_works() { x.unwrap(); }\nfn live() {}\n";
        let items = parse_with_tests(src);
        assert!(items[0].is_test);
        assert!(!items[1].is_test);
    }

    #[test]
    fn bodiless_trait_methods_have_no_span() {
        let src = "trait Engine {\n    fn classify(&self) -> u8;\n    fn name(&self) -> &str { \"x\" }\n}\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].display(), "Engine::classify");
        assert_eq!(items[0].end_line, items[0].line);
        assert_eq!(items[1].display(), "Engine::name");
    }

    #[test]
    fn closures_attribute_to_the_enclosing_fn() {
        let src = "fn outer(xs: &[u64]) -> u64 {\n    xs.iter().map(|x| inner(*x)).sum()\n}\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert!(items[0].calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn nested_fn_is_its_own_item() {
        let src = "fn outer() {\n    fn inner(x: Option<u8>) -> u8 { x.unwrap() }\n    inner(None);\n}\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "outer");
        assert_eq!(items[1].name, "inner");
        assert!(items[0].seeds.is_empty());
        assert_eq!(items[1].seeds.len(), 1);
        assert!(items[0].calls.iter().any(|c| c.name == "inner"));
    }
}
