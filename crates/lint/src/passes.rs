//! The graph-backed rule passes: panic reachability, float reduction
//! order, and the suppression audit.
//!
//! Unlike the line rules in [`crate::rules`], these passes reason about
//! the whole workspace at once: a seed is only a finding when the call
//! graph shows a path from a protected entry point to the function that
//! contains it, and every diagnostic carries that path as a witness
//! chain so the reviewer can see *why* the line is load-bearing.

use crate::graph::CallGraph;
use crate::parse::SeedKind;
use crate::rules::Category;
use crate::scan::{Diagnostic, FileAnalysis};
use std::collections::BTreeSet;

/// Metadata for a graph-backed rule (the analogue of [`crate::rules::Rule`]
/// for passes that cannot be expressed as line patterns).
#[derive(Debug, Clone, Copy)]
pub struct GraphRule {
    /// Stable kebab-case identifier (usable in `lint:allow(..)`).
    pub id: &'static str,
    /// The category the rule reports (and exits) under.
    pub category: Category,
    /// One-line human description for `--list-rules`.
    pub description: &'static str,
}

/// All graph-backed rules, in reporting order.
pub const GRAPH_RULES: [GraphRule; 3] = [
    GraphRule {
        id: "panic-reachable",
        category: Category::PanicSafety,
        description: "panic source (unwrap/expect/panic!/indexing/int division) reachable \
                      from a protected entry point; make the helper total or propagate \
                      KodanError",
    },
    GraphRule {
        id: "float-reduction",
        category: Category::Determinism,
        description: "order-sensitive f64 reduction (sum/product/fold/max_by without \
                      total_cmp) reachable from deterministic outputs; use a stable \
                      reduction or a sanctioned kernel",
    },
    GraphRule {
        id: "stale-allow",
        category: Category::Hygiene,
        description: "lint:allow directive whose rule no longer fires on that line \
                      (or names an unknown rule); remove or update it",
    },
];

fn graph_rule(id: &str) -> GraphRule {
    *GRAPH_RULES
        .iter()
        .find(|r| r.id == id)
        .expect("graph rule ids are static")
}

/// Files whose slice-indexing and integer division are sanctioned:
/// fixed-shape math and raster kernels where every index derives from a
/// loop bound over a buffer the kernel itself sized. Data-driven indices
/// (decoded policies, context ids, queue positions) never live here and
/// stay fully in scope. `unwrap`/`expect`/`panic!` seeds are *never*
/// sanctioned — those must be fixed wherever they are reachable.
pub const INDEX_SANCTIONED: [&str; 15] = [
    "crates/core/src/context.rs",
    "crates/core/src/tiling.rs",
    "crates/geodata/src/augment.rs",
    "crates/geodata/src/features.rs",
    "crates/geodata/src/frame.rs",
    "crates/geodata/src/pixel.rs",
    "crates/geodata/src/resize.rs",
    "crates/geodata/src/stats.rs",
    "crates/geodata/src/tile.rs",
    "crates/ml/src/kmeans.rs",
    "crates/ml/src/linear.rs",
    "crates/ml/src/matrix.rs",
    "crates/ml/src/mlp.rs",
    "crates/ml/src/transform.rs",
    "crates/telemetry/src/recorder.rs",
];

/// Files whose float reductions are sanctioned: the ML training and
/// inference kernels, where reduction order is pinned by the kernels'
/// own fixed iteration scheme (asserted byte-stable by the ml tests)
/// rather than by per-call-site discipline.
pub const REDUCTION_SANCTIONED: [&str; 6] = [
    "crates/ml/src/kmeans.rs",
    "crates/ml/src/linear.rs",
    "crates/ml/src/matrix.rs",
    "crates/ml/src/metrics.rs",
    "crates/ml/src/mlp.rs",
    "crates/ml/src/optimizer.rs",
];

fn sanctioned(path: &str, list: &[&str]) -> bool {
    list.iter().any(|p| path.starts_with(p))
}

/// The panic-reachability pass: every seed in a function reachable from
/// a protected entry point becomes a candidate diagnostic carrying the
/// witness chain entry → … → containing function.
pub fn panic_reachability(
    files: &[FileAnalysis],
    graph: &CallGraph,
    pred: &[Option<usize>],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let rule = graph_rule("panic-reachable");
    for (id, node) in graph.nodes.iter().enumerate() {
        if pred[id].is_none() {
            continue;
        }
        let file = &files[node.file];
        let item = &file.items[node.item];
        let chain = graph.chain(pred, id);
        let entry = chain.first().cloned().unwrap_or_default();
        for seed in &item.seeds {
            let indexed = matches!(seed.kind, SeedKind::SliceIndex | SeedKind::IntDiv);
            if indexed && sanctioned(&file.path, &INDEX_SANCTIONED) {
                continue;
            }
            let snippet = file
                .lines
                .get(seed.line - 1)
                .map(|l| l.raw.trim().to_string())
                .unwrap_or_default();
            out.push(Diagnostic {
                path: file.path.clone(),
                line: seed.line,
                rule_id: rule.id,
                category: rule.category,
                message: format!(
                    "{} in {} is reachable from protected entry point {}",
                    seed.kind.label(),
                    node.display,
                    entry
                ),
                snippet,
                chain: chain.clone(),
            });
        }
    }
    out
}

/// True when one masked code line contains an order-sensitive float
/// reduction. Lexical by design: a line mentioning `f64`/`f32` alongside
/// `.sum()`/`.product()`, a float-seeded `.fold(`, or a `max_by`/`min_by`
/// comparator that never says `total_cmp`.
pub fn float_reduction_needle(code: &str) -> Option<&'static str> {
    let packed: String = code.chars().filter(|c| !c.is_whitespace()).collect();
    let floaty = packed.contains("f64") || packed.contains("f32");
    if packed.contains(".sum::<f64>()") || packed.contains(".sum::<f32>()") {
        return Some("float sum");
    }
    if floaty && (packed.contains(".sum()") || packed.contains(".product()")) {
        return Some("float sum/product");
    }
    for fold in [".fold(0.", ".fold(1.", ".fold((0.", ".fold(f64", ".fold(f32"] {
        if packed.contains(fold) {
            return Some("float fold");
        }
    }
    if (packed.contains(".max_by(") || packed.contains(".min_by(")) && !packed.contains("total_cmp")
    {
        return Some("max_by/min_by without total_cmp");
    }
    None
}

/// The float-reduction-order pass: flags order-sensitive reductions in
/// functions reachable from the protected entry points, outside the
/// sanctioned ML kernels.
pub fn float_reduction(
    files: &[FileAnalysis],
    graph: &CallGraph,
    pred: &[Option<usize>],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let rule = graph_rule("float-reduction");
    for (id, node) in graph.nodes.iter().enumerate() {
        if pred[id].is_none() {
            continue;
        }
        let file = &files[node.file];
        if sanctioned(&file.path, &REDUCTION_SANCTIONED) {
            continue;
        }
        let item = &file.items[node.item];
        let chain = graph.chain(pred, id);
        let entry = chain.first().cloned().unwrap_or_default();
        // Scan only this item's span; a nested fn's span is covered by
        // its own (more precise) node, so skip lines owned by siblings
        // that start inside this body.
        let nested: Vec<(usize, usize)> = file
            .items
            .iter()
            .enumerate()
            .filter(|(i, f)| *i != node.item && f.line > item.line && f.end_line <= item.end_line)
            .map(|(_, f)| (f.line, f.end_line))
            .collect();
        for line in &file.lines {
            if line.number < item.line || line.number > item.end_line {
                continue;
            }
            if nested.iter().any(|&(s, e)| line.number >= s && line.number <= e) {
                continue;
            }
            if let Some(what) = float_reduction_needle(&line.code) {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: line.number,
                    rule_id: rule.id,
                    category: rule.category,
                    message: format!(
                        "order-sensitive {what} in {} is reachable from {}",
                        node.display, entry
                    ),
                    snippet: line.raw.trim().to_string(),
                    chain: chain.clone(),
                });
            }
        }
    }
    out
}

/// The suppression audit: a `lint:allow` that suppressed nothing in this
/// run — or that names a rule id the analyzer does not know — is itself
/// a hygiene finding. The lint crate's own sources are exempt (its docs
/// and fixtures quote directives illustratively).
///
/// `used` holds every `(file index, line index, rule id)` whose allow
/// actually suppressed a candidate diagnostic during this analysis.
pub fn stale_allow(
    files: &[FileAnalysis],
    used: &BTreeSet<(usize, usize, String)>,
    known_ids: &BTreeSet<&'static str>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let rule = graph_rule("stale-allow");
    for (file_idx, file) in files.iter().enumerate() {
        if file.path.starts_with("crates/lint/") {
            continue;
        }
        for (line_idx, ids) in file.allows.iter().enumerate() {
            for id in ids {
                let message = if !known_ids.contains(id.as_str()) {
                    format!("lint:allow({id}) names a rule the analyzer does not know")
                } else if used.contains(&(file_idx, line_idx, id.clone())) {
                    continue;
                } else {
                    format!("lint:allow({id}) suppresses nothing here; the rule no longer fires")
                };
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: file.lines[line_idx].number,
                    rule_id: rule.id,
                    category: rule.category,
                    message,
                    snippet: file.lines[line_idx].raw.trim().to_string(),
                    chain: Vec::new(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_rule_ids_are_unique_and_kebab() {
        let mut ids: Vec<&str> = GRAPH_RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len());
        for id in ids {
            assert!(id.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn reduction_needles() {
        assert!(float_reduction_needle("let s: f64 = xs.iter().sum();").is_some());
        assert!(float_reduction_needle("let s = xs.iter().sum::<f64>();").is_some());
        assert!(float_reduction_needle("xs.iter().fold(0.0, |a, b| a + b)").is_some());
        assert!(float_reduction_needle("xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap())").is_some());
        assert!(float_reduction_needle("let n: usize = xs.iter().sum();").is_none());
        assert!(float_reduction_needle("xs.iter().max_by(|a, b| a.total_cmp(b))").is_none());
        assert!(float_reduction_needle("let s = count as f64 / total;").is_none());
    }

    #[test]
    fn sanctioned_prefixes_match() {
        assert!(sanctioned("crates/ml/src/matrix.rs", &INDEX_SANCTIONED));
        assert!(!sanctioned("crates/core/src/runtime.rs", &INDEX_SANCTIONED));
        assert!(sanctioned("crates/ml/src/mlp.rs", &REDUCTION_SANCTIONED));
        assert!(!sanctioned("crates/cote/src/link.rs", &REDUCTION_SANCTIONED));
    }
}
