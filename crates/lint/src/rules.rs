//! The rule set: determinism, panic-safety and hygiene rules, plus the
//! path scoping that binds each rule to the parts of the workspace where
//! its invariant must hold.

/// A rule's severity grouping; each category owns one process exit bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Bit-reproducibility hazards: wall-clock time, entropy-seeded
    /// RNGs, iteration-order-sensitive collections.
    Determinism,
    /// Abort hazards in on-orbit runtime paths: `unwrap`, `expect`,
    /// `panic!`, NaN-unsound float comparisons.
    PanicSafety,
    /// Crate hygiene: missing safety/doc attributes, debug printing in
    /// library code.
    Hygiene,
}

impl Category {
    /// The exit-code bit owned by this category (see the CLI docs).
    pub fn exit_bit(self) -> i32 {
        match self {
            Category::Determinism => 1,
            Category::PanicSafety => 2,
            Category::Hygiene => 4,
        }
    }

    /// Stable lower-case name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Category::Determinism => "determinism",
            Category::PanicSafety => "panic-safety",
            Category::Hygiene => "hygiene",
        }
    }
}

/// What a rule checks.
#[derive(Debug, Clone, Copy)]
pub enum RuleKind {
    /// Flags every line whose *code mask* contains one of the needles.
    /// Needles that start/end with an identifier character are matched
    /// on word boundaries, so `Instant` does not match `InstantEnum`.
    Pattern {
        /// Substrings to search for in masked code.
        needles: &'static [&'static str],
    },
    /// Requires a crate-root file to contain the given inner attribute
    /// (matched against masked code, whitespace-insensitively).
    RequiredAttr {
        /// The attribute text, e.g. `#![forbid(unsafe_code)]`.
        attr: &'static str,
    },
}

/// One lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case identifier (used by `lint:allow(..)`).
    pub id: &'static str,
    /// The category the rule reports (and exits) under.
    pub category: Category,
    /// One-line human description, shown by `--list-rules` and in
    /// diagnostics.
    pub description: &'static str,
    /// When true, code inside `#[cfg(test)]` blocks is exempt.
    pub exempt_test_code: bool,
    /// What the rule checks.
    pub kind: RuleKind,
}

/// A rule bound to the path prefixes it applies to.
#[derive(Debug, Clone)]
pub struct ScopedRule {
    /// The rule.
    pub rule: Rule,
    /// Workspace-relative path prefixes (forward slashes). A file is in
    /// scope when its relative path starts with any prefix. An empty
    /// list means every scanned file.
    pub include: Vec<String>,
    /// Path prefixes carved *out* of the scope: a file matching any of
    /// these is never in scope, even when it matches `include`. Used for
    /// rules whose invariant has a single sanctioned home (e.g. thread
    /// spawning is confined to `kodan_core::par`).
    pub exclude: Vec<String>,
}

impl ScopedRule {
    /// True when `relative_path` is covered by this rule's scope.
    pub fn applies_to(&self, relative_path: &str) -> bool {
        let included = self.include.is_empty()
            || self
                .include
                .iter()
                .any(|prefix| relative_path.starts_with(prefix.as_str()));
        included
            && !self
                .exclude
                .iter()
                .any(|prefix| relative_path.starts_with(prefix.as_str()))
    }
}

/// The eight crates whose artifacts must be bit-reproducible. The
/// telemetry crate is here by construction: its snapshots are asserted
/// byte-identical across runs, so wall-clock reads would break them.
/// The faults crate doubly so: its whole contract is that fault
/// schedules are pure functions of the seed. The wire crate's entire
/// purpose is canonical bytes, so it inherits every determinism rule.
/// The call graph in [`crate::graph`] draws its nodes from the same set.
pub const DETERMINISTIC_CRATES: [&str; 8] = [
    "crates/core/src/",
    "crates/cote/src/",
    "crates/geodata/src/",
    "crates/ml/src/",
    "crates/hw/src/",
    "crates/telemetry/src/",
    "crates/faults/src/",
    "crates/wire/src/",
];

/// The on-orbit runtime path: code that executes per-tile on the
/// satellite (or derives what will). A panic here aborts a mission.
const RUNTIME_PATH_FILES: [&str; 5] = [
    "crates/core/src/runtime.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/queue.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/elide.rs",
];

/// Library-crate roots that must carry the hygiene attributes.
const LIBRARY_CRATE_ROOTS: [&str; 11] = [
    "crates/core/src/lib.rs",
    "crates/cote/src/lib.rs",
    "crates/geodata/src/lib.rs",
    "crates/ml/src/lib.rs",
    "crates/hw/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/lint/src/lib.rs",
    "crates/telemetry/src/lib.rs",
    "crates/faults/src/lib.rs",
    "crates/wire/src/lib.rs",
    "src/lib.rs",
];

fn paths(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Builds the default rule set for this repository.
pub fn default_rules() -> Vec<ScopedRule> {
    vec![
        // ---- determinism ------------------------------------------------
        ScopedRule {
            rule: Rule {
                id: "wall-clock",
                category: Category::Determinism,
                description: "wall-clock time (Instant/SystemTime) in deterministic crates; \
                              use kodan_cote::time simulated time",
                exempt_test_code: true,
                kind: RuleKind::Pattern {
                    needles: &["Instant", "SystemTime"],
                },
            },
            include: paths(&DETERMINISTIC_CRATES),
            exclude: Vec::new(),
        },
        ScopedRule {
            rule: Rule {
                id: "entropy",
                category: Category::Determinism,
                description: "entropy-seeded randomness in deterministic crates; \
                              seed a ChaCha RNG from configuration instead",
                exempt_test_code: true,
                kind: RuleKind::Pattern {
                    needles: &["thread_rng", "from_entropy", "OsRng", "getrandom"],
                },
            },
            include: paths(&DETERMINISTIC_CRATES),
            exclude: Vec::new(),
        },
        ScopedRule {
            rule: Rule {
                id: "hash-collections",
                category: Category::Determinism,
                description: "iteration-order-sensitive HashMap/HashSet in deterministic \
                              crates; use BTreeMap/BTreeSet",
                exempt_test_code: true,
                kind: RuleKind::Pattern {
                    needles: &["HashMap", "HashSet"],
                },
            },
            // The bench harness regenerates paper figures, so its
            // aggregation order matters too.
            include: {
                let mut scope = paths(&DETERMINISTIC_CRATES);
                scope.push("crates/bench/".to_string());
                scope
            },
            exclude: Vec::new(),
        },
        ScopedRule {
            rule: Rule {
                id: "thread-discipline",
                category: Category::Determinism,
                description: "thread spawning outside kodan_core::par; route parallelism \
                              through par::par_map_indexed/par_map_recorded so outputs \
                              stay interleaving-independent",
                exempt_test_code: true,
                kind: RuleKind::Pattern {
                    needles: &["std::thread", "thread::spawn", "thread::scope", "crossbeam"],
                },
            },
            include: paths(&DETERMINISTIC_CRATES),
            // The deterministic data-parallel layer is the one sanctioned
            // home for threads; everything else must go through it.
            exclude: vec!["crates/core/src/par.rs".to_string()],
        },
        ScopedRule {
            rule: Rule {
                id: "io-discipline",
                category: Category::Determinism,
                description: "filesystem access outside the artifact store; route all \
                              persistence through kodan_wire::ArtifactStore so on-disk \
                              bytes stay canonical and checksummed",
                exempt_test_code: true,
                kind: RuleKind::Pattern {
                    needles: &["std::fs", "std::io::Write", "File::create", "File::open"],
                },
            },
            include: paths(&DETERMINISTIC_CRATES),
            // The content-addressed store is the one sanctioned home for
            // file I/O in deterministic crates; the CLI (out of scope
            // here) may also read and write user-named paths.
            exclude: vec!["crates/wire/src/store.rs".to_string()],
        },
        // ---- panic safety ----------------------------------------------
        ScopedRule {
            rule: Rule {
                id: "unwrap",
                category: Category::PanicSafety,
                description: "unwrap() in the on-orbit runtime path; propagate KodanError",
                exempt_test_code: true,
                kind: RuleKind::Pattern {
                    needles: &[".unwrap()"],
                },
            },
            include: paths(&RUNTIME_PATH_FILES),
            exclude: Vec::new(),
        },
        ScopedRule {
            rule: Rule {
                id: "expect",
                category: Category::PanicSafety,
                description: "expect() in the on-orbit runtime path; propagate KodanError",
                exempt_test_code: true,
                kind: RuleKind::Pattern {
                    needles: &[".expect("],
                },
            },
            include: paths(&RUNTIME_PATH_FILES),
            exclude: Vec::new(),
        },
        ScopedRule {
            rule: Rule {
                id: "panic-macro",
                category: Category::PanicSafety,
                description: "panic!/todo!/unimplemented! in the on-orbit runtime path; \
                              return Err(KodanError::..) instead",
                exempt_test_code: true,
                kind: RuleKind::Pattern {
                    needles: &["panic!", "todo!", "unimplemented!"],
                },
            },
            include: paths(&RUNTIME_PATH_FILES),
            exclude: Vec::new(),
        },
        ScopedRule {
            rule: Rule {
                id: "float-cmp",
                category: Category::PanicSafety,
                description: "partial_cmp on floats in the on-orbit runtime path panics or \
                              misorders on NaN; use f64::total_cmp",
                exempt_test_code: true,
                kind: RuleKind::Pattern {
                    needles: &["partial_cmp"],
                },
            },
            include: paths(&RUNTIME_PATH_FILES),
            exclude: Vec::new(),
        },
        // ---- hygiene ----------------------------------------------------
        ScopedRule {
            rule: Rule {
                id: "forbid-unsafe",
                category: Category::Hygiene,
                description: "library crate roots must carry #![forbid(unsafe_code)]",
                exempt_test_code: false,
                kind: RuleKind::RequiredAttr {
                    attr: "#![forbid(unsafe_code)]",
                },
            },
            include: paths(&LIBRARY_CRATE_ROOTS),
            exclude: Vec::new(),
        },
        ScopedRule {
            rule: Rule {
                id: "deny-missing-docs",
                category: Category::Hygiene,
                description: "library crate roots must carry #![deny(missing_docs)]",
                exempt_test_code: false,
                kind: RuleKind::RequiredAttr {
                    attr: "#![deny(missing_docs)]",
                },
            },
            include: paths(&LIBRARY_CRATE_ROOTS),
            exclude: Vec::new(),
        },
        ScopedRule {
            rule: Rule {
                id: "print-macro",
                category: Category::Hygiene,
                description: "debug printing (println!/dbg!/eprintln!) in deterministic \
                              library crates",
                exempt_test_code: true,
                kind: RuleKind::Pattern {
                    needles: &["println!", "print!", "eprintln!", "eprint!", "dbg!"],
                },
            },
            include: paths(&DETERMINISTIC_CRATES),
            exclude: Vec::new(),
        },
    ]
}

/// Every rule id the analyzer understands: the line rules plus the
/// graph-backed passes. The suppression audit treats an allow naming any
/// other id as a finding.
pub fn known_rule_ids() -> Vec<&'static str> {
    default_rules()
        .iter()
        .map(|r| r.rule.id)
        .chain(crate::passes::GRAPH_RULES.iter().map(|g| g.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_id_is_unique_and_kebab() {
        let rules = default_rules();
        let mut ids: Vec<&str> = rules.iter().map(|r| r.rule.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate rule ids");
        for id in ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule id {id} is not kebab-case"
            );
        }
    }

    #[test]
    fn scoping_matches_prefixes() {
        let rule = ScopedRule {
            rule: default_rules()[0].rule,
            include: vec!["crates/core/src/".to_string()],
            exclude: Vec::new(),
        };
        assert!(rule.applies_to("crates/core/src/runtime.rs"));
        assert!(!rule.applies_to("crates/cli/src/main.rs"));
    }

    #[test]
    fn empty_scope_matches_everything() {
        let rule = ScopedRule {
            rule: default_rules()[0].rule,
            include: Vec::new(),
            exclude: Vec::new(),
        };
        assert!(rule.applies_to("anything/at/all.rs"));
    }

    #[test]
    fn exclusions_carve_out_of_the_scope() {
        let rule = ScopedRule {
            rule: default_rules()[0].rule,
            include: vec!["crates/core/src/".to_string()],
            exclude: vec!["crates/core/src/par.rs".to_string()],
        };
        assert!(rule.applies_to("crates/core/src/runtime.rs"));
        assert!(!rule.applies_to("crates/core/src/par.rs"));
        // An exclusion also trims an otherwise-universal scope.
        let universal = ScopedRule {
            rule: default_rules()[0].rule,
            include: Vec::new(),
            exclude: vec!["shims/".to_string()],
        };
        assert!(universal.applies_to("crates/ml/src/matrix.rs"));
        assert!(!universal.applies_to("shims/crossbeam/src/lib.rs"));
    }

    #[test]
    fn thread_discipline_scope_excludes_only_par() {
        let rules = default_rules();
        let td = rules
            .iter()
            .find(|r| r.rule.id == "thread-discipline")
            .expect("thread-discipline rule exists");
        assert_eq!(td.rule.category, Category::Determinism);
        assert!(td.applies_to("crates/geodata/src/dataset.rs"));
        assert!(td.applies_to("crates/core/src/runtime.rs"));
        assert!(!td.applies_to("crates/core/src/par.rs"));
        assert!(!td.applies_to("crates/cli/src/main.rs"));
    }

    #[test]
    fn io_discipline_scope_excludes_only_the_store() {
        let rules = default_rules();
        let io = rules
            .iter()
            .find(|r| r.rule.id == "io-discipline")
            .expect("io-discipline rule exists");
        assert_eq!(io.rule.category, Category::Determinism);
        assert!(io.applies_to("crates/core/src/artifact.rs"));
        assert!(io.applies_to("crates/wire/src/codec.rs"));
        assert!(!io.applies_to("crates/wire/src/store.rs"));
        // The CLI is allowed to touch user-named paths directly.
        assert!(!io.applies_to("crates/cli/src/commands.rs"));
    }

    #[test]
    fn known_ids_cover_line_and_graph_rules() {
        let mut ids = known_rule_ids();
        assert!(ids.contains(&"unwrap"));
        assert!(ids.contains(&"panic-reachable"));
        assert!(ids.contains(&"float-reduction"));
        assert!(ids.contains(&"stale-allow"));
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(before, ids.len(), "line and graph rule ids collide");
    }

    #[test]
    fn category_bits_are_distinct() {
        let bits = [
            Category::Determinism.exit_bit(),
            Category::PanicSafety.exit_bit(),
            Category::Hygiene.exit_bit(),
        ];
        assert_eq!(bits[0] & bits[1], 0);
        assert_eq!(bits[0] & bits[2], 0);
        assert_eq!(bits[1] & bits[2], 0);
    }
}
