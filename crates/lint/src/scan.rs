//! The scanner: walks the workspace, applies every in-scope rule to the
//! masked view of each file, honours `lint:allow` suppressions and the
//! `#[cfg(test)]` exemption, and aggregates diagnostics into a report.

use crate::lexer::{classify, masked_lines, MaskedLine};
use crate::rules::{Category, RuleKind, ScopedRule};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule's id.
    pub rule_id: &'static str,
    /// The violated rule's category.
    pub category: Category,
    /// Human-readable explanation (the rule description).
    pub message: &'static str,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// The outcome of scanning a tree or a set of sources.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations found, ordered by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Process exit code: the bitwise OR of the exit bit of every
    /// category with at least one violation (0 when clean).
    pub fn exit_code(&self) -> i32 {
        self.diagnostics
            .iter()
            .fold(0, |acc, d| acc | d.category.exit_bit())
    }
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "shims"];

/// Scans every `.rs` file under `root` with the given rules.
///
/// Paths in the report are relative to `root` and use forward slashes,
/// so rule scopes match regardless of platform. `target/`, `.git/` and
/// `shims/` (vendored stand-ins for external crates, not Kodan code)
/// are skipped.
pub fn check(root: &Path, rules: &[ScopedRule]) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for file in &files {
        let src = fs::read_to_string(file)?;
        let relative = relative_path(root, file);
        report.files_scanned += 1;
        report
            .diagnostics
            .extend(scan_source(&relative, &src, rules));
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// Scans one in-memory source file; the entry point fixture tests use.
///
/// `relative_path` is matched against rule scopes exactly as an on-disk
/// path would be.
pub fn scan_source(relative_path: &str, src: &str, rules: &[ScopedRule]) -> Vec<Diagnostic> {
    let classes = classify(src);
    let lines = masked_lines(src, &classes);
    let test_lines = test_code_lines(&lines);
    let allows: Vec<Vec<String>> = lines.iter().map(|l| allowed_rules(&l.comment)).collect();

    let mut diagnostics = Vec::new();
    for scoped in rules {
        if !scoped.applies_to(relative_path) {
            continue;
        }
        let rule = &scoped.rule;
        match rule.kind {
            RuleKind::Pattern { needles } => {
                for (idx, line) in lines.iter().enumerate() {
                    if rule.exempt_test_code && test_lines[idx] {
                        continue;
                    }
                    if !needles.iter().any(|n| matches_word(&line.code, n)) {
                        continue;
                    }
                    if suppressed(&allows, idx, rule.id) {
                        continue;
                    }
                    diagnostics.push(Diagnostic {
                        path: relative_path.to_string(),
                        line: line.number,
                        rule_id: rule.id,
                        category: rule.category,
                        message: rule.description,
                        snippet: line.raw.trim().to_string(),
                    });
                }
            }
            RuleKind::RequiredAttr { attr } => {
                let want = strip_spaces(attr);
                let present = lines.iter().any(|l| strip_spaces(&l.code).contains(&want));
                let allowed = allows.iter().any(|a| a.iter().any(|id| id == rule.id));
                if !present && !allowed {
                    diagnostics.push(Diagnostic {
                        path: relative_path.to_string(),
                        line: 1,
                        rule_id: rule.id,
                        category: rule.category,
                        message: rule.description,
                        snippet: format!("missing {attr}"),
                    });
                }
            }
        }
    }
    diagnostics
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Marks every line that is inside a `#[cfg(test)]`-gated block (or is
/// the attribute line itself), by tracking brace depth in the code mask.
fn test_code_lines(lines: &[MaskedLine]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: u32 = 0;
    // Depth at which each active #[cfg(test)] block was opened.
    let mut test_entry: Option<u32> = None;
    // Attribute seen, waiting for the block's opening brace.
    let mut pending = false;

    for (idx, line) in lines.iter().enumerate() {
        let is_attr = strip_spaces(&line.code).contains("#[cfg(test)]");
        let mut in_test = is_attr || test_entry.is_some();
        if is_attr {
            pending = true;
        }
        for ch in line.code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending {
                        test_entry = Some(depth);
                        pending = false;
                        in_test = true;
                    }
                }
                '}' => {
                    if let Some(entry) = test_entry {
                        if depth == entry {
                            test_entry = None;
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
        flags[idx] = in_test;
    }
    flags
}

/// Extracts every rule id named by a `lint:allow(<rule-id>)` directive
/// in one line's comment mask. The directive form is
/// `// lint:allow(rule-id): reason`.
fn allowed_rules(comment: &str) -> Vec<String> {
    let mut ids = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        let after = &rest[pos + "lint:allow(".len()..];
        if let Some(close) = after.find(')') {
            let id = after[..close].trim();
            if !id.is_empty() {
                ids.push(id.to_string());
            }
            rest = &after[close + 1..];
        } else {
            break;
        }
    }
    ids
}

/// A violation on line `idx` is suppressed by an allow on the same line
/// or on the immediately preceding line.
fn suppressed(allows: &[Vec<String>], idx: usize, rule_id: &str) -> bool {
    let hit = |i: usize| allows[i].iter().any(|id| id == rule_id);
    hit(idx) || (idx > 0 && hit(idx - 1))
}

/// Substring match with word boundaries on any needle edge that is an
/// identifier character, so `Instant` never matches `InstantEnum` but
/// `.unwrap()` matches as plain substring.
fn matches_word(haystack: &str, needle: &str) -> bool {
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let hay = haystack.as_bytes();
    let ned = needle.as_bytes();
    if ned.is_empty() || hay.len() < ned.len() {
        return false;
    }
    let check_start = is_word(ned[0]);
    let check_end = is_word(ned[ned.len() - 1]);
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + ned.len();
        let ok_start = !check_start || start == 0 || !is_word(hay[start - 1]);
        let ok_end = !check_end || end == hay.len() || !is_word(hay[end]);
        if ok_start && ok_end {
            return true;
        }
        from = start + 1;
    }
    false
}

fn strip_spaces(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::default_rules;

    fn scan(path: &str, src: &str) -> Vec<Diagnostic> {
        scan_source(path, src, &default_rules())
    }

    #[test]
    fn flags_unwrap_in_runtime_path_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let hits = scan("crates/core/src/queue.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule_id, "unwrap");
        assert_eq!(hits[0].line, 1);
        assert!(scan("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "// x.unwrap() is bad\nconst S: &str = \"panic! HashMap.unwrap()\";\n";
        assert!(scan("crates/core/src/queue.rs", src).is_empty());
    }

    #[test]
    fn word_boundaries_respected() {
        let src = "struct InstantaneousRate;\n";
        assert!(scan("crates/core/src/model.rs", src).is_empty());
        let src = "let t = Instant::now();\n";
        assert_eq!(scan("crates/core/src/model.rs", src).len(), 1);
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { None::<u8>.unwrap(); }\n}\n\
                   fn live(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let hits = scan("crates/core/src/queue.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 5);
    }

    #[test]
    fn same_line_allow_suppresses() {
        let src = "let v = x.unwrap(); // lint:allow(unwrap): checked above\n";
        assert!(scan("crates/core/src/queue.rs", src).is_empty());
    }

    #[test]
    fn preceding_line_allow_suppresses() {
        let src = "// lint:allow(float-cmp): inputs are never NaN\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        let hits = scan("crates/core/src/queue.rs", src);
        // float-cmp is allowed; the unwrap on the same line still fires.
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule_id, "unwrap");
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = "let v = x.unwrap(); // lint:allow(expect): wrong id\n";
        assert_eq!(scan("crates/core/src/queue.rs", src).len(), 1);
    }

    #[test]
    fn allow_inside_string_is_ignored() {
        let src = "let s = \"lint:allow(unwrap)\"; let v = x.unwrap();\n";
        assert_eq!(scan("crates/core/src/queue.rs", src).len(), 1);
    }

    #[test]
    fn required_attrs_fire_once_at_line_one() {
        let src = "//! Docs.\npub fn f() {}\n";
        let hits = scan("crates/ml/src/lib.rs", src);
        let ids: Vec<_> = hits.iter().map(|d| d.rule_id).collect();
        assert!(ids.contains(&"forbid-unsafe"));
        assert!(ids.contains(&"deny-missing-docs"));
        assert!(hits.iter().all(|d| d.line == 1));
    }

    #[test]
    fn required_attrs_satisfied() {
        let src = "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
        assert!(scan("crates/ml/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hash_collections_flagged_in_bench_too() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(scan("crates/bench/benches/fig10.rs", src).len(), 1);
        assert!(scan("crates/cli/src/commands.rs", src).is_empty());
    }

    #[test]
    fn exit_code_is_category_bitmask() {
        let mut report = Report::default();
        report.diagnostics = scan(
            "crates/core/src/queue.rs",
            "use std::collections::HashMap;\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        assert_eq!(report.exit_code(), 1 | 2);
        assert!(!report.is_clean());
        assert!(Report::default().is_clean());
    }
}
