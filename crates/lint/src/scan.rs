//! The scanner: walks the workspace, applies every in-scope line rule to
//! the masked view of each file, builds the call graph, runs the
//! graph-backed passes, honours `lint:allow` suppressions and the
//! `#[cfg(test)]` exemption, audits the suppressions themselves, and
//! aggregates everything into one report.

use crate::graph::CallGraph;
use crate::lexer::{classify, masked_lines, MaskedLine};
use crate::parse::{parse_items, FnItem};
use crate::passes;
use crate::rules::{Category, RuleKind, ScopedRule, DETERMINISTIC_CRATES};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule's id.
    pub rule_id: &'static str,
    /// The violated rule's category.
    pub category: Category,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// For graph-backed rules, the witness call chain from the protected
    /// entry point to the function containing the violation, each step
    /// rendered as `Display (path:line)`. Empty for line rules.
    pub chain: Vec<String>,
}

/// The outcome of scanning a tree or a set of sources.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations found, ordered by (path, line, rule id).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Process exit code: the bitwise OR of the exit bit of every
    /// category with at least one violation (0 when clean).
    pub fn exit_code(&self) -> i32 {
        self.diagnostics
            .iter()
            .fold(0, |acc, d| acc | d.category.exit_bit())
    }
}

/// The full result of one analyzer run: the report plus the call graph
/// it was derived from (for `--call-graph` and the determinism tests).
#[derive(Debug, Default)]
pub struct Analysis {
    /// The diagnostics report.
    pub report: Report,
    /// The workspace call graph over the deterministic crates.
    pub graph: CallGraph,
}

/// One classified, parsed source file — the shared input to the line
/// rules, the call graph and the graph-backed passes.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// The lexer's per-line masked view.
    pub lines: Vec<MaskedLine>,
    /// `test_lines[i]`: line `i` (0-based) is inside `#[cfg(test)]`.
    pub test_lines: Vec<bool>,
    /// `allows[i]`: rule ids named by `lint:allow(..)` on line `i`.
    pub allows: Vec<Vec<String>>,
    /// Parsed `fn` items (only populated for in-graph files).
    pub items: Vec<FnItem>,
    /// True when the file belongs to the eight deterministic crates and
    /// therefore contributes nodes to the call graph.
    pub in_graph: bool,
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "shims"];

/// Builds the shared per-file analysis input.
fn build_file_analysis(path: &str, src: &str) -> FileAnalysis {
    let classes = classify(src);
    let lines = masked_lines(src, &classes);
    let test_lines = test_code_lines(&lines);
    let allows: Vec<Vec<String>> = lines.iter().map(|l| allowed_rules(&l.comment)).collect();
    let in_graph = DETERMINISTIC_CRATES.iter().any(|p| path.starts_with(p));
    let items = if in_graph {
        parse_items(&lines, &test_lines)
    } else {
        Vec::new()
    };
    FileAnalysis {
        path: path.to_string(),
        lines,
        test_lines,
        allows,
        items,
        in_graph,
    }
}

/// Test-only constructor used by the graph unit tests.
#[cfg(test)]
pub(crate) fn file_analysis_for_test(path: &str, src: &str) -> FileAnalysis {
    build_file_analysis(path, src)
}

/// Scans every `.rs` file under `root` with the given rules and runs the
/// full pipeline (line rules, call graph, graph passes, suppression
/// audit). Equivalent to [`analyze`] but returning only the report; this
/// is the entry point the lint gate uses.
pub fn check(root: &Path, rules: &[ScopedRule]) -> io::Result<Report> {
    analyze(root, rules).map(|a| a.report)
}

/// Scans every `.rs` file under `root` and returns the report together
/// with the call graph.
///
/// Paths in the report are relative to `root` and use forward slashes,
/// so rule scopes match regardless of platform. `target/`, `.git/` and
/// `shims/` (vendored stand-ins for external crates, not Kodan code)
/// are skipped.
pub fn analyze(root: &Path, rules: &[ScopedRule]) -> io::Result<Analysis> {
    let mut paths = Vec::new();
    collect_rust_files(root, &mut paths)?;
    paths.sort();
    let mut sources = Vec::with_capacity(paths.len());
    for file in &paths {
        sources.push((relative_path(root, file), fs::read_to_string(file)?));
    }
    Ok(analyze_sources(&sources, rules))
}

/// Runs the full pipeline over in-memory sources — the entry point the
/// gate fixtures use. `sources` holds `(workspace-relative path, text)`
/// pairs; they are sorted by path internally.
pub fn analyze_sources(sources: &[(String, String)], rules: &[ScopedRule]) -> Analysis {
    let mut files: Vec<FileAnalysis> = sources
        .iter()
        .map(|(path, src)| build_file_analysis(path, src))
        .collect();
    files.sort_by(|a, b| a.path.cmp(&b.path));

    // 1. Candidate diagnostics from the line rules, pre-suppression.
    let mut candidates: Vec<(usize, Diagnostic)> = Vec::new();
    let mut used: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    for (file_idx, file) in files.iter().enumerate() {
        line_rule_candidates(file_idx, file, rules, &mut candidates, &mut used);
    }

    // 2. Graph passes produce more candidates.
    let graph = CallGraph::build(&files);
    let pred = graph.reachability();
    let by_path: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    for diag in passes::panic_reachability(&files, &graph, &pred)
        .into_iter()
        .chain(passes::float_reduction(&files, &graph, &pred))
    {
        let file_idx = by_path[diag.path.as_str()];
        candidates.push((file_idx, diag));
    }

    // 3. Apply suppressions uniformly, recording which allows earned
    //    their keep.
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for (file_idx, diag) in candidates {
        let file = &files[file_idx];
        let line_idx = diag.line.saturating_sub(1);
        let mut suppressed = false;
        for idx in [Some(line_idx), line_idx.checked_sub(1)].into_iter().flatten() {
            if file
                .allows
                .get(idx)
                .is_some_and(|ids| ids.iter().any(|id| id == diag.rule_id))
            {
                used.insert((file_idx, idx, diag.rule_id.to_string()));
                suppressed = true;
            }
        }
        if !suppressed {
            diagnostics.push(diag);
        }
    }

    // 4. The suppression audit sees the final usage map. Its findings
    //    are not themselves suppressible — an allow for the audit rule
    //    would be self-justifying.
    let known: BTreeSet<&'static str> = crate::rules::known_rule_ids().into_iter().collect();
    diagnostics.extend(passes::stale_allow(&files, &used, &known));

    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule_id).cmp(&(&b.path, b.line, b.rule_id)));
    diagnostics.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.rule_id == b.rule_id);

    Analysis {
        report: Report {
            diagnostics,
            files_scanned: files.len(),
        },
        graph,
    }
}

/// Scans one in-memory source file with the *line rules only* — no call
/// graph, no suppression audit. This narrower entry point serves the
/// scope/suppression fixtures; full-pipeline fixtures use
/// [`analyze_sources`].
///
/// `relative_path` is matched against rule scopes exactly as an on-disk
/// path would be.
pub fn scan_source(relative_path: &str, src: &str, rules: &[ScopedRule]) -> Vec<Diagnostic> {
    let file = build_file_analysis(relative_path, src);
    let mut candidates: Vec<(usize, Diagnostic)> = Vec::new();
    let mut used: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    line_rule_candidates(0, &file, rules, &mut candidates, &mut used);
    candidates
        .into_iter()
        .filter(|(_, d)| {
            let line_idx = d.line.saturating_sub(1);
            !suppressed(&file.allows, line_idx, d.rule_id)
        })
        .map(|(_, d)| d)
        .collect()
}

/// Applies every in-scope line rule to one file, pushing pre-suppression
/// candidates. `RequiredAttr` rules are resolved here directly (their
/// allow is file-scoped, not line-scoped) and mark allow usage in `used`.
fn line_rule_candidates(
    file_idx: usize,
    file: &FileAnalysis,
    rules: &[ScopedRule],
    candidates: &mut Vec<(usize, Diagnostic)>,
    used: &mut BTreeSet<(usize, usize, String)>,
) {
    for scoped in rules {
        if !scoped.applies_to(&file.path) {
            continue;
        }
        let rule = &scoped.rule;
        match rule.kind {
            RuleKind::Pattern { needles } => {
                for (idx, line) in file.lines.iter().enumerate() {
                    if rule.exempt_test_code && file.test_lines[idx] {
                        continue;
                    }
                    if !needles.iter().any(|n| matches_word(&line.code, n)) {
                        continue;
                    }
                    candidates.push((
                        file_idx,
                        Diagnostic {
                            path: file.path.clone(),
                            line: line.number,
                            rule_id: rule.id,
                            category: rule.category,
                            message: rule.description.to_string(),
                            snippet: line.raw.trim().to_string(),
                            chain: Vec::new(),
                        },
                    ));
                }
            }
            RuleKind::RequiredAttr { attr } => {
                let want = strip_spaces(attr);
                let present = file
                    .lines
                    .iter()
                    .any(|l| strip_spaces(&l.code).contains(&want));
                let allow_sites: Vec<usize> = file
                    .allows
                    .iter()
                    .enumerate()
                    .filter(|(_, ids)| ids.iter().any(|id| id == rule.id))
                    .map(|(i, _)| i)
                    .collect();
                if !present {
                    if allow_sites.is_empty() {
                        candidates.push((
                            file_idx,
                            Diagnostic {
                                path: file.path.clone(),
                                line: 1,
                                rule_id: rule.id,
                                category: rule.category,
                                message: rule.description.to_string(),
                                snippet: format!("missing {attr}"),
                                chain: Vec::new(),
                            },
                        ));
                    } else {
                        for idx in allow_sites {
                            used.insert((file_idx, idx, rule.id.to_string()));
                        }
                    }
                }
            }
        }
    }
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Marks every line that is inside a `#[cfg(test)]`-gated block (or is
/// the attribute line itself), by tracking brace depth in the code mask.
pub(crate) fn test_code_lines(lines: &[MaskedLine]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: u32 = 0;
    // Depth at which each active #[cfg(test)] block was opened.
    let mut test_entry: Option<u32> = None;
    // Attribute seen, waiting for the block's opening brace.
    let mut pending = false;

    for (idx, line) in lines.iter().enumerate() {
        let is_attr = strip_spaces(&line.code).contains("#[cfg(test)]");
        let mut in_test = is_attr || test_entry.is_some();
        if is_attr {
            pending = true;
        }
        for ch in line.code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending {
                        test_entry = Some(depth);
                        pending = false;
                        in_test = true;
                    }
                }
                '}' => {
                    if let Some(entry) = test_entry {
                        if depth == entry {
                            test_entry = None;
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
        flags[idx] = in_test;
    }
    flags
}

/// Extracts every rule id named by a `lint:allow(<rule-id>)` directive
/// in one line's comment mask. The directive form is
/// `// lint:allow(rule-id): reason`.
fn allowed_rules(comment: &str) -> Vec<String> {
    let mut ids = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        let after = &rest[pos + "lint:allow(".len()..];
        if let Some(close) = after.find(')') {
            let id = after[..close].trim();
            if !id.is_empty() {
                ids.push(id.to_string());
            }
            rest = &after[close + 1..];
        } else {
            break;
        }
    }
    ids
}

/// A violation on line `idx` is suppressed by an allow on the same line
/// or on the immediately preceding line.
fn suppressed(allows: &[Vec<String>], idx: usize, rule_id: &str) -> bool {
    let hit = |i: usize| allows[i].iter().any(|id| id == rule_id);
    hit(idx) || (idx > 0 && hit(idx - 1))
}

/// Substring match with word boundaries on any needle edge that is an
/// identifier character, so `Instant` never matches `InstantEnum` but
/// `.unwrap()` matches as plain substring.
fn matches_word(haystack: &str, needle: &str) -> bool {
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let hay = haystack.as_bytes();
    let ned = needle.as_bytes();
    if ned.is_empty() || hay.len() < ned.len() {
        return false;
    }
    let check_start = is_word(ned[0]);
    let check_end = is_word(ned[ned.len() - 1]);
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + ned.len();
        let ok_start = !check_start || start == 0 || !is_word(hay[start - 1]);
        let ok_end = !check_end || end == hay.len() || !is_word(hay[end]);
        if ok_start && ok_end {
            return true;
        }
        from = start + 1;
    }
    false
}

fn strip_spaces(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::default_rules;

    fn scan(path: &str, src: &str) -> Vec<Diagnostic> {
        scan_source(path, src, &default_rules())
    }

    fn analyze_pair(sources: &[(&str, &str)]) -> Analysis {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze_sources(&owned, &default_rules())
    }

    #[test]
    fn flags_unwrap_in_runtime_path_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let hits = scan("crates/core/src/queue.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule_id, "unwrap");
        assert_eq!(hits[0].line, 1);
        assert!(scan("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "// x.unwrap() is bad\nconst S: &str = \"panic! HashMap.unwrap()\";\n";
        assert!(scan("crates/core/src/queue.rs", src).is_empty());
    }

    #[test]
    fn word_boundaries_respected() {
        let src = "struct InstantaneousRate;\n";
        assert!(scan("crates/core/src/model.rs", src).is_empty());
        let src = "let t = Instant::now();\n";
        assert_eq!(scan("crates/core/src/model.rs", src).len(), 1);
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { None::<u8>.unwrap(); }\n}\n\
                   fn live(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let hits = scan("crates/core/src/queue.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 5);
    }

    #[test]
    fn same_line_allow_suppresses() {
        let src = "let v = x.unwrap(); // lint:allow(unwrap): checked above\n";
        assert!(scan("crates/core/src/queue.rs", src).is_empty());
    }

    #[test]
    fn preceding_line_allow_suppresses() {
        let src = "// lint:allow(float-cmp): inputs are never NaN\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        let hits = scan("crates/core/src/queue.rs", src);
        // float-cmp is allowed; the unwrap on the same line still fires.
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule_id, "unwrap");
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = "let v = x.unwrap(); // lint:allow(expect): wrong id\n";
        assert_eq!(scan("crates/core/src/queue.rs", src).len(), 1);
    }

    #[test]
    fn allow_inside_string_is_ignored() {
        let src = "let s = \"lint:allow(unwrap)\"; let v = x.unwrap();\n";
        assert_eq!(scan("crates/core/src/queue.rs", src).len(), 1);
    }

    #[test]
    fn required_attrs_fire_once_at_line_one() {
        let src = "//! Docs.\npub fn f() {}\n";
        let hits = scan("crates/ml/src/lib.rs", src);
        let ids: Vec<_> = hits.iter().map(|d| d.rule_id).collect();
        assert!(ids.contains(&"forbid-unsafe"));
        assert!(ids.contains(&"deny-missing-docs"));
        assert!(hits.iter().all(|d| d.line == 1));
    }

    #[test]
    fn required_attrs_satisfied() {
        let src = "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
        assert!(scan("crates/ml/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hash_collections_flagged_in_bench_too() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(scan("crates/bench/benches/fig10.rs", src).len(), 1);
        assert!(scan("crates/cli/src/commands.rs", src).is_empty());
    }

    #[test]
    fn exit_code_is_category_bitmask() {
        let mut report = Report::default();
        report.diagnostics = scan(
            "crates/core/src/queue.rs",
            "use std::collections::HashMap;\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        assert_eq!(report.exit_code(), 1 | 2);
        assert!(!report.is_clean());
        assert!(Report::default().is_clean());
    }

    #[test]
    fn full_pipeline_reports_reachable_panics_with_chains() {
        let analysis = analyze_pair(&[
            (
                "crates/core/src/runtime.rs",
                "impl Runtime {\n    pub fn process_frame(&self) { helper(); }\n}\n",
            ),
            (
                "crates/ml/src/zoo.rs",
                "pub fn helper() -> u8 { None::<u8>.unwrap() }\n",
            ),
        ]);
        let hit = analysis
            .report
            .diagnostics
            .iter()
            .find(|d| d.rule_id == "panic-reachable")
            .expect("panic-reachable fires");
        assert_eq!(hit.path, "crates/ml/src/zoo.rs");
        assert_eq!(hit.chain.len(), 2);
        assert!(hit.chain[0].starts_with("Runtime::process_frame "));
        assert!(hit.chain[1].starts_with("helper "));
    }

    #[test]
    fn unreachable_seeds_stay_silent() {
        let analysis = analyze_pair(&[(
            "crates/ml/src/zoo.rs",
            "pub fn orphan() -> u8 { None::<u8>.unwrap() }\n",
        )]);
        assert!(analysis
            .report
            .diagnostics
            .iter()
            .all(|d| d.rule_id != "panic-reachable"));
    }

    #[test]
    fn stale_allow_is_reported_and_live_allow_is_not() {
        let analysis = analyze_pair(&[(
            "crates/core/src/queue.rs",
            "pub fn f(x: Option<u8>) -> u8 {\n    \
             x.unwrap() // lint:allow(unwrap): caller guarantees Some\n}\n\
             // lint:allow(expect): nothing here expects\n\
             pub fn g() {}\n",
        )]);
        let stale: Vec<_> = analysis
            .report
            .diagnostics
            .iter()
            .filter(|d| d.rule_id == "stale-allow")
            .collect();
        assert_eq!(stale.len(), 1, "got: {:?}", analysis.report.diagnostics);
        assert_eq!(stale[0].line, 4);
        assert!(stale[0].message.contains("expect"));
    }

    #[test]
    fn unknown_allow_id_is_flagged() {
        let analysis = analyze_pair(&[(
            "crates/core/src/queue.rs",
            "// lint:allow(no-such-rule): typo\npub fn f() {}\n",
        )]);
        let stale: Vec<_> = analysis
            .report
            .diagnostics
            .iter()
            .filter(|d| d.rule_id == "stale-allow")
            .collect();
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("does not know"));
    }

    #[test]
    fn diagnostic_ordering_is_byte_stable() {
        let sources = &[
            (
                "crates/core/src/runtime.rs",
                "impl Runtime {\n    pub fn process_frame(&self) { helper(); }\n}\n",
            ),
            (
                "crates/ml/src/zoo.rs",
                "pub fn helper() -> u8 { None::<u8>.unwrap() }\n",
            ),
        ];
        let a = analyze_pair(sources);
        let b = analyze_pair(sources);
        let render = |an: &Analysis| {
            an.report
                .diagnostics
                .iter()
                .map(|d| format!("{}:{}:{}:{}", d.path, d.line, d.rule_id, d.chain.join(">")))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&a), render(&b));
    }
}
