//! One violating fixture per rule: each snippet below triggers exactly
//! the rule it is named for, and a cleaned twin triggers nothing.

use kodan_lint::{default_rules, scan_source, Category, Diagnostic, ScopedRule};

fn rules() -> Vec<ScopedRule> {
    default_rules()
}

/// Scans a snippet at `path` and asserts exactly one diagnostic for
/// `rule_id` at `line`.
fn assert_single(path: &str, src: &str, rule_id: &str, line: usize) -> Diagnostic {
    let hits = scan_source(path, src, &rules());
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {rule_id} hit in {path}, got: {hits:?}"
    );
    assert_eq!(hits[0].rule_id, rule_id);
    assert_eq!(hits[0].line, line);
    hits[0].clone()
}

const CLEAN_LIB_HEADER: &str = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n";

#[test]
fn fixture_wall_clock() {
    let d = assert_single(
        "crates/cote/src/clock.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
        "wall-clock",
        1,
    );
    assert_eq!(d.category, Category::Determinism);
}

#[test]
fn fixture_entropy() {
    assert_single(
        "crates/ml/src/init.rs",
        "pub fn seed() -> u64 { rand::thread_rng().random_range(0..u64::MAX) }\n",
        "entropy",
        1,
    );
}

#[test]
fn fixture_hash_collections() {
    assert_single(
        "crates/geodata/src/index.rs",
        "use std::collections::HashSet;\n",
        "hash-collections",
        1,
    );
}

#[test]
fn fixture_unwrap() {
    let d = assert_single(
        "crates/core/src/elide.rs",
        "pub fn head(v: &[u8]) -> u8 { *v.first().unwrap() }\n",
        "unwrap",
        1,
    );
    assert_eq!(d.category, Category::PanicSafety);
}

#[test]
fn fixture_expect() {
    assert_single(
        "crates/core/src/engine.rs",
        "pub fn head(v: &[u8]) -> u8 { *v.first().expect(\"nonempty\") }\n",
        "expect",
        1,
    );
}

#[test]
fn fixture_panic_macro() {
    assert_single(
        "crates/core/src/runtime.rs",
        "pub fn boom() { panic!(\"no\") }\n",
        "panic-macro",
        1,
    );
}

#[test]
fn fixture_float_cmp() {
    let src = "pub fn sort(v: &mut [f64]) {\n    \
               v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n}\n";
    assert_single("crates/core/src/queue.rs", src, "float-cmp", 2);
    // total_cmp is the sanctioned replacement and is clean.
    let fixed = "pub fn sort(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
    assert!(scan_source("crates/core/src/queue.rs", fixed, &rules()).is_empty());
}

#[test]
fn fixture_forbid_unsafe() {
    let src = "#![deny(missing_docs)]\n//! Docs.\n";
    assert_single("crates/hw/src/lib.rs", src, "forbid-unsafe", 1);
}

#[test]
fn fixture_deny_missing_docs() {
    let src = "#![forbid(unsafe_code)]\n//! Docs.\n";
    assert_single("crates/hw/src/lib.rs", src, "deny-missing-docs", 1);
}

#[test]
fn fixture_print_macro() {
    let d = assert_single(
        "crates/core/src/model.rs",
        "pub fn debug(x: u8) { println!(\"{x}\"); }\n",
        "print-macro",
        1,
    );
    assert_eq!(d.category, Category::Hygiene);
}

#[test]
fn clean_file_produces_no_diagnostics() {
    let src = format!(
        "{CLEAN_LIB_HEADER}//! A clean module.\n\n\
         /// Sorts safely.\npub fn sort(v: &mut [f64]) {{ v.sort_by(|a, b| a.total_cmp(b)); }}\n"
    );
    assert!(scan_source("crates/core/src/lib.rs", &src, &rules()).is_empty());
}

#[test]
fn out_of_scope_paths_are_untouched() {
    // The CLI crate may unwrap and print; only runtime/deterministic
    // paths are policed.
    let src = "fn main() { println!(\"{}\", std::env::args().next().unwrap()); }\n";
    assert!(scan_source("crates/cli/src/main.rs", src, &rules()).is_empty());
}

#[test]
fn every_pattern_rule_has_a_firing_fixture() {
    // Guard against a rule being added without a fixture: each pattern
    // rule must fire on a synthetic line made from its first needle.
    for scoped in rules() {
        if let kodan_lint::RuleKind::Pattern { needles } = scoped.rule.kind {
            let path = scoped.include.first().cloned().unwrap_or_default();
            let path = if path.ends_with(".rs") {
                path
            } else {
                format!("{path}synthetic.rs")
            };
            let src = format!("pub fn f() {{ let _ = {}; }}\n", needles[0]);
            let hits = scan_source(&path, &src, &rules());
            assert!(
                hits.iter().any(|d| d.rule_id == scoped.rule.id),
                "rule {} did not fire on its own needle at {path}",
                scoped.rule.id
            );
        }
    }
}
