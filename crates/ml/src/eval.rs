//! Classifier evaluation: confusion matrices and derived scores.
//!
//! Throughout the reproduction, **positive = high-value (clear) pixel**,
//! matching the paper's framing: precision `TP / (TP + FP)` is then the
//! fraction of downlinked pixels that are genuinely high-value — the
//! quantity that becomes data value density when the downlink is
//! saturated (Section 5.3).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Predicted positive, actually positive.
    pub tp: u64,
    /// Predicted positive, actually negative.
    pub fp: u64,
    /// Predicted negative, actually negative.
    pub tn: u64,
    /// Predicted negative, actually positive.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// An empty confusion matrix.
    pub fn new() -> ConfusionMatrix {
        ConfusionMatrix::default()
    }

    /// Builds a confusion matrix from parallel prediction/truth slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(predicted: &[bool], truth: &[bool]) -> ConfusionMatrix {
        assert_eq!(predicted.len(), truth.len(), "length mismatch");
        let mut cm = ConfusionMatrix::new();
        for (&p, &t) in predicted.iter().zip(truth) {
            cm.record(p, t);
        }
        cm
    }

    /// Records one prediction.
    pub fn record(&mut self, predicted: bool, truth: bool) {
        match (predicted, truth) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of labels correct. Returns 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// `TP / (TP + FP)`: the data value density of what was kept. Returns
    /// 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// `TP / (TP + FN)`: the fraction of high-value data retained.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Intersection-over-union of the positive class.
    pub fn iou(&self) -> f64 {
        let denom = self.tp + self.fp + self.fn_;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// Prevalence of the positive class in the truth labels.
    pub fn positive_prevalence(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.fn_) as f64 / self.total() as f64
    }
}

impl AddAssign for ConfusionMatrix {
    fn add_assign(&mut self, rhs: ConfusionMatrix) {
        self.tp += rhs.tp;
        self.fp += rhs.fp;
        self.tn += rhs.tn;
        self.fn_ += rhs.fn_;
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} (acc {:.3}, prec {:.3}, rec {:.3})",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.accuracy(),
            self.precision(),
            self.recall()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let truth = [true, false, true, false];
        let cm = ConfusionMatrix::from_predictions(&truth, &truth);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.iou(), 1.0);
    }

    #[test]
    fn known_counts() {
        // 3 TP, 1 FP, 2 TN, 2 FN.
        let predicted = [true, true, true, true, false, false, false, false];
        let truth = [true, true, true, false, false, false, true, true];
        let cm = ConfusionMatrix::from_predictions(&predicted, &truth);
        assert_eq!(cm.tp, 3);
        assert_eq!(cm.fp, 1);
        assert_eq!(cm.tn, 2);
        assert_eq!(cm.fn_, 2);
        assert_eq!(cm.accuracy(), 5.0 / 8.0);
        assert_eq!(cm.precision(), 3.0 / 4.0);
        assert_eq!(cm.recall(), 3.0 / 5.0);
        assert_eq!(cm.iou(), 3.0 / 6.0);
        assert_eq!(cm.positive_prevalence(), 5.0 / 8.0);
        let expected_f1 = 2.0 * (0.75 * 0.6) / (0.75 + 0.6);
        assert!((cm.f1() - expected_f1).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.iou(), 0.0);
    }

    #[test]
    fn accumulation_matches_batch() {
        let predicted = [true, false, true, false, true];
        let truth = [true, true, false, false, true];
        let batch = ConfusionMatrix::from_predictions(&predicted, &truth);
        let mut acc = ConfusionMatrix::new();
        acc += ConfusionMatrix::from_predictions(&predicted[..2], &truth[..2]);
        acc += ConfusionMatrix::from_predictions(&predicted[2..], &truth[2..]);
        assert_eq!(acc, batch);
    }

    #[test]
    fn all_negative_predictions_have_zero_precision() {
        let cm = ConfusionMatrix::from_predictions(&[false, false], &[true, false]);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_slices() {
        let _ = ConfusionMatrix::from_predictions(&[true], &[true, false]);
    }
}
