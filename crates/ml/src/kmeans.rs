//! K-means clustering with k-means++ initialization.
//!
//! Kodan partitions the representative dataset into geospatial contexts by
//! clustering per-tile label vectors (paper Section 3.2), sweeping cluster
//! count and distance metric. This module implements the clustering; the
//! sweep lives in the Kodan core.

use crate::metrics::DistanceMetric;
use kodan_wire::{Dec, Decode, Enc, Encode, WireError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A fitted k-means model.
///
/// # Example
///
/// ```
/// use kodan_ml::kmeans::KMeans;
/// use kodan_ml::metrics::DistanceMetric;
///
/// let points = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
///     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
/// ];
/// let km = KMeans::fit(&points, 2, DistanceMetric::Euclidean, 42);
/// assert_eq!(km.k(), 2);
/// assert_eq!(km.assign(&[0.05, 0.05]), km.assign(&[0.02, 0.08]));
/// assert_ne!(km.assign(&[0.05, 0.05]), km.assign(&[5.05, 5.05]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    metric: DistanceMetric,
    inertia: f64,
    assignments: Vec<usize>,
}

/// Maximum Lloyd iterations; convergence is typically much earlier.
const MAX_ITERATIONS: usize = 100;

impl KMeans {
    /// Fits k-means to `points` with `k` clusters under `metric`.
    ///
    /// Uses k-means++ seeding (with squared-distance weighting) and
    /// Lloyd's algorithm with mean centroid updates. Deterministic for a
    /// given seed.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, `k` is zero, or `k > points.len()`.
    pub fn fit(points: &[Vec<f64>], k: usize, metric: DistanceMetric, seed: u64) -> KMeans {
        assert!(!points.is_empty(), "k-means needs points");
        assert!(k > 0, "k must be positive");
        assert!(k <= points.len(), "k exceeds point count");
        let dim = points[0].len();
        assert!(points.iter().all(|p| p.len() == dim), "ragged points");

        let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x6EA5);
        let mut centroids = plus_plus_init(points, k, metric, &mut rng);
        let mut assignments = vec![0usize; points.len()];

        let mut assigned_d = vec![0.0f64; points.len()];

        for _ in 0..MAX_ITERATIONS {
            // Assignment step: one distance pass per point per iteration;
            // each point's distance to its chosen centroid is cached for
            // the empty-cluster re-seed below instead of being recomputed.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let (nearest, d) = nearest_centroid_with_distance(p, &centroids, metric);
                assigned_d[i] = d;
                if assignments[i] != nearest {
                    assignments[i] = nearest;
                    changed = true;
                }
            }
            // Update step: mean of members; empty clusters re-seed to the
            // point that was farthest from its centroid at assignment
            // time (the cached distances, so ranking is against a
            // consistent set of centroids rather than a half-updated mix).
            let mut sums = vec![vec![0.0; dim]; k];
            let mut counts = vec![0usize; k];
            for (p, &a) in points.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, v) in sums[a].iter_mut().zip(p) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    let far_idx = (0..points.len())
                        .max_by(|&i, &j| assigned_d[i].total_cmp(&assigned_d[j]))
                        .unwrap_or(0);
                    centroids[c] = points[far_idx].clone();
                    changed = true;
                } else {
                    for (d, s) in centroids[c].iter_mut().zip(&sums[c]) {
                        *d = s / counts[c] as f64;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let inertia = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| metric.distance(p, &centroids[a]).powi(2))
            .sum();

        KMeans {
            centroids,
            metric,
            inertia,
            assignments,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// The cluster centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// The metric this model was fitted under.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// Sum of squared distances of training points to their centroids.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Cluster assignment of each training point.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Assigns a new point to its nearest centroid.
    ///
    /// # Panics
    ///
    /// Panics if the point's dimension differs from the training data.
    pub fn assign(&self, point: &[f64]) -> usize {
        nearest_centroid(point, &self.centroids, self.metric)
    }

    /// Number of training points in each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// K-means++ seeding: first centroid uniform, subsequent centroids chosen
/// with probability proportional to squared distance from the nearest
/// chosen centroid.
fn plus_plus_init(
    points: &[Vec<f64>],
    k: usize,
    metric: DistanceMetric,
    rng: &mut ChaCha12Rng,
) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    let mut dist_sq: Vec<f64> = points
        .iter()
        .map(|p| metric.distance(p, &centroids[0]).powi(2))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist_sq.iter().sum();
        let next = if total <= 1e-18 {
            // All points coincide with existing centroids; pick uniformly.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        let chosen_point = &points[next];
        for (d, p) in dist_sq.iter_mut().zip(points) {
            let nd = metric.distance(p, chosen_point).powi(2);
            if nd < *d {
                *d = nd;
            }
        }
        centroids.push(chosen_point.clone());
    }
    centroids
}

fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>], metric: DistanceMetric) -> usize {
    nearest_centroid_with_distance(point, centroids, metric).0
}

fn nearest_centroid_with_distance(
    point: &[f64],
    centroids: &[Vec<f64>],
    metric: DistanceMetric,
) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = metric.distance(point, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// Mean silhouette score of a clustering in `[-1, 1]`; higher is better.
/// Used when sweeping cluster counts. Only defined for `k >= 2`; returns
/// 0.0 for degenerate single-cluster fits.
pub fn silhouette(points: &[Vec<f64>], model: &KMeans) -> f64 {
    if model.k() < 2 {
        return 0.0;
    }
    let assignments = model.assignments();
    let n = points.len();
    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        let mut intra_sum = 0.0;
        let mut intra_n = 0.0;
        let mut inter: Vec<(f64, f64)> = vec![(0.0, 0.0); model.k()];
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = model.metric().distance(&points[i], &points[j]);
            if assignments[j] == own {
                intra_sum += d;
                intra_n += 1.0;
            } else {
                inter[assignments[j]].0 += d;
                inter[assignments[j]].1 += 1.0;
            }
        }
        let a = if intra_n > 0.0 { intra_sum / intra_n } else { 0.0 };
        let b = inter
            .iter()
            .filter(|(_, n)| *n > 0.0)
            .map(|(s, n)| s / n)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
    }
    total / n as f64
}

impl Encode for KMeans {
    fn encode(&self, enc: &mut Enc) {
        self.centroids.encode(enc);
        self.metric.encode(enc);
        enc.f64(self.inertia);
        self.assignments.encode(enc);
    }
}

impl Decode for KMeans {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        let centroids = Vec::<Vec<f64>>::decode(dec)?;
        let metric = DistanceMetric::decode(dec)?;
        let inertia = dec.f64()?;
        let assignments = Vec::<usize>::decode(dec)?;
        if centroids.is_empty() {
            return Err(WireError::InvalidValue("kmeans without centroids"));
        }
        let dim = centroids[0].len();
        if centroids.iter().any(|c| c.len() != dim) {
            return Err(WireError::InvalidValue("ragged kmeans centroids"));
        }
        if assignments.iter().any(|&a| a >= centroids.len()) {
            return Err(WireError::InvalidValue("kmeans assignment out of range"));
        }
        Ok(KMeans {
            centroids,
            metric,
            inertia,
            assignments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let e = (i as f64) * 0.01;
            pts.push(vec![0.0 + e, 0.0 - e]);
            pts.push(vec![10.0 - e, 10.0 + e]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let km = KMeans::fit(&pts, 2, DistanceMetric::Euclidean, 1);
        let a = km.assign(&[0.05, 0.05]);
        let b = km.assign(&[9.95, 9.95]);
        assert_ne!(a, b);
        // Centroids land near the blob centers.
        let near_origin = km
            .centroids()
            .iter()
            .any(|c| c[0].abs() < 0.5 && c[1].abs() < 0.5);
        assert!(near_origin, "centroids: {:?}", km.centroids());
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let a = KMeans::fit(&pts, 2, DistanceMetric::Euclidean, 7);
        let b = KMeans::fit(&pts, 2, DistanceMetric::Euclidean, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = two_blobs();
        let k1 = KMeans::fit(&pts, 1, DistanceMetric::Euclidean, 3).inertia();
        let k2 = KMeans::fit(&pts, 2, DistanceMetric::Euclidean, 3).inertia();
        let k4 = KMeans::fit(&pts, 4, DistanceMetric::Euclidean, 3).inertia();
        assert!(k2 < k1);
        assert!(k4 <= k2 + 1e-9);
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let pts = two_blobs();
        let km = KMeans::fit(&pts, 3, DistanceMetric::Euclidean, 5);
        assert_eq!(km.cluster_sizes().iter().sum::<usize>(), pts.len());
    }

    #[test]
    fn works_with_every_metric() {
        let pts = two_blobs();
        for m in DistanceMetric::ALL {
            let km = KMeans::fit(&pts, 2, m, 11);
            assert_eq!(km.k(), 2);
            assert_eq!(km.assignments().len(), pts.len());
        }
    }

    #[test]
    fn silhouette_favors_true_k() {
        let pts = two_blobs();
        let s2 = silhouette(&pts, &KMeans::fit(&pts, 2, DistanceMetric::Euclidean, 1));
        let s4 = silhouette(&pts, &KMeans::fit(&pts, 4, DistanceMetric::Euclidean, 1));
        assert!(s2 > 0.8, "silhouette(2) = {s2}");
        assert!(s2 > s4, "silhouette(2)={s2} vs silhouette(4)={s4}");
    }

    #[test]
    fn handles_duplicate_points() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let km = KMeans::fit(&pts, 3, DistanceMetric::Euclidean, 1);
        assert_eq!(km.k(), 3);
        assert!(km.inertia() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k exceeds")]
    fn rejects_k_larger_than_n() {
        let _ = KMeans::fit(&[vec![1.0]], 2, DistanceMetric::Euclidean, 1);
    }
}
