//! # kodan-ml
//!
//! A small, dependency-light machine-learning substrate for the Kodan
//! (ASPLOS '23) reproduction. It stands in for the PyTorch semantic
//! segmentation stack the paper uses, providing everything the Kodan
//! pipeline needs:
//!
//! - [`matrix`] — dense row-major matrices,
//! - [`metrics`] — the distance metrics the paper sweeps when clustering
//!   label vectors (Euclidean, Hamming, Cosine, ...),
//! - [`kmeans`] — k-means++ clustering for automatic context generation,
//! - [`transform`] — label-vector transformations (standardization, PCA
//!   via power iteration) swept alongside the metrics,
//! - [`linear`] / [`mlp`] — binary per-pixel classifiers trained with
//!   mini-batch SGD,
//! - [`eval`] — confusion matrices, accuracy, precision, recall, F1, IoU,
//! - [`zoo`] — the seven benchmark model architectures of the paper's
//!   Table 1, as capacity/input-resolution descriptors.
//!
//! All training is deterministic given a seed.
//!
//! ## Example
//!
//! ```
//! use kodan_ml::linear::LogisticRegression;
//! use kodan_ml::train::TrainConfig;
//! use kodan_ml::PixelClassifier;
//!
//! // Learn y = x0 > 0.5 from noisy samples.
//! let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 100) as f64 / 100.0]).collect();
//! let ys: Vec<bool> = xs.iter().map(|x| x[0] > 0.5).collect();
//! let model = LogisticRegression::fit(&xs, &ys, &TrainConfig::fast(7));
//! assert!(model.predict(&[0.9]));
//! assert!(!model.predict(&[0.1]));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod eval;
pub mod kmeans;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod optimizer;
pub mod train;
pub mod transform;
pub mod wire;
pub mod zoo;

pub use eval::ConfusionMatrix;
pub use kmeans::KMeans;
pub use linear::LogisticRegression;
pub use metrics::DistanceMetric;
pub use mlp::Mlp;
pub use train::TrainConfig;
pub use zoo::ModelArch;

/// A binary classifier over fixed-length feature vectors.
///
/// Both [`LogisticRegression`] and [`Mlp`] implement this; the Kodan core
/// stores specialized models as `Box<dyn PixelClassifier>`.
pub trait PixelClassifier: Send + Sync {
    /// Probability that the sample is positive (high-value / clear).
    fn predict_proba(&self, features: &[f64]) -> f64;

    /// Number of input features this classifier expects.
    fn input_dim(&self) -> usize;

    /// Hard decision at the 0.5 threshold.
    fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= 0.5
    }
}
