//! Binary logistic regression trained with mini-batch SGD.

use crate::optimizer::Optimizer;
use crate::train::{bce_loss, sigmoid, TrainConfig};
use crate::PixelClassifier;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A binary logistic-regression classifier.
///
/// # Example
///
/// ```
/// use kodan_ml::linear::LogisticRegression;
/// use kodan_ml::train::TrainConfig;
/// use kodan_ml::PixelClassifier;
///
/// let xs = vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]];
/// let ys = vec![false, false, true, true];
/// let model = LogisticRegression::fit(&xs, &ys, &TrainConfig::fast(1));
/// assert!(model.predict_proba(&[1.0]) > model.predict_proba(&[0.0]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Trains on feature rows `xs` with boolean labels `ys`.
    ///
    /// # Panics
    ///
    /// Panics if the data is empty, ragged, mismatched with the labels, or
    /// the config is invalid.
    pub fn fit(xs: &[Vec<f64>], ys: &[bool], config: &TrainConfig) -> LogisticRegression {
        let flat = FlatData::collect(xs, ys);
        LogisticRegression::fit_flat(&flat.x, flat.dim, &flat.y, config)
    }

    /// Trains on a flat row-major feature buffer (`rows * dim` long). This
    /// is the allocation-friendly entry point used by the Kodan pipeline,
    /// where features come straight out of the image feature extractor.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or not a multiple of `dim`, the label
    /// count mismatches, or the config is invalid.
    pub fn fit_flat(
        x: &[f64],
        dim: usize,
        y: &[bool],
        config: &TrainConfig,
    ) -> LogisticRegression {
        config.validate();
        assert!(dim > 0, "features required");
        assert!(!x.is_empty(), "training data required");
        assert_eq!(x.len() % dim, 0, "buffer not a multiple of dim");
        let n = x.len() / dim;
        assert_eq!(n, y.len(), "label count mismatch");

        let mut rng = ChaCha12Rng::seed_from_u64(config.seed ^ 0x10C1);
        let mut weights: Vec<f64> = (0..dim).map(|_| rng.random_range(-0.01..0.01)).collect();
        let mut bias = vec![0.0f64];
        let mut w_opt = Optimizer::new(config.optimizer, config.momentum, dim);
        let mut b_opt = Optimizer::new(config.optimizer, config.momentum, 1);

        let mut order: Vec<usize> = (0..n).collect();
        let mut best_loss = f64::INFINITY;
        let mut stale_epochs = 0usize;
        for _ in 0..config.epochs {
            shuffle(&mut order, &mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(config.batch_size) {
                let mut w_grad = vec![0.0; dim];
                let mut b_grad = 0.0;
                for &i in batch {
                    let row = &x[i * dim..(i + 1) * dim];
                    let z = dot(&weights, row) + bias[0];
                    let p = sigmoid(z);
                    epoch_loss += bce_loss(p, y[i]);
                    let err = p - if y[i] { 1.0 } else { 0.0 };
                    for (g, v) in w_grad.iter_mut().zip(row) {
                        *g += err * v;
                    }
                    b_grad += err;
                }
                let scale = 1.0 / batch.len() as f64;
                w_opt.step(&mut weights, &w_grad, scale, config.learning_rate, config.l2);
                b_opt.step(&mut bias, &[b_grad], scale, config.learning_rate, 0.0);
            }
            if let Some(patience) = config.patience {
                if epoch_loss < best_loss - 1e-9 {
                    best_loss = epoch_loss;
                    stale_epochs = 0;
                } else {
                    stale_epochs += 1;
                    if stale_epochs >= patience {
                        break;
                    }
                }
            }
        }
        LogisticRegression {
            weights,
            bias: bias[0],
        }
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl PixelClassifier for LogisticRegression {
    fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.weights.len(), "dimension mismatch");
        sigmoid(dot(&self.weights, features) + self.bias)
    }

    fn input_dim(&self) -> usize {
        self.weights.len()
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn shuffle(order: &mut [usize], rng: &mut ChaCha12Rng) {
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
}

/// Helper that flattens `Vec<Vec<f64>>` training data, validating shape.
pub(crate) struct FlatData {
    pub x: Vec<f64>,
    pub y: Vec<bool>,
    pub dim: usize,
}

impl FlatData {
    pub fn collect(xs: &[Vec<f64>], ys: &[bool]) -> FlatData {
        assert!(!xs.is_empty(), "training data required");
        assert_eq!(xs.len(), ys.len(), "label count mismatch");
        let dim = xs[0].len();
        let mut x = Vec::with_capacity(xs.len() * dim);
        for row in xs {
            assert_eq!(row.len(), dim, "ragged rows");
            x.extend_from_slice(row);
        }
        FlatData {
            x,
            y: ys.to_vec(),
            dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        // y = (x0 + x1 > 1.0), points on a grid.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let a = (i % 10) as f64 / 10.0;
            let b = ((i / 10) % 10) as f64 / 10.0;
            xs.push(vec![a, b]);
            ys.push(a + b > 1.0);
        }
        (xs, ys)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let (xs, ys) = linearly_separable(100);
        let mut config = TrainConfig::fast(1);
        config.epochs = 120;
        let model = LogisticRegression::fit(&xs, &ys, &config);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(correct >= 93, "accuracy {correct}/100");
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = linearly_separable(100);
        let a = LogisticRegression::fit(&xs, &ys, &TrainConfig::fast(5));
        let b = LogisticRegression::fit(&xs, &ys, &TrainConfig::fast(5));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_models() {
        let (xs, ys) = linearly_separable(100);
        let a = LogisticRegression::fit(&xs, &ys, &TrainConfig::fast(5));
        let b = LogisticRegression::fit(&xs, &ys, &TrainConfig::fast(6));
        assert_ne!(a, b);
    }

    #[test]
    fn probabilities_are_calibrated_ish() {
        let (xs, ys) = linearly_separable(100);
        let model = LogisticRegression::fit(&xs, &ys, &TrainConfig::fast(2));
        // Deep in each class the probability should be extreme.
        assert!(model.predict_proba(&[1.0, 1.0]) > 0.9);
        assert!(model.predict_proba(&[0.0, 0.0]) < 0.1);
        // All probabilities valid.
        for x in &xs {
            let p = model.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn flat_entry_point_matches_nested() {
        let (xs, ys) = linearly_separable(50);
        let nested = LogisticRegression::fit(&xs, &ys, &TrainConfig::fast(3));
        let flat: Vec<f64> = xs.iter().flatten().copied().collect();
        let from_flat = LogisticRegression::fit_flat(&flat, 2, &ys, &TrainConfig::fast(3));
        assert_eq!(nested, from_flat);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (xs, ys) = linearly_separable(100);
        let mut weak = TrainConfig::fast(1);
        weak.l2 = 0.0;
        let mut strong = TrainConfig::fast(1);
        strong.l2 = 0.1;
        let w_free = LogisticRegression::fit(&xs, &ys, &weak);
        let w_reg = LogisticRegression::fit(&xs, &ys, &strong);
        let norm = |m: &LogisticRegression| m.weights().iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&w_reg) < norm(&w_free));
    }

    #[test]
    fn adam_also_learns_the_data() {
        let (xs, ys) = linearly_separable(100);
        let mut config = TrainConfig::fast(1);
        config.optimizer = crate::optimizer::OptimizerKind::Adam;
        config.learning_rate = 0.05;
        config.epochs = 120;
        let model = LogisticRegression::fit(&xs, &ys, &config);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(correct >= 90, "adam accuracy {correct}/100");
    }

    #[test]
    fn patience_stops_training_without_breaking_the_model() {
        let (xs, ys) = linearly_separable(100);
        let mut config = TrainConfig::fast(1);
        config.epochs = 2000;
        config.patience = Some(3);
        let stopped = LogisticRegression::fit(&xs, &ys, &config);
        // Still a working classifier.
        assert!(stopped.predict(&[1.0, 1.0]));
        assert!(!stopped.predict(&[0.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn rejects_mismatched_labels() {
        let _ = LogisticRegression::fit(&[vec![1.0]], &[true, false], &TrainConfig::fast(0));
    }
}
