//! Dense row-major matrices.
//!
//! A deliberately small linear-algebra core: just what k-means, PCA and
//! the SGD trainers need. No BLAS, no SIMD heroics — the matrices involved
//! (thousands of rows, tens of columns) are small enough that clarity wins.

use kodan_wire::{Dec, Decode, Enc, Encode, WireError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use kodan_ml::matrix::Matrix;
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let v = m.matvec(&[1.0, 1.0]);
/// assert_eq!(v, vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs rows");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs columns");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not `rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// The underlying flat buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying flat buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out);
        out
    }

    /// Allocation-free matrix-vector product into a caller-provided
    /// buffer; the hot-loop form of [`Matrix::matvec`] (bit-identical
    /// results — same per-row accumulation order).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (slot, row) in out.iter_mut().zip(self.iter_rows()) {
            *slot = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
    }

    /// Matrix-matrix product, cache-blocked.
    ///
    /// The right operand is transposed once up front so every dot product
    /// walks two contiguous slices, and the output is computed in
    /// `MATMUL_BLOCK`-square tiles so the touched rows of both operands
    /// stay cache-resident. Each output element still accumulates its
    /// full `k` dot product in index order, so the result is
    /// bit-identical to the textbook triple loop.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        const MATMUL_BLOCK: usize = 32;
        let bt = other.transpose();
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i0 in (0..self.rows).step_by(MATMUL_BLOCK) {
            let i1 = (i0 + MATMUL_BLOCK).min(self.rows);
            for j0 in (0..other.cols).step_by(MATMUL_BLOCK) {
                let j1 = (j0 + MATMUL_BLOCK).min(other.cols);
                for i in i0..i1 {
                    let lhs_row = self.row(i);
                    for j in j0..j1 {
                        out.data[i * other.cols + j] = lhs_row
                            .iter()
                            .zip(bt.row(j))
                            .map(|(a, b)| a * b)
                            .sum();
                    }
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Column means.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Column standard deviations (population).
    pub fn column_stds(&self) -> Vec<f64> {
        let means = self.column_means();
        let mut vars = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for ((var, v), m) in vars.iter_mut().zip(row).zip(&means) {
                *var += (v - m).powi(2);
            }
        }
        vars.iter().map(|v| (v / self.rows as f64).sqrt()).collect()
    }

    /// Covariance matrix of the columns (population).
    pub fn covariance(&self) -> Matrix {
        let means = self.column_means();
        let mut cov = Matrix::zeros(self.cols, self.cols);
        for row in self.iter_rows() {
            for i in 0..self.cols {
                let di = row[i] - means[i];
                for j in i..self.cols {
                    cov[(i, j)] += di * (row[j] - means[j]);
                }
            }
        }
        let n = self.rows as f64;
        for i in 0..self.cols {
            for j in i..self.cols {
                cov[(i, j)] /= n;
                cov[(j, i)] = cov[(i, j)];
            }
        }
        cov
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "matrix {}x{}", self.rows, self.cols)?;
        for row in self.iter_rows().take(8) {
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:8.3}")).collect();
            writeln!(f, "  [{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

impl Encode for Matrix {
    fn encode(&self, enc: &mut Enc) {
        // Dimensions first, then exactly rows*cols raw f64 bit patterns —
        // no redundant element count, so each matrix has one encoding.
        enc.usize(self.rows);
        enc.usize(self.cols);
        for &v in &self.data {
            enc.f64(v);
        }
    }
}

impl Decode for Matrix {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        let rows = dec.usize()?;
        let cols = dec.usize()?;
        if rows == 0 || cols == 0 {
            return Err(WireError::InvalidValue("matrix dimension zero"));
        }
        let len = rows
            .checked_mul(cols)
            .ok_or(WireError::InvalidValue("matrix size overflow"))?;
        // 8 bytes per element: bound the allocation by the input actually
        // present before reserving anything.
        if len.checked_mul(8).is_none_or(|bytes| bytes > dec.remaining()) {
            return Err(WireError::Truncated);
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(dec.f64()?);
        }
        Ok(Matrix { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_index() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn matvec_identity() {
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            m[(i, i)] = 1.0;
        }
        let v = vec![7.0, -2.0, 0.5];
        assert_eq!(m.matvec(&v), v);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t[(0, 2)], 5.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn column_statistics() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]);
        assert_eq!(m.column_means(), vec![2.0, 10.0]);
        let stds = m.column_stds();
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert!(stds[1].abs() < 1e-12);
    }

    #[test]
    fn covariance_of_correlated_columns() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let x = i as f64 / 10.0;
                vec![x, 2.0 * x, -x]
            })
            .collect();
        let cov = Matrix::from_rows(&rows).covariance();
        // Var(2x) = 4 Var(x); Cov(x, -x) = -Var(x).
        assert!((cov[(1, 1)] - 4.0 * cov[(0, 0)]).abs() < 1e-9);
        assert!((cov[(0, 2)] + cov[(0, 0)]).abs() < 1e-9);
        // Symmetric.
        assert_eq!(cov[(0, 1)], cov[(1, 0)]);
    }

    #[test]
    fn matvec_into_matches_matvec_bitwise() {
        let m = Matrix::from_rows(&[
            vec![0.1, -0.2, 0.3],
            vec![1.5, 2.5, -3.5],
            vec![1e-9, 1e9, 1.0],
        ]);
        let v = [0.7, -0.11, 0.013];
        let mut out = vec![0.0; 3];
        m.matvec_into(&v, &mut out);
        assert_eq!(out, m.matvec(&v));
    }

    /// The textbook triple loop the blocked kernel must match bitwise.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                out[(i, j)] = (0..a.cols()).map(|k| a[(i, k)] * b[(k, j)]).sum();
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_matches_naive_bitwise() {
        // Dimensions straddle the 32-wide block boundary on every axis.
        let mk = |rows: usize, cols: usize, salt: f64| {
            let data: Vec<f64> = (0..rows * cols)
                .map(|i| ((i as f64) * 0.37 + salt).sin())
                .collect();
            Matrix::from_flat(rows, cols, data)
        };
        for (r, k, c) in [(3, 4, 5), (32, 32, 32), (33, 31, 50), (70, 5, 33)] {
            let a = mk(r, k, 0.1);
            let b = mk(k, c, 2.7);
            assert_eq!(a.matmul(&b), naive_matmul(&a, &b), "{r}x{k}x{c}");
        }
    }

    #[test]
    fn matmul_identity_is_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let mut eye = Matrix::zeros(3, 3);
        for i in 0..3 {
            eye[(i, i)] = 1.0;
        }
        assert_eq!(m.matmul(&eye), m);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn rejects_bad_matmul_shapes() {
        let _ = Matrix::zeros(2, 3).matmul(&Matrix::zeros(4, 2));
    }

    #[test]
    fn mutable_slice_roundtrips() {
        let mut m = Matrix::zeros(2, 2);
        m.as_mut_slice()[3] = 9.0;
        assert_eq!(m[(1, 1)], 9.0);
        assert_eq!(m.as_slice()[3], 9.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_bad_matvec() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }
}
