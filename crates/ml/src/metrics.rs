//! Distance metrics for label-vector clustering.
//!
//! The paper sweeps "label vector distance metrics (Euclidean, Hamming,
//! Cosine, etc.)" when generating contexts automatically (Section 3.2).
//! This module provides that metric family; [`crate::kmeans`] accepts any
//! of them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A distance metric over `f64` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// L2 distance.
    Euclidean,
    /// L1 distance.
    Manhattan,
    /// L-infinity distance.
    Chebyshev,
    /// `1 - cos(a, b)`; zero vectors are treated as maximally distant.
    Cosine,
    /// Fraction of coordinates that differ after thresholding at 0.5 —
    /// the natural metric for binarized label vectors.
    Hamming,
}

impl DistanceMetric {
    /// Every supported metric, for sweeps.
    pub const ALL: [DistanceMetric; 5] = [
        DistanceMetric::Euclidean,
        DistanceMetric::Manhattan,
        DistanceMetric::Chebyshev,
        DistanceMetric::Cosine,
        DistanceMetric::Hamming,
    ];

    /// Computes the distance between two vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or are empty.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        assert!(!a.is_empty(), "vectors must be non-empty");
        match self {
            DistanceMetric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt(),
            DistanceMetric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            DistanceMetric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
            DistanceMetric::Cosine => {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
                if na < 1e-12 || nb < 1e-12 {
                    return 1.0;
                }
                (1.0 - dot / (na * nb)).max(0.0)
            }
            DistanceMetric::Hamming => {
                let differing = a
                    .iter()
                    .zip(b)
                    .filter(|(x, y)| (**x >= 0.5) != (**y >= 0.5))
                    .count();
                differing as f64 / a.len() as f64
            }
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DistanceMetric::Euclidean => "euclidean",
            DistanceMetric::Manhattan => "manhattan",
            DistanceMetric::Chebyshev => "chebyshev",
            DistanceMetric::Cosine => "cosine",
            DistanceMetric::Hamming => "hamming",
        }
    }
}

impl fmt::Display for DistanceMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [0.0, 0.0, 0.0];
    const B: [f64; 3] = [3.0, 4.0, 0.0];

    #[test]
    fn euclidean_is_l2() {
        assert_eq!(DistanceMetric::Euclidean.distance(&A, &B), 5.0);
    }

    #[test]
    fn manhattan_is_l1() {
        assert_eq!(DistanceMetric::Manhattan.distance(&A, &B), 7.0);
    }

    #[test]
    fn chebyshev_is_linf() {
        assert_eq!(DistanceMetric::Chebyshev.distance(&A, &B), 4.0);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_zero() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!(DistanceMetric::Cosine.distance(&a, &b) < 1e-12);
        let c = [-1.0, -2.0, -3.0];
        assert!((DistanceMetric::Cosine.distance(&a, &c) - 2.0).abs() < 1e-12);
        // Zero vector: maximal.
        assert_eq!(DistanceMetric::Cosine.distance(&a, &A), 1.0);
    }

    #[test]
    fn hamming_counts_threshold_flips() {
        let a = [0.9, 0.1, 0.9, 0.1];
        let b = [0.8, 0.7, 0.2, 0.0];
        // Coordinates 1 and 2 flip across the 0.5 threshold.
        assert!((DistanceMetric::Hamming.distance(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_metrics_satisfy_identity_and_symmetry() {
        let a = [0.3, 0.8, 0.1, 0.99];
        let b = [0.7, 0.2, 0.2, 0.01];
        for m in DistanceMetric::ALL {
            assert!(m.distance(&a, &a) < 1e-12, "{m} identity");
            assert!(
                (m.distance(&a, &b) - m.distance(&b, &a)).abs() < 1e-12,
                "{m} symmetry"
            );
            assert!(m.distance(&a, &b) >= 0.0, "{m} non-negative");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_length_mismatch() {
        let _ = DistanceMetric::Euclidean.distance(&[1.0], &[1.0, 2.0]);
    }
}
