//! A one-hidden-layer multilayer perceptron for per-pixel classification.
//!
//! The model zoo maps each of the paper's segmentation architectures to an
//! MLP of a given hidden width over the pixel feature set: wider networks
//! stand in for deeper backbones. Training is plain mini-batch SGD with
//! momentum; ReLU hidden units; sigmoid output.

use crate::matrix::Matrix;
use crate::optimizer::Optimizer;
use crate::train::{bce_loss, sigmoid, TrainConfig};
use crate::PixelClassifier;
use kodan_wire::{Dec, Decode, Enc, Encode, WireError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A binary MLP classifier with one ReLU hidden layer.
///
/// # Example
///
/// ```
/// use kodan_ml::mlp::Mlp;
/// use kodan_ml::train::TrainConfig;
/// use kodan_ml::PixelClassifier;
///
/// // XOR-ish: not linearly separable.
/// let xs = vec![
///     vec![0.0, 0.0], vec![1.0, 1.0], // negative
///     vec![0.0, 1.0], vec![1.0, 0.0], // positive
/// ];
/// let ys = vec![false, false, true, true];
/// let mut config = TrainConfig::fast(3);
/// config.epochs = 3000;
/// let model = Mlp::fit(&xs, &ys, 8, &config);
/// assert!(model.predict(&[0.0, 1.0]));
/// assert!(!model.predict(&[1.0, 1.0]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    input_dim: usize,
    hidden: usize,
    /// Hidden weights, `hidden x input_dim`; a [`Matrix`] so the forward
    /// pass reuses the shared allocation-free matvec kernel.
    w1: Matrix,
    b1: Vec<f64>,
    /// Output weights, `hidden` long.
    w2: Vec<f64>,
    b2: f64,
}

impl Mlp {
    /// Trains an MLP with `hidden` ReLU units.
    ///
    /// # Panics
    ///
    /// Panics if the data is empty/ragged/mismatched, `hidden` is zero, or
    /// the config is invalid.
    pub fn fit(xs: &[Vec<f64>], ys: &[bool], hidden: usize, config: &TrainConfig) -> Mlp {
        let flat = crate::linear::FlatData::collect(xs, ys);
        Mlp::fit_flat(&flat.x, flat.dim, &flat.y, hidden, config)
    }

    /// Trains on a flat row-major feature buffer; see
    /// [`crate::linear::LogisticRegression::fit_flat`].
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches, zero `hidden`, or an invalid config.
    pub fn fit_flat(
        x: &[f64],
        dim: usize,
        y: &[bool],
        hidden: usize,
        config: &TrainConfig,
    ) -> Mlp {
        config.validate();
        assert!(hidden > 0, "hidden units required");
        assert!(dim > 0, "features required");
        assert!(!x.is_empty(), "training data required");
        assert_eq!(x.len() % dim, 0, "buffer not a multiple of dim");
        let n = x.len() / dim;
        assert_eq!(n, y.len(), "label count mismatch");

        let mut rng = ChaCha12Rng::seed_from_u64(config.seed ^ 0x371F);
        // He-style initialization for ReLU.
        let scale = (2.0 / dim as f64).sqrt();
        let mut w1: Vec<f64> = (0..hidden * dim)
            .map(|_| rng.random_range(-scale..scale))
            .collect();
        let mut b1 = vec![0.0f64; hidden];
        let out_scale = (1.0 / hidden as f64).sqrt();
        let mut w2: Vec<f64> = (0..hidden)
            .map(|_| rng.random_range(-out_scale..out_scale))
            .collect();
        let b2 = 0.0f64;

        let mut opt_w1 = Optimizer::new(config.optimizer, config.momentum, hidden * dim);
        let mut opt_b1 = Optimizer::new(config.optimizer, config.momentum, hidden);
        let mut opt_w2 = Optimizer::new(config.optimizer, config.momentum, hidden);
        let mut opt_b2 = Optimizer::new(config.optimizer, config.momentum, 1);
        let mut b2_group = vec![b2];

        let mut order: Vec<usize> = (0..n).collect();
        let mut act = vec![0.0f64; hidden];
        let mut best_loss = f64::INFINITY;
        let mut stale_epochs = 0usize;
        for _ in 0..config.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            for batch in order.chunks(config.batch_size) {
                let mut g_w1 = vec![0.0; hidden * dim];
                let mut g_b1 = vec![0.0; hidden];
                let mut g_w2 = vec![0.0; hidden];
                let mut g_b2 = 0.0;
                for &i in batch {
                    let row = &x[i * dim..(i + 1) * dim];
                    // Forward.
                    for h in 0..hidden {
                        let z = b1[h]
                            + w1[h * dim..(h + 1) * dim]
                                .iter()
                                .zip(row)
                                .map(|(w, v)| w * v)
                                .sum::<f64>();
                        act[h] = z.max(0.0);
                    }
                    let z_out =
                        b2_group[0] + w2.iter().zip(&act).map(|(w, a)| w * a).sum::<f64>();
                    let p = sigmoid(z_out);
                    epoch_loss += bce_loss(p, y[i]);
                    // Backward.
                    let err = p - if y[i] { 1.0 } else { 0.0 };
                    g_b2 += err;
                    for h in 0..hidden {
                        g_w2[h] += err * act[h];
                        if act[h] > 0.0 {
                            let delta = err * w2[h];
                            g_b1[h] += delta;
                            let g_row = &mut g_w1[h * dim..(h + 1) * dim];
                            for (g, v) in g_row.iter_mut().zip(row) {
                                *g += delta * v;
                            }
                        }
                    }
                }
                let scale = 1.0 / batch.len() as f64;
                opt_w1.step(&mut w1, &g_w1, scale, config.learning_rate, config.l2);
                opt_b1.step(&mut b1, &g_b1, scale, config.learning_rate, 0.0);
                opt_w2.step(&mut w2, &g_w2, scale, config.learning_rate, config.l2);
                opt_b2.step(&mut b2_group, &[g_b2], scale, config.learning_rate, 0.0);
            }
            if let Some(patience) = config.patience {
                if epoch_loss < best_loss - 1e-9 {
                    best_loss = epoch_loss;
                    stale_epochs = 0;
                } else {
                    stale_epochs += 1;
                    if stale_epochs >= patience {
                        break;
                    }
                }
            }
        }

        Mlp {
            input_dim: dim,
            hidden,
            w1: Matrix::from_flat(hidden, dim, w1),
            b1,
            w2,
            b2: b2_group[0],
        }
    }

    /// Fused batch forward pass: classifies every `row_stride`-strided
    /// feature row of `x` (only the first `input_dim` features of each
    /// row are read) and fills `out` with the probabilities, reusing one
    /// hidden-activation scratch buffer across the whole batch instead
    /// of allocating per prediction. Results are bit-identical to
    /// calling [`PixelClassifier::predict_proba`] row by row.
    ///
    /// # Panics
    ///
    /// Panics if `row_stride < input_dim` or `x.len()` is not a multiple
    /// of `row_stride`.
    pub fn predict_proba_batch_into(&self, x: &[f64], row_stride: usize, out: &mut Vec<f64>) {
        assert!(
            row_stride >= self.input_dim,
            "row stride {} below input dim {}",
            row_stride,
            self.input_dim
        );
        assert_eq!(x.len() % row_stride, 0, "buffer not a multiple of stride");
        let n = x.len() / row_stride;
        out.clear();
        out.reserve(n);
        let mut act = vec![0.0f64; self.hidden];
        for i in 0..n {
            let row = &x[i * row_stride..i * row_stride + self.input_dim];
            self.w1.matvec_into(row, &mut act);
            let mut z_out = self.b2;
            for h in 0..self.hidden {
                // b1[h] + dot keeps the operand order of the per-row
                // path, so z (and the probability) match bitwise.
                let z = self.b1[h] + act[h];
                if z > 0.0 {
                    z_out += self.w2[h] * z;
                }
            }
            out.push(sigmoid(z_out));
        }
    }

    /// Number of hidden units.
    pub fn hidden_units(&self) -> usize {
        self.hidden
    }

    /// Approximate multiply-accumulate count per prediction, used by the
    /// hardware latency model to scale specialized-model cost.
    pub fn ops_per_prediction(&self) -> usize {
        self.hidden * self.input_dim + self.hidden
    }

    /// Total trainable parameters: `w1`, `b1`, `w2` and `b2`.
    pub fn param_count(&self) -> usize {
        self.hidden * self.input_dim + self.hidden + self.hidden + 1
    }

    /// FNV-1a checksum over the exact bit patterns of every parameter, in
    /// the fixed order `w1` (row-major), `b1`, `w2`, `b2`.
    ///
    /// This is the integrity tag the runtime's degradation policy checks
    /// before trusting a specialized model: any single flipped weight bit
    /// changes the checksum, and the sum itself depends only on the
    /// weights, never on wall time or layout.
    pub fn weight_checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: f64| {
            h ^= v.to_bits();
            h = h.wrapping_mul(FNV_PRIME);
        };
        for r in 0..self.hidden {
            for c in 0..self.input_dim {
                mix(self.w1[(r, c)]);
            }
        }
        for &v in &self.b1 {
            mix(v);
        }
        for &v in &self.w2 {
            mix(v);
        }
        mix(self.b2);
        h
    }

    /// Flips one bit of one parameter — a modeled single-event upset.
    ///
    /// `index` addresses the flattened parameter vector in the same order
    /// as [`Mlp::weight_checksum`] and is reduced modulo
    /// [`Mlp::param_count`]; `bit` is reduced modulo 64. Deliberately
    /// total: fault injection must never panic, whatever the raw fault
    /// coordinates drawn by the plan.
    pub fn flip_weight_bit(&mut self, index: u64, bit: u32) {
        let index = (index % self.param_count() as u64) as usize;
        let mask = 1u64 << (bit % 64);
        let flip = |v: &mut f64| *v = f64::from_bits(v.to_bits() ^ mask);
        let w1_len = self.hidden * self.input_dim;
        if index < w1_len {
            let (r, c) = (index / self.input_dim, index % self.input_dim);
            flip(&mut self.w1[(r, c)]);
        } else if index < w1_len + self.hidden {
            flip(&mut self.b1[index - w1_len]);
        } else if index < w1_len + 2 * self.hidden {
            flip(&mut self.w2[index - w1_len - self.hidden]);
        } else {
            flip(&mut self.b2);
        }
    }
}

impl PixelClassifier for Mlp {
    fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.input_dim, "dimension mismatch");
        let mut z_out = self.b2;
        for h in 0..self.hidden {
            let z = self.b1[h]
                + self
                    .w1
                    .row(h)
                    .iter()
                    .zip(features)
                    .map(|(w, v)| w * v)
                    .sum::<f64>();
            if z > 0.0 {
                z_out += self.w2[h] * z;
            }
        }
        sigmoid(z_out)
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }
}

impl Encode for Mlp {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.input_dim);
        enc.usize(self.hidden);
        self.w1.encode(enc);
        self.b1.encode(enc);
        self.w2.encode(enc);
        enc.f64(self.b2);
    }
}

impl Decode for Mlp {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        let input_dim = dec.usize()?;
        let hidden = dec.usize()?;
        if input_dim == 0 || hidden == 0 {
            return Err(WireError::InvalidValue("mlp dimension zero"));
        }
        let w1 = Matrix::decode(dec)?;
        let b1 = Vec::<f64>::decode(dec)?;
        let w2 = Vec::<f64>::decode(dec)?;
        let b2 = dec.f64()?;
        // Shape invariants keep every later forward pass panic-free.
        if w1.rows() != hidden || w1.cols() != input_dim || b1.len() != hidden
            || w2.len() != hidden
        {
            return Err(WireError::InvalidValue("mlp layer shape mismatch"));
        }
        Ok(Mlp {
            input_dim,
            hidden,
            w1,
            b1,
            w2,
            b2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circle_data(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        // Positive inside a circle — not linearly separable.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let a = (i % 20) as f64 / 10.0 - 1.0;
            let b = ((i / 20) % 20) as f64 / 10.0 - 1.0;
            xs.push(vec![a, b]);
            ys.push(a * a + b * b < 0.5);
        }
        (xs, ys)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (xs, ys) = circle_data(400);
        let mut config = TrainConfig::fast(1);
        config.epochs = 300;
        config.learning_rate = 0.3;
        let model = Mlp::fit(&xs, &ys, 16, &config);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(
            correct as f64 / xs.len() as f64 > 0.9,
            "accuracy {correct}/400"
        );
    }

    #[test]
    fn beats_linear_model_on_nonlinear_data() {
        let (xs, ys) = circle_data(400);
        let mut config = TrainConfig::fast(1);
        config.epochs = 300;
        let mlp = Mlp::fit(&xs, &ys, 16, &config);
        let lin = crate::linear::LogisticRegression::fit(&xs, &ys, &config);
        let acc = |f: &dyn Fn(&[f64]) -> bool| {
            xs.iter().zip(&ys).filter(|(x, &y)| f(x) == y).count()
        };
        let mlp_acc = acc(&|x| mlp.predict(x));
        let lin_acc = acc(&|x| lin.predict(x));
        assert!(mlp_acc > lin_acc, "mlp {mlp_acc} vs linear {lin_acc}");
    }

    #[test]
    fn deterministic_for_seed() {
        let (xs, ys) = circle_data(100);
        let config = TrainConfig::fast(9);
        assert_eq!(Mlp::fit(&xs, &ys, 8, &config), Mlp::fit(&xs, &ys, 8, &config));
    }

    #[test]
    fn ops_scale_with_width() {
        let (xs, ys) = circle_data(40);
        let config = TrainConfig::fast(1);
        let small = Mlp::fit(&xs, &ys, 4, &config);
        let large = Mlp::fit(&xs, &ys, 16, &config);
        assert_eq!(small.ops_per_prediction() * 4, large.ops_per_prediction());
        assert_eq!(small.hidden_units(), 4);
    }

    #[test]
    fn probabilities_valid() {
        let (xs, ys) = circle_data(100);
        let model = Mlp::fit(&xs, &ys, 8, &TrainConfig::fast(1));
        for x in &xs {
            let p = model.predict_proba(x);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
        assert_eq!(model.input_dim(), 2);
    }

    #[test]
    #[should_panic(expected = "hidden units")]
    fn rejects_zero_hidden() {
        let _ = Mlp::fit(&[vec![1.0]], &[true], 0, &TrainConfig::fast(0));
    }

    #[test]
    fn batch_forward_matches_per_row_bitwise() {
        let (xs, ys) = circle_data(120);
        let model = Mlp::fit(&xs, &ys, 8, &TrainConfig::fast(5));
        // Exact stride: rows laid out back to back.
        let flat: Vec<f64> = xs.iter().flatten().copied().collect();
        let mut batch = Vec::new();
        model.predict_proba_batch_into(&flat, 2, &mut batch);
        assert_eq!(batch.len(), xs.len());
        for (x, p) in xs.iter().zip(&batch) {
            assert_eq!(model.predict_proba(x), *p, "bitwise mismatch at {x:?}");
        }
        // Wider stride: only the first input_dim features of each row are
        // read, as when a feature budget trims a fixed-width buffer.
        let padded: Vec<f64> = xs
            .iter()
            .flat_map(|x| [x[0], x[1], 99.0, -99.0])
            .collect();
        let mut strided = Vec::new();
        model.predict_proba_batch_into(&padded, 4, &mut strided);
        assert_eq!(batch, strided);
        // The output buffer is reused, not appended to.
        model.predict_proba_batch_into(&flat, 2, &mut strided);
        assert_eq!(batch, strided);
    }

    #[test]
    fn checksum_detects_every_single_bit_flip() {
        let (xs, ys) = circle_data(60);
        let model = Mlp::fit(&xs, &ys, 4, &TrainConfig::fast(3));
        let clean = model.weight_checksum();
        // Deterministic: recomputing never drifts.
        assert_eq!(clean, model.weight_checksum());
        assert_eq!(model.param_count(), 4 * 2 + 4 + 4 + 1);
        // Flip any parameter's bit anywhere: checksum must change, and
        // flipping it back must restore the original sum exactly.
        for index in 0..model.param_count() as u64 {
            let mut corrupt = model.clone();
            corrupt.flip_weight_bit(index, (index % 64) as u32);
            assert_ne!(
                corrupt.weight_checksum(),
                clean,
                "flip at {index} went undetected"
            );
            corrupt.flip_weight_bit(index, (index % 64) as u32);
            assert_eq!(corrupt.weight_checksum(), clean);
        }
        // Out-of-range fault coordinates reduce instead of panicking.
        let mut wrapped = model.clone();
        wrapped.flip_weight_bit(u64::MAX, 200);
        assert_ne!(wrapped.weight_checksum(), clean);
    }

    #[test]
    fn batch_forward_handles_empty_input() {
        let (xs, ys) = circle_data(40);
        let model = Mlp::fit(&xs, &ys, 4, &TrainConfig::fast(5));
        let mut out = vec![0.5; 3];
        model.predict_proba_batch_into(&[], 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "row stride")]
    fn batch_forward_rejects_narrow_stride() {
        let (xs, ys) = circle_data(40);
        let model = Mlp::fit(&xs, &ys, 4, &TrainConfig::fast(5));
        let mut out = Vec::new();
        model.predict_proba_batch_into(&[1.0], 1, &mut out);
    }
}
