//! First-order optimizers shared by the trainers.
//!
//! Both classifiers train with mini-batch gradients; this module supplies
//! the update rule: classic SGD with momentum (the default — cheap and
//! well-behaved on the small models here) or Adam (faster convergence on
//! badly-scaled features, useful when the feature pipeline changes).

use serde::{Deserialize, Serialize};

/// The optimizer family and its hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with momentum (read from
    /// [`crate::train::TrainConfig::momentum`]).
    SgdMomentum,
    /// Adam with the standard defaults (beta1 = 0.9, beta2 = 0.999).
    Adam,
}

/// Per-parameter-group optimizer state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Optimizer {
    kind: OptimizerKind,
    momentum: f64,
    /// First-moment buffer (velocity for SGD, m for Adam).
    m: Vec<f64>,
    /// Second-moment buffer (Adam only).
    v: Vec<f64>,
    /// Step counter for Adam bias correction.
    t: u64,
}

const ADAM_BETA1: f64 = 0.9;
const ADAM_BETA2: f64 = 0.999;
const ADAM_EPSILON: f64 = 1e-8;

impl Optimizer {
    /// Creates an optimizer for a parameter group of `len` values.
    pub fn new(kind: OptimizerKind, momentum: f64, len: usize) -> Optimizer {
        Optimizer {
            kind,
            momentum,
            m: vec![0.0; len],
            v: if kind == OptimizerKind::Adam {
                vec![0.0; len]
            } else {
                Vec::new()
            },
            t: 0,
        }
    }

    /// Applies one update: `grads` are summed batch gradients, `scale`
    /// is `1 / batch_size`, `l2` is the weight-decay strength.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length differs from the parameter length.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64], scale: f64, lr: f64, l2: f64) {
        assert_eq!(params.len(), grads.len(), "gradient length mismatch");
        assert_eq!(params.len(), self.m.len(), "optimizer state mismatch");
        self.t += 1;
        match self.kind {
            OptimizerKind::SgdMomentum => {
                for ((p, m), g) in params.iter_mut().zip(&mut self.m).zip(grads) {
                    *m = self.momentum * *m - lr * (g * scale + l2 * *p);
                    *p += *m;
                }
            }
            OptimizerKind::Adam => {
                let bias1 = 1.0 - ADAM_BETA1.powi(self.t as i32);
                let bias2 = 1.0 - ADAM_BETA2.powi(self.t as i32);
                for (((p, m), v), g) in params
                    .iter_mut()
                    .zip(&mut self.m)
                    .zip(&mut self.v)
                    .zip(grads)
                {
                    let grad = g * scale + l2 * *p;
                    *m = ADAM_BETA1 * *m + (1.0 - ADAM_BETA1) * grad;
                    *v = ADAM_BETA2 * *v + (1.0 - ADAM_BETA2) * grad * grad;
                    let m_hat = *m / bias1;
                    let v_hat = *v / bias2;
                    *p -= lr * m_hat / (v_hat.sqrt() + ADAM_EPSILON);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 and checks convergence.
    fn minimize(kind: OptimizerKind, lr: f64, steps: usize) -> f64 {
        let mut params = vec![0.0f64];
        let mut opt = Optimizer::new(kind, 0.9, 1);
        for _ in 0..steps {
            let grad = 2.0 * (params[0] - 3.0);
            opt.step(&mut params, &[grad], 1.0, lr, 0.0);
        }
        params[0]
    }

    #[test]
    fn sgd_converges_on_a_quadratic() {
        let x = minimize(OptimizerKind::SgdMomentum, 0.05, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        let x = minimize(OptimizerKind::Adam, 0.1, 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_handles_badly_scaled_gradients() {
        // Two parameters with gradients differing by 1e4 in scale; Adam's
        // per-parameter normalization handles it in few steps.
        let mut params = vec![0.0f64, 0.0];
        let mut opt = Optimizer::new(OptimizerKind::Adam, 0.9, 2);
        for _ in 0..800 {
            let grads = [2.0 * (params[0] - 1.0) * 1e4, 2.0 * (params[1] - 1.0) * 1e-2];
            opt.step(&mut params, &grads, 1.0, 0.05, 0.0);
        }
        assert!((params[0] - 1.0).abs() < 0.05, "fast axis {}", params[0]);
        assert!((params[1] - 1.0).abs() < 0.2, "slow axis {}", params[1]);
    }

    #[test]
    fn l2_pulls_parameters_toward_zero() {
        let mut params = vec![5.0f64];
        let mut opt = Optimizer::new(OptimizerKind::SgdMomentum, 0.0, 1);
        for _ in 0..100 {
            opt.step(&mut params, &[0.0], 1.0, 0.1, 0.5);
        }
        assert!(params[0].abs() < 0.1, "param {}", params[0]);
    }

    #[test]
    #[should_panic(expected = "gradient length")]
    fn rejects_mismatched_gradients() {
        let mut opt = Optimizer::new(OptimizerKind::SgdMomentum, 0.9, 2);
        let mut params = vec![0.0; 2];
        opt.step(&mut params, &[1.0], 1.0, 0.1, 0.0);
    }
}
