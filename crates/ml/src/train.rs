//! Training configuration shared by the classifiers.

use crate::optimizer::OptimizerKind;
use serde::{Deserialize, Serialize};

/// Hyperparameters for mini-batch SGD training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// RNG seed for shuffling and initialization.
    pub seed: u64,
    /// Update rule.
    pub optimizer: OptimizerKind,
    /// Early stopping: abort when the epoch training loss has not
    /// improved for this many epochs. `None` trains for all epochs.
    pub patience: Option<usize>,
}

impl TrainConfig {
    /// A fast configuration for tests and small models.
    pub fn fast(seed: u64) -> TrainConfig {
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            learning_rate: 0.5,
            momentum: 0.8,
            l2: 1e-5,
            seed,
            optimizer: OptimizerKind::SgdMomentum,
            patience: None,
        }
    }

    /// The configuration used when training deployment models in the
    /// evaluation pipeline.
    pub fn evaluation(seed: u64) -> TrainConfig {
        TrainConfig {
            epochs: 60,
            batch_size: 64,
            learning_rate: 0.3,
            momentum: 0.9,
            l2: 1e-5,
            seed,
            optimizer: OptimizerKind::SgdMomentum,
            patience: Some(12),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive epochs/batch/learning-rate or momentum
    /// outside `[0, 1)`.
    pub fn validate(&self) {
        assert!(self.epochs > 0, "epochs must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&self.momentum),
            "momentum must be in [0, 1)"
        );
        assert!(self.l2 >= 0.0, "l2 must be non-negative");
        if let Some(patience) = self.patience {
            assert!(patience > 0, "patience must be positive");
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::evaluation(0)
    }
}

/// The logistic sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy loss for a probability and a boolean label.
pub fn bce_loss(p: f64, y: bool) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    if y {
        -p.ln()
    } else {
        -(1.0 - p).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_endpoints_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(50.0) > 0.999_999);
        assert!(sigmoid(-50.0) < 1e-6);
        for z in [-3.0, -0.5, 0.7, 4.0] {
            assert!((sigmoid(z) + sigmoid(-z) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_is_numerically_stable() {
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert_eq!(sigmoid(1000.0), 1.0);
        assert!(!sigmoid(-1000.0).is_nan());
    }

    #[test]
    fn bce_rewards_confident_correct_predictions() {
        assert!(bce_loss(0.99, true) < bce_loss(0.6, true));
        assert!(bce_loss(0.01, false) < bce_loss(0.4, false));
        assert!(bce_loss(0.01, true) > 4.0);
        // Extreme probabilities do not produce infinities.
        assert!(bce_loss(1.0, false).is_finite());
        assert!(bce_loss(0.0, true).is_finite());
    }

    #[test]
    fn configs_validate() {
        TrainConfig::fast(0).validate();
        TrainConfig::evaluation(0).validate();
        TrainConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn rejects_bad_momentum() {
        let mut c = TrainConfig::fast(0);
        c.momentum = 1.5;
        c.validate();
    }
}
