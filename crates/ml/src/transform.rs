//! Label-vector transformations for the clustering sweep.
//!
//! Alongside distance metrics, the paper sweeps "label vector
//! transformations, including translations, rotations, and projections
//! based on per-dimension covariance properties" (Section 3.2). This
//! module provides standardization (translation + per-dimension scaling)
//! and PCA projection (rotation + covariance-based projection), both
//! fitted on training data and applicable to new vectors.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A fitted, invertible-enough feature transformation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FittedTransform {
    /// Pass-through.
    Identity,
    /// Per-dimension centering and scaling to unit variance.
    Standardize {
        /// Column means subtracted from inputs.
        means: Vec<f64>,
        /// Column standard deviations (zeros replaced by 1).
        stds: Vec<f64>,
    },
    /// Projection onto the top principal components (computed after
    /// standardization for scale invariance).
    Pca {
        /// Column means.
        means: Vec<f64>,
        /// Column standard deviations.
        stds: Vec<f64>,
        /// Principal axes, one row per retained component.
        components: Vec<Vec<f64>>,
    },
}

/// A transformation specification, fit with [`TransformKind::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransformKind {
    /// No transformation.
    Identity,
    /// Standardize each dimension.
    Standardize,
    /// Standardize then project to `n` principal components.
    Pca(usize),
}

impl TransformKind {
    /// Transformations enumerated in context-generation sweeps.
    pub fn sweep_candidates(dim: usize) -> Vec<TransformKind> {
        let mut v = vec![TransformKind::Identity, TransformKind::Standardize];
        if dim >= 4 {
            v.push(TransformKind::Pca(dim / 2));
            v.push(TransformKind::Pca(3.min(dim)));
        }
        v
    }

    /// Fits this transformation on training vectors.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, ragged, or a PCA component count is zero
    /// or exceeds the dimension.
    pub fn fit(&self, data: &[Vec<f64>]) -> FittedTransform {
        assert!(!data.is_empty(), "transform needs data");
        let dim = data.first().map(Vec::len).unwrap_or(0);
        match self {
            TransformKind::Identity => FittedTransform::Identity,
            TransformKind::Standardize => {
                let m = Matrix::from_rows(data);
                FittedTransform::Standardize {
                    means: m.column_means(),
                    stds: safe_stds(m.column_stds()),
                }
            }
            TransformKind::Pca(n) => {
                assert!(*n > 0 && *n <= dim, "PCA components out of range");
                let m = Matrix::from_rows(data);
                let means = m.column_means();
                let stds = safe_stds(m.column_stds());
                let standardized: Vec<Vec<f64>> = data
                    .iter()
                    .map(|row| {
                        row.iter()
                            .zip(&means)
                            .zip(&stds)
                            .map(|((v, m), s)| (v - m) / s)
                            .collect()
                    })
                    .collect();
                let cov = Matrix::from_rows(&standardized).covariance();
                let components = top_components(&cov, *n);
                FittedTransform::Pca {
                    means,
                    stds,
                    components,
                }
            }
        }
    }
}

impl FittedTransform {
    /// Applies the transformation to one vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector's dimension differs from the training data.
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        match self {
            FittedTransform::Identity => v.to_vec(),
            FittedTransform::Standardize { means, stds } => {
                assert_eq!(v.len(), means.len(), "dimension mismatch");
                v.iter()
                    .zip(means)
                    .zip(stds)
                    .map(|((x, m), s)| (x - m) / s)
                    .collect()
            }
            FittedTransform::Pca {
                means,
                stds,
                components,
            } => {
                assert_eq!(v.len(), means.len(), "dimension mismatch");
                let standardized: Vec<f64> = v
                    .iter()
                    .zip(means)
                    .zip(stds)
                    .map(|((x, m), s)| (x - m) / s)
                    .collect();
                components
                    .iter()
                    .map(|c| c.iter().zip(&standardized).map(|(a, b)| a * b).sum())
                    .collect()
            }
        }
    }

    /// Applies the transformation to many vectors.
    pub fn apply_all(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter().map(|v| self.apply(v)).collect()
    }

    /// Output dimension of the transformation, given the input dimension.
    pub fn output_dim(&self, input_dim: usize) -> usize {
        match self {
            FittedTransform::Identity | FittedTransform::Standardize { .. } => input_dim,
            FittedTransform::Pca { components, .. } => components.len(),
        }
    }
}

/// Replaces zero standard deviations with 1 to avoid division by zero for
/// constant columns.
fn safe_stds(stds: Vec<f64>) -> Vec<f64> {
    stds.into_iter()
        .map(|s| if s < 1e-12 { 1.0 } else { s })
        .collect()
}

/// Extracts the top `n` eigenvectors of a symmetric matrix by power
/// iteration with deflation.
fn top_components(cov: &Matrix, n: usize) -> Vec<Vec<f64>> {
    let dim = cov.cols();
    let mut work = cov.clone();
    let mut components = Vec::with_capacity(n);
    for comp in 0..n {
        // Deterministic non-degenerate start vector.
        let mut v: Vec<f64> = (0..dim)
            .map(|i| 1.0 + ((i + comp * 7) % 5) as f64 * 0.1)
            .collect();
        normalize(&mut v);
        let mut eigenvalue = 0.0;
        for _ in 0..200 {
            let mut next = work.matvec(&v);
            let norm = normalize(&mut next);
            // Element-order loop: max is order-insensitive for finite
            // values, but the explicit serial form keeps the reduction
            // order textually pinned (and NaN-propagation obvious).
            let mut delta = 0.0f64;
            for (a, b) in next.iter().zip(&v) {
                delta = delta.max((a - b).abs());
            }
            v = next;
            eigenvalue = norm;
            if delta < 1e-12 {
                break;
            }
        }
        // Deflate: work -= lambda v v^T.
        for i in 0..dim {
            for j in 0..dim {
                work[(i, j)] -= eigenvalue * v[i] * v[j];
            }
        }
        components.push(v);
    }
    components
}

fn normalize(v: &mut [f64]) -> f64 {
    // Serial left-to-right accumulation in element order pins the
    // (non-associative) f64 reduction order.
    let mut sq_sum = 0.0;
    for x in v.iter() {
        sq_sum += x * x;
    }
    let norm = sq_sum.sqrt();
    if norm > 1e-18 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Vec<Vec<f64>> {
        (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                vec![t, 2.0 * t + 1.0, (i % 3) as f64 * 0.01 + 5.0]
            })
            .collect()
    }

    #[test]
    fn identity_passes_through() {
        let data = sample_data();
        let t = TransformKind::Identity.fit(&data);
        assert_eq!(t.apply(&data[3]), data[3]);
        assert_eq!(t.output_dim(3), 3);
    }

    #[test]
    fn standardize_centers_and_scales() {
        let data = sample_data();
        let t = TransformKind::Standardize.fit(&data);
        let transformed = t.apply_all(&data);
        let m = Matrix::from_rows(&transformed);
        for mean in m.column_means() {
            assert!(mean.abs() < 1e-9, "mean = {mean}");
        }
        for std in m.column_stds() {
            assert!((std - 1.0).abs() < 1e-6, "std = {std}");
        }
    }

    #[test]
    fn standardize_tolerates_constant_columns() {
        let data = vec![vec![1.0, 5.0]; 10];
        let t = TransformKind::Standardize.fit(&data);
        let out = t.apply(&[1.0, 5.0]);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn pca_reduces_dimension_and_captures_variance() {
        let data = sample_data();
        let t = TransformKind::Pca(1).fit(&data);
        let out = t.apply_all(&data);
        assert!(out.iter().all(|v| v.len() == 1));
        // Columns 0 and 1 are perfectly correlated, so one component
        // captures nearly all standardized variance (2 of ~2).
        let m = Matrix::from_rows(&out);
        let var = m.column_stds()[0].powi(2);
        assert!(var > 1.8, "captured variance = {var}");
    }

    #[test]
    fn pca_components_are_orthonormal() {
        let data = sample_data();
        if let FittedTransform::Pca { components, .. } = TransformKind::Pca(2).fit(&data) {
            let dot: f64 = components[0]
                .iter()
                .zip(&components[1])
                .map(|(a, b)| a * b)
                .sum();
            assert!(dot.abs() < 1e-6, "dot = {dot}");
            for c in &components {
                let norm: f64 = c.iter().map(|x| x * x).sum::<f64>().sqrt();
                assert!((norm - 1.0).abs() < 1e-9);
            }
        } else {
            panic!("expected PCA transform");
        }
    }

    #[test]
    fn sweep_candidates_cover_the_family() {
        let c = TransformKind::sweep_candidates(12);
        assert!(c.contains(&TransformKind::Identity));
        assert!(c.contains(&TransformKind::Standardize));
        assert!(c.iter().any(|t| matches!(t, TransformKind::Pca(_))));
    }

    #[test]
    #[should_panic(expected = "components out of range")]
    fn rejects_oversized_pca() {
        let _ = TransformKind::Pca(5).fit(&[vec![1.0, 2.0]]);
    }
}
