//! Wire-format encodings for the ml types whose shapes are public.
//!
//! Types with private fields ([`crate::matrix::Matrix`],
//! [`crate::mlp::Mlp`], [`crate::kmeans::KMeans`]) implement
//! [`Encode`]/[`Decode`] in their defining modules; everything with a
//! public shape lives here. Enum tags are explicit `u16`s in
//! declaration order, so reordering a Rust enum cannot silently change
//! the format.

use crate::eval::ConfusionMatrix;
use crate::metrics::DistanceMetric;
use crate::optimizer::OptimizerKind;
use crate::train::TrainConfig;
use crate::transform::{FittedTransform, TransformKind};
use crate::zoo::ModelArch;
use kodan_wire::{Dec, Decode, Enc, Encode, WireError};

impl Encode for DistanceMetric {
    fn encode(&self, enc: &mut Enc) {
        let tag: u16 = match self {
            DistanceMetric::Euclidean => 0,
            DistanceMetric::Manhattan => 1,
            DistanceMetric::Chebyshev => 2,
            DistanceMetric::Cosine => 3,
            DistanceMetric::Hamming => 4,
        };
        enc.u16(tag);
    }
}

impl Decode for DistanceMetric {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        match dec.u16()? {
            0 => Ok(DistanceMetric::Euclidean),
            1 => Ok(DistanceMetric::Manhattan),
            2 => Ok(DistanceMetric::Chebyshev),
            3 => Ok(DistanceMetric::Cosine),
            4 => Ok(DistanceMetric::Hamming),
            tag => Err(WireError::BadTag {
                what: "DistanceMetric",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Encode for OptimizerKind {
    fn encode(&self, enc: &mut Enc) {
        let tag: u16 = match self {
            OptimizerKind::SgdMomentum => 0,
            OptimizerKind::Adam => 1,
        };
        enc.u16(tag);
    }
}

impl Decode for OptimizerKind {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        match dec.u16()? {
            0 => Ok(OptimizerKind::SgdMomentum),
            1 => Ok(OptimizerKind::Adam),
            tag => Err(WireError::BadTag {
                what: "OptimizerKind",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Encode for ModelArch {
    fn encode(&self, enc: &mut Enc) {
        enc.u16(self.index() as u16);
    }
}

impl Decode for ModelArch {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        let tag = dec.u16()?;
        ModelArch::ALL
            .get(usize::from(tag))
            .copied()
            .ok_or(WireError::BadTag {
                what: "ModelArch",
                tag: u32::from(tag),
            })
    }
}

impl Encode for TransformKind {
    fn encode(&self, enc: &mut Enc) {
        match self {
            TransformKind::Identity => enc.u16(0),
            TransformKind::Standardize => enc.u16(1),
            TransformKind::Pca(n) => {
                enc.u16(2);
                enc.usize(*n);
            }
        }
    }
}

impl Decode for TransformKind {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        match dec.u16()? {
            0 => Ok(TransformKind::Identity),
            1 => Ok(TransformKind::Standardize),
            2 => Ok(TransformKind::Pca(dec.usize()?)),
            tag => Err(WireError::BadTag {
                what: "TransformKind",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Encode for FittedTransform {
    fn encode(&self, enc: &mut Enc) {
        match self {
            FittedTransform::Identity => enc.u16(0),
            FittedTransform::Standardize { means, stds } => {
                enc.u16(1);
                means.encode(enc);
                stds.encode(enc);
            }
            FittedTransform::Pca {
                means,
                stds,
                components,
            } => {
                enc.u16(2);
                means.encode(enc);
                stds.encode(enc);
                components.encode(enc);
            }
        }
    }
}

impl Decode for FittedTransform {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        match dec.u16()? {
            0 => Ok(FittedTransform::Identity),
            1 => {
                let means = Vec::<f64>::decode(dec)?;
                let stds = Vec::<f64>::decode(dec)?;
                if means.len() != stds.len() {
                    return Err(WireError::InvalidValue("standardize means/stds mismatch"));
                }
                Ok(FittedTransform::Standardize { means, stds })
            }
            2 => {
                let means = Vec::<f64>::decode(dec)?;
                let stds = Vec::<f64>::decode(dec)?;
                let components = Vec::<Vec<f64>>::decode(dec)?;
                if means.len() != stds.len()
                    || components.iter().any(|c| c.len() != means.len())
                {
                    return Err(WireError::InvalidValue("pca shape mismatch"));
                }
                Ok(FittedTransform::Pca {
                    means,
                    stds,
                    components,
                })
            }
            tag => Err(WireError::BadTag {
                what: "FittedTransform",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Encode for TrainConfig {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.epochs);
        enc.usize(self.batch_size);
        enc.f64(self.learning_rate);
        enc.f64(self.momentum);
        enc.f64(self.l2);
        enc.u64(self.seed);
        self.optimizer.encode(enc);
        self.patience.encode(enc);
    }
}

impl Decode for TrainConfig {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(TrainConfig {
            epochs: dec.usize()?,
            batch_size: dec.usize()?,
            learning_rate: dec.f64()?,
            momentum: dec.f64()?,
            l2: dec.f64()?,
            seed: dec.u64()?,
            optimizer: OptimizerKind::decode(dec)?,
            patience: Option::<usize>::decode(dec)?,
        })
    }
}

impl Encode for ConfusionMatrix {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.tp);
        enc.u64(self.fp);
        enc.u64(self.tn);
        enc.u64(self.fn_);
    }
}

impl Decode for ConfusionMatrix {
    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(ConfusionMatrix {
            tp: dec.u64()?,
            fp: dec.u64()?,
            tn: dec.u64()?,
            fn_: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kodan_wire::{Decode, Encode};

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_wire();
        let back = T::from_wire(&bytes).expect("decode");
        assert_eq!(back, value);
        assert_eq!(back.to_wire(), bytes);
    }

    #[test]
    fn enums_roundtrip() {
        for m in DistanceMetric::ALL {
            roundtrip(m);
        }
        for a in ModelArch::ALL {
            roundtrip(a);
        }
        roundtrip(OptimizerKind::SgdMomentum);
        roundtrip(OptimizerKind::Adam);
        roundtrip(TransformKind::Identity);
        roundtrip(TransformKind::Standardize);
        roundtrip(TransformKind::Pca(3));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut enc = kodan_wire::Enc::new();
        enc.u16(99);
        for err in [
            DistanceMetric::from_wire(enc.as_bytes()).expect_err("metric"),
            ModelArch::from_wire(enc.as_bytes()).expect_err("arch"),
            OptimizerKind::from_wire(enc.as_bytes()).expect_err("optimizer"),
            FittedTransform::from_wire(enc.as_bytes()).expect_err("transform"),
        ] {
            assert!(matches!(err, WireError::BadTag { tag: 99, .. }), "{err:?}");
        }
    }

    #[test]
    fn structs_roundtrip() {
        roundtrip(TrainConfig::evaluation(7));
        roundtrip(TrainConfig::fast(3));
        roundtrip(ConfusionMatrix {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: u64::MAX,
        });
        roundtrip(FittedTransform::Standardize {
            means: vec![0.5, -0.25],
            stds: vec![1.0, 2.0],
        });
        roundtrip(FittedTransform::Pca {
            means: vec![0.0, 1.0, 2.0],
            stds: vec![1.0, 1.0, 1.0],
            components: vec![vec![0.1, 0.2, 0.3]; 2],
        });
    }

    #[test]
    fn mismatched_shapes_are_rejected() {
        let mut enc = kodan_wire::Enc::new();
        enc.u16(1); // Standardize
        vec![1.0f64, 2.0].encode(&mut enc);
        vec![1.0f64].encode(&mut enc);
        assert_eq!(
            FittedTransform::from_wire(enc.as_bytes()),
            Err(WireError::InvalidValue("standardize means/stds mismatch"))
        );
    }
}
