//! The benchmark model zoo: the seven semantic-segmentation architectures
//! of the paper's Table 1, as capacity descriptors.
//!
//! The paper's applications are ADE20K segmentation networks (MobileNetV2,
//! ResNet-18/50/101 backbones with dilated/PPM/UPerNet heads) customized
//! to produce per-pixel cloud masks. This reproduction cannot run the
//! original CUDA models, so each architecture is represented by what the
//! Kodan pipeline actually consumes:
//!
//! - an **input resolution** the tile is resized to (deeper nets use
//!   larger crops),
//! - a **feature budget** and **hidden width** for the stand-in MLP
//!   (deeper nets learn richer functions),
//! - a **relative op count** that, combined with the measured Table 1
//!   latencies in `kodan-hw`, prices specialized (smaller) variants.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the seven benchmark architectures (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModelArch {
    /// App 1: `mobilenetv2dilated-c1-deepsup`.
    MobileNetV2DilatedC1,
    /// App 2: `resnet18dilated-ppm-deepsup`.
    ResNet18DilatedPpm,
    /// App 3: `hrnetv2-c1`.
    HrNetV2C1,
    /// App 4: `resnet50dilated-ppm-deepsup`.
    ResNet50DilatedPpm,
    /// App 5: `resnet50-upernet`.
    ResNet50UperNet,
    /// App 6: `resnet101-upernet`.
    ResNet101UperNet,
    /// App 7: `resnet101dilated-ppm-deepsup`.
    ResNet101DilatedPpm,
}

impl ModelArch {
    /// All architectures in application order (App 1 through App 7).
    pub const ALL: [ModelArch; 7] = [
        ModelArch::MobileNetV2DilatedC1,
        ModelArch::ResNet18DilatedPpm,
        ModelArch::HrNetV2C1,
        ModelArch::ResNet50DilatedPpm,
        ModelArch::ResNet50UperNet,
        ModelArch::ResNet101UperNet,
        ModelArch::ResNet101DilatedPpm,
    ];

    /// 1-based application number as used in the paper ("App 1" ... "App 7").
    pub fn app_number(self) -> usize {
        self.index() + 1
    }

    /// 0-based index within [`ModelArch::ALL`].
    pub fn index(self) -> usize {
        // Exhaustive match keeps this total: adding a variant without
        // updating ALL is a compile error here, not a runtime panic.
        match self {
            ModelArch::MobileNetV2DilatedC1 => 0,
            ModelArch::ResNet18DilatedPpm => 1,
            ModelArch::HrNetV2C1 => 2,
            ModelArch::ResNet50DilatedPpm => 3,
            ModelArch::ResNet50UperNet => 4,
            ModelArch::ResNet101UperNet => 5,
            ModelArch::ResNet101DilatedPpm => 6,
        }
    }

    /// The architecture string as printed in Table 1.
    pub fn paper_name(self) -> &'static str {
        match self {
            ModelArch::MobileNetV2DilatedC1 => "mobilenetv2dilated-c1-deepsup",
            ModelArch::ResNet18DilatedPpm => "resnet18dilated-ppm-deepsup",
            ModelArch::HrNetV2C1 => "hrnetv2-c1",
            ModelArch::ResNet50DilatedPpm => "resnet50dilated-ppm-deepsup",
            ModelArch::ResNet50UperNet => "resnet50-upernet",
            ModelArch::ResNet101UperNet => "resnet101-upernet",
            ModelArch::ResNet101DilatedPpm => "resnet101dilated-ppm-deepsup",
        }
    }

    /// Tile input resolution (pixels per side) the architecture expects.
    ///
    /// Deeper backbones use larger inputs; the values interact with the
    /// native tile sizes of the paper's tile grids (12/22/33/44 px at a
    /// 132 px frame) to give each application its own accuracy-optimal
    /// tiling, as in Figure 13.
    pub fn input_resolution(self) -> usize {
        match self {
            ModelArch::MobileNetV2DilatedC1 => 16,
            ModelArch::ResNet18DilatedPpm => 18,
            ModelArch::HrNetV2C1 => 20,
            ModelArch::ResNet50DilatedPpm => 22,
            ModelArch::ResNet50UperNet => 24,
            ModelArch::ResNet101UperNet => 26,
            ModelArch::ResNet101DilatedPpm => 28,
        }
    }

    /// Number of pixel features the stand-in classifier consumes (a prefix
    /// of [`kodan-geodata`'s feature set](https://docs.rs) ordered from
    /// cheap radiometry to rich texture/indices).
    pub fn feature_budget(self) -> usize {
        match self {
            ModelArch::MobileNetV2DilatedC1 => 6,
            ModelArch::ResNet18DilatedPpm => 8,
            ModelArch::HrNetV2C1 => 9,
            ModelArch::ResNet50DilatedPpm => 10,
            ModelArch::ResNet50UperNet => 11,
            ModelArch::ResNet101UperNet => 12,
            ModelArch::ResNet101DilatedPpm => 12,
        }
    }

    /// Hidden width of the stand-in MLP.
    pub fn hidden_units(self) -> usize {
        match self {
            ModelArch::MobileNetV2DilatedC1 => 6,
            ModelArch::ResNet18DilatedPpm => 8,
            ModelArch::HrNetV2C1 => 10,
            ModelArch::ResNet50DilatedPpm => 12,
            ModelArch::ResNet50UperNet => 14,
            ModelArch::ResNet101UperNet => 16,
            ModelArch::ResNet101DilatedPpm => 20,
        }
    }

    /// Relative op count of the full architecture (App 1 = 1.0), derived
    /// from the Table 1 GPU latencies. Specialized models scale this down.
    pub fn relative_ops(self) -> f64 {
        match self {
            ModelArch::MobileNetV2DilatedC1 => 1.0,
            ModelArch::ResNet18DilatedPpm => 1.33,
            ModelArch::HrNetV2C1 => 1.81,
            ModelArch::ResNet50DilatedPpm => 2.03,
            ModelArch::ResNet50UperNet => 2.31,
            ModelArch::ResNet101UperNet => 2.50,
            ModelArch::ResNet101DilatedPpm => 2.67,
        }
    }
}

impl fmt::Display for ModelArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "App {} ({})", self.app_number(), self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_apps_in_order() {
        assert_eq!(ModelArch::ALL.len(), 7);
        for (i, arch) in ModelArch::ALL.iter().enumerate() {
            assert_eq!(arch.index(), i);
            assert_eq!(arch.app_number(), i + 1);
        }
    }

    #[test]
    fn capacity_grows_with_app_number() {
        for pair in ModelArch::ALL.windows(2) {
            assert!(pair[1].hidden_units() >= pair[0].hidden_units());
            assert!(pair[1].feature_budget() >= pair[0].feature_budget());
            assert!(pair[1].input_resolution() > pair[0].input_resolution());
            assert!(pair[1].relative_ops() > pair[0].relative_ops());
        }
    }

    #[test]
    fn names_match_table_1() {
        assert_eq!(
            ModelArch::MobileNetV2DilatedC1.paper_name(),
            "mobilenetv2dilated-c1-deepsup"
        );
        assert_eq!(
            ModelArch::ResNet101DilatedPpm.paper_name(),
            "resnet101dilated-ppm-deepsup"
        );
        assert_eq!(ModelArch::HrNetV2C1.to_string(), "App 3 (hrnetv2-c1)");
    }

    #[test]
    fn feature_budgets_fit_the_feature_set() {
        for arch in ModelArch::ALL {
            assert!(arch.feature_budget() <= 12);
            assert!(arch.feature_budget() >= 1);
        }
    }
}
