//! Property-based tests for the ML substrate: confusion-matrix
//! identities, metric axioms, k-means postconditions and classifier
//! output bounds.

use kodan_ml::eval::ConfusionMatrix;
use kodan_ml::kmeans::KMeans;
use kodan_ml::linear::LogisticRegression;
use kodan_ml::metrics::DistanceMetric;
use kodan_ml::train::{bce_loss, sigmoid, TrainConfig};
use kodan_ml::transform::TransformKind;
use kodan_ml::PixelClassifier;
use proptest::prelude::*;

fn vec_strategy(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, dim)
}

proptest! {
    #[test]
    fn confusion_scores_are_bounded_and_consistent(
        tp in 0u64..1000,
        fp in 0u64..1000,
        tn in 0u64..1000,
        fn_ in 0u64..1000,
    ) {
        let cm = ConfusionMatrix { tp, fp, tn, fn_ };
        prop_assert_eq!(cm.total(), tp + fp + tn + fn_);
        for score in [cm.accuracy(), cm.precision(), cm.recall(), cm.f1(), cm.iou()] {
            prop_assert!((0.0..=1.0).contains(&score), "score {}", score);
        }
        // IoU is never larger than precision or recall.
        prop_assert!(cm.iou() <= cm.precision() + 1e-12);
        prop_assert!(cm.iou() <= cm.recall() + 1e-12);
        // F1 lies between min and max of precision/recall when both defined.
        if tp > 0 {
            let lo = cm.precision().min(cm.recall());
            let hi = cm.precision().max(cm.recall());
            prop_assert!(cm.f1() >= lo - 1e-12 && cm.f1() <= hi + 1e-12);
        }
    }

    #[test]
    fn confusion_accumulation_is_additive(
        preds in prop::collection::vec(proptest::bool::ANY, 1..100),
        split in 0usize..100,
    ) {
        let truth: Vec<bool> = preds.iter().map(|&p| !p).collect();
        let split = split.min(preds.len());
        let whole = ConfusionMatrix::from_predictions(&preds, &truth);
        let mut parts = ConfusionMatrix::from_predictions(&preds[..split], &truth[..split]);
        parts += ConfusionMatrix::from_predictions(&preds[split..], &truth[split..]);
        prop_assert_eq!(whole, parts);
    }

    #[test]
    fn metrics_satisfy_identity_symmetry_nonnegativity(
        a in vec_strategy(6),
        b in vec_strategy(6),
    ) {
        for m in DistanceMetric::ALL {
            let dab = m.distance(&a, &b);
            prop_assert!(dab >= 0.0, "{} negative", m);
            prop_assert!((dab - m.distance(&b, &a)).abs() < 1e-9, "{} asymmetric", m);
            prop_assert!(m.distance(&a, &a) < 1e-9, "{} identity", m);
        }
    }

    #[test]
    fn minkowski_metrics_satisfy_triangle_inequality(
        a in vec_strategy(5),
        b in vec_strategy(5),
        c in vec_strategy(5),
    ) {
        for m in [
            DistanceMetric::Euclidean,
            DistanceMetric::Manhattan,
            DistanceMetric::Chebyshev,
            DistanceMetric::Hamming,
        ] {
            let direct = m.distance(&a, &c);
            let detour = m.distance(&a, &b) + m.distance(&b, &c);
            prop_assert!(direct <= detour + 1e-9, "{} violates triangle", m);
        }
    }

    #[test]
    fn sigmoid_is_bounded_monotone(z1 in -50.0f64..50.0, z2 in -50.0f64..50.0) {
        let s1 = sigmoid(z1);
        let s2 = sigmoid(z2);
        prop_assert!((0.0..=1.0).contains(&s1));
        if z1 < z2 {
            prop_assert!(s1 <= s2);
        }
        prop_assert!(bce_loss(s1, true).is_finite());
        prop_assert!(bce_loss(s1, false).is_finite());
    }

    #[test]
    fn standardize_then_apply_is_finite(
        rows in prop::collection::vec(vec_strategy(4), 2..30),
        probe in vec_strategy(4),
    ) {
        let t = TransformKind::Standardize.fit(&rows);
        for v in t.apply(&probe) {
            prop_assert!(v.is_finite());
        }
    }
}

proptest! {
    // Training-based properties use fewer cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn kmeans_postconditions(
        seed in 0u64..1000,
        k in 1usize..5,
        n_points in 5usize..60,
    ) {
        prop_assume!(k <= n_points);
        let points: Vec<Vec<f64>> = (0..n_points)
            .map(|i| {
                let x = (i * 7 % 13) as f64 + seed as f64 % 3.0;
                vec![x, x * 0.5 - 1.0]
            })
            .collect();
        let km = KMeans::fit(&points, k, DistanceMetric::Euclidean, seed);
        prop_assert_eq!(km.k(), k);
        prop_assert_eq!(km.assignments().len(), n_points);
        prop_assert!(km.assignments().iter().all(|&a| a < k));
        prop_assert!(km.inertia() >= 0.0);
        prop_assert_eq!(km.cluster_sizes().iter().sum::<usize>(), n_points);
        // Every training point is assigned to its nearest centroid.
        for (p, &a) in points.iter().zip(km.assignments()) {
            prop_assert_eq!(km.assign(p), a);
        }
    }

    #[test]
    fn logistic_outputs_are_probabilities(
        seed in 0u64..100,
        n in 4usize..40,
    ) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let ys: Vec<bool> = xs.iter().map(|x| x[0] > 0.5).collect();
        let model = LogisticRegression::fit(&xs, &ys, &TrainConfig::fast(seed));
        for x in &xs {
            let p = model.predict_proba(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert_eq!(model.predict(x), p >= 0.5);
        }
    }
}
