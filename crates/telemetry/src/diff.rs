//! Cross-run snapshot diffing for regression triage.
//!
//! [`diff_snapshots`] compares two [`TelemetrySnapshot`]s field by
//! field and reports every divergence as a `(field, before, after)`
//! triple, in a deterministic order (scalars first, then each table in
//! key order, then the journal). Two runs of the same seed and config
//! must produce an empty diff — `kodan diff` turns a non-empty one
//! into a non-zero exit code, which makes a byte-level regression
//! bisectable without reading two JSON files side by side.

use crate::json::{format_f64, JsonWriter};
use crate::snapshot::{HistogramSnapshot, SpanTotal, TelemetrySnapshot};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One diverging field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// Dotted field path, e.g. `counters.pixels_sent`.
    pub field: String,
    /// The first snapshot's rendering of the field.
    pub before: String,
    /// The second snapshot's rendering of the field.
    pub after: String,
}

/// Every divergence between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotDiff {
    /// Diverging fields, in deterministic order.
    pub entries: Vec<DiffEntry>,
}

impl SnapshotDiff {
    /// True when the snapshots were identical.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of diverging fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// A console rendering: one header line, one line per divergence.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            let _ = writeln!(out, "snapshots are identical");
            return out;
        }
        let _ = writeln!(out, "snapshot diff: {} field(s) differ", self.len());
        for e in &self.entries {
            let _ = writeln!(out, "  {}: {} -> {}", e.field, e.before, e.after);
        }
        out
    }

    /// Serializes the diff to byte-deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object(None);
        w.uint(Some("diff_version"), 1);
        w.uint(Some("fields_differ"), self.len() as u64);
        w.open_array(Some("entries"));
        for e in &self.entries {
            w.open_object(None);
            w.string(Some("field"), &e.field);
            w.string(Some("before"), &e.before);
            w.string(Some("after"), &e.after);
            w.close_object();
        }
        w.close_array();
        w.close_object();
        w.finish()
    }
}

fn render_span(total: &SpanTotal) -> String {
    format!(
        "{}s items={} calls={}",
        format_f64(total.modeled_seconds),
        total.items,
        total.calls
    )
}

fn render_histogram(h: &HistogramSnapshot) -> String {
    let mut counts = String::new();
    for (i, c) in h.counts.iter().enumerate() {
        if i > 0 {
            counts.push(',');
        }
        let _ = write!(counts, "{c}");
    }
    format!(
        "count={} sum={} min={} max={} buckets=[{counts}]",
        h.count,
        format_f64(h.sum),
        format_f64(h.min),
        format_f64(h.max)
    )
}

/// Diffs two u64 tables under a dotted prefix; absent keys read as 0 so
/// a v3-era snapshot diffs cleanly against a v4 one.
fn diff_u64_table(
    out: &mut Vec<DiffEntry>,
    prefix: &str,
    a: &std::collections::BTreeMap<String, u64>,
    b: &std::collections::BTreeMap<String, u64>,
) {
    let keys: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for key in keys {
        let va = a.get(key).copied().unwrap_or(0);
        let vb = b.get(key).copied().unwrap_or(0);
        if va != vb {
            out.push(DiffEntry {
                field: format!("{prefix}.{key}"),
                before: va.to_string(),
                after: vb.to_string(),
            });
        }
    }
}

/// Compares two snapshots field by field (see the module docs).
pub fn diff_snapshots(a: &TelemetrySnapshot, b: &TelemetrySnapshot) -> SnapshotDiff {
    let mut entries = Vec::new();
    let mut scalar = |field: &str, va: u64, vb: u64| {
        if va != vb {
            entries.push(DiffEntry {
                field: field.to_string(),
                before: va.to_string(),
                after: vb.to_string(),
            });
        }
    };
    scalar("frames", a.frames, b.frames);
    scalar("events", a.events, b.events);
    scalar(
        "journal_truncated_frames",
        a.journal_truncated_frames,
        b.journal_truncated_frames,
    );

    let span_keys: BTreeSet<&String> = a.spans.keys().chain(b.spans.keys()).collect();
    for key in span_keys {
        let va = a.spans.get(key).copied().unwrap_or_default();
        let vb = b.spans.get(key).copied().unwrap_or_default();
        if va != vb {
            entries.push(DiffEntry {
                field: format!("spans.{key}"),
                before: render_span(&va),
                after: render_span(&vb),
            });
        }
    }

    diff_u64_table(&mut entries, "counters", &a.counters, &b.counters);
    diff_u64_table(&mut entries, "actions", &a.actions, &b.actions);
    diff_u64_table(&mut entries, "context_tiles", &a.context_tiles, &b.context_tiles);
    diff_u64_table(
        &mut entries,
        "model_invocations",
        &a.model_invocations,
        &b.model_invocations,
    );

    let hist_keys: BTreeSet<&String> =
        a.histograms.keys().chain(b.histograms.keys()).collect();
    for key in hist_keys {
        match (a.histograms.get(key), b.histograms.get(key)) {
            (Some(ha), Some(hb)) if ha == hb => {}
            (ha, hb) => {
                let render = |h: Option<&HistogramSnapshot>| {
                    h.map_or_else(|| "absent".to_string(), render_histogram)
                };
                entries.push(DiffEntry {
                    field: format!("histograms.{key}"),
                    before: render(ha),
                    after: render(hb),
                });
            }
        }
    }

    if a.journal != b.journal {
        let divergence = a
            .journal
            .iter()
            .zip(b.journal.iter())
            .position(|(fa, fb)| fa != fb);
        let describe = |j: &Vec<Vec<String>>| format!("{} journaled frame(s)", j.len());
        match divergence {
            Some(frame) => entries.push(DiffEntry {
                field: format!("journal[{frame}]"),
                before: a
                    .journal
                    .get(frame)
                    .map_or(0, |f| f.len())
                    .to_string()
                    + " event(s)",
                after: b
                    .journal
                    .get(frame)
                    .map_or(0, |f| f.len())
                    .to_string()
                    + " event(s)",
            }),
            None => entries.push(DiffEntry {
                field: "journal".to_string(),
                before: describe(&a.journal),
                after: describe(&b.journal),
            }),
        }
    }

    SnapshotDiff { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterId, StageId};

    #[test]
    fn identical_snapshots_diff_empty() {
        let a = TelemetrySnapshot::empty();
        let d = diff_snapshots(&a, &a.clone());
        assert!(d.is_empty());
        assert_eq!(d.to_text(), "snapshots are identical\n");
    }

    #[test]
    fn counter_divergence_is_named() {
        let a = TelemetrySnapshot::empty();
        let mut b = a.clone();
        b.counters
            .insert(CounterId::PixelsSent.name().to_string(), 90);
        let d = diff_snapshots(&a, &b);
        assert_eq!(d.len(), 1);
        let entry = d.entries.first().expect("entry");
        assert_eq!(entry.field, "counters.pixels_sent");
        assert_eq!(entry.before, "0");
        assert_eq!(entry.after, "90");
        assert!(d.to_text().contains("counters.pixels_sent: 0 -> 90"));
    }

    #[test]
    fn span_and_histogram_divergences_render_structured_values() {
        let a = TelemetrySnapshot::empty();
        let mut b = a.clone();
        if let Some(total) = b.spans.get_mut(StageId::Frame.name()) {
            total.modeled_seconds = 1.5;
            total.calls = 2;
        }
        if let Some(h) = b.histograms.get_mut("frame_precision") {
            h.count = 3;
            h.sum = 1.5;
        }
        let d = diff_snapshots(&a, &b);
        assert_eq!(d.len(), 2);
        let text = d.to_text();
        assert!(text.contains("spans.frame"), "{text}");
        assert!(text.contains("histograms.frame_precision"), "{text}");
        assert!(text.contains("1.5s items=0 calls=2"), "{text}");
    }

    #[test]
    fn journal_divergence_points_at_the_first_frame() {
        let mut a = TelemetrySnapshot::empty();
        let mut b = a.clone();
        a.journal = vec![vec!["x".to_string()], vec!["y".to_string()]];
        b.journal = vec![vec!["x".to_string()], vec!["z".to_string(), "w".to_string()]];
        let d = diff_snapshots(&a, &b);
        let entry = d.entries.first().expect("entry");
        assert_eq!(entry.field, "journal[1]");
        assert_eq!(entry.before, "1 event(s)");
        assert_eq!(entry.after, "2 event(s)");
    }

    #[test]
    fn diff_json_is_deterministic_and_parseable() {
        let a = TelemetrySnapshot::empty();
        let mut b = a.clone();
        b.frames = 7;
        let d1 = diff_snapshots(&a, &b);
        let d2 = diff_snapshots(&a, &b);
        assert_eq!(d1.to_json(), d2.to_json());
        assert!(crate::parse::parse_json(&d1.to_json()).is_ok());
        assert!(d1.to_json().contains("\"fields_differ\": 1"));
    }
}
