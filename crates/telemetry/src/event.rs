//! The telemetry taxonomy: stages, actions, counters, histograms and the
//! per-frame event vocabulary.
//!
//! Everything here is a closed enum rather than a free-form string: the
//! snapshot schema is part of the tier-1 contract (byte-stable JSON), so
//! the set of observable names must be fixed at compile time.

use std::fmt;

/// A pipeline stage that owns a hierarchical span of modeled time.
///
/// Stages form a forest: runtime stages hang off [`StageId::Frame`],
/// transformation stages off [`StageId::Transformation`], and mission
/// orchestration off [`StageId::Mission`]. Spans accumulate *modeled*
/// seconds (from the `kodan-hw` latency calibration) where the latency
/// model defines them; ground-side stages (transformation) carry zero
/// modeled seconds and use the item count as their magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageId {
    /// One whole frame through the on-orbit runtime.
    Frame,
    /// Tiling + per-tile resize to the model input resolution.
    Preprocess,
    /// Context-engine classification of tiles.
    Classification,
    /// Elision decisions (discard / downlink without inference).
    Elision,
    /// Specialized-model inference on non-elided tiles.
    ModelExecution,
    /// Pixel-level value accounting of model output.
    Accounting,
    /// The one-time ground-side transformation.
    Transformation,
    /// Context generation (clustering or expert partition).
    ContextGeneration,
    /// Context-engine training.
    EngineTraining,
    /// Per-grid model specialization (global + per-context + merged).
    Specialization,
    /// Per-grid validation statistics gathering.
    Validation,
    /// A day-scale mission simulation.
    Mission,
    /// Ground-track frame sampling and rendering.
    FrameSampling,
}

impl StageId {
    /// Every stage, in canonical serialization order.
    pub const ALL: [StageId; 13] = [
        StageId::Frame,
        StageId::Preprocess,
        StageId::Classification,
        StageId::Elision,
        StageId::ModelExecution,
        StageId::Accounting,
        StageId::Transformation,
        StageId::ContextGeneration,
        StageId::EngineTraining,
        StageId::Specialization,
        StageId::Validation,
        StageId::Mission,
        StageId::FrameSampling,
    ];

    /// Stable snake_case name used in snapshots and tables.
    pub fn name(self) -> &'static str {
        match self {
            StageId::Frame => "frame",
            StageId::Preprocess => "preprocess",
            StageId::Classification => "classification",
            StageId::Elision => "elision",
            StageId::ModelExecution => "model_execution",
            StageId::Accounting => "accounting",
            StageId::Transformation => "transformation",
            StageId::ContextGeneration => "context_generation",
            StageId::EngineTraining => "engine_training",
            StageId::Specialization => "specialization",
            StageId::Validation => "validation",
            StageId::Mission => "mission",
            StageId::FrameSampling => "frame_sampling",
        }
    }

    /// The parent stage, or `None` for a root of the span forest.
    pub fn parent(self) -> Option<StageId> {
        match self {
            StageId::Frame => Some(StageId::Mission),
            StageId::Preprocess
            | StageId::Classification
            | StageId::Elision
            | StageId::ModelExecution
            | StageId::Accounting => Some(StageId::Frame),
            StageId::Transformation => None,
            StageId::ContextGeneration
            | StageId::EngineTraining
            | StageId::Specialization
            | StageId::Validation => Some(StageId::Transformation),
            StageId::Mission => None,
            StageId::FrameSampling => Some(StageId::Mission),
        }
    }

    /// Canonical index into dense per-stage arrays.
    pub(crate) fn index(self) -> usize {
        StageId::ALL
            .iter()
            .position(|&s| s == self)
            .unwrap_or(0) // unreachable: ALL is exhaustive
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The runtime's per-tile decision, mirrored from `kodan::elide::Action`
/// (the telemetry crate sits below `kodan` in the dependency graph, so it
/// carries its own copy of the vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ActionKind {
    /// Tile dropped without inference.
    Discard,
    /// Tile downlinked raw without inference.
    Downlink,
    /// Tile processed by the specialized model at the given index.
    Process {
        /// Index into the selection logic's model table.
        model_index: u32,
    },
}

impl ActionKind {
    /// Stable name used for per-action counter keys: `discard`,
    /// `downlink`, or `process` (all model indices fold together —
    /// per-model attribution lives in [`TelemetryEvent::ModelInvoked`]).
    pub fn name(self) -> &'static str {
        match self {
            ActionKind::Discard => "discard",
            ActionKind::Downlink => "downlink",
            ActionKind::Process { .. } => "process",
        }
    }
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionKind::Process { model_index } => write!(f, "model#{model_index}"),
            other => f.write_str(other.name()),
        }
    }
}

/// A typed monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CounterId {
    /// Frames pushed through the runtime.
    FramesProcessed,
    /// Tiles observed across all frames.
    TilesObserved,
    /// Tiles elided by the discard action.
    TilesDiscarded,
    /// Tiles elided by the raw-downlink action.
    TilesDownlinked,
    /// Tiles sent through a specialized model.
    TilesProcessed,
    /// Specialized-model invocations (one per processed tile).
    ModelInvocations,
    /// Classifications served by the learned nearest-centroid engine.
    LearnedClassifications,
    /// Classifications served by the expert map engine.
    ExpertClassifications,
    /// Pixels enqueued for downlink.
    PixelsSent,
    /// Of the sent pixels, genuinely high-value ones.
    PixelsValue,
    /// Specialized models trained by the transformation.
    ModelsTrained,
    /// Multi-context (merged) models trained by the transformation.
    MergedModelsTrained,
    /// Contexts produced by context generation.
    ContextsGenerated,
    /// Injected single-event upsets (weight-bit corruptions).
    FaultSeuInjected,
    /// Frames processed under an injected compute slowdown.
    FaultSlowdownFrames,
    /// Classify retries forced by injected transient failures.
    FaultClassifyRetries,
    /// Tiles whose classify retry budget was exhausted.
    FaultClassifyExhausted,
    /// Ground contacts dropped by injected faults.
    FaultContactsDropped,
    /// Ground contacts shortened by injected faults.
    FaultContactsShortened,
    /// Frames served by the global fallback model after corruption was
    /// detected.
    ModelFallbacks,
    /// Queue entries shed to absorb lost downlink capacity.
    QueueEntriesShed,
    /// Queue entries rejected for corrupted (invalid) sizes.
    QueueEntriesRejected,
    /// Deployable artifacts sealed into an artifact store.
    ArtifactsSaved,
    /// Total encoded artifact bytes (the modeled uplink cost).
    ArtifactBytes,
    /// Artifacts rejected at load time (bad checksum or malformed
    /// payload) and replaced by a fallback model.
    ArtifactsRecovered,
    /// Store objects examined by an inspection pass.
    ArtifactsInspected,
    /// Of the inspected objects, how many failed verification.
    ArtifactsCorrupt,
}

impl CounterId {
    /// Every counter, in canonical serialization order.
    pub const ALL: [CounterId; 27] = [
        CounterId::FramesProcessed,
        CounterId::TilesObserved,
        CounterId::TilesDiscarded,
        CounterId::TilesDownlinked,
        CounterId::TilesProcessed,
        CounterId::ModelInvocations,
        CounterId::LearnedClassifications,
        CounterId::ExpertClassifications,
        CounterId::PixelsSent,
        CounterId::PixelsValue,
        CounterId::ModelsTrained,
        CounterId::MergedModelsTrained,
        CounterId::ContextsGenerated,
        CounterId::FaultSeuInjected,
        CounterId::FaultSlowdownFrames,
        CounterId::FaultClassifyRetries,
        CounterId::FaultClassifyExhausted,
        CounterId::FaultContactsDropped,
        CounterId::FaultContactsShortened,
        CounterId::ModelFallbacks,
        CounterId::QueueEntriesShed,
        CounterId::QueueEntriesRejected,
        CounterId::ArtifactsSaved,
        CounterId::ArtifactBytes,
        CounterId::ArtifactsRecovered,
        CounterId::ArtifactsInspected,
        CounterId::ArtifactsCorrupt,
    ];

    /// Stable snake_case name used in snapshots.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::FramesProcessed => "frames_processed",
            CounterId::TilesObserved => "tiles_observed",
            CounterId::TilesDiscarded => "tiles_discarded",
            CounterId::TilesDownlinked => "tiles_downlinked",
            CounterId::TilesProcessed => "tiles_processed",
            CounterId::ModelInvocations => "model_invocations",
            CounterId::LearnedClassifications => "learned_classifications",
            CounterId::ExpertClassifications => "expert_classifications",
            CounterId::PixelsSent => "pixels_sent",
            CounterId::PixelsValue => "pixels_value",
            CounterId::ModelsTrained => "models_trained",
            CounterId::MergedModelsTrained => "merged_models_trained",
            CounterId::ContextsGenerated => "contexts_generated",
            CounterId::FaultSeuInjected => "fault_seu_injected",
            CounterId::FaultSlowdownFrames => "fault_slowdown_frames",
            CounterId::FaultClassifyRetries => "fault_classify_retries",
            CounterId::FaultClassifyExhausted => "fault_classify_exhausted",
            CounterId::FaultContactsDropped => "fault_contacts_dropped",
            CounterId::FaultContactsShortened => "fault_contacts_shortened",
            CounterId::ModelFallbacks => "model_fallbacks",
            CounterId::QueueEntriesShed => "queue_entries_shed",
            CounterId::QueueEntriesRejected => "queue_entries_rejected",
            CounterId::ArtifactsSaved => "artifacts_saved",
            CounterId::ArtifactBytes => "artifact_bytes",
            CounterId::ArtifactsRecovered => "artifacts_recovered",
            CounterId::ArtifactsInspected => "artifacts_inspected",
            CounterId::ArtifactsCorrupt => "artifacts_corrupt",
        }
    }

    /// Canonical index into dense per-counter arrays.
    pub(crate) fn index(self) -> usize {
        CounterId::ALL
            .iter()
            .position(|&c| c == self)
            .unwrap_or(0) // unreachable: ALL is exhaustive
    }
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fixed-bucket histogram identifier. Bucket bounds are compiled in so
/// that two runs of the same seed bucket identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HistogramId {
    /// Modeled per-tile specialized-model latency, seconds.
    ModelLatencySeconds,
    /// Modeled whole-frame compute time, seconds.
    FrameComputeSeconds,
    /// Per-frame downlink precision (value pixels / sent pixels).
    FramePrecision,
    /// Per-frame fraction of tiles elided (discard + raw downlink).
    FrameElisionFraction,
}

impl HistogramId {
    /// Every histogram, in canonical serialization order.
    pub const ALL: [HistogramId; 4] = [
        HistogramId::ModelLatencySeconds,
        HistogramId::FrameComputeSeconds,
        HistogramId::FramePrecision,
        HistogramId::FrameElisionFraction,
    ];

    /// Stable snake_case name used in snapshots.
    pub fn name(self) -> &'static str {
        match self {
            HistogramId::ModelLatencySeconds => "model_latency_seconds",
            HistogramId::FrameComputeSeconds => "frame_compute_seconds",
            HistogramId::FramePrecision => "frame_precision",
            HistogramId::FrameElisionFraction => "frame_elision_fraction",
        }
    }

    /// The upper bounds of the finite buckets; one overflow bucket is
    /// implied above the last bound. A value `v` lands in the first
    /// bucket whose bound satisfies `v <= bound`.
    pub fn bounds(self) -> &'static [f64] {
        match self {
            HistogramId::ModelLatencySeconds => &[
                0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
            ],
            HistogramId::FrameComputeSeconds => &[
                0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0,
            ],
            HistogramId::FramePrecision | HistogramId::FrameElisionFraction => &[
                0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
            ],
        }
    }

    /// Canonical index into dense per-histogram arrays.
    pub(crate) fn index(self) -> usize {
        HistogramId::ALL
            .iter()
            .position(|&h| h == self)
            .unwrap_or(0) // unreachable: ALL is exhaustive
    }
}

impl fmt::Display for HistogramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The kind of an injected fault, mirrored from `kodan-faults` (the
/// telemetry crate sits below the fault layer in the dependency graph, so
/// it carries its own copy of the vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A single-event upset flipped a specialized-model weight bit.
    Seu,
    /// A thermal-throttling episode multiplied frame compute time.
    Slowdown,
    /// A transient classify failure forced a retry.
    ClassifyTransient,
    /// A ground contact was dropped entirely.
    ContactDrop,
    /// A ground contact was cut short.
    ContactShorten,
    /// Rain fade reduced a contact's link budget.
    RainFade,
}

impl FaultKind {
    /// Stable snake_case name used in journal rendering.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Seu => "seu",
            FaultKind::Slowdown => "slowdown",
            FaultKind::ClassifyTransient => "classify_transient",
            FaultKind::ContactDrop => "contact_drop",
            FaultKind::ContactShorten => "contact_shorten",
            FaultKind::RainFade => "rain_fade",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The degradation policy the runtime applied to survive a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryKind {
    /// A corrupted specialized model was replaced by the global model.
    ModelFallback,
    /// A transient classify failure was absorbed by a retry.
    ClassifyRetry,
    /// The retry budget ran out; the tile degraded to a raw downlink.
    ClassifyGaveUp,
    /// Low-value queue entries were shed to fit a reduced contact.
    QueueShed,
}

impl RecoveryKind {
    /// Stable snake_case name used in journal rendering.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryKind::ModelFallback => "model_fallback",
            RecoveryKind::ClassifyRetry => "classify_retry",
            RecoveryKind::ClassifyGaveUp => "classify_gave_up",
            RecoveryKind::QueueShed => "queue_shed",
        }
    }
}

impl fmt::Display for RecoveryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry of the per-frame event journal.
///
/// Events carry no frame number: a [`TelemetryEvent::FrameCaptured`]
/// marker opens a frame and every following event belongs to it, so the
/// journal groups itself. Tile indices are tile-raster order within the
/// frame's grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryEvent {
    /// A frame entered the runtime.
    FrameCaptured {
        /// Native pixels in the frame.
        pixels: u64,
    },
    /// The context engine assigned a tile to a context.
    TileClassified {
        /// Tile index within the frame.
        tile: u32,
        /// Assigned context id.
        context: u32,
    },
    /// The selection logic's action was taken for a tile.
    ActionTaken {
        /// Tile index within the frame.
        tile: u32,
        /// The action.
        action: ActionKind,
    },
    /// A specialized model ran on a tile.
    ModelInvoked {
        /// Tile index within the frame.
        tile: u32,
        /// Index into the selection logic's model table.
        model_index: u32,
        /// Modeled inference time, seconds.
        modeled_seconds: f64,
    },
    /// Frame-level pixel accounting was finalized.
    PixelsAccounted {
        /// Pixels enqueued for downlink.
        sent_px: u64,
        /// Of those, genuinely high-value pixels.
        value_px: u64,
        /// Total pixels observed in the frame.
        observed_px: u64,
    },
    /// The fault plan injected a fault.
    FaultInjected {
        /// What was injected.
        kind: FaultKind,
    },
    /// The runtime's degradation policy absorbed a fault.
    FaultRecovered {
        /// How the runtime recovered.
        kind: RecoveryKind,
    },
}

impl fmt::Display for TelemetryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryEvent::FrameCaptured { pixels } => {
                write!(f, "frame_captured pixels={pixels}")
            }
            TelemetryEvent::TileClassified { tile, context } => {
                write!(f, "tile_classified tile={tile} context={context}")
            }
            TelemetryEvent::ActionTaken { tile, action } => {
                write!(f, "action_taken tile={tile} action={action}")
            }
            TelemetryEvent::ModelInvoked {
                tile,
                model_index,
                modeled_seconds,
            } => write!(
                f,
                "model_invoked tile={tile} model={model_index} modeled_s={}",
                crate::json::format_f64(*modeled_seconds)
            ),
            TelemetryEvent::PixelsAccounted {
                sent_px,
                value_px,
                observed_px,
            } => write!(
                f,
                "pixels_accounted sent={sent_px} value={value_px} observed={observed_px}"
            ),
            TelemetryEvent::FaultInjected { kind } => {
                write!(f, "fault_injected kind={kind}")
            }
            TelemetryEvent::FaultRecovered { kind } => {
                write!(f, "fault_recovered kind={kind}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_dense_and_unique() {
        for (i, s) in StageId::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn stage_parents_form_a_forest() {
        // Walking parents from any stage terminates at a root.
        for s in StageId::ALL {
            let mut cur = s;
            let mut hops = 0;
            while let Some(p) = cur.parent() {
                cur = p;
                hops += 1;
                assert!(hops < 10, "parent cycle at {s}");
            }
        }
        assert_eq!(StageId::Mission.parent(), None);
        assert_eq!(StageId::Transformation.parent(), None);
        assert_eq!(StageId::ModelExecution.parent(), Some(StageId::Frame));
    }

    #[test]
    fn names_are_snake_case_and_unique() {
        let mut names: Vec<&str> = StageId::ALL.iter().map(|s| s.name()).collect();
        names.extend(CounterId::ALL.iter().map(|c| c.name()));
        names.extend(HistogramId::ALL.iter().map(|h| h.name()));
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate telemetry names");
        for n in names {
            assert!(n
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn histogram_bounds_are_sorted() {
        for h in HistogramId::ALL {
            let b = h.bounds();
            assert!(!b.is_empty());
            for w in b.windows(2) {
                assert!(w[0] < w[1], "{h} bounds unsorted");
            }
        }
    }

    #[test]
    fn events_render_compactly() {
        let e = TelemetryEvent::ActionTaken {
            tile: 3,
            action: ActionKind::Process { model_index: 1 },
        };
        assert_eq!(e.to_string(), "action_taken tile=3 action=model#1");
        let c = TelemetryEvent::TileClassified { tile: 0, context: 2 };
        assert_eq!(c.to_string(), "tile_classified tile=0 context=2");
        let i = TelemetryEvent::FaultInjected { kind: FaultKind::Seu };
        assert_eq!(i.to_string(), "fault_injected kind=seu");
        let r = TelemetryEvent::FaultRecovered {
            kind: RecoveryKind::ModelFallback,
        };
        assert_eq!(r.to_string(), "fault_recovered kind=model_fallback");
    }

    #[test]
    fn action_names_fold_model_indices() {
        assert_eq!(ActionKind::Process { model_index: 0 }.name(), "process");
        assert_eq!(ActionKind::Process { model_index: 5 }.name(), "process");
        assert_eq!(ActionKind::Discard.name(), "discard");
    }
}
