//! The deterministic flight recorder.
//!
//! A [`FlightRecorder`] wraps any other [`Recorder`] and keeps a bounded
//! ring buffer of the most recent frames' events, rendered in their
//! journal `Display` form. Whenever a degradation fires — the runtime
//! falls back to the global model, a classify retry budget runs out,
//! the queue sheds entries, or artifact quarantine replaces a corrupted
//! model — the recorder freezes the ring into a [`BlackBoxReport`]: a
//! replayable causal window ending at the trigger, exactly like an
//! aircraft black box.
//!
//! Determinism: the recorder only observes the serial event sequence
//! (worker tapes are replayed in frame-index order before they reach
//! any recorder), so [`FlightRecorder::blackbox_json`] is byte-identical
//! at any worker count. Report capture is capped and the overflow is
//! counted, so a fault storm cannot grow the black box without bound.

use crate::event::{RecoveryKind, TelemetryEvent};
use crate::json::JsonWriter;
use crate::recorder::Recorder;
use crate::{CounterId, HistogramId, StageId};
use std::collections::VecDeque;

/// Default number of recent frames kept in the ring buffer.
pub const DEFAULT_WINDOW_FRAMES: usize = 4;

/// Default cap on captured black-box reports; triggers beyond the cap
/// are counted, not stored.
pub const DEFAULT_REPORT_LIMIT: usize = 32;

/// One frame's worth of rendered events inside a causal window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameWindow {
    /// 1-based frame number (0 for events seen before the first
    /// `FrameCaptured`, e.g. ground-side loading).
    pub frame: u64,
    /// The frame's events in emission order, `TelemetryEvent` `Display`
    /// form.
    pub events: Vec<String>,
}

/// A frozen causal window captured when a degradation fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlackBoxReport {
    /// 1-based trigger sequence number across the whole run (including
    /// triggers beyond the report cap).
    pub sequence: u64,
    /// The recovery that fired the capture.
    pub trigger: RecoveryKind,
    /// Frame number current at the trigger.
    pub frame: u64,
    /// The ring contents at the trigger, oldest frame first; the last
    /// window's last event is the trigger itself.
    pub window: Vec<FrameWindow>,
}

/// Everything the flight recorder captured over a run: the reports plus
/// the configuration needed to interpret them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightLog {
    /// Ring capacity in frames.
    pub window_frames: u64,
    /// Report cap the run was flown with.
    pub report_limit: u64,
    /// Captured reports, in trigger order.
    pub reports: Vec<BlackBoxReport>,
    /// Triggers that fired beyond the report cap.
    pub reports_truncated: u64,
}

impl FlightLog {
    /// Serializes the log to byte-deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object(None);
        w.uint(Some("blackbox_version"), 1);
        w.uint(Some("window_frames"), self.window_frames);
        w.uint(Some("report_limit"), self.report_limit);
        w.open_array(Some("reports"));
        for report in &self.reports {
            w.open_object(None);
            w.uint(Some("sequence"), report.sequence);
            w.string(Some("trigger"), report.trigger.name());
            w.uint(Some("frame"), report.frame);
            w.open_array(Some("window"));
            for fw in &report.window {
                w.open_object(None);
                w.uint(Some("frame"), fw.frame);
                w.open_array(Some("events"));
                for line in &fw.events {
                    w.string(None, line);
                }
                w.close_array();
                w.close_object();
            }
            w.close_array();
            w.close_object();
        }
        w.close_array();
        w.uint(Some("reports_truncated"), self.reports_truncated);
        w.close_object();
        w.finish()
    }
}

/// A [`Recorder`] decorator that forwards everything to an inner
/// recorder while maintaining the black-box ring (see the module docs).
#[derive(Debug, Clone)]
pub struct FlightRecorder<R> {
    inner: R,
    window_frames: usize,
    report_limit: usize,
    ring: VecDeque<FrameWindow>,
    frame: u64,
    sequence: u64,
    reports: Vec<BlackBoxReport>,
    reports_truncated: u64,
}

impl<R: Recorder> FlightRecorder<R> {
    /// Wraps `inner` with the default window and report cap.
    pub fn new(inner: R) -> FlightRecorder<R> {
        FlightRecorder::with_limits(inner, DEFAULT_WINDOW_FRAMES, DEFAULT_REPORT_LIMIT)
    }

    /// Wraps `inner` with explicit limits; both are clamped to at
    /// least 1 so a window can always hold its trigger.
    pub fn with_limits(
        inner: R,
        window_frames: usize,
        report_limit: usize,
    ) -> FlightRecorder<R> {
        FlightRecorder {
            inner,
            window_frames: window_frames.max(1),
            report_limit: report_limit.max(1),
            ring: VecDeque::new(),
            frame: 0,
            sequence: 0,
            reports: Vec::new(),
            reports_truncated: 0,
        }
    }

    /// The wrapped recorder.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The wrapped recorder, mutably.
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Unwraps the inner recorder, discarding the flight state.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Captured reports, in trigger order.
    pub fn reports(&self) -> &[BlackBoxReport] {
        &self.reports
    }

    /// Triggers that fired beyond the report cap.
    pub fn reports_truncated(&self) -> u64 {
        self.reports_truncated
    }

    /// Clones the captured state into a standalone [`FlightLog`].
    pub fn log(&self) -> FlightLog {
        FlightLog {
            window_frames: self.window_frames as u64,
            report_limit: self.report_limit as u64,
            reports: self.reports.clone(),
            reports_truncated: self.reports_truncated,
        }
    }

    /// The black-box report document as byte-deterministic JSON.
    pub fn blackbox_json(&self) -> String {
        self.log().to_json()
    }

    fn append_line(&mut self, line: String) {
        if self.ring.is_empty() {
            // Events before the first FrameCaptured (ground-side
            // loading, mission setup) land in a frame-0 window.
            self.ring.push_back(FrameWindow {
                frame: 0,
                events: Vec::new(),
            });
        }
        if let Some(window) = self.ring.back_mut() {
            window.events.push(line);
        }
    }
}

impl<R: Recorder> Recorder for FlightRecorder<R> {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&mut self, event: TelemetryEvent) {
        if let TelemetryEvent::FrameCaptured { .. } = event {
            self.frame += 1;
            self.ring.push_back(FrameWindow {
                frame: self.frame,
                events: Vec::new(),
            });
            while self.ring.len() > self.window_frames {
                self.ring.pop_front();
            }
        }
        self.append_line(event.to_string());
        if let TelemetryEvent::FaultRecovered { kind } = event {
            self.sequence += 1;
            if self.reports.len() < self.report_limit {
                self.reports.push(BlackBoxReport {
                    sequence: self.sequence,
                    trigger: kind,
                    frame: self.frame,
                    window: self.ring.iter().cloned().collect(),
                });
            } else {
                self.reports_truncated += 1;
            }
        }
        self.inner.event(event);
    }

    fn span(&mut self, stage: StageId, modeled_seconds: f64, items: u64) {
        self.inner.span(stage, modeled_seconds, items);
    }

    fn count(&mut self, counter: CounterId, amount: u64) {
        self.inner.count(counter, amount);
    }

    fn observe(&mut self, histogram: HistogramId, value: f64) {
        self.inner.observe(histogram, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultKind;
    use crate::NullRecorder;

    fn fly(recorder: &mut dyn Recorder, frames: u64, recover_on: u64) {
        for f in 1..=frames {
            recorder.event(TelemetryEvent::FrameCaptured { pixels: 64 });
            recorder.event(TelemetryEvent::TileClassified {
                tile: 0,
                context: 1,
            });
            if f == recover_on {
                recorder.event(TelemetryEvent::FaultInjected {
                    kind: FaultKind::Seu,
                });
                recorder.event(TelemetryEvent::FaultRecovered {
                    kind: RecoveryKind::ModelFallback,
                });
            }
        }
    }

    #[test]
    fn trigger_freezes_the_causal_window() {
        let mut flight = FlightRecorder::with_limits(NullRecorder, 2, 8);
        fly(&mut flight, 5, 4);
        assert_eq!(flight.reports().len(), 1);
        let report = flight.reports().first().expect("report");
        assert_eq!(report.sequence, 1);
        assert_eq!(report.trigger, RecoveryKind::ModelFallback);
        assert_eq!(report.frame, 4);
        // Window holds frames 3 and 4; the trigger is the last line.
        assert_eq!(report.window.len(), 2);
        assert_eq!(report.window.first().map(|w| w.frame), Some(3));
        let last = report.window.last().expect("window");
        assert_eq!(
            last.events.last().map(String::as_str),
            Some("fault_recovered kind=model_fallback")
        );
        assert_eq!(flight.reports_truncated(), 0);
    }

    #[test]
    fn report_cap_counts_overflow_instead_of_growing() {
        let mut flight = FlightRecorder::with_limits(NullRecorder, 1, 2);
        for _ in 0..5 {
            flight.event(TelemetryEvent::FaultRecovered {
                kind: RecoveryKind::QueueShed,
            });
        }
        assert_eq!(flight.reports().len(), 2);
        assert_eq!(flight.reports_truncated(), 3);
        assert_eq!(flight.log().reports_truncated, 3);
    }

    #[test]
    fn pre_frame_events_land_in_frame_zero() {
        let mut flight = FlightRecorder::new(NullRecorder);
        flight.event(TelemetryEvent::FaultRecovered {
            kind: RecoveryKind::ModelFallback,
        });
        let report = flight.reports().first().expect("report");
        assert_eq!(report.frame, 0);
        assert_eq!(report.window.first().map(|w| w.frame), Some(0));
    }

    #[test]
    fn blackbox_json_is_byte_deterministic_and_valid() {
        let mut a = FlightRecorder::new(NullRecorder);
        let mut b = FlightRecorder::new(NullRecorder);
        fly(&mut a, 6, 2);
        fly(&mut b, 6, 2);
        let json = a.blackbox_json();
        assert_eq!(json, b.blackbox_json());
        assert!(json.contains("\"blackbox_version\": 1"));
        assert!(json.contains("\"trigger\": \"model_fallback\""));
        assert!(crate::parse::parse_json(&json).is_ok(), "json: {json}");
    }

    #[test]
    fn forwards_to_the_inner_recorder() {
        let mut flight = FlightRecorder::new(crate::SummaryRecorder::new());
        fly(&mut flight, 3, 0);
        assert_eq!(flight.inner().frames(), 3);
        flight.count(CounterId::FramesProcessed, 3);
        flight.span(StageId::Frame, 1.5, 3);
        flight.observe(HistogramId::FramePrecision, 0.5);
        let snapshot = flight.into_inner().snapshot();
        assert_eq!(snapshot.counter(CounterId::FramesProcessed), 3);
        assert_eq!(snapshot.span(StageId::Frame).calls, 1);
    }
}
