//! Declarative mission health rules and the deterministic health report.
//!
//! A [`HealthRule`] is a threshold over the rolled-up snapshot: a
//! counter, a ratio of two counters, or a histogram mean, compared
//! against a bound. Rules are evaluated at mission end by
//! [`evaluate_health`]; the resulting [`HealthReport`] is byte-stable
//! and drives `kodan health`'s exit code (healthy → 0, unhealthy → 2).
//!
//! A rule whose metric is undefined on the snapshot — a ratio with a
//! zero denominator, or an empty histogram — records `observed: null`
//! and passes vacuously: "no evidence of violation" is not a failure,
//! and a mission that never enqueued a pixel should not flunk its DVD
//! floor.
//!
//! Rule files are plain text, one rule per line, `#` comments allowed:
//!
//! ```text
//! pixels_value / pixels_sent >= 0.35
//! queue_entries_shed / tiles_observed <= 0.5
//! mean(frame_precision) >= 0.3
//! artifacts_recovered <= 0
//! ```

use crate::event::{CounterId, HistogramId};
use crate::json::{format_f64, JsonWriter};
use crate::snapshot::TelemetrySnapshot;
use std::fmt::Write as _;

/// The quantity a rule observes on the snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthMetric {
    /// A single counter's value.
    Counter(String),
    /// Numerator / denominator over two counters; undefined when the
    /// denominator is zero.
    Ratio(String, String),
    /// A histogram's mean; undefined when the histogram is empty.
    HistogramMean(String),
}

impl HealthMetric {
    fn render(&self) -> String {
        match self {
            HealthMetric::Counter(name) => name.clone(),
            HealthMetric::Ratio(num, den) => format!("{num} / {den}"),
            HealthMetric::HistogramMean(name) => format!("mean({name})"),
        }
    }

    fn observe(&self, snapshot: &TelemetrySnapshot) -> Option<f64> {
        match self {
            HealthMetric::Counter(name) => {
                Some(snapshot.counters.get(name).copied().unwrap_or(0) as f64)
            }
            HealthMetric::Ratio(num, den) => {
                let d = snapshot.counters.get(den).copied().unwrap_or(0);
                if d == 0 {
                    None
                } else {
                    let n = snapshot.counters.get(num).copied().unwrap_or(0);
                    Some(n as f64 / d as f64)
                }
            }
            HealthMetric::HistogramMean(name) => {
                snapshot.histograms.get(name).and_then(|h| h.mean_opt())
            }
        }
    }
}

/// The comparison a rule applies to its observed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthOp {
    /// Observed must be `>=` the threshold.
    AtLeast,
    /// Observed must be `<=` the threshold.
    AtMost,
}

impl HealthOp {
    /// The operator's source form.
    pub fn symbol(self) -> &'static str {
        match self {
            HealthOp::AtLeast => ">=",
            HealthOp::AtMost => "<=",
        }
    }

    fn holds(self, observed: f64, threshold: f64) -> bool {
        match self {
            HealthOp::AtLeast => observed >= threshold,
            HealthOp::AtMost => observed <= threshold,
        }
    }
}

/// One declarative threshold rule.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRule {
    /// What to observe.
    pub metric: HealthMetric,
    /// How to compare it.
    pub op: HealthOp,
    /// The bound.
    pub threshold: f64,
}

impl HealthRule {
    /// The rule's canonical source form, e.g.
    /// `pixels_value / pixels_sent >= 0.35`.
    pub fn render(&self) -> String {
        format!(
            "{} {} {}",
            self.metric.render(),
            self.op.symbol(),
            format_f64(self.threshold)
        )
    }
}

/// The default mission health rules: the paper's data-value-density
/// floor, a shed-fraction ceiling, a retry-exhaustion budget, and a
/// zero-tolerance artifact-recovery budget (any quarantine is worth
/// triage).
pub fn default_health_rules() -> Vec<HealthRule> {
    vec![
        HealthRule {
            metric: HealthMetric::Ratio(
                CounterId::PixelsValue.name().to_string(),
                CounterId::PixelsSent.name().to_string(),
            ),
            op: HealthOp::AtLeast,
            threshold: 0.35,
        },
        HealthRule {
            metric: HealthMetric::Ratio(
                CounterId::QueueEntriesShed.name().to_string(),
                CounterId::TilesObserved.name().to_string(),
            ),
            op: HealthOp::AtMost,
            threshold: 0.5,
        },
        HealthRule {
            metric: HealthMetric::Ratio(
                CounterId::FaultClassifyExhausted.name().to_string(),
                CounterId::TilesObserved.name().to_string(),
            ),
            op: HealthOp::AtMost,
            threshold: 0.25,
        },
        HealthRule {
            metric: HealthMetric::Counter(
                CounterId::ArtifactsRecovered.name().to_string(),
            ),
            op: HealthOp::AtMost,
            threshold: 0.0,
        },
    ]
}

fn known_counter(name: &str) -> bool {
    CounterId::ALL.iter().any(|c| c.name() == name)
}

fn parse_metric(text: &str) -> Result<HealthMetric, String> {
    let text = text.trim();
    if let Some((num, den)) = text.split_once('/') {
        let (num, den) = (num.trim(), den.trim());
        for name in [num, den] {
            if !known_counter(name) {
                return Err(format!("unknown counter `{name}`"));
            }
        }
        return Ok(HealthMetric::Ratio(num.to_string(), den.to_string()));
    }
    if let Some(inner) = text
        .strip_prefix("mean(")
        .and_then(|rest| rest.strip_suffix(')'))
    {
        let inner = inner.trim();
        if !HistogramId::ALL.iter().any(|h| h.name() == inner) {
            return Err(format!("unknown histogram `{inner}`"));
        }
        return Ok(HealthMetric::HistogramMean(inner.to_string()));
    }
    if !known_counter(text) {
        return Err(format!("unknown counter `{text}`"));
    }
    Ok(HealthMetric::Counter(text.to_string()))
}

/// Parses a rule file (see the module docs for the format). Metric
/// names are validated against the counter/histogram vocabulary so
/// typos fail at load time, not silently at evaluation.
pub fn parse_health_rules(text: &str) -> Result<Vec<HealthRule>, String> {
    let mut rules = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |message: String| format!("rule line {}: {message}", lineno + 1);
        let (metric_text, op, threshold_text) =
            if let Some((m, t)) = line.split_once(">=") {
                (m, HealthOp::AtLeast, t)
            } else if let Some((m, t)) = line.split_once("<=") {
                (m, HealthOp::AtMost, t)
            } else {
                return Err(at("missing `>=` or `<=`".to_string()));
            };
        let threshold = threshold_text
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .ok_or_else(|| at(format!("bad threshold `{}`", threshold_text.trim())))?;
        let metric = parse_metric(metric_text).map_err(at)?;
        rules.push(HealthRule {
            metric,
            op,
            threshold,
        });
    }
    if rules.is_empty() {
        return Err("rule file defines no rules".to_string());
    }
    Ok(rules)
}

/// One rule's evaluation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleResult {
    /// The rule's canonical source form.
    pub rule: String,
    /// The observed value, `None` when the metric was undefined on the
    /// snapshot (serialized as JSON `null`).
    pub observed: Option<f64>,
    /// The rule's bound.
    pub threshold: f64,
    /// The operator's source form (`>=` / `<=`).
    pub op: String,
    /// Whether the rule held (vacuously true when `observed` is
    /// `None`).
    pub pass: bool,
}

/// The deterministic health report: every rule's outcome plus the
/// overall verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Per-rule outcomes, in rule order.
    pub rules: Vec<RuleResult>,
    /// True when every rule passed.
    pub healthy: bool,
}

impl HealthReport {
    /// Number of failed rules.
    pub fn failures(&self) -> usize {
        self.rules.iter().filter(|r| !r.pass).count()
    }

    /// Serializes the report to byte-deterministic JSON. Undefined
    /// observations render as explicit `null`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object(None);
        w.uint(Some("health_version"), 1);
        w.string(
            Some("verdict"),
            if self.healthy { "healthy" } else { "unhealthy" },
        );
        w.open_array(Some("rules"));
        for r in &self.rules {
            w.open_object(None);
            w.string(Some("rule"), &r.rule);
            w.float(Some("observed"), r.observed.unwrap_or(f64::NAN));
            w.float(Some("threshold"), r.threshold);
            w.string(Some("op"), &r.op);
            w.string(Some("pass"), if r.pass { "pass" } else { "fail" });
            w.close_object();
        }
        w.close_array();
        w.close_object();
        w.finish()
    }

    /// A console rendering: one line of verdict, one line per rule.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "health: {} ({} of {} rules failed)",
            if self.healthy { "PASS" } else { "FAIL" },
            self.failures(),
            self.rules.len()
        );
        for r in &self.rules {
            let observed = match r.observed {
                Some(v) => format_f64(v),
                None => "n/a".to_string(),
            };
            let _ = writeln!(
                out,
                "  {} {} (observed {observed})",
                if r.pass { "ok  " } else { "FAIL" },
                r.rule
            );
        }
        out
    }
}

/// Evaluates `rules` over `snapshot` (see the module docs for the
/// undefined-metric policy).
pub fn evaluate_health(snapshot: &TelemetrySnapshot, rules: &[HealthRule]) -> HealthReport {
    let results: Vec<RuleResult> = rules
        .iter()
        .map(|rule| {
            let observed = rule.metric.observe(snapshot);
            let pass = observed.map_or(true, |v| rule.op.holds(v, rule.threshold));
            RuleResult {
                rule: rule.render(),
                observed,
                threshold: rule.threshold,
                op: rule.op.symbol().to_string(),
                pass,
            }
        })
        .collect();
    let healthy = results.iter().all(|r| r.pass);
    HealthReport {
        rules: results,
        healthy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_with(counters: &[(CounterId, u64)]) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::empty();
        for (id, v) in counters {
            s.counters.insert(id.name().to_string(), *v);
        }
        s
    }

    #[test]
    fn default_rules_pass_on_a_clean_mission() {
        let snapshot = snapshot_with(&[
            (CounterId::PixelsSent, 100),
            (CounterId::PixelsValue, 60),
            (CounterId::TilesObserved, 400),
        ]);
        let report = evaluate_health(&snapshot, &default_health_rules());
        assert!(report.healthy, "report: {}", report.to_text());
        assert_eq!(report.failures(), 0);
    }

    #[test]
    fn dvd_floor_violation_fails_the_report() {
        let snapshot = snapshot_with(&[
            (CounterId::PixelsSent, 100),
            (CounterId::PixelsValue, 10),
        ]);
        let report = evaluate_health(&snapshot, &default_health_rules());
        assert!(!report.healthy);
        assert_eq!(report.failures(), 1);
        let text = report.to_text();
        assert!(text.contains("FAIL pixels_value / pixels_sent >= 0.35"), "{text}");
    }

    #[test]
    fn undefined_metrics_pass_vacuously_with_null_observed() {
        let report = evaluate_health(&TelemetrySnapshot::empty(), &default_health_rules());
        assert!(report.healthy);
        let json = report.to_json();
        assert!(json.contains("\"observed\": null"), "json: {json}");
        assert!(!json.contains("NaN"), "json: {json}");
        assert!(crate::parse::parse_json(&json).is_ok());
    }

    #[test]
    fn rule_files_parse_and_render_canonically() {
        let rules = parse_health_rules(
            "# mission floor\npixels_value / pixels_sent >= 0.5\n\nmean(frame_precision) >= 0.3 # inline\nartifacts_recovered <= 2\n",
        )
        .expect("parse");
        assert_eq!(rules.len(), 3);
        assert_eq!(
            rules.first().map(|r| r.render()),
            Some("pixels_value / pixels_sent >= 0.5".to_string())
        );
        assert_eq!(
            rules.last().map(|r| r.render()),
            Some("artifacts_recovered <= 2.0".to_string())
        );
    }

    #[test]
    fn rule_files_reject_typos_and_garbage() {
        for text in [
            "",
            "pixels_value > 0.5",
            "pixels_valu / pixels_sent >= 0.5",
            "mean(nope) >= 0.5",
            "pixels_sent >= banana",
            "pixels_sent >= inf",
        ] {
            assert!(parse_health_rules(text).is_err(), "accepted: {text:?}");
        }
    }

    #[test]
    fn histogram_mean_rules_observe_the_mean() {
        let mut snapshot = TelemetrySnapshot::empty();
        if let Some(h) = snapshot.histograms.get_mut("frame_precision") {
            h.count = 4;
            h.sum = 2.0;
        }
        let rules = parse_health_rules("mean(frame_precision) >= 0.6\n").expect("parse");
        let report = evaluate_health(&snapshot, &rules);
        assert!(!report.healthy);
        assert_eq!(
            report.rules.first().and_then(|r| r.observed),
            Some(0.5)
        );
    }

    #[test]
    fn report_json_is_byte_deterministic() {
        let snapshot = snapshot_with(&[(CounterId::PixelsSent, 10)]);
        let a = evaluate_health(&snapshot, &default_health_rules());
        let b = evaluate_health(&snapshot, &default_health_rules());
        assert_eq!(a.to_json(), b.to_json());
    }
}
